//! Integration tests of the fabric communication machinery across crates: the
//! Table-I exchange feeding the per-PE kernel must reproduce the host operator, and
//! the whole-fabric all-reduce must reproduce the host reduction in the same
//! floating-point order.

use mffv::prelude::*;
use mffv_core::allreduce::AllReduce;
use mffv_core::comm::CardinalExchange;
use mffv_core::kernel;
use mffv_core::mapping::PeColumnBuffers;
use mffv_fv::{LinearOperator, MatrixFreeOperator};
use mffv_solver::reduction::fabric_ordered_dot;

/// Exchange + per-PE kernel over the whole fabric must equal the host operator
/// applied to the same field.
#[test]
fn exchanged_halos_plus_kernel_reproduce_the_host_operator() {
    let dims = Dims::new(7, 6, 9);
    let workload = WorkloadSpec::fig5(dims).build();
    let host_op = MatrixFreeOperator::<f32>::from_workload(&workload);

    // A direction field that is zero on Dirichlet cells (the CG invariant).
    let mut direction = CellField::<f32>::from_fn(dims, |c| {
        ((c.x as f32) - 0.3 * (c.y as f32) + 0.1 * (c.z as f32)).cos()
    });
    for idx in 0..dims.num_cells() {
        if workload.dirichlet().contains_linear(idx) {
            direction.set(idx, 0.0);
        }
    }
    let expected = host_op.apply_new(&direction);

    let mut fabric = Fabric::new(FabricDims::new(dims.nx, dims.ny));
    let mut buffers = Vec::new();
    for idx in 0..fabric.num_pes() {
        let pe_id = fabric.dims().unlinear(idx);
        let pe = fabric.pe_mut(pe_id);
        let bufs = PeColumnBuffers::allocate(pe, &workload, pe_id.x, pe_id.y).unwrap();
        pe.memory_mut()
            .write(bufs.direction, 0, &direction.column(pe_id.x, pe_id.y))
            .unwrap();
        buffers.push(bufs);
    }
    let mut colors = ColorAllocator::new();
    let mut exchange = CardinalExchange::new(&mut fabric, &mut colors).unwrap();
    exchange.exchange(&mut fabric, &buffers).unwrap();

    let mut got = CellField::<f32>::zeros(dims);
    for (idx, bufs) in buffers.iter().enumerate() {
        let pe_id = fabric.dims().unlinear(idx);
        kernel::compute_jd(fabric.pe_mut(pe_id), bufs).unwrap();
        let column = fabric
            .pe(pe_id)
            .memory()
            .read(bufs.operator_out, 0, dims.nz)
            .unwrap();
        got.set_column(pe_id.x, pe_id.y, &column);
    }
    let scale = expected.max_abs().max(1.0);
    let diff = got.max_abs_diff(&expected);
    assert!(
        diff <= 1e-5 * scale,
        "fabric operator differs from host operator by {diff}"
    );
}

/// The fabric all-reduce must equal the host helper that mimics its reduction order
/// exactly (bitwise, because the order and the operations are identical).
#[test]
fn fabric_allreduce_matches_host_fabric_ordered_reduction() {
    let dims = Dims::new(5, 4, 7);
    let a = CellField::<f32>::from_fn(dims, |c| 1.0e4 + (c.x * 31 + c.y * 7 + c.z) as f32 * 0.125);
    let b = CellField::<f32>::from_fn(dims, |c| 0.5 - 0.01 * (c.z as f32) + 0.001 * (c.x as f32));

    // Per-PE partial dot products, then the fabric collective.
    let mut fabric = Fabric::new(FabricDims::new(dims.nx, dims.ny));
    let mut partials = vec![0.0f32; fabric.num_pes()];
    for (idx, partial) in partials.iter_mut().enumerate() {
        let pe = fabric.dims().unlinear(idx);
        let col_a = a.column(pe.x, pe.y);
        let col_b = b.column(pe.x, pe.y);
        let mut acc = 0.0f32;
        for (x, y) in col_a.iter().zip(col_b.iter()) {
            acc = x.mul_add(*y, acc);
        }
        *partial = acc;
    }
    let mut colors = ColorAllocator::new();
    let allreduce = AllReduce::new(&mut colors).unwrap();
    let (values, report) = allreduce.sum(&mut fabric, &partials).unwrap();

    let host = fabric_ordered_dot(&a, &b);
    assert_eq!(
        values[0], host,
        "fabric and host reduction orders must agree bitwise"
    );
    assert!(
        values.iter().all(|&v| v == values[0]),
        "broadcast must reach every PE"
    );
    assert_eq!(
        report.critical_path_hops,
        2 * ((dims.nx - 1) + (dims.ny - 1))
    );
}

/// The full dataflow CG must report the same iteration count as the host CG driven
/// by the fabric-ordered reductions — the discrete decisions (convergence checks)
/// depend only on quantities both sides compute identically.
#[test]
fn dataflow_iteration_count_is_close_to_host_iteration_count() {
    let workload = WorkloadSpec::quickstart().scaled(2).build();
    let reports: Vec<_> = Simulation::new(workload)
        .backend(Backend::host_f32())
        .backend(Backend::dataflow())
        .run_all()
        .into_iter()
        .map(|(_, outcome)| outcome.unwrap())
        .collect();
    let host_iters = reports[0].iterations() as isize;
    let fabric_iters = reports[1].iterations() as isize;
    assert!(
        (host_iters - fabric_iters).abs() <= 3,
        "iteration counts diverge: host {host_iters} vs fabric {fabric_iters}"
    );
}
