//! Multigrid preconditioner integration tests: the V-cycle is a fixed SPD
//! operation on arbitrary grids (including degenerate 1-cell-thin ones) and
//! every Dirichlet topology, MG-PCG reaches the same pressure as plain CG,
//! its residual history is bitwise identical across thread counts, and its
//! iteration count stays flat under grid refinement (release tier).

use mffv::prelude::*;
use mffv_fv::{det_dot, Preconditioner};
use mffv_mesh::boundary::DirichletCell;
use mffv_mesh::permeability::PermeabilityModel;
use mffv_mesh::workload::{BoundarySpec, WorkloadSpec};
use mffv_solver::newton::solve_pressure_with;
use mffv_solver::trace::Span;
use proptest::prelude::*;

/// A Dirichlet set of the requested flavour that is valid on *any* dims,
/// including 1-cell-thin grids (mirrors `tests/property_invariants.rs`).
fn dirichlet_variant(dims: Dims, variant: usize, seed: u64) -> DirichletSet {
    match variant % 4 {
        0 => DirichletSet::empty(),
        1 if dims.nx > 1 => DirichletSet::x_faces(dims, 1.0, 0.0),
        1 => {
            let cells: Vec<DirichletCell> = dims
                .iter_cells()
                .map(|cell| DirichletCell { cell, value: 1.0 })
                .collect();
            DirichletSet::new(dims, cells)
        }
        2 => DirichletSet::all_faces(dims, 1.0),
        _ => {
            let cells: Vec<DirichletCell> = (0..dims.num_cells())
                .filter(|&k| {
                    (k as u64)
                        .wrapping_mul(0x9E37_79B9)
                        .wrapping_add(seed)
                        .is_multiple_of(5)
                })
                .map(|k| DirichletCell {
                    cell: dims.unlinear(k),
                    value: 0.5,
                })
                .collect();
            DirichletSet::new(dims, cells)
        }
    }
}

/// A heterogeneous workload on `dims` whose coefficient table feeds the
/// hierarchies under test.
fn heterogeneous_workload(dims: Dims, seed: u64) -> Workload {
    WorkloadSpec {
        name: "mg-prop".to_string(),
        dims,
        spacing: [1.0, 1.0, 1.0],
        permeability: PermeabilityModel::LogNormal {
            mean_log: 0.0,
            std_log: 1.0,
            seed,
        },
        viscosity: 1.0,
        boundary: BoundarySpec::None,
        tolerance: 1e-10,
        max_iterations: 5000,
    }
    .build()
}

/// Zero a field on the Dirichlet cells so test vectors live in the subspace
/// the error equations are posed on.  With no Dirichlet cells at all the
/// operator is pure-Neumann singular, so additionally deflate the constant
/// null-space (restriction preserves zero-sum and smoothing keeps it, so the
/// whole hierarchy then works on consistent systems).
fn mask(dirichlet: &DirichletSet, mut f: CellField<f64>) -> CellField<f64> {
    for k in 0..f.dims().num_cells() {
        if dirichlet.contains_linear(k) {
            f.set(k, 0.0);
        }
    }
    if dirichlet.is_empty() {
        let mut sum = 0.0;
        for &v in f.as_slice() {
            sum += v;
        }
        let mean = sum / f.as_slice().len() as f64;
        for v in f.as_mut_slice() {
            *v -= mean;
        }
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The V-cycle is one fixed symmetric operation: `⟨r₁, M⁻¹r₂⟩ = ⟨r₂, M⁻¹r₁⟩`
    /// for arbitrary vectors, on every Dirichlet topology, with no NaNs even on
    /// degenerate 1-cell-thin grids.  Positivity of `⟨r, M⁻¹r⟩` is asserted on
    /// the nonsingular (pinned) topologies.
    #[test]
    fn vcycle_is_a_fixed_spd_operation(
        nx in 1usize..10,
        ny in 1usize..10,
        nz in 1usize..10,
        variant in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let dims = Dims::new(nx, ny, nz);
        let dirichlet = dirichlet_variant(dims, variant, seed);
        let w = heterogeneous_workload(dims, seed);
        // Tiny coarse target so even these small grids build real hierarchies.
        let config = MgConfig { coarse_cells: 8, ..MgConfig::default() };
        let mg = MultigridVcycle::<f64>::new(
            w.transmissibility().convert(),
            &dirichlet,
            1,
            config,
        );

        let r1 = mask(&dirichlet, CellField::from_fn(dims, |c| {
            ((c.x * 31 + c.y * 17 + c.z * 7 + seed as usize) % 13) as f64 - 6.0
        }));
        let r2 = mask(&dirichlet, CellField::from_fn(dims, |c| {
            ((c.x * 5 + c.y * 23 + c.z * 11 + seed as usize) % 9) as f64 - 4.0
        }));
        let mut z1 = CellField::zeros(dims);
        let mut z2 = CellField::zeros(dims);
        mg.apply(&r1, &mut z1);
        mg.apply(&r2, &mut z2);
        prop_assert!(z1.all_finite(), "M⁻¹r₁ has non-finite entries");
        prop_assert!(z2.all_finite(), "M⁻¹r₂ has non-finite entries");

        let lhs = det_dot(&r1, &z2);
        let rhs = det_dot(&r2, &z1);
        let scale = det_dot(&r1, &z1).abs().max(det_dot(&r2, &z2).abs()).max(1.0);
        prop_assert!(
            (lhs - rhs).abs() <= 1e-8 * scale,
            "V-cycle inner product is asymmetric: {lhs} vs {rhs} (scale {scale})"
        );

        // A second apply of the same vector is the same fixed operation.
        let mut z1_again = CellField::zeros(dims);
        mg.apply(&r1, &mut z1_again);
        let bits = |f: &CellField<f64>| -> Vec<u64> {
            f.as_slice().iter().map(|v| v.to_bits()).collect()
        };
        prop_assert_eq!(bits(&z1), bits(&z1_again));

        // Positivity on the pinned (nonsingular) topologies.
        if !dirichlet.is_empty() && r1.as_slice().iter().any(|&v| v != 0.0) {
            prop_assert!(
                det_dot(&r1, &z1) > 0.0,
                "⟨r, M⁻¹r⟩ = {} is not positive",
                det_dot(&r1, &z1)
            );
        }
    }
}

/// The shared steady scenario of the golden differential tests: MG-PCG must
/// land on the same pressure field plain CG does.
fn golden_workload() -> Workload {
    WorkloadSpec {
        name: "golden-steady".into(),
        boundary: BoundarySpec::XFaces {
            left_pressure: 10.0,
            right_pressure: 8.0,
        },
        dims: Dims::new(10, 8, 6),
        tolerance: 1e-11,
        ..WorkloadSpec::quickstart()
    }
    .build()
}

#[test]
fn mg_pcg_reaches_the_same_pressure_as_plain_cg() {
    for (w, diff_tol) in [
        (golden_workload(), 1e-7),
        (WorkloadSpec::quickstart().scaled(2).build(), 1e-3),
    ] {
        let operator = MatrixFreeOperator::<f64>::from_workload(&w);
        let cg = ConjugateGradient::with_tolerance(w.tolerance(), w.max_iterations());
        let base = solve_pressure_with::<f64, _>(&w, &operator, &cg);
        assert!(base.history.converged);

        let mg = MultigridVcycle::<f64>::from_workload(&w, 1, MgConfig::default());
        let pcg =
            PreconditionedConjugateGradient::with_tolerance(w.tolerance(), w.max_iterations());
        let sol = solve_pressure_preconditioned::<f64, _, _>(
            &w,
            &operator,
            &mg,
            &pcg,
            &mut NullMonitor,
            &Span::null(),
        );
        assert!(
            sol.history.converged,
            "MG-PCG did not converge on {}",
            w.name()
        );
        assert!(
            sol.history.iterations <= base.history.iterations,
            "MG-PCG took {} iterations vs plain CG's {}",
            sol.history.iterations,
            base.history.iterations
        );
        let mut max_diff = 0.0f64;
        for (a, b) in sol.pressure.as_slice().iter().zip(base.pressure.as_slice()) {
            max_diff = max_diff.max((a - b).abs());
        }
        assert!(
            max_diff < diff_tol,
            "pressures disagree by {max_diff} on {}",
            w.name()
        );
    }
}

#[test]
fn mg_pcg_residual_history_is_bitwise_identical_across_thread_counts() {
    let w = WorkloadSpec {
        name: "mg-threads".to_string(),
        dims: Dims::new(20, 18, 14),
        tolerance: 1e-10,
        ..WorkloadSpec::quickstart()
    }
    .build();
    let solve = |threads: usize| {
        let operator = MatrixFreeOperator::<f64>::from_workload(&w).with_threads(threads);
        let mg = MultigridVcycle::<f64>::from_workload(&w, threads, MgConfig::default());
        let pcg =
            PreconditionedConjugateGradient::with_tolerance(w.tolerance(), w.max_iterations());
        solve_pressure_preconditioned::<f64, _, _>(
            &w,
            &operator,
            &mg,
            &pcg,
            &mut NullMonitor,
            &Span::null(),
        )
    };
    let base = solve(1);
    assert!(base.history.converged);
    let base_history: Vec<u64> = base
        .history
        .residual_norms_squared
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let base_pressure: Vec<u64> = base
        .pressure
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    for threads in [2usize, 8] {
        let other = solve(threads);
        let history: Vec<u64> = other
            .history
            .residual_norms_squared
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(
            base_history, history,
            "MG-PCG residual history differs at {threads} threads"
        );
        let pressure: Vec<u64> = other
            .pressure
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(
            base_pressure, pressure,
            "MG-PCG pressure differs at {threads} threads"
        );
    }
}

/// Release-tier (`cargo test --release`): under 2:1 refinement MG-PCG's
/// iteration count must stay flat — within 1.5x from 32³ to 64³ — where plain
/// CG's grows roughly with the grid edge.  Too slow for the debug tier.
#[test]
#[cfg_attr(debug_assertions, ignore = "release tier: run with --release")]
fn mg_pcg_iterations_stay_flat_under_refinement() {
    let iters = |n: usize| {
        let w = WorkloadSpec::paper_grid(n, n, n).build();
        let operator = MatrixFreeOperator::<f64>::from_workload(&w);
        let mg = MultigridVcycle::<f64>::from_workload(&w, 1, MgConfig::default());
        let pcg =
            PreconditionedConjugateGradient::with_tolerance(w.tolerance(), w.max_iterations());
        let sol = solve_pressure_preconditioned::<f64, _, _>(
            &w,
            &operator,
            &mg,
            &pcg,
            &mut NullMonitor,
            &Span::null(),
        );
        assert!(sol.history.converged, "MG-PCG did not converge at {n}^3");
        sol.history.iterations
    };
    let at32 = iters(32);
    let at64 = iters(64);
    assert!(
        (at64 as f64) <= 1.5 * (at32 as f64),
        "MG-PCG iterations not flat under refinement: {at32} at 32^3 vs {at64} at 64^3"
    );
}
