//! Shared golden-fixture harness for the integration tests.
//!
//! A **golden fixture** pins the quantitative outcome of an executed workload
//! — iteration counts, bitwise pressure checksums, well totals — as a small
//! JSON file under `tests/golden/`.  Tests build a [`Golden`] record of what
//! they observed and call [`Golden::check`]:
//!
//! * normally the record's canonical JSON must match the pinned file
//!   byte-for-byte (a mismatch panics with both versions and re-bless
//!   instructions);
//! * with **`MFFV_BLESS=1`** in the environment the file is (re)written
//!   instead — the `--bless` path used to create or intentionally update
//!   fixtures after a reviewed numerical change:
//!
//! ```text
//! MFFV_BLESS=1 cargo test --test table_reproduction --test golden_differential
//! ```
//!
//! Checksums are FNV-1a over the IEEE bit patterns, so a fixture pins the
//! *exact* floating-point trajectory: any silent numerical drift across the
//! hundreds of chained solves of a transient run fails the comparison, while
//! every platform computing correct IEEE arithmetic (Rust never reassociates
//! floats, and `mul_add` has exact fused semantics everywhere) reproduces it.

#![allow(dead_code)]

use mffv_mesh::CellField;
use std::path::PathBuf;

/// FNV-1a (64-bit) over the IEEE bit patterns of a field — the bitwise
/// fingerprint golden fixtures pin.
pub fn field_checksum(field: &CellField<f64>) -> String {
    fields_checksum(std::iter::once(field))
}

/// FNV-1a (64-bit) chained over several fields in order — fingerprints a
/// whole pressure *trajectory*.
pub fn fields_checksum<'a>(fields: impl IntoIterator<Item = &'a CellField<f64>>) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for field in fields {
        for v in field.as_slice() {
            for byte in v.to_bits().to_le_bytes() {
                hash ^= byte as u64;
                hash = hash.wrapping_mul(0x1000_0000_01b3);
            }
        }
    }
    format!("{hash:016x}")
}

/// One golden record: ordered `key: value` pairs serialised as a flat JSON
/// object.  Keys keep insertion order so fixtures read like the test wrote
/// them.
pub struct Golden {
    name: String,
    entries: Vec<(String, String)>,
}

impl Golden {
    /// A record that pins (or checks) `tests/golden/<name>.json`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            entries: Vec::new(),
        }
    }

    /// Record a string value (checksums, backend names).
    pub fn str(mut self, key: &str, value: impl AsRef<str>) -> Self {
        self.entries
            .push((key.to_string(), format!("\"{}\"", value.as_ref())));
        self
    }

    /// Record an integer value (iteration counts, step counts).
    pub fn int(mut self, key: &str, value: usize) -> Self {
        self.entries.push((key.to_string(), value.to_string()));
        self
    }

    /// Record a float value with full round-trip precision.
    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.entries.push((key.to_string(), format!("{value:?}")));
        self
    }

    /// The canonical JSON serialisation (stable across runs and platforms).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (key, value)) in self.entries.iter().enumerate() {
            out.push_str(&format!("  \"{key}\": {value}"));
            out.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("}\n");
        out
    }

    /// Path of the pinned fixture.
    pub fn path(&self) -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(format!("{}.json", self.name))
    }

    /// Compare against the pinned fixture, or (re)write it when `MFFV_BLESS`
    /// is set.  Panics with a full diff and re-bless instructions on any
    /// mismatch or missing fixture.
    pub fn check(&self) {
        let path = self.path();
        let actual = self.to_json();
        if std::env::var_os("MFFV_BLESS").is_some() {
            std::fs::create_dir_all(path.parent().unwrap())
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
            std::fs::write(&path, &actual)
                .unwrap_or_else(|e| panic!("cannot bless {}: {e}", path.display()));
            eprintln!("blessed golden fixture {}", path.display());
            return;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden fixture {} ({e}); generate it with\n  \
                 MFFV_BLESS=1 cargo test\nand commit the file",
                path.display()
            )
        });
        assert!(
            expected == actual,
            "golden fixture {} does not match the observed run.\n\
             -- pinned --\n{expected}\n-- observed --\n{actual}\n\
             If the numerical change is intended and reviewed, re-bless with\n  \
             MFFV_BLESS=1 cargo test\nand commit the updated fixture.",
            path.display()
        );
    }
}
