//! Cross-crate numerical integrity (§V-B of the paper): the sequential oracle, the
//! assembled-CSR baseline, the GPU-style reference and the dataflow-fabric solver
//! must produce the same pressure field on shared workloads.

use mffv::prelude::*;
use mffv_fv::csr::AssembledOperator;
use mffv_solver::cg::ConjugateGradient;
use mffv_solver::newton::solve_pressure_with;

fn workloads() -> Vec<Workload> {
    vec![
        WorkloadSpec::quickstart().build(),
        WorkloadSpec::fig5(Dims::new(10, 8, 6)).build(),
        WorkloadSpec::paper_grid(14, 12, 10).build(),
    ]
}

#[test]
fn assembled_baseline_matches_oracle_to_solver_precision() {
    for workload in workloads() {
        // Run both operators through the identical CG configuration so the
        // comparison isolates the operator implementations.
        let solver = ConjugateGradient::with_tolerance(1e-16, workload.max_iterations());
        let oracle = solve_pressure_with::<f64, _>(
            &workload,
            &mffv_fv::MatrixFreeOperator::<f64>::from_workload(&workload),
            &solver,
        );
        let assembled = solve_pressure_with::<f64, _>(
            &workload,
            &AssembledOperator::<f64>::from_workload(&workload),
            &solver,
        );
        assert!(oracle.history.converged && assembled.history.converged);
        let scale = oracle.pressure.max_abs().max(f64::MIN_POSITIVE);
        let rel = oracle.pressure.max_abs_diff(&assembled.pressure) / scale;
        assert!(rel < 1e-9, "{}: assembled baseline off by {rel}", workload.name());
    }
}

#[test]
fn gpu_reference_matches_oracle_to_single_precision() {
    for workload in workloads() {
        let oracle = solve_pressure::<f64>(&workload);
        let gpu = GpuReferenceSolver::new(workload.clone(), GpuSpec::a100())
            .with_tolerance(1e-12)
            .solve();
        assert!(gpu.history.converged, "{}: GPU reference did not converge", workload.name());
        let scale = oracle.pressure.max_abs().max(f64::MIN_POSITIVE);
        let rel = oracle.pressure.max_abs_diff(&gpu.pressure.convert()) / scale;
        assert!(rel < 1e-3, "{}: GPU reference off by {rel}", workload.name());
    }
}

#[test]
fn dataflow_solver_matches_oracle_to_single_precision() {
    for workload in workloads() {
        let oracle = solve_pressure::<f64>(&workload);
        let dataflow = DataflowFvSolver::new(
            workload.clone(),
            SolverOptions::paper().with_tolerance(1e-12),
        )
        .solve()
        .expect("dataflow solve failed");
        assert!(dataflow.history.converged, "{}: dataflow did not converge", workload.name());
        let scale = oracle.pressure.max_abs().max(f64::MIN_POSITIVE);
        let rel = oracle.pressure.max_abs_diff(&dataflow.pressure.convert()) / scale;
        assert!(rel < 1e-3, "{}: dataflow solver off by {rel}", workload.name());
    }
}

#[test]
fn dataflow_and_gpu_reference_agree_with_each_other() {
    let workload = WorkloadSpec::fig5(Dims::new(9, 7, 5)).build();
    let gpu = GpuReferenceSolver::new(workload.clone(), GpuSpec::h100())
        .with_tolerance(1e-12)
        .solve();
    let dataflow =
        DataflowFvSolver::new(workload, SolverOptions::paper().with_tolerance(1e-12))
            .solve()
            .expect("dataflow solve failed");
    let gpu64: CellField<f64> = gpu.pressure.convert();
    let dataflow64: CellField<f64> = dataflow.pressure.convert();
    let scale = gpu64.max_abs().max(f64::MIN_POSITIVE);
    let rel = gpu64.max_abs_diff(&dataflow64) / scale;
    assert!(rel < 1e-3, "dataflow vs GPU reference differ by {rel}");
}

#[test]
fn converged_pressure_satisfies_the_discrete_maximum_principle() {
    // The single-phase operator has no sources except the Dirichlet columns, so the
    // converged pressure must stay inside the range of the boundary values — on
    // every implementation.
    let workload = WorkloadSpec::quickstart().build();
    let (lo, hi) = (0.0f64, 1.0f64);
    let oracle = solve_pressure::<f64>(&workload);
    let dataflow =
        DataflowFvSolver::new(workload.clone(), SolverOptions::paper().with_tolerance(1e-12))
            .solve()
            .unwrap();
    for &p in oracle.pressure.as_slice() {
        assert!(p >= lo - 1e-8 && p <= hi + 1e-8, "oracle violates maximum principle: {p}");
    }
    for &p in dataflow.pressure.as_slice() {
        assert!(
            p >= (lo - 1e-4) as f32 && p <= (hi + 1e-4) as f32,
            "dataflow violates maximum principle: {p}"
        );
    }
}
