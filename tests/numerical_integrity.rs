//! Cross-crate numerical integrity (§V-B of the paper): the sequential oracle,
//! the assembled-CSR baseline, the GPU-style reference and the dataflow-fabric
//! solver must produce the same pressure field on shared workloads — now
//! exercised through the one `Simulation` facade.

use mffv::prelude::*;
use mffv_fv::csr::AssembledOperator;
use mffv_solver::cg::ConjugateGradient;
use mffv_solver::newton::solve_pressure_with;

fn workloads() -> Vec<Workload> {
    vec![
        WorkloadSpec::quickstart().build(),
        WorkloadSpec::fig5(Dims::new(10, 8, 6)).build(),
        WorkloadSpec::paper_grid(14, 12, 10).build(),
    ]
}

#[test]
fn assembled_baseline_matches_oracle_to_solver_precision() {
    for workload in workloads() {
        // Run both operators through the identical CG configuration so the
        // comparison isolates the operator implementations.  The assembled
        // baseline is an operator, not a facade backend, so this test stays on
        // the lower-level driver deliberately.
        let solver = ConjugateGradient::with_tolerance(1e-16, workload.max_iterations());
        let oracle = solve_pressure_with::<f64, _>(
            &workload,
            &mffv_fv::MatrixFreeOperator::<f64>::from_workload(&workload),
            &solver,
        );
        let assembled = solve_pressure_with::<f64, _>(
            &workload,
            &AssembledOperator::<f64>::from_workload(&workload),
            &solver,
        );
        assert!(oracle.history.converged && assembled.history.converged);
        let scale = oracle.pressure.max_abs().max(f64::MIN_POSITIVE);
        let rel = oracle.pressure.max_abs_diff(&assembled.pressure) / scale;
        assert!(
            rel < 1e-9,
            "{}: assembled baseline off by {rel}",
            workload.name()
        );
    }
}

#[test]
fn gpu_reference_matches_oracle_to_single_precision() {
    for workload in workloads() {
        let agreement = Simulation::new(workload.clone())
            .tolerance(1e-12)
            .backend(Backend::host())
            .backend(Backend::gpu_ref())
            .compare()
            .expect("solve failed");
        let gpu = agreement.report("gpu-ref-A100").unwrap();
        assert!(
            gpu.converged(),
            "{}: GPU reference did not converge",
            workload.name()
        );
        assert!(
            agreement.agrees_within(1e-3),
            "{}: GPU reference off by {}",
            workload.name(),
            agreement.max_pairwise_rel_diff()
        );
    }
}

#[test]
fn dataflow_solver_matches_oracle_to_single_precision() {
    for workload in workloads() {
        let agreement = Simulation::new(workload.clone())
            .tolerance(1e-12)
            .backend(Backend::host())
            .backend(Backend::dataflow())
            .compare()
            .expect("solve failed");
        let dataflow = agreement.report("dataflow").unwrap();
        assert!(
            dataflow.converged(),
            "{}: dataflow did not converge",
            workload.name()
        );
        assert!(
            agreement.agrees_within(1e-3),
            "{}: dataflow solver off by {}",
            workload.name(),
            agreement.max_pairwise_rel_diff()
        );
    }
}

#[test]
fn dataflow_and_gpu_reference_agree_with_each_other() {
    let workload = WorkloadSpec::fig5(Dims::new(9, 7, 5)).build();
    let agreement = Simulation::new(workload)
        .tolerance(1e-12)
        .backend(Backend::gpu_ref_on(GpuSpec::h100()))
        .backend(Backend::dataflow())
        .compare()
        .expect("solve failed");
    assert_eq!(agreement.pairwise.len(), 1);
    assert!(
        agreement.agrees_within(1e-3),
        "dataflow vs GPU reference differ by {}",
        agreement.max_pairwise_rel_diff()
    );
}

#[test]
fn run_all_executes_the_full_standard_set() {
    // The facade's default backend set is the §V-B experiment: all three
    // targets on one workload, pairwise agreement below single precision.
    let agreement = Simulation::from_spec(&WorkloadSpec::quickstart())
        .tolerance(1e-10)
        .compare()
        .expect("solve failed");
    assert_eq!(agreement.reports.len(), 3);
    assert_eq!(agreement.pairwise.len(), 3);
    assert!(agreement.max_pairwise_diff() < 1e-3);
    // Device sections exist exactly where a device is modelled.
    assert!(agreement.report("host-f64").unwrap().device.is_none());
    assert!(agreement.report("gpu-ref-A100").unwrap().device.is_some());
    assert!(agreement.report("dataflow").unwrap().device.is_some());
}

/// The grids the planned-kernel equivalence contract is pinned on: the
/// quickstart and scaled workloads, an all-Dirichlet-faces configuration, and
/// 1-cell-thin extents in each axis (no branch-free runs at all).
fn planned_kernel_workloads() -> Vec<(String, Transmissibilities<f64>, DirichletSet)> {
    let mut cases: Vec<(String, Transmissibilities<f64>, DirichletSet)> = Vec::new();
    for spec in [
        WorkloadSpec::quickstart(),
        WorkloadSpec::quickstart().scaled(2),
    ] {
        let w = spec.build();
        cases.push((
            w.name().to_string(),
            w.transmissibility().clone(),
            w.dirichlet().clone(),
        ));
    }
    // Every boundary face Dirichlet: the fast path shrinks to the inner core.
    let dims = Dims::new(8, 7, 6);
    cases.push((
        "all-dirichlet-faces".into(),
        Transmissibilities::uniform(dims, 1.0),
        DirichletSet::all_faces(dims, 1.0),
    ));
    // 1-cell-thin grids: no cell has all six neighbours, pure general path.
    // (On the 1xNxM grid the "left face" is the whole domain — also a useful
    // degenerate case.)
    for dims in [Dims::new(1, 9, 7), Dims::new(9, 1, 7), Dims::new(9, 7, 1)] {
        let left_face: Vec<mffv_mesh::DirichletCell> = dims
            .iter_cells()
            .filter(|c| c.x == 0)
            .map(|cell| mffv_mesh::DirichletCell { cell, value: 1.0 })
            .collect();
        cases.push((
            format!("thin-{dims}"),
            Transmissibilities::uniform(dims, 2.0),
            DirichletSet::new(dims, left_face),
        ));
    }
    cases
}

#[test]
fn planned_apply_is_bitwise_identical_to_naive_on_pinned_workloads() {
    for (name, coeffs, dirichlet) in planned_kernel_workloads() {
        let dims = coeffs.dims();
        let op = mffv_fv::MatrixFreeOperator::new(coeffs, &dirichlet);
        let x = CellField::<f64>::from_fn(dims, |c| {
            (c.x as f64 * 1.7 - c.y as f64 * 0.9 + c.z as f64 * 0.4).sin()
        });
        let mut naive = CellField::zeros(dims);
        op.apply_spd_naive(&x, &mut naive);
        for threads in [1usize, 2, 8] {
            let planned = op.clone().with_threads(threads).apply_new(&x);
            for i in 0..dims.num_cells() {
                assert_eq!(
                    planned.get(i).to_bits(),
                    naive.get(i).to_bits(),
                    "{name}: cell {i} differs with {threads} threads"
                );
            }
        }
    }
}

#[test]
fn host_solves_are_bitwise_identical_across_apply_thread_counts() {
    // 32x32x16 = 16384 cells: four deterministic slabs, so 2 and 8 threads
    // genuinely split the work.  Pressure fields and residual histories must
    // not depend on the thread count in a single bit.
    let spec = WorkloadSpec::quickstart().scaled(2);
    let reference = Simulation::from_spec(&spec).tolerance(1e-12).run().unwrap();
    for threads in [2usize, 8] {
        let report = Simulation::from_spec(&spec)
            .tolerance(1e-12)
            .threads(threads)
            .run()
            .unwrap();
        assert!(report.converged());
        let bits = |r: &mffv::SolveReport| -> Vec<u64> {
            r.pressure.as_slice().iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(bits(&report), bits(&reference), "{threads} threads");
        let history_bits = |r: &mffv::SolveReport| -> Vec<u64> {
            r.history
                .residual_norms_squared
                .iter()
                .map(|v| v.to_bits())
                .collect()
        };
        assert_eq!(
            history_bits(&report),
            history_bits(&reference),
            "{threads} threads"
        );
    }
}

#[test]
fn converged_pressure_satisfies_the_discrete_maximum_principle() {
    // The single-phase operator has no sources except the Dirichlet columns, so
    // the converged pressure must stay inside the range of the boundary values
    // — on every implementation.
    let (lo, hi) = (0.0f64, 1.0f64);
    let reports: Vec<_> = Simulation::from_spec(&WorkloadSpec::quickstart())
        .tolerance(1e-12)
        .backend(Backend::host())
        .backend(Backend::dataflow())
        .run_all()
        .into_iter()
        .map(|(_, outcome)| outcome.expect("solve failed"))
        .collect();
    for report in &reports {
        let slack = if report.backend == "host-f64" {
            1e-8
        } else {
            1e-4
        };
        for &p in report.pressure.as_slice() {
            assert!(
                p >= lo - slack && p <= hi + slack,
                "{} violates maximum principle: {p}",
                report.backend
            );
        }
    }
}
