//! Facade-level equivalence: `Simulation::run_all()` must produce agreeing
//! pressure fields from the host oracle, the GPU-style reference and the
//! dataflow fabric across qualitatively different workload shapes — the
//! paper's §V-B integrity claim, exercised end-to-end through the public API.

use mffv::prelude::*;
use mffv_mesh::workload::BoundarySpec;

/// An XFaces boundary case: fixed pressures on the two X faces with layered
/// permeability, a different Dirichlet topology from the corner-well defaults.
fn xfaces_workload() -> Workload {
    WorkloadSpec {
        name: "xfaces-12x10x6".to_string(),
        dims: Dims::new(12, 10, 6),
        spacing: [1.0, 1.0, 1.0],
        permeability: PermeabilityModel::Layered {
            layer_values: vec![1.0, 0.2, 0.5],
        },
        viscosity: 1.0,
        boundary: BoundarySpec::XFaces {
            left_pressure: 1.0,
            right_pressure: 0.0,
        },
        tolerance: 1e-10,
        max_iterations: 10_000,
    }
    .build()
}

fn equivalence_workloads() -> Vec<Workload> {
    vec![
        WorkloadSpec::quickstart().build(),
        xfaces_workload(),
        // The paper's full grid, scaled to host-executable size.
        WorkloadSpec::paper_grid(750, 994, 922).scaled(50).build(),
    ]
}

#[test]
fn run_all_backends_agree_across_workload_shapes() {
    for workload in equivalence_workloads() {
        let name = workload.name().to_string();
        let reports: Vec<_> = Simulation::new(workload)
            .tolerance(1e-10)
            .run_all()
            .into_iter()
            .map(|(b, outcome)| outcome.unwrap_or_else(|e| panic!("{name}: {} {e}", b.name())))
            .collect();
        assert_eq!(reports.len(), 3, "{name}: expected the full standard set");
        for report in &reports {
            assert!(
                report.converged(),
                "{name}: {} did not converge",
                report.backend
            );
        }
        for i in 0..reports.len() {
            for j in (i + 1)..reports.len() {
                let diff = reports[i].max_abs_diff(&reports[j]);
                assert!(
                    diff < 1e-3,
                    "{name}: {} vs {} disagree by {diff}",
                    reports[i].backend,
                    reports[j].backend
                );
            }
        }
    }
}

#[test]
fn compare_summarises_the_same_runs() {
    for workload in equivalence_workloads() {
        let name = workload.name().to_string();
        let agreement = Simulation::new(workload)
            .tolerance(1e-10)
            .compare()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            agreement.pairwise.len(),
            3,
            "{name}: 3 backend pairs expected"
        );
        assert!(
            agreement.agrees_within(1e-3),
            "{name}: max relative disagreement {}",
            agreement.max_pairwise_rel_diff()
        );
        // The rendered table carries every backend name.
        let table = agreement.to_string();
        for backend in ["host-f64", "gpu-ref-A100", "dataflow"] {
            assert!(table.contains(backend), "{name}: table misses {backend}");
        }
    }
}

#[test]
fn facade_error_reports_the_failing_backend() {
    // A column too deep for the 48 KiB PE memory makes the dataflow backend
    // fail; the facade must surface that as a typed error naming the backend,
    // not a panic.
    let workload = WorkloadSpec::paper_grid(3, 3, 3000).build();
    let error = Simulation::new(workload)
        .backend(Backend::dataflow())
        .run()
        .expect_err("a 3000-deep column cannot fit a PE");
    assert_eq!(error.backend_name(), "dataflow");
    assert!(
        error.detail().contains("memory"),
        "detail should mention the memory failure: {}",
        error.detail()
    );
}
