//! Telemetry integration contracts (PR 7):
//!
//! 1. **Non-interference** — a traced solve returns a bitwise-identical
//!    `SolveReport` to an untraced one, on every backend.  Tracing reads
//!    clocks and allocates span records but never touches solve arithmetic.
//! 2. **Deterministic span-tree shape** — the aggregated phase tree of a
//!    fixed 12-job sweep has the same `shape_string()` for 1, 2 and 8
//!    workers: span *timings* are scheduling-dependent, span *structure* is
//!    not.
//! 3. **Histogram merge semantics** — worker-local `LogHistogram`s merge
//!    associatively on raw bucket counts, so per-worker folds are
//!    order-independent.
//! 4. **Transient span structure** — one `step` span per executed step, with
//!    the nested CG loop spans under each.

use mffv::prelude::*;
use mffv::telemetry::{LogHistogram, Tracer};
use mffv::Simulation;

fn report_bits(report: &mffv::SolveReport) -> (Vec<u64>, Vec<u64>, u64) {
    (
        report
            .pressure
            .as_slice()
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        report
            .history
            .residual_norms_squared
            .iter()
            .map(|v| v.to_bits())
            .collect(),
        report.final_residual_max.to_bits(),
    )
}

#[test]
fn traced_solves_are_bitwise_identical_to_untraced_on_every_backend() {
    let spec = WorkloadSpec::quickstart();
    for backend in [Backend::host(), Backend::gpu_ref(), Backend::dataflow()] {
        let untraced = Simulation::from_spec(&spec)
            .tolerance(1e-10)
            .backend(backend)
            .run()
            .unwrap();
        let tracer = Tracer::new();
        let traced = Simulation::from_spec(&spec)
            .tolerance(1e-10)
            .backend(backend)
            .tracer(tracer.clone())
            .run()
            .unwrap();
        assert_eq!(
            report_bits(&untraced),
            report_bits(&traced),
            "{} diverged under tracing",
            backend.name()
        );
        // The trace actually recorded the solve: a root span plus the CG loop.
        let tree = tracer.phase_tree();
        let root = tree
            .find(&format!("solve @ {}", backend.name()))
            .unwrap_or_else(|| panic!("no root span for {}", backend.name()));
        assert!(
            root.find("cg-loop").is_some(),
            "{}: no cg-loop span",
            backend.name()
        );
    }
}

#[test]
fn traced_monitored_sessions_match_untraced_ones_bitwise() {
    // Stop-policy sessions take the monitored path; tracing must not perturb
    // those either.
    let spec = WorkloadSpec::quickstart();
    let sim = Simulation::from_spec(&spec)
        .tolerance(1e-10)
        .stop_policy(StopPolicy::new().iteration_budget(10_000));
    let untraced = sim.clone().run().unwrap();
    let traced = sim.tracer(Tracer::new()).run().unwrap();
    assert_eq!(report_bits(&untraced), report_bits(&traced));
}

/// The fixed 12-job sweep the cross-worker shape test runs: 2 grids × 2
/// backends × 3 seeds.
fn sweep_jobs() -> Vec<JobSpec> {
    SweepBuilder::new(WorkloadSpec::quickstart())
        .grids([Dims::new(8, 8, 4), Dims::new(10, 10, 5)])
        .backends([Backend::host(), Backend::dataflow()])
        .seeds([1, 2, 3])
        .jobs()
}

#[test]
fn span_tree_shape_is_identical_across_worker_counts() {
    let mut shapes = Vec::new();
    for workers in [1usize, 2, 8] {
        let tracer = Tracer::new();
        let jobs = sweep_jobs();
        assert_eq!(jobs.len(), 12, "the sweep must stay a 12-job fixture");
        let report = Engine::new(workers).with_tracer(tracer.clone()).run(jobs);
        assert!(report.all_succeeded());
        shapes.push((workers, tracer.phase_tree().shape_string()));
    }
    let (_, reference) = &shapes[0];
    for (workers, shape) in &shapes {
        assert_eq!(
            shape, reference,
            "span-tree shape diverged at {workers} workers"
        );
    }
    // And the shape is the structure we promised: batch → per-job → children.
    assert!(reference.contains("engine-batch"), "{reference}");
    assert!(reference.contains("queue-wait"), "{reference}");
    assert!(reference.contains("execute"), "{reference}");
    assert!(reference.contains("cg-loop"), "{reference}");
    assert!(reference.contains("materialise-workload"), "{reference}");
}

#[test]
fn histogram_merge_is_associative_on_bucket_counts() {
    let samples: [&[f64]; 3] = [
        &[1e-6, 3e-4, 0.02, 0.02, 1.5],
        &[2e-5, 0.5, 64.0],
        &[1e-9, 0.125, 0.25, 7.0, 1e4],
    ];
    let hist = |xs: &[f64]| {
        let mut h = LogHistogram::new();
        for &x in xs {
            h.record(x);
        }
        h
    };
    let [a, b, c] = samples.map(hist);
    // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), bucket by bucket.
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);
    assert_eq!(left.bucket_counts(), right.bucket_counts());
    assert_eq!(left.count(), right.count());
    assert_eq!(left.min_seconds().to_bits(), right.min_seconds().to_bits());
    assert_eq!(left.max_seconds().to_bits(), right.max_seconds().to_bits());
}

#[test]
fn transient_runs_emit_one_step_span_per_executed_step() {
    let workload = WorkloadSpec {
        name: "telemetry-transient".into(),
        boundary: mffv::mesh::workload::BoundarySpec::None,
        dims: Dims::new(5, 4, 3),
        tolerance: 1e-14,
        ..WorkloadSpec::quickstart()
    }
    .build();
    let spec = TransientSpec::new(1.0, 0.25, 1e-3)
        .with_wells(WellSet::empty().with(Well::rate("inj", CellIndex::new(2, 2, 1), 1.0)))
        .with_initial_pressure(1.0);
    let tracer = Tracer::new();
    let report = Simulation::new(workload)
        .tracer(tracer.clone())
        .transient(&spec)
        .unwrap();
    assert_eq!(report.num_steps(), 4);
    let tree = tracer.phase_tree();
    let root = tree.find("transient @ host-f64").expect("transient root");
    let step = root.find("step").expect("step spans");
    assert_eq!(step.count, 4, "one step span per executed step");
    assert!(step.find("cg-loop").is_some(), "CG spans nest under steps");
}

#[test]
fn batch_reports_carry_the_latency_split_and_worker_stats() {
    let report = Engine::new(2).run(sweep_jobs());
    assert!(report.all_succeeded());
    for outcome in &report.outcomes {
        assert!(outcome.queue_wait_seconds >= 0.0);
        assert!(outcome.exec_seconds > 0.0, "{}", outcome.label);
        assert_eq!(outcome.latency_seconds(), outcome.exec_seconds);
    }
    assert_eq!(report.worker_stats.len(), 2);
    assert_eq!(report.exec_histogram.count() as usize, report.jobs());
    assert!(report.queue_high_water >= 1);
    let busy: f64 = report.busy_seconds();
    let per_worker = report.worker_stats.iter().map(|w| w.busy_seconds);
    assert!((mffv::mesh::seq_sum(per_worker) - busy).abs() <= 1e-9 * busy.max(1.0));
    let text = report.to_string();
    assert!(text.contains("Queue [s]"), "{text}");
    assert!(text.contains("Exec [s]"), "{text}");
    assert!(text.contains("worker 0:"), "{text}");
    assert!(text.contains("high-water"), "{text}");
}
