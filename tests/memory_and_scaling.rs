//! Integration tests of the memory-budget story (§III-E1) and the scaling shapes
//! the paper reports in Tables II–IV.

use mffv::prelude::*;
use mffv_core::mapping::PeColumnBuffers;
use mffv_core::{MemoryPlan, ReuseStrategy};
use mffv_fabric::memory::{PeMemory, PE_MEMORY_BYTES};
use mffv_fabric::{PeId, ProcessingElement};

const KERNEL_CODE_BYTES: usize = 2048;

#[test]
fn paper_column_depth_requires_buffer_reuse() {
    // The headline memory claim: Nz = 922 fits a 48 KiB PE only with the §III-E1
    // buffer reuse.
    let naive = MemoryPlan::new(922, ReuseStrategy::None);
    let reuse = MemoryPlan::new(922, ReuseStrategy::Aggressive);
    assert!(!naive.fits(PE_MEMORY_BYTES, KERNEL_CODE_BYTES));
    assert!(reuse.fits(PE_MEMORY_BYTES, KERNEL_CODE_BYTES));
    assert!(
        MemoryPlan::max_nz(
            ReuseStrategy::Aggressive,
            PE_MEMORY_BYTES,
            KERNEL_CODE_BYTES
        ) >= 922
    );
}

#[test]
fn executed_allocation_is_rejected_when_the_column_does_not_fit() {
    // The executed (straightforward) buffer set allocates 17 full columns plus the
    // Dirichlet values; on a deliberately tiny PE memory the allocation must fail
    // with an out-of-memory error instead of silently overflowing.
    let workload = WorkloadSpec::paper_grid(4, 4, 64).build();
    let small_memory = PeMemory::with_capacity(PeId::new(1, 1), 2 * 1024, 256);
    let mut pe = ProcessingElement::with_memory(PeId::new(1, 1), small_memory);
    let result = PeColumnBuffers::allocate(&mut pe, &workload, 1, 1);
    assert!(
        result.is_err(),
        "allocation must fail on a 2 KiB PE for a 64-deep column"
    );
}

#[test]
fn executed_allocation_succeeds_within_the_real_budget() {
    // A 300-deep column fits the straightforward executed allocation in 48 KiB.
    let workload = WorkloadSpec::paper_grid(3, 3, 300).build();
    let mut pe = ProcessingElement::new(PeId::new(1, 1));
    let bufs = PeColumnBuffers::allocate(&mut pe, &workload, 1, 1).unwrap();
    assert!(pe.memory().used() <= pe.memory().capacity());
    assert_eq!(pe.memory().len(bufs.solution).unwrap(), 300);
    assert!(!pe.memory().live_allocations().is_empty());
}

#[test]
fn modelled_speedup_shape_matches_the_paper() {
    // Table II shape: the CS-2 beats the A100 by two orders of magnitude and the
    // H100 sits between them.
    let model = AnalyticTiming::paper();
    let dims = Dims::new(750, 994, 922);
    let a100 = model.speedup_over_gpu(GpuSpec::a100(), dims, 225);
    let h100 = model.speedup_over_gpu(GpuSpec::h100(), dims, 225);
    assert!(
        a100 > 100.0,
        "A100 speedup {a100} must be two orders of magnitude"
    );
    assert!(
        h100 > 50.0 && h100 < a100,
        "H100 speedup {h100} must sit below the A100's {a100}"
    );
}

#[test]
fn weak_scaling_shapes_match_table3() {
    let model = AnalyticTiming::paper();
    let grids: Vec<Dims> = WorkloadSpec::table3_grids()
        .into_iter()
        .map(|(x, y, z)| Dims::new(x, y, z))
        .collect();
    let rows: Vec<_> = grids.iter().map(|&d| model.scaling_row(d, 225)).collect();
    // Algorithm-2 time is flat; Algorithm-1 time is non-decreasing along the sweep;
    // A100 time grows with the cell count.
    for pair in rows.windows(2) {
        assert!(
            (pair[1].cs2_alg2_time - pair[0].cs2_alg2_time).abs() / pair[0].cs2_alg2_time < 0.02
        );
        assert!(pair[1].cs2_alg1_time >= pair[0].cs2_alg1_time * 0.999);
        assert!(pair[1].a100_alg1_time > pair[0].a100_alg1_time);
        assert!(pair[1].cs2_alg1_throughput > pair[0].cs2_alg1_throughput * 0.999);
    }
    // Largest grid Gcell/s throughput is in the thousands, as in Table III.
    let last = rows.last().unwrap();
    assert!(last.cs2_alg2_throughput / 1e9 > 1_000.0);
}

#[test]
fn data_movement_fraction_is_small_at_paper_scale() {
    // Table IV shape: the data-movement share of device time is a small fraction.
    let model = AnalyticTiming::paper();
    let (dm, comp, total) = model.cs2_time_split(Dims::new(750, 994, 922), 225);
    assert!(
        dm / total < 0.35,
        "data movement share {} too large",
        dm / total
    );
    assert!(comp / total > 0.65);
}

#[test]
fn executed_critical_path_grows_with_fabric_perimeter() {
    // The executed counterpart of the Table-III Alg-1 trend: with a fixed iteration
    // count, the accumulated critical-path hops grow as the fabric grows.
    let mut previous = 0.0f64;
    for side in [4usize, 8, 12] {
        let workload = WorkloadSpec::paper_grid(side, side, 6).build();
        let report = Simulation::new(workload)
            .tolerance(1e-30)
            .max_iterations(5)
            .backend(Backend::dataflow())
            .run()
            .unwrap();
        let hops = report
            .device
            .as_ref()
            .unwrap()
            .counter("critical_path_hops")
            .unwrap();
        assert!(
            hops > previous,
            "critical path must grow with the fabric ({side}x{side})"
        );
        previous = hops;
    }
}
