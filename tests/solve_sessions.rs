//! Observable, cancellable solve sessions through the public `mffv` API.
//!
//! The contract under test, on all three paper backends:
//!
//! * a monitored solve emits an `Iteration` event stream whose `rr` values
//!   **bitwise-match** the report's `ConvergenceHistory` — and monitoring
//!   does not perturb the solve (bitwise-identical pressure);
//! * a `Flow::Stop` (monitor, deadline, stagnation, cancellation) ends the
//!   solve at an iteration boundary with the **partial** history reported;
//! * non-convergence paths (iteration cap, stagnation, deadline) are
//!   reported faithfully, never as panics.

use mffv::prelude::*;
use std::time::Duration;

fn workload() -> Workload {
    WorkloadSpec::quickstart().build()
}

fn standard_backends() -> Vec<Backend> {
    vec![Backend::host(), Backend::gpu_ref(), Backend::dataflow()]
}

fn pressure_bits(report: &mffv::SolveReport) -> Vec<u64> {
    report
        .pressure
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

#[test]
fn iteration_events_bitwise_match_the_convergence_history_on_every_backend() {
    for backend in standard_backends() {
        let sim = Simulation::new(workload())
            .tolerance(1e-10)
            .backend(backend);
        let mut recorder = RecordingMonitor::new();
        let report = sim.monitor(&mut recorder).unwrap();
        assert!(report.converged(), "{}", report.backend);
        assert!(report.stopped.is_none());

        // Started carries the history's first entry, bitwise.
        assert_eq!(
            recorder.initial_rr().unwrap().to_bits(),
            report.history.initial_rr().to_bits(),
            "{}: Started.initial_rr",
            report.backend
        );
        // One Iteration event per recorded iteration, values bitwise equal.
        let event_bits: Vec<u64> = recorder
            .iteration_rrs()
            .iter()
            .map(|rr| rr.to_bits())
            .collect();
        let history_bits: Vec<u64> = report.history.residual_norms_squared[1..]
            .iter()
            .map(|rr| rr.to_bits())
            .collect();
        assert_eq!(
            event_bits, history_bits,
            "{}: event stream must bitwise-match the history",
            report.backend
        );
        // The stream terminates in Converged with the final state.
        match recorder.terminal() {
            Some(SolveEvent::Converged { iterations, rr }) => {
                assert_eq!(*iterations, report.iterations(), "{}", report.backend);
                assert_eq!(
                    rr.to_bits(),
                    report.history.final_rr().to_bits(),
                    "{}",
                    report.backend
                );
            }
            other => panic!("{}: expected Converged, got {other:?}", report.backend),
        }
    }
}

#[test]
fn monitoring_does_not_perturb_the_solve() {
    for backend in standard_backends() {
        let sim = Simulation::new(workload())
            .tolerance(1e-10)
            .backend(backend);
        let unmonitored = sim.run().unwrap();
        let monitored = sim.monitor(&mut RecordingMonitor::new()).unwrap();
        assert_eq!(
            pressure_bits(&unmonitored),
            pressure_bits(&monitored),
            "{}: monitored and unmonitored solves must be bitwise identical",
            unmonitored.backend
        );
        assert_eq!(unmonitored.history, monitored.history);
    }
}

#[test]
fn a_monitor_stop_ends_the_solve_at_the_iteration_boundary() {
    for backend in standard_backends() {
        let sim = Simulation::new(workload())
            .tolerance(1e-12)
            .backend(backend);
        let full = sim.run().unwrap();
        assert!(
            full.iterations() > 5,
            "{}: need a multi-iteration solve",
            full.backend
        );

        let mut stopper = monitor_fn(|event: &SolveEvent| match event {
            SolveEvent::Iteration { k: 3, .. } => Flow::Stop(StopReason::MonitorRequest),
            _ => Flow::Continue,
        });
        let partial = sim.monitor(&mut stopper).unwrap();
        assert_eq!(
            partial.stopped,
            Some(StopReason::MonitorRequest),
            "{}",
            partial.backend
        );
        assert!(!partial.converged());
        // The partial history holds exactly the iterations that ran, bitwise
        // equal to the prefix of the full solve's history.
        assert_eq!(partial.iterations(), 3, "{}", partial.backend);
        assert_eq!(
            partial.history.residual_norms_squared,
            full.history.residual_norms_squared[..4].to_vec(),
            "{}",
            partial.backend
        );
        // Strict callers can turn the early stop into a typed error.
        let err = partial.require_completed().unwrap_err();
        assert!(err.is_stopped());
        assert_eq!(err.stop_reason(), Some(StopReason::MonitorRequest));
    }
}

#[test]
fn an_expired_deadline_stops_each_backend_with_partial_history() {
    for backend in standard_backends() {
        let report = Simulation::new(workload())
            .tolerance(1e-12)
            .backend(backend)
            .deadline(Duration::ZERO)
            .run()
            .unwrap();
        assert_eq!(
            report.stopped,
            Some(StopReason::DeadlineExpired),
            "{}",
            report.backend
        );
        assert!(!report.converged());
        // The partial history is still reported: the initial residual was
        // recorded before the deadline check fired.
        assert_eq!(report.iterations(), 0, "{}", report.backend);
        assert_eq!(report.history.residual_norms_squared.len(), 1);
        assert!(report.history.initial_rr() > 0.0, "{}", report.backend);
    }
}

#[test]
fn stagnation_detection_fires_on_every_backend() {
    // Demanding a 99.99% residual drop per iteration over a 2-iteration
    // window is unsatisfiable for this problem, so the policy must trip.
    for backend in standard_backends() {
        let report = Simulation::new(workload())
            .tolerance(1e-12)
            .backend(backend)
            .stop_policy(StopPolicy::new().stagnation(2, 0.9999))
            .run()
            .unwrap();
        assert_eq!(
            report.stopped,
            Some(StopReason::Stagnated),
            "{}",
            report.backend
        );
        assert!(!report.converged());
        assert!(report.iterations() >= 2, "{}", report.backend);
        assert_eq!(
            report.history.residual_norms_squared.len(),
            report.iterations() + 1
        );
    }
}

#[test]
fn hitting_the_iteration_cap_is_completion_not_a_stop() {
    for backend in standard_backends() {
        let report = Simulation::new(workload())
            .tolerance(1e-30)
            .max_iterations(3)
            .backend(backend)
            .run()
            .unwrap();
        assert!(!report.converged(), "{}", report.backend);
        assert_eq!(report.iterations(), 3, "{}", report.backend);
        // Exhausting the solver's own k_max is a completed (if unconverged)
        // solve: `stopped` stays empty and no error is raised.
        assert_eq!(report.stopped, None, "{}", report.backend);
        assert!(report.clone().require_completed().is_ok());
    }
}

#[test]
fn a_cancel_token_stops_an_in_flight_simulation() {
    // Trip the token from inside the event stream, as another thread would:
    // the solve must end at the very next iteration boundary.
    let token = CancelToken::new();
    let trip = token.clone();
    let mut tripper = monitor_fn(move |event: &SolveEvent| {
        if matches!(event, SolveEvent::Iteration { k: 2, .. }) {
            trip.cancel();
        }
        Flow::Continue
    });
    let report = Simulation::new(workload())
        .tolerance(1e-12)
        .backend(Backend::dataflow())
        .cancel_token(token.clone())
        .monitor(&mut tripper)
        .unwrap();
    assert_eq!(report.stopped, Some(StopReason::Cancelled));
    assert_eq!(report.iterations(), 3, "one boundary after the trip");
    assert!(token.is_cancelled());
}

#[test]
fn policy_iteration_budget_is_an_explicit_stop() {
    let report = Simulation::new(workload())
        .tolerance(1e-12)
        .stop_policy(StopPolicy::new().iteration_budget(4))
        .run()
        .unwrap();
    assert_eq!(report.stopped, Some(StopReason::IterationBudget));
    assert_eq!(report.iterations(), 4);
}

#[test]
fn solve_errors_box_into_std_error() -> Result<(), Box<dyn std::error::Error>> {
    // `?` must work against Box<dyn Error> for both error variants.
    let report = Simulation::new(workload()).tolerance(1e-8).run()?;
    assert!(report.converged());

    let stopped: mffv::solver::SolveError =
        mffv::solver::SolveError::stopped("host-f64", StopReason::Cancelled);
    let rendered = stopped.to_string();
    assert!(
        rendered.contains("host-f64") && rendered.contains("cancelled"),
        "{rendered}"
    );
    let failed = mffv::solver::SolveError::new("dataflow", "out of local memory");
    assert!(failed.to_string().contains("failed"), "{}", failed);
    assert!(!failed.is_stopped());
    Ok(())
}
