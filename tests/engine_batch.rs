//! Engine-level integration through the public `mffv` API: batch results must
//! be **bitwise identical** across worker counts and against serial
//! `Simulation::run` executions of the same specs (determinism under
//! concurrency), and a panicking job must be reported as failed without
//! poisoning the pool.

use mffv::prelude::*;

/// A 12-job sweep (3 grids × 2 permeability seeds × 2 backends) over a
/// stochastic log-normal workload, so the seed axis genuinely changes the
/// problem each job solves.
fn sweep_jobs() -> Vec<JobSpec> {
    let base = WorkloadSpec {
        name: "engine-itest".to_string(),
        permeability: PermeabilityModel::LogNormal {
            mean_log: 0.0,
            std_log: 0.4,
            seed: 0,
        },
        tolerance: 1e-8,
        ..WorkloadSpec::quickstart()
    };
    SweepBuilder::new(base)
        .grids([
            Dims::new(8, 8, 6),
            Dims::new(10, 8, 8),
            Dims::new(12, 10, 8),
        ])
        .seeds([1, 2])
        .backends([Backend::host(), Backend::dataflow()])
        .jobs()
}

fn pressure_bits(report: &mffv::SolveReport) -> Vec<u64> {
    report
        .pressure
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

#[test]
fn batch_results_are_bitwise_identical_across_worker_counts_and_to_serial_runs() {
    let jobs = sweep_jobs();
    assert_eq!(jobs.len(), 12);

    // Serial reference: each job's effective spec solved through the facade.
    let serial: Vec<mffv::SolveReport> = jobs
        .iter()
        .map(|job| {
            Simulation::from_spec(&job.effective_spec())
                .backend(job.backend)
                .run()
                .expect("serial solve failed")
        })
        .collect();

    for workers in [1usize, 2, 8] {
        let batch = Engine::new(workers).run(jobs.clone());
        assert_eq!(batch.jobs(), 12, "{workers} workers");
        assert!(batch.all_succeeded(), "{workers} workers");
        assert_eq!(batch.workers, workers);
        for (i, (outcome, reference)) in batch.outcomes.iter().zip(serial.iter()).enumerate() {
            assert_eq!(outcome.index, i, "{workers} workers: order must be stable");
            let report = outcome.report().unwrap();
            assert_eq!(
                report.backend, reference.backend,
                "{workers} workers, job {i}"
            );
            assert_eq!(
                report.iterations(),
                reference.iterations(),
                "{workers} workers, job {i}"
            );
            assert_eq!(
                pressure_bits(report),
                pressure_bits(reference),
                "{workers} workers, job {i}: pressure must be bitwise identical"
            );
        }
    }
}

#[test]
fn context_pooling_is_bitwise_invisible_across_worker_counts() {
    // The pooled serving path (keyed operator cache + reusable scratch) must
    // be a pure performance change: with pooling disabled the engine takes
    // the historical allocate-per-job path, and every report — residual
    // history and pressure field — must match the pooled run bit for bit,
    // on any worker count.
    let jobs = sweep_jobs();
    for workers in [1usize, 2, 8] {
        let pooled = Engine::new(workers).run(jobs.clone());
        let unpooled = Engine::new(workers)
            .with_context_pooling(false)
            .run(jobs.clone());
        assert!(pooled.all_succeeded(), "{workers} workers pooled");
        assert!(unpooled.all_succeeded(), "{workers} workers unpooled");
        for (i, (a, b)) in pooled
            .outcomes
            .iter()
            .zip(unpooled.outcomes.iter())
            .enumerate()
        {
            let ra = a.report().unwrap();
            let rb = b.report().unwrap();
            let history_bits = |r: &mffv::SolveReport| -> Vec<u64> {
                r.history
                    .residual_norms_squared
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            };
            assert_eq!(
                history_bits(ra),
                history_bits(rb),
                "{workers} workers, job {i}: residual history must be bitwise identical"
            );
            assert_eq!(
                pressure_bits(ra),
                pressure_bits(rb),
                "{workers} workers, job {i}: pressure must be bitwise identical"
            );
        }
    }
}

#[test]
fn panicking_and_invalid_jobs_are_reported_without_poisoning_the_pool() {
    let good = JobSpec::new(WorkloadSpec::quickstart().scaled(2), Backend::host());
    // An empty layer list passes intake validation but panics inside
    // permeability generation on the worker thread.
    let panicking = JobSpec::new(
        WorkloadSpec {
            permeability: PermeabilityModel::Layered {
                layer_values: Vec::new(),
            },
            ..WorkloadSpec::quickstart().scaled(2)
        },
        Backend::host(),
    );
    // A zero iteration cap is rejected at job intake with a typed error.
    let invalid = JobSpec::new(
        WorkloadSpec {
            max_iterations: 0,
            ..WorkloadSpec::quickstart().scaled(2)
        },
        Backend::host(),
    );
    let jobs = vec![good.clone(), panicking, good.clone(), invalid, good];

    let batch = Engine::new(2).run(jobs);
    assert_eq!(batch.jobs(), 5);
    assert_eq!(batch.succeeded(), 3);
    assert_eq!(batch.failed(), 2);

    assert!(matches!(batch.outcomes[1].status, JobStatus::Panicked(_)));
    let panic_msg = batch.outcomes[1].failure().unwrap();
    assert!(panic_msg.contains("layer"), "{panic_msg}");

    assert!(matches!(batch.outcomes[3].status, JobStatus::Failed(_)));
    let intake_msg = batch.outcomes[3].failure().unwrap();
    assert!(intake_msg.contains("max_iterations"), "{intake_msg}");

    // The jobs around the failures completed normally on the same pool.
    for i in [0usize, 2, 4] {
        assert!(batch.outcomes[i].is_success(), "job {i} must survive");
        assert!(batch.outcomes[i].report().unwrap().converged());
    }

    // The rendered report carries per-job status plus the aggregate line.
    let text = batch.to_string();
    for needle in ["ok", "panicked", "failed", "jobs/s", "p50", "p95"] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }

    // And the engine remains fully usable afterwards.
    let again = Engine::new(2).run(sweep_jobs());
    assert!(again.all_succeeded());
}

#[test]
fn a_tripped_cancel_token_drains_queued_jobs_as_stopped_not_failed() {
    // Regression: a cancelled batch must drain-and-stop cleanly — queued
    // jobs report `Stopped(Cancelled)` instead of blocking the pool, and
    // `BatchReport` separates them from genuine failures.
    let token = CancelToken::new();
    token.cancel();
    let jobs = sweep_jobs();
    let total = jobs.len();
    let batch = Engine::new(2).with_cancel_token(token).run(jobs);

    assert_eq!(batch.jobs(), total, "every job gets an outcome slot");
    assert_eq!(batch.stopped(), total, "all jobs were cancelled, none ran");
    assert_eq!(batch.failed(), 0, "cancellation is not failure");
    assert_eq!(batch.succeeded(), 0);
    assert!(!batch.all_succeeded());
    for (i, outcome) in batch.outcomes.iter().enumerate() {
        assert_eq!(outcome.index, i, "submission order survives cancellation");
        assert_eq!(outcome.stop_reason(), Some(StopReason::Cancelled));
        assert!(outcome.partial_report().is_none(), "job {i} never started");
        assert!(outcome.failure().is_none(), "stopped jobs are not failures");
    }
    let text = batch.to_string();
    assert!(text.contains("stopped: cancelled"), "{text}");
    assert!(text.contains("0 ok"), "{text}");
}

#[test]
fn mid_batch_cancellation_stops_remaining_jobs_and_keeps_finished_ones_exact() {
    // Cancel a saturated pool mid-flight: the batch must drain (no hang),
    // every outcome must be either a bitwise-exact completed report or a
    // clean `Stopped(Cancelled)`, and nothing may fail or panic.
    let jobs: Vec<JobSpec> = (0..24)
        .map(|i| {
            JobSpec::new(
                WorkloadSpec {
                    name: format!("cancel-itest-{i}"),
                    tolerance: 1e-10,
                    ..WorkloadSpec::quickstart().scaled(2)
                },
                Backend::host(),
            )
        })
        .collect();
    let serial: Vec<mffv::SolveReport> = jobs
        .iter()
        .map(|job| job.execute().expect("serial solve failed"))
        .collect();

    let token = CancelToken::new();
    let batch = std::thread::scope(|scope| {
        let handle = {
            let jobs = jobs.clone();
            let token = token.clone();
            scope.spawn(move || Engine::new(2).with_cancel_token(token).run(jobs))
        };
        std::thread::sleep(std::time::Duration::from_millis(5));
        token.cancel();
        handle.join().expect("the engine must not panic")
    });

    assert_eq!(batch.jobs(), 24);
    assert_eq!(batch.failed(), 0, "cancellation must not produce failures");
    assert_eq!(batch.succeeded() + batch.stopped(), 24);
    for (i, outcome) in batch.outcomes.iter().enumerate() {
        match outcome.report() {
            Some(report) => {
                // Jobs that finished before the trip are untouched by the
                // cancellation machinery: bitwise identical to serial runs.
                let bits = |r: &mffv::SolveReport| -> Vec<u64> {
                    r.pressure.as_slice().iter().map(|v| v.to_bits()).collect()
                };
                assert_eq!(bits(report), bits(&serial[i]), "job {i}");
            }
            None => {
                assert_eq!(
                    outcome.stop_reason(),
                    Some(StopReason::Cancelled),
                    "job {i}: non-completed outcomes must be clean cancellations"
                );
            }
        }
    }
}

#[test]
fn per_job_stop_policies_ride_through_the_engine() {
    // One job with an iteration budget, one without: the budgeted job stops
    // with a partial report, the other completes — in one batch.
    let spec = WorkloadSpec {
        tolerance: 1e-12,
        ..WorkloadSpec::quickstart()
    };
    let jobs = vec![
        JobSpec::new(spec.clone(), Backend::host())
            .with_stop_policy(StopPolicy::new().iteration_budget(3)),
        JobSpec::new(spec, Backend::host()),
    ];
    let batch = Engine::new(2).run(jobs);
    assert_eq!(batch.stopped(), 1);
    assert_eq!(batch.succeeded(), 1);

    let stopped = &batch.outcomes[0];
    assert_eq!(stopped.stop_reason(), Some(StopReason::IterationBudget));
    let partial = stopped.partial_report().expect("partial state reported");
    assert_eq!(partial.iterations(), 3);
    assert!(!partial.converged());

    let full = batch.outcomes[1].report().unwrap();
    assert!(full.converged());
    // The stopped job's history is a bitwise prefix of the full solve.
    assert_eq!(
        partial.history.residual_norms_squared,
        full.history.residual_norms_squared[..4].to_vec()
    );
}

#[test]
fn duplicate_backend_name_suffixes_are_deterministic_in_submission_order() {
    // Regression for the NameDisambiguator: suffix assignment is keyed on a
    // BTreeMap, so `#2`/`#3` ordinals must depend only on submission order —
    // identical across worker counts and repeated runs, never on hash-map
    // iteration order.
    let spec = WorkloadSpec {
        name: "dedup-itest".to_string(),
        tolerance: 1e-8,
        ..WorkloadSpec::quickstart()
    };
    let sim = Simulation::from_spec(&spec)
        .backend(Backend::dataflow())
        .backend(Backend::host())
        .backend(Backend::dataflow())
        .backend(Backend::dataflow());

    let expected_dataflow = ["dataflow", "dataflow#2", "dataflow#3"];
    for workers in [1usize, 2, 8] {
        let batch = sim.batch(workers);
        assert!(batch.all_succeeded(), "{workers} workers");
        let names: Vec<&str> = batch
            .outcomes
            .iter()
            .map(|o| o.report().unwrap().backend.as_str())
            .collect();
        assert_eq!(names.len(), 4, "{workers} workers");
        // Dataflow duplicates gain ordinals in submission order; the host job
        // keeps its undecorated name.
        assert_eq!(
            [names[0], names[2], names[3]],
            expected_dataflow,
            "{workers} workers"
        );
        assert!(!names[1].contains('#'), "{workers} workers: {}", names[1]);
        // Relabelled outcomes keep their labels in sync with the report name.
        assert!(
            batch.outcomes[3].label.ends_with("dataflow#3"),
            "{workers} workers: {}",
            batch.outcomes[3].label
        );
    }

    // The serial path must agree with the engine path name-for-name.
    let serial: Vec<String> = sim
        .run_all()
        .into_iter()
        .map(|(_, outcome)| outcome.expect("serial solve failed").backend)
        .collect();
    assert_eq!(
        serial,
        vec!["dataflow", "host-f64", "dataflow#2", "dataflow#3"]
            .into_iter()
            .map(str::to_string)
            .collect::<Vec<_>>()
    );
}
