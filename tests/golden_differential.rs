//! Golden/differential transient tests: host vs gpu-ref vs dataflow
//! trajectories compared against each other and against pinned fixtures.
//!
//! The long per-step solve chains of transient simulation are where silent
//! numerical drift hides; these tests pin the full 50-step trajectories as
//! bitwise checksums under `tests/golden/` (regenerate with
//! `MFFV_BLESS=1 cargo test`, see `tests/common/mod.rs`) and assert the
//! cross-backend agreement tolerances stated inline.

use mffv::prelude::*;
use mffv_mesh::workload::BoundarySpec;
use mffv_mesh::CellIndex;

mod common;

/// The shared 50-step well-driven scenario: producer boundary pressure on
/// the X faces, a scheduled rate injector and a BHP producer.
fn scenario() -> (Workload, TransientSpec) {
    let dims = Dims::new(10, 8, 6);
    let workload = WorkloadSpec {
        name: "golden-transient".into(),
        boundary: BoundarySpec::XFaces {
            left_pressure: 10.0,
            right_pressure: 8.0,
        },
        dims,
        tolerance: 1e-9,
        ..WorkloadSpec::quickstart()
    }
    .build();
    let spec = TransientSpec::new(10.0, 0.2, 1e-3)
        .with_wells(
            WellSet::empty()
                .with(Well::rate("inj", CellIndex::new(4, 4, 3), 1.5).scheduled(0.0, 6.0))
                .with(Well::bhp("prod", CellIndex::new(7, 2, 1), 6.0, 0.8)),
        )
        .with_initial_pressure(9.0)
        .with_snapshots([2.0, 10.0]);
    (workload, spec)
}

fn run(backend: Backend) -> TransientReport {
    let (workload, spec) = scenario();
    Simulation::new(workload)
        .backend(backend)
        .transient(&spec)
        .unwrap()
}

fn golden_record(name: &str, report: &TransientReport) -> common::Golden {
    common::Golden::new(name)
        .str("backend", &report.backend)
        .int("steps", report.num_steps())
        .int("total_iterations", report.total_iterations())
        .str(
            "trajectory_checksum",
            common::fields_checksum(report.steps.iter().map(|s| &s.report.pressure)),
        )
        .str(
            "final_pressure_checksum",
            common::field_checksum(report.final_pressure()),
        )
        .num("injected_m3", report.total_injected())
        .num("produced_m3", report.total_produced())
}

#[test]
fn host_transient_trajectory_matches_the_pinned_fixture() {
    let report = run(Backend::host());
    assert_eq!(report.num_steps(), 50);
    assert!(report.all_converged());
    golden_record("transient_host_f64", &report).check();
}

#[test]
fn device_transient_trajectory_matches_the_pinned_fixture() {
    // gpu-ref steps at the device precision (f32); its trajectory is pinned
    // separately from the f64 oracle.
    let report = run(Backend::gpu_ref());
    assert_eq!(report.num_steps(), 50);
    assert!(report.all_converged());
    golden_record("transient_gpu_ref", &report).check();
}

#[test]
fn cross_backend_transient_trajectories_agree_within_tolerance() {
    let (workload, spec) = scenario();
    let outcomes = Simulation::new(workload).transient_all(&spec);
    assert_eq!(outcomes.len(), 3);
    let reports: Vec<&TransientReport> = outcomes
        .iter()
        .map(|(b, o)| o.as_ref().unwrap_or_else(|e| panic!("{}: {e}", b.name())))
        .collect();
    let host = reports[0];
    assert_eq!(host.backend, "host-f64");

    // Stated tolerance: pressures are O(10) Pa in this scenario and the
    // device backends integrate 50 steps in f32, so trajectories may drift
    // by single-precision accumulation — 5e-3 absolute per cell, per step.
    const TOLERANCE: f64 = 5e-3;
    for report in &reports[1..] {
        assert_eq!(report.num_steps(), host.num_steps(), "{}", report.backend);
        for (h, d) in host.steps.iter().zip(report.steps.iter()) {
            let diff = h.report.pressure.max_abs_diff(&d.report.pressure);
            assert!(
                diff < TOLERANCE,
                "{} step {}: |Δp|∞ = {diff}",
                report.backend,
                h.index
            );
        }
        // Cumulative well ledgers agree to the same order.
        assert!((report.total_injected() - host.total_injected()).abs() < 1e-2);
        assert!((report.total_produced() - host.total_produced()).abs() < 1e-2);
    }

    // Both device-style backends inherit the default f32 step and must agree
    // with each other *bitwise* — any divergence means one of them grew a
    // different stepping path without its own golden coverage.
    let gpu = reports
        .iter()
        .find(|r| r.backend.starts_with("gpu-ref"))
        .unwrap();
    let dataflow = reports.iter().find(|r| r.backend == "dataflow").unwrap();
    assert_eq!(
        common::fields_checksum(gpu.steps.iter().map(|s| &s.report.pressure)),
        common::fields_checksum(dataflow.steps.iter().map(|s| &s.report.pressure)),
        "gpu-ref and dataflow default f32 steps must stay bitwise identical"
    );
}

#[test]
fn snapshots_capture_the_requested_times_identically_across_backends() {
    let host = run(Backend::host());
    let gpu = run(Backend::gpu_ref());
    assert_eq!(host.snapshots.len(), 2);
    assert_eq!(gpu.snapshots.len(), 2);
    for (h, g) in host.snapshots.iter().zip(gpu.snapshots.iter()) {
        assert_eq!(h.time, g.time);
        assert!(h.pressure.max_abs_diff(&g.pressure) < 5e-3);
    }
}
