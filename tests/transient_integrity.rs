//! Integrity checks of the transient subsystem: analytic single-cell decay,
//! per-step global mass balance, bitwise thread-count determinism of full
//! pressure trajectories, and the warm-start iteration savings.

use mffv::prelude::*;
use mffv_mesh::workload::BoundarySpec;
use mffv_mesh::CellIndex;

mod common;

/// A sealed reservoir (no Dirichlet cells): every exchanged volume must come
/// from a well, which is what makes global mass balance exactly checkable.
fn sealed_workload(dims: Dims, tolerance: f64) -> Workload {
    WorkloadSpec {
        name: format!("sealed-{dims}"),
        boundary: BoundarySpec::None,
        dims,
        tolerance,
        ..WorkloadSpec::quickstart()
    }
    .build()
}

#[test]
fn single_cell_bhp_decay_follows_the_exact_discrete_rate() {
    // One cell, one BHP well: backward Euler reduces to the scalar
    // recurrence p^{n+1} = (D pⁿ + WI·p_bhp) / (D + WI) with D = V·c_t/Δt —
    // the pressure must relax towards the BHP at exactly that rate.
    let workload = sealed_workload(Dims::new(1, 1, 1), 1e-28);
    let (p0, p_bhp, wi, ct, dt) = (2.0, 10.0, 0.5, 4.0, 0.25);
    let spec = TransientSpec::new(8.0 * dt, dt, ct)
        .with_wells(WellSet::empty().with(Well::bhp("w", CellIndex::new(0, 0, 0), p_bhp, wi)))
        .with_initial_pressure(p0);
    let report = Simulation::new(workload.clone())
        .tolerance(1e-28)
        .transient(&spec)
        .unwrap();
    assert_eq!(report.num_steps(), 8);
    assert!(report.all_converged());

    let d = workload.mesh().cell_volume() * ct / dt;
    let factor = d / (d + wi);
    let mut expected = p0;
    for step in &report.steps {
        // p^{n+1} − p_bhp = factor · (pⁿ − p_bhp), exactly.
        expected = p_bhp + factor * (expected - p_bhp);
        let got = step.report.pressure.get(0);
        assert!(
            (got - expected).abs() < 1e-12,
            "step {}: {} vs analytic {}",
            step.index,
            got,
            expected
        );
    }
    // The trajectory is a monotone relaxation towards the BHP.
    let mut last = p0;
    for step in &report.steps {
        let p = step.report.pressure.get(0);
        assert!(p > last && p < p_bhp, "monotone relaxation violated");
        last = p;
    }
}

#[test]
fn global_mass_balance_holds_at_every_step() {
    // Injector + weaker producer in a sealed reservoir: per step,
    // injected − produced must equal the stored (accumulated) volume within
    // the CG tolerance, and the boundary exchanges nothing.
    let dims = Dims::new(8, 6, 4);
    let workload = sealed_workload(dims, 1e-22);
    let spec = TransientSpec::new(5.0, 0.5, 1e-3)
        .with_wells(
            WellSet::empty()
                .with(Well::rate("inj", CellIndex::new(0, 0, 0), 3.0))
                .with(Well::rate(
                    "prod",
                    CellIndex::new(dims.nx - 1, dims.ny - 1, dims.nz - 1),
                    -1.5,
                )),
        )
        .with_initial_pressure(20.0);
    let report = Simulation::new(workload)
        .tolerance(1e-22)
        .transient(&spec)
        .unwrap();
    assert_eq!(report.num_steps(), 10);
    assert!(report.all_converged());
    for step in &report.steps {
        assert!(
            step.boundary_inflow.abs() < 1e-9,
            "sealed boundary leaked {} m³/s",
            step.boundary_inflow
        );
        assert!(
            step.mass_balance_error().abs() < 1e-8,
            "step {}: mass-balance defect {} m³/s",
            step.index,
            step.mass_balance_error()
        );
        // The transient-equation residual the report pins is the same defect
        // cell-by-cell; it must be solver-tolerance small too.
        assert!(step.report.final_residual_max < 1e-8);
    }
    // Cumulative totals integrate the rates exactly.
    assert!((report.total_injected() - 3.0 * 5.0).abs() < 1e-9);
    assert!((report.total_produced() - 1.5 * 5.0).abs() < 1e-9);
    assert!(
        (report.wells[0].net_volume + report.wells[1].net_volume
            - (report.total_injected() - report.total_produced()))
        .abs()
            < 1e-12
    );
    // A sealed reservoir with net injection must end above its initial
    // pressure everywhere.
    let p_final = report.final_pressure();
    assert!(p_final.as_slice().iter().all(|&p| p > 20.0));
}

#[test]
fn mass_balance_also_closes_against_a_dirichlet_boundary() {
    // With a fixed-pressure boundary the ledger gains a boundary-inflow
    // column; accumulation must still equal wells + boundary per step.
    let dims = Dims::new(9, 5, 4);
    let workload = WorkloadSpec {
        name: "bounded".into(),
        boundary: BoundarySpec::XFaces {
            left_pressure: 10.0,
            right_pressure: 10.0,
        },
        dims,
        tolerance: 1e-22,
        ..WorkloadSpec::quickstart()
    }
    .build();
    let spec = TransientSpec::new(2.0, 0.25, 1e-2)
        .with_wells(WellSet::empty().with(Well::rate("inj", CellIndex::new(4, 2, 2), 2.0)))
        .with_initial_pressure(10.0);
    let report = Simulation::new(workload)
        .tolerance(1e-22)
        .transient(&spec)
        .unwrap();
    assert!(report.all_converged());
    let mut boundary_total = 0.0;
    for step in &report.steps {
        assert!(
            step.mass_balance_error().abs() < 1e-8,
            "step {}: defect {}",
            step.index,
            step.mass_balance_error()
        );
        boundary_total += step.boundary_inflow * step.dt;
    }
    // Injection drives pressure up, so the boundary must carry volume *out*.
    assert!(
        boundary_total < 0.0,
        "boundary outflow expected, got {boundary_total}"
    );
}

#[test]
fn full_trajectories_are_bitwise_identical_across_1_2_8_threads() {
    // ≥50 chained solves on the host backend: thread count must not change a
    // single bit anywhere in the trajectory, in any snapshot, or in any
    // history entry.
    let dims = Dims::new(12, 10, 6);
    let workload = sealed_workload(dims, 1e-18);
    let spec = TransientSpec::new(12.5, 0.25, 1e-3)
        .with_wells(
            WellSet::empty()
                .with(Well::rate("inj", CellIndex::new(1, 1, 1), 1.0).scheduled(0.0, 8.0))
                .with(Well::bhp(
                    "prod",
                    CellIndex::new(dims.nx - 2, dims.ny - 2, dims.nz - 2),
                    5.0,
                    0.5,
                )),
        )
        .with_initial_pressure(10.0)
        .with_snapshots([2.5, 10.0]);
    assert_eq!(spec.num_steps(), 50);

    let run = |threads: usize| {
        Simulation::new(workload.clone())
            .tolerance(1e-18)
            .threads(threads)
            .transient(&spec)
            .unwrap()
    };
    let reference = run(1);
    assert_eq!(reference.num_steps(), 50);
    assert!(reference.all_converged());
    let trajectory =
        |r: &TransientReport| common::fields_checksum(r.steps.iter().map(|s| &s.report.pressure));
    let reference_trajectory = trajectory(&reference);
    for threads in [2, 8] {
        let report = run(threads);
        assert_eq!(
            trajectory(&report),
            reference_trajectory,
            "{threads}-thread trajectory diverged bitwise"
        );
        for (a, b) in reference.steps.iter().zip(report.steps.iter()) {
            assert_eq!(
                a.report.history, b.report.history,
                "step {} history differs at {threads} threads",
                a.index
            );
        }
        for (a, b) in reference.snapshots.iter().zip(report.snapshots.iter()) {
            assert_eq!(
                common::field_checksum(&a.pressure),
                common::field_checksum(&b.pressure)
            );
        }
    }
}

#[test]
fn warm_started_steps_need_fewer_total_cg_iterations_than_cold() {
    // The acceptance experiment: same scenario, warm start on vs off.  The
    // smooth post-startup steps reuse the previous δ as an initial guess, so
    // the run total must drop measurably.
    let dims = Dims::new(10, 8, 5);
    let workload = sealed_workload(dims, 1e-16);
    let base = TransientSpec::new(10.0, 0.2, 1e-3)
        .with_wells(WellSet::empty().with(Well::rate("inj", CellIndex::new(5, 4, 2), 1.0)))
        .with_initial_pressure(10.0);
    assert_eq!(base.num_steps(), 50);
    let sim = Simulation::new(workload).tolerance(1e-16);
    let warm = sim.transient(&base).unwrap();
    let cold = sim.transient(&base.clone().cold_start()).unwrap();
    assert!(warm.all_converged() && cold.all_converged());
    assert_eq!(warm.num_steps(), cold.num_steps());
    assert!(
        warm.total_iterations() < cold.total_iterations(),
        "warm {} !< cold {}",
        warm.total_iterations(),
        cold.total_iterations()
    );
    // "Measurably": at least 10% fewer iterations over the run.
    assert!(
        (warm.total_iterations() as f64) < 0.9 * cold.total_iterations() as f64,
        "warm {} vs cold {} is not a measurable saving",
        warm.total_iterations(),
        cold.total_iterations()
    );
    // Warm starting changes the iterates CG takes, not where they converge:
    // final fields agree to solver accuracy.
    assert!(warm.final_pressure().max_abs_diff(cold.final_pressure()) < 1e-6);
}

#[test]
fn transient_runs_honour_stop_policies_per_step() {
    let dims = Dims::new(10, 10, 5);
    let workload = sealed_workload(dims, 1e-30);
    let spec = TransientSpec::new(4.0, 0.5, 1e-6)
        .with_wells(WellSet::empty().with(Well::rate("inj", CellIndex::new(5, 5, 2), 1.0)))
        .with_initial_pressure(10.0);
    let report = Simulation::new(workload)
        .tolerance(1e-30)
        .stop_policy(StopPolicy::new().iteration_budget(3))
        .transient(&spec)
        .unwrap();
    assert_eq!(report.stopped, Some(StopReason::IterationBudget));
    assert_eq!(
        report.num_steps(),
        1,
        "the run truncates at the stopped step"
    );
    assert_eq!(report.steps[0].report.iterations(), 3);
    assert!(report.steps[0].report.was_stopped());
    let summary = report.summary_report();
    assert!(summary.was_stopped());
    assert!(summary.require_completed().is_err());
}
