//! Integration tests that pin the quantitative claims each regenerated table/figure
//! rests on — the same checks `EXPERIMENTS.md` documents, run in CI form.
//!
//! The *executed* (as opposed to modelled) runs are additionally pinned as
//! golden fixtures under `tests/golden/` through the shared harness in
//! `tests/common/mod.rs`: iteration counts and bitwise pressure checksums
//! must reproduce exactly; regenerate intentionally-changed fixtures with
//! `MFFV_BLESS=1 cargo test`.

use mffv::prelude::*;
use mffv_gpu_ref::device_model::GpuTimeModel;

mod common;

#[test]
fn table5_static_model_matches_paper_totals() {
    let counts = CellOpCounts::paper_table5();
    assert_eq!(counts.flops_per_cell(), 96);
    assert_eq!(counts.alg2_flops_per_cell(), 84);
    assert_eq!(counts.mem_accesses_per_cell(), 268);
    assert_eq!(counts.fabric_loads_per_cell(), 8);
    assert!((counts.memory_arithmetic_intensity() - 0.0895).abs() < 5e-4);
    assert!((counts.fabric_arithmetic_intensity() - 3.0).abs() < 1e-12);
}

#[test]
fn fig6_regimes_match_paper() {
    let counts = CellOpCounts::paper_table5();
    let cs2 = Roofline::new(MachineSpec::cs2());
    assert!(cs2.is_compute_bound(counts.memory_arithmetic_intensity(), Some("Memory")));
    assert!(cs2.is_compute_bound(counts.fabric_arithmetic_intensity(), Some("Fabric")));
    let a100 = Roofline::new(MachineSpec::a100());
    assert!(!a100.is_compute_bound(counts.memory_arithmetic_intensity(), Some("HBM")));
}

#[test]
fn table2_modelled_times_have_the_papers_ordering_and_magnitude() {
    let model = AnalyticTiming::paper();
    let dims = Dims::new(750, 994, 922);
    let cs2 = model.cs2_alg1_time(dims, 225);
    let a100 = model.gpu_alg1_time(GpuSpec::a100(), dims, 225);
    let h100 = model.gpu_alg1_time(GpuSpec::h100(), dims, 225);
    // Ordering: CS-2 << H100 < A100 (Table II).
    assert!(cs2 < h100 && h100 < a100);
    // Magnitudes within a factor of ~3 of the paper's measurements.
    assert!(
        cs2 > 0.0542 / 3.0 && cs2 < 0.0542 * 3.0,
        "CS-2 modelled time {cs2}"
    );
    assert!(
        a100 > 23.19 / 3.0 && a100 < 23.19 * 3.0,
        "A100 modelled time {a100}"
    );
    assert!(
        h100 > 11.39 / 3.0 && h100 < 11.39 * 3.0,
        "H100 modelled time {h100}"
    );
}

#[test]
fn table3_throughput_column_is_reproduced_in_order_of_magnitude() {
    // Paper: 12,688.55 Gcell/s for Algorithm 2 at the largest grid.
    let model = AnalyticTiming::paper();
    let row = model.scaling_row(Dims::new(750, 994, 922), 225);
    let gcells = row.cs2_alg2_throughput / 1e9;
    assert!(
        gcells > 4_000.0 && gcells < 40_000.0,
        "Alg2 throughput {gcells} Gcell/s"
    );
}

#[test]
fn table4_split_is_dominated_by_computation() {
    let model = AnalyticTiming::paper();
    let (dm, comp, total) = model.cs2_time_split(Dims::new(750, 994, 922), 225);
    assert!(
        comp > dm,
        "computation must dominate (paper: 93.73% vs 6.27%)"
    );
    assert!(dm > 0.0);
    assert!((dm + comp - total).abs() / total < 0.2);
}

#[test]
fn fig5_executed_pressure_field_decays_from_source_to_producer() {
    let dims = Dims::new(20, 14, 6);
    let workload = WorkloadSpec::fig5(dims).build();
    let report = Simulation::new(workload)
        .tolerance(1e-14)
        .backend(Backend::dataflow())
        .run()
        .unwrap();
    assert!(report.converged());
    let z = dims.nz / 2;
    let near_source = report.pressure.at(mffv_mesh::CellIndex::new(1, 1, z));
    let mid = report
        .pressure
        .at(mffv_mesh::CellIndex::new(dims.nx / 2, dims.ny / 2, z));
    let near_producer = report
        .pressure
        .at(mffv_mesh::CellIndex::new(dims.nx - 2, dims.ny - 2, z));
    assert!(
        near_source > mid && mid > near_producer,
        "pressure must decay along the diagonal"
    );
    common::Golden::new("fig5_dataflow_20x14x6")
        .str("backend", &report.backend)
        .int("iterations", report.iterations())
        .str(
            "pressure_checksum",
            common::field_checksum(&report.pressure),
        )
        .num("final_residual_max", report.final_residual_max)
        .check();
}

#[test]
fn gpu_memory_bound_model_matches_measured_ratio_shape() {
    // Table II: H100 ≈ 2x faster than the A100 for this memory-bound kernel.
    let dims = Dims::new(750, 994, 922);
    let a100 = GpuTimeModel::new(GpuSpec::a100()).cg_time(dims, 225);
    let h100 = GpuTimeModel::new(GpuSpec::h100()).cg_time(dims, 225);
    let ratio = a100 / h100;
    assert!(
        ratio > 1.5 && ratio < 3.0,
        "A100/H100 ratio {ratio} (paper: 2.04)"
    );
}

#[test]
fn communication_only_run_reproduces_table4_methodology() {
    // The executed Table-IV methodology: a communication-only run moves exactly the
    // same fabric traffic as the full run over the same number of iterations.
    let workload = WorkloadSpec::paper_grid(10, 8, 12).build();
    let simulation = Simulation::new(workload).tolerance(1e-8);
    let full = simulation.run_backend(&Backend::dataflow()).unwrap();
    let full_device = full.device.as_ref().unwrap();
    let full_iterations = full.iterations();
    let comm = Simulation::new(simulation.workload().clone())
        .backend(Backend::dataflow_with(SolverOptions::communication_only(
            full_iterations,
        )))
        .run()
        .unwrap();
    let comm_device = comm.device.as_ref().unwrap();
    assert_eq!(comm.iterations(), full_iterations);
    assert_eq!(
        comm_device.counter("fabric_link_bytes"),
        full_device.counter("fabric_link_bytes")
    );
    assert!(
        comm_device.counter("total_flops").unwrap()
            < full_device.counter("total_flops").unwrap() / 10.0
    );
    common::Golden::new("table4_comm_only_10x8x12")
        .int("iterations", full_iterations)
        .num(
            "fabric_link_bytes",
            full_device.counter("fabric_link_bytes").unwrap(),
        )
        .str("pressure_checksum", common::field_checksum(&full.pressure))
        .check();
}
