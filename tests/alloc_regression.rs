//! Allocation regression for the pooled steady-state serving path.
//!
//! The contract under test: once a [`SolveContext`] is warm (operator and
//! preconditioner built, scratch vectors sized, history capacity
//! established), a steady pressure solve performs **zero heap
//! allocations** — the whole Newton + Krylov loop runs in context-owned
//! buffers.  A counting global allocator makes the claim falsifiable: any
//! future `clone()`/`zeros()` snuck back into the hot loop fails this test
//! with a nonzero per-job delta.
//!
//! Scope of the claim (mirrors `engine_bench`): `threads = 1`, a null
//! monitor, a null span, and the `None`/`Jacobi` preconditioners.  The
//! multigrid V-cycle allocates per apply in its coarse solve and is
//! deliberately outside the zero-allocation contract.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mffv_mesh::{Workload, WorkloadSpec};
use mffv_solver::backend::{PreconditionerKind, SolveConfig};
use mffv_solver::context::SolveContext;
use mffv_solver::monitor::NullMonitor;
use mffv_telemetry::Span;

/// Number of heap acquisitions since process start.  `realloc` and
/// `alloc_zeroed` keep their default implementations, which route through
/// `alloc`, so every acquisition path is counted.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: a transparent pass-through to `System` — every method forwards verbatim.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: the caller's layout contract is forwarded to `System` as-is.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    // SAFETY: `ptr` came from `alloc` above with the same layout, valid for `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Run one pooled solve and return the allocation-count delta across it.
fn solve_counting_allocations(
    ctx: &mut SolveContext<f64>,
    workload: &Workload,
    config: &SolveConfig,
) -> u64 {
    let span = Span::null();
    let mut monitor = NullMonitor;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let stopped = ctx.solve(workload, config, &mut monitor, &span);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(stopped.is_none(), "steady solve must run to convergence");
    after - before
}

#[test]
fn warmed_solve_context_performs_zero_heap_allocations_per_job() {
    let spec = WorkloadSpec::quickstart();
    let workload = Workload::try_from_spec(&spec).expect("quickstart spec is valid");

    for kind in [PreconditionerKind::None, PreconditionerKind::Jacobi] {
        let config = SolveConfig {
            threads: Some(1),
            preconditioner: kind,
            ..SolveConfig::default()
        };
        let mut ctx = SolveContext::new();

        // Warm-up: the first solve builds the operator/preconditioner and
        // sizes every buffer; the second proves sizing has settled (the
        // convergence history retains its Vec capacity across resets).
        let cold = solve_counting_allocations(&mut ctx, &workload, &config);
        assert!(cold > 0, "{kind:?}: the cold solve must build state");
        solve_counting_allocations(&mut ctx, &workload, &config);

        let warm = solve_counting_allocations(&mut ctx, &workload, &config);
        assert_eq!(
            warm, 0,
            "{kind:?}: a warmed steady solve must not touch the heap"
        );
        let stats = ctx.stats();
        assert_eq!(stats.misses, 1, "{kind:?}: only the cold solve misses");
        assert_eq!(stats.hits, 2, "{kind:?}: both warm solves hit");
        assert_eq!(stats.scratch_reallocs, 0, "{kind:?}: dims never changed");
    }
}

#[test]
fn rekeying_the_context_allocates_once_then_returns_to_zero() {
    // A spec change mid-stream (different transmissibilities) forces a
    // rebuild; the path must recover its zero-allocation steady state on
    // the very next job with the new key.
    let spec_a = WorkloadSpec::quickstart();
    let mut spec_b = WorkloadSpec::quickstart();
    spec_b.viscosity *= 2.0;
    let workload_a = Workload::try_from_spec(&spec_a).expect("valid spec");
    let workload_b = Workload::try_from_spec(&spec_b).expect("valid spec");
    let config = SolveConfig {
        threads: Some(1),
        preconditioner: PreconditionerKind::Jacobi,
        ..SolveConfig::default()
    };

    let mut ctx = SolveContext::new();
    solve_counting_allocations(&mut ctx, &workload_a, &config);
    solve_counting_allocations(&mut ctx, &workload_a, &config);
    assert_eq!(
        solve_counting_allocations(&mut ctx, &workload_a, &config),
        0
    );

    let rekey = solve_counting_allocations(&mut ctx, &workload_b, &config);
    assert!(rekey > 0, "a key change must rebuild the operator");
    solve_counting_allocations(&mut ctx, &workload_b, &config);
    assert_eq!(
        solve_counting_allocations(&mut ctx, &workload_b, &config),
        0,
        "the context must be zero-allocation again after re-warming"
    );
}
