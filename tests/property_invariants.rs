//! Property-based tests of cross-crate invariants: operator symmetry/positivity on
//! random heterogeneous problems, matrix-free vs assembled vs GPU-reference
//! agreement, conservation of the transmissibility symmetry through every layer,
//! and solver convergence on random well placements.

use mffv::prelude::*;
use mffv_fv::csr::AssembledOperator;
use mffv_fv::operator::{min_rayleigh_quotient, symmetry_defect};
use mffv_fv::{LinearOperator, MatrixFreeOperator};
use mffv_mesh::boundary::DirichletCell;
use mffv_mesh::permeability::PermeabilityModel;
use mffv_mesh::workload::{BoundarySpec, WorkloadSpec};
use mffv_mesh::CellIndex;
use proptest::prelude::*;

fn random_workload_spec(nx: usize, ny: usize, nz: usize, std_log: f64, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("prop-{nx}x{ny}x{nz}-{seed}"),
        dims: Dims::new(nx, ny, nz),
        spacing: [1.0, 1.0, 1.0],
        permeability: PermeabilityModel::LogNormal {
            mean_log: 0.0,
            std_log,
            seed,
        },
        viscosity: 1.0,
        boundary: BoundarySpec::SourceProducer {
            source_pressure: 1.0,
            producer_pressure: 0.0,
        },
        tolerance: 1e-14,
        max_iterations: 10_000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The SPD operator stays symmetric and positive on random heterogeneous fields.
    #[test]
    fn operator_is_spd_on_random_permeability(
        nx in 3usize..7, ny in 3usize..7, nz in 3usize..7,
        std_log in 0.0f64..2.0, seed in 0u64..1000,
    ) {
        let workload = random_workload_spec(nx, ny, nz, std_log, seed).build();
        let op = MatrixFreeOperator::<f64>::from_workload(&workload);
        prop_assert!(symmetry_defect(&op, 3) < 1e-9);
        prop_assert!(min_rayleigh_quotient(&op, 3) > 0.0);
    }

    /// Matrix-free, assembled and GPU-style operators agree on random inputs.
    #[test]
    fn all_operator_implementations_agree(
        nx in 3usize..7, ny in 3usize..7, nz in 3usize..7, seed in 0u64..1000,
    ) {
        let workload = random_workload_spec(nx, ny, nz, 1.0, seed).build();
        let dims = workload.dims();
        let mf = MatrixFreeOperator::<f32>::from_workload(&workload);
        let asm = AssembledOperator::<f32>::from_workload(&workload);
        let gpu = GpuMatrixFreeOperator::from_workload(&workload);
        let x = CellField::<f32>::from_fn(dims, |c| {
            ((c.x * 13 + c.y * 7 + c.z * 3 + seed as usize) % 17) as f32 * 0.21 - 1.5
        });
        let y_mf = mf.apply_new(&x);
        let y_asm = asm.apply_new(&x);
        let y_gpu = gpu.apply_new(&x);
        let scale = y_mf.max_abs().max(1.0);
        prop_assert!(y_mf.max_abs_diff(&y_asm) <= 1e-5 * scale);
        prop_assert!(y_mf.max_abs_diff(&y_gpu) <= 1e-5 * scale);
    }

    /// Transmissibility symmetry survives workload construction on random meshes and
    /// permeability fields (the property the TPFA flux requires for conservation).
    #[test]
    fn transmissibility_stays_symmetric(
        nx in 2usize..8, ny in 2usize..8, nz in 2usize..8,
        std_log in 0.0f64..2.5, seed in 0u64..1000,
    ) {
        let workload = random_workload_spec(nx, ny, nz, std_log, seed).build();
        prop_assert!(workload.transmissibility().max_asymmetry() < 1e-12);
    }

    /// CG converges and satisfies the maximum principle on random well placements.
    #[test]
    fn solver_converges_for_random_well_placement(
        nx in 4usize..8, ny in 4usize..8, nz in 3usize..6,
        wx in 0usize..8, wy in 0usize..8, seed in 0u64..1000,
    ) {
        let dims = Dims::new(nx, ny, nz);
        let source = (wx % nx, wy % ny);
        let producer = (nx - 1 - source.0, ny - 1 - source.1);
        prop_assume!(source != producer);
        let mut cells = Vec::new();
        for z in 0..nz {
            cells.push(DirichletCell { cell: CellIndex::new(source.0, source.1, z), value: 1.0 });
            cells.push(DirichletCell { cell: CellIndex::new(producer.0, producer.1, z), value: 0.0 });
        }
        let permeability =
            PermeabilityModel::LogNormal { mean_log: 0.0, std_log: 1.0, seed }.generate(dims);
        let mesh = CartesianMesh::unit(dims);
        let coeffs = Transmissibilities::<f64>::from_mesh(&mesh, &permeability, 1.0);
        let dirichlet = DirichletSet::new(dims, cells);
        let op = MatrixFreeOperator::new(coeffs.clone(), &dirichlet);

        let mut p0 = CellField::<f64>::constant(dims, 0.5);
        dirichlet.impose(&mut p0);
        let r = mffv_fv::residual::residual(&p0, &coeffs, &dirichlet);
        let b = mffv_fv::residual::newton_rhs(&r, &dirichlet);
        let out = mffv_solver::cg::ConjugateGradient::with_tolerance(1e-18, 5000)
            .solve(&op, &b, &CellField::zeros(dims));
        prop_assert!(out.history.converged);
        let mut p = p0;
        p.axpy(1.0, &out.solution);
        for &v in p.as_slice() {
            prop_assert!((-1e-8..=1.0 + 1e-8).contains(&v), "maximum principle violated: {v}");
        }
    }

    /// The whole-fabric dataflow solve converges on random heterogeneous problems
    /// and agrees with the host oracle.
    #[test]
    fn dataflow_solver_converges_on_random_problems(
        nx in 3usize..6, ny in 3usize..6, nz in 3usize..6, seed in 0u64..200,
    ) {
        let workload = random_workload_spec(nx, ny, nz, 0.8, seed).build();
        let agreement = Simulation::new(workload)
            .tolerance(1e-12)
            .backend(Backend::host())
            .backend(Backend::dataflow())
            .compare()
            .unwrap();
        prop_assert!(agreement.report("dataflow").unwrap().converged());
        let rel = agreement.max_pairwise_rel_diff();
        prop_assert!(rel < 2e-3, "dataflow vs oracle relative gap {rel}");
    }
}
