//! Property-based tests of cross-crate invariants: operator symmetry/positivity on
//! random heterogeneous problems, matrix-free vs assembled vs GPU-reference
//! agreement, conservation of the transmissibility symmetry through every layer,
//! solver convergence on random well placements, and the bitwise-equivalence
//! contract of the planned/fused/threaded stencil kernels against the naive path.

use mffv::prelude::*;
use mffv_fv::csr::AssembledOperator;
use mffv_fv::operator::{min_rayleigh_quotient, symmetry_defect};
use mffv_fv::{LinearOperator, MatrixFreeOperator};
use mffv_mesh::boundary::DirichletCell;
use mffv_mesh::permeability::PermeabilityModel;
use mffv_mesh::workload::{BoundarySpec, WorkloadSpec};
use mffv_mesh::CellIndex;
use proptest::prelude::*;

/// A Dirichlet set of the requested flavour that is valid on *any* dims,
/// including 1-cell-thin grids: 0 = empty, 1 = the two X faces, 2 = every
/// boundary face, 3 = a pseudorandom sprinkle of cells.
fn dirichlet_variant(dims: Dims, variant: usize, seed: u64) -> DirichletSet {
    match variant % 4 {
        0 => DirichletSet::empty(),
        1 if dims.nx > 1 => DirichletSet::x_faces(dims, 1.0, 0.0),
        1 => {
            // On a 1-cell-wide grid the two X faces coincide: pin the single face.
            let cells: Vec<DirichletCell> = dims
                .iter_cells()
                .map(|cell| DirichletCell { cell, value: 1.0 })
                .collect();
            DirichletSet::new(dims, cells)
        }
        2 => DirichletSet::all_faces(dims, 1.0),
        _ => {
            let cells: Vec<DirichletCell> = (0..dims.num_cells())
                .filter(|&k| {
                    (k as u64)
                        .wrapping_mul(0x9E37_79B9)
                        .wrapping_add(seed)
                        .is_multiple_of(5)
                })
                .map(|k| DirichletCell {
                    cell: dims.unlinear(k),
                    value: 0.5,
                })
                .collect();
            DirichletSet::new(dims, cells)
        }
    }
}

fn field_bits(f: &CellField<f64>) -> Vec<u64> {
    f.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// The unfused reference path: delegates only `apply`, so the CG loop falls
/// back to the default (separate-pass, slab-ordered) kernels of
/// `LinearOperator`.
struct UnfusedOp<'a>(&'a MatrixFreeOperator<f64>);

impl LinearOperator<f64> for UnfusedOp<'_> {
    fn dims(&self) -> Dims {
        self.0.dims()
    }
    fn apply(&self, x: &CellField<f64>, y: &mut CellField<f64>) {
        self.0.apply_spd_naive(x, y);
    }
}

fn random_workload_spec(nx: usize, ny: usize, nz: usize, std_log: f64, seed: u64) -> WorkloadSpec {
    WorkloadSpec {
        name: format!("prop-{nx}x{ny}x{nz}-{seed}"),
        dims: Dims::new(nx, ny, nz),
        spacing: [1.0, 1.0, 1.0],
        permeability: PermeabilityModel::LogNormal {
            mean_log: 0.0,
            std_log,
            seed,
        },
        viscosity: 1.0,
        boundary: BoundarySpec::SourceProducer {
            source_pressure: 1.0,
            producer_pressure: 0.0,
        },
        tolerance: 1e-14,
        max_iterations: 10_000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The SPD operator stays symmetric and positive on random heterogeneous fields.
    #[test]
    fn operator_is_spd_on_random_permeability(
        nx in 3usize..7, ny in 3usize..7, nz in 3usize..7,
        std_log in 0.0f64..2.0, seed in 0u64..1000,
    ) {
        let workload = random_workload_spec(nx, ny, nz, std_log, seed).build();
        let op = MatrixFreeOperator::<f64>::from_workload(&workload);
        prop_assert!(symmetry_defect(&op, 3) < 1e-9);
        prop_assert!(min_rayleigh_quotient(&op, 3) > 0.0);
    }

    /// Matrix-free, assembled and GPU-style operators agree on random inputs.
    #[test]
    fn all_operator_implementations_agree(
        nx in 3usize..7, ny in 3usize..7, nz in 3usize..7, seed in 0u64..1000,
    ) {
        let workload = random_workload_spec(nx, ny, nz, 1.0, seed).build();
        let dims = workload.dims();
        let mf = MatrixFreeOperator::<f32>::from_workload(&workload);
        let asm = AssembledOperator::<f32>::from_workload(&workload);
        let gpu = GpuMatrixFreeOperator::from_workload(&workload);
        let x = CellField::<f32>::from_fn(dims, |c| {
            ((c.x * 13 + c.y * 7 + c.z * 3 + seed as usize) % 17) as f32 * 0.21 - 1.5
        });
        let y_mf = mf.apply_new(&x);
        let y_asm = asm.apply_new(&x);
        let y_gpu = gpu.apply_new(&x);
        let scale = y_mf.max_abs().max(1.0);
        prop_assert!(y_mf.max_abs_diff(&y_asm) <= 1e-5 * scale);
        prop_assert!(y_mf.max_abs_diff(&y_gpu) <= 1e-5 * scale);
    }

    /// Transmissibility symmetry survives workload construction on random meshes and
    /// permeability fields (the property the TPFA flux requires for conservation).
    #[test]
    fn transmissibility_stays_symmetric(
        nx in 2usize..8, ny in 2usize..8, nz in 2usize..8,
        std_log in 0.0f64..2.5, seed in 0u64..1000,
    ) {
        let workload = random_workload_spec(nx, ny, nz, std_log, seed).build();
        prop_assert!(workload.transmissibility().max_asymmetry() < 1e-12);
    }

    /// CG converges and satisfies the maximum principle on random well placements.
    #[test]
    fn solver_converges_for_random_well_placement(
        nx in 4usize..8, ny in 4usize..8, nz in 3usize..6,
        wx in 0usize..8, wy in 0usize..8, seed in 0u64..1000,
    ) {
        let dims = Dims::new(nx, ny, nz);
        let source = (wx % nx, wy % ny);
        let producer = (nx - 1 - source.0, ny - 1 - source.1);
        prop_assume!(source != producer);
        let mut cells = Vec::new();
        for z in 0..nz {
            cells.push(DirichletCell { cell: CellIndex::new(source.0, source.1, z), value: 1.0 });
            cells.push(DirichletCell { cell: CellIndex::new(producer.0, producer.1, z), value: 0.0 });
        }
        let permeability =
            PermeabilityModel::LogNormal { mean_log: 0.0, std_log: 1.0, seed }.generate(dims);
        let mesh = CartesianMesh::unit(dims);
        let coeffs = Transmissibilities::<f64>::from_mesh(&mesh, &permeability, 1.0);
        let dirichlet = DirichletSet::new(dims, cells);
        let op = MatrixFreeOperator::new(coeffs.clone(), &dirichlet);

        let mut p0 = CellField::<f64>::constant(dims, 0.5);
        dirichlet.impose(&mut p0);
        let r = mffv_fv::residual::residual(&p0, &coeffs, &dirichlet);
        let b = mffv_fv::residual::newton_rhs(&r, &dirichlet);
        let out = mffv_solver::cg::ConjugateGradient::with_tolerance(1e-18, 5000)
            .solve(&op, &b, &CellField::zeros(dims));
        prop_assert!(out.history.converged);
        let mut p = p0;
        p.axpy(1.0, &out.solution);
        for &v in p.as_slice() {
            prop_assert!((-1e-8..=1.0 + 1e-8).contains(&v), "maximum principle violated: {v}");
        }
    }

    /// The planned branch-free kernel — on 1, 2 and 8 scoped threads — is
    /// bitwise identical to the naive per-neighbour loop, for every Dirichlet
    /// topology (empty / X faces / all faces / random sprinkle) and for
    /// arbitrary grid shapes including 1-cell-thin ones.
    #[test]
    fn planned_apply_is_bitwise_identical_to_naive(
        nx in 1usize..10, ny in 1usize..10, nz in 1usize..10,
        std_log in 0.0f64..2.0, seed in 0u64..1000, variant in 0usize..4,
    ) {
        let dims = Dims::new(nx, ny, nz);
        let permeability =
            PermeabilityModel::LogNormal { mean_log: 0.0, std_log, seed }.generate(dims);
        let mesh = CartesianMesh::unit(dims);
        let coeffs = Transmissibilities::<f64>::from_mesh(&mesh, &permeability, 1.0);
        let dirichlet = dirichlet_variant(dims, variant, seed);
        let op = MatrixFreeOperator::new(coeffs, &dirichlet);
        let x = CellField::<f64>::from_fn(dims, |c| {
            ((c.x * 31 + c.y * 17 + c.z * 5 + seed as usize) % 23) as f64 * 0.17 - 1.9
        });
        let mut naive = CellField::zeros(dims);
        op.apply_spd_naive(&x, &mut naive);
        for threads in [1usize, 2, 8] {
            let threaded = op.clone().with_threads(threads);
            let planned = threaded.apply_new(&x);
            prop_assert!(
                field_bits(&planned) == field_bits(&naive),
                "planned/naive mismatch: threads = {threads}, dirichlet variant = {variant}"
            );
        }
    }

    /// Fused CG (planned apply+dot and fused update kernels) produces residual
    /// histories and solutions bitwise identical to the unfused reference path
    /// on random heterogeneous problems.
    #[test]
    fn fused_cg_matches_unfused_cg_bitwise(
        nx in 3usize..8, ny in 3usize..8, nz in 3usize..7, seed in 0u64..1000,
    ) {
        let workload = random_workload_spec(nx, ny, nz, 1.0, seed).build();
        let op = MatrixFreeOperator::<f64>::from_workload(&workload);
        let p0: CellField<f64> = workload.initial_pressure();
        let r = mffv_fv::residual::residual(&p0, workload.transmissibility(), workload.dirichlet());
        let b = mffv_fv::residual::newton_rhs(&r, workload.dirichlet());
        let solver = mffv_solver::cg::ConjugateGradient::with_tolerance(1e-14, 2000);
        let x0 = CellField::zeros(workload.dims());

        let fused = solver.solve(&op, &b, &x0);
        let unfused = solver.solve(&UnfusedOp(&op), &b, &x0);
        let bits = |h: &[f64]| h.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(
            bits(&fused.history.residual_norms_squared),
            bits(&unfused.history.residual_norms_squared)
        );
        prop_assert_eq!(fused.history.iterations, unfused.history.iterations);
        prop_assert_eq!(fused.history.converged, unfused.history.converged);
        prop_assert_eq!(field_bits(&fused.solution), field_bits(&unfused.solution));
    }

    /// The whole-fabric dataflow solve converges on random heterogeneous problems
    /// and agrees with the host oracle.
    #[test]
    fn dataflow_solver_converges_on_random_problems(
        nx in 3usize..6, ny in 3usize..6, nz in 3usize..6, seed in 0u64..200,
    ) {
        let workload = random_workload_spec(nx, ny, nz, 0.8, seed).build();
        let agreement = Simulation::new(workload)
            .tolerance(1e-12)
            .backend(Backend::host())
            .backend(Backend::dataflow())
            .compare()
            .unwrap();
        prop_assert!(agreement.report("dataflow").unwrap().converged());
        let rel = agreement.max_pairwise_rel_diff();
        prop_assert!(rel < 2e-3, "dataflow vs oracle relative gap {rel}");
    }

    /// The diagonal-shifted (transient accumulation) operator keeps the
    /// planned-vs-naive bitwise contract, on 1/2/8 threads, for every
    /// Dirichlet topology and arbitrary grid shapes including 1-cell-thin
    /// ones, across eleven octaves of dt.
    #[test]
    fn shifted_planned_apply_is_bitwise_identical_to_naive_shifted(
        nx in 1usize..10, ny in 1usize..10, nz in 1usize..10,
        std_log in 0.0f64..2.0, seed in 0u64..1000, variant in 0usize..4,
        dt_exp in -6i32..6,
    ) {
        let dims = Dims::new(nx, ny, nz);
        let permeability =
            PermeabilityModel::LogNormal { mean_log: 0.0, std_log, seed }.generate(dims);
        let mesh = CartesianMesh::unit(dims);
        let coeffs = Transmissibilities::<f64>::from_mesh(&mesh, &permeability, 1.0);
        let dirichlet = dirichlet_variant(dims, variant, seed);
        // A heterogeneous accumulation diagonal scaled like V·c_t/Δt.
        let dt = (2.0f64).powi(dt_exp);
        let diag = CellField::<f64>::from_fn(dims, |c| {
            (1.0 + ((c.x * 7 + c.y * 3 + c.z) % 5) as f64 * 0.25) * 1e-3 / dt
        });
        let op = MatrixFreeOperator::new(coeffs, &dirichlet).with_diagonal_shift(&diag);
        let x = CellField::<f64>::from_fn(dims, |c| {
            ((c.x * 29 + c.y * 13 + c.z * 7 + seed as usize) % 19) as f64 * 0.23 - 2.1
        });
        let mut naive = CellField::zeros(dims);
        op.apply_spd_naive(&x, &mut naive);
        for threads in [1usize, 2, 8] {
            let threaded = op.clone().with_threads(threads);
            let planned = threaded.apply_new(&x);
            prop_assert!(
                field_bits(&planned) == field_bits(&naive),
                "shifted planned/naive mismatch: threads = {threads}, variant = {variant}, dt = {dt}"
            );
            // The fused apply_dot sees the same shifted operator.
            let mut ad = CellField::zeros(dims);
            let fused = threaded.apply_dot(&x, &mut ad);
            prop_assert!(field_bits(&ad) == field_bits(&naive));
            let unfused = UnfusedOp(&op).apply_dot(&x, &mut ad);
            prop_assert!(fused.to_bits() == unfused.to_bits());
        }
    }

    /// Halving dt doubles the accumulation diagonal, which can only improve
    /// the step system's conditioning: per-step CG iteration counts must
    /// never increase.
    #[test]
    fn halving_dt_never_increases_cg_iterations(
        dt_exp in -4i32..4, seed in 0u64..200,
    ) {
        use mffv_mesh::workload::BoundarySpec;
        let workload = WorkloadSpec {
            name: "dt-halving".into(),
            boundary: BoundarySpec::None,
            dims: Dims::new(8, 6, 4),
            permeability: PermeabilityModel::LogNormal { mean_log: 0.0, std_log: 1.0, seed },
            tolerance: 1e-16,
            ..WorkloadSpec::quickstart()
        }.build();
        let dt = (2.0f64).powi(dt_exp);
        let step_iterations = |dt: f64| {
            let spec = TransientSpec::new(dt, dt, 1e-3)
                .with_wells(WellSet::empty().with(Well::rate("inj", CellIndex::new(4, 3, 2), 1.0)))
                .with_initial_pressure(5.0)
                .cold_start();
            let report = mffv_solver::transient::run_transient(
                &mffv_solver::backend::HostBackend::oracle(),
                &workload,
                &spec,
                &mffv_solver::backend::SolveConfig::default(),
                &StopPolicy::new(),
            ).unwrap();
            prop_assert!(report.all_converged(), "dt = {dt} did not converge");
            Ok(report.steps[0].report.iterations())
        };
        let coarse = step_iterations(dt)?;
        let fine = step_iterations(dt / 2.0)?;
        prop_assert!(
            fine <= coarse,
            "halving dt raised iterations: {coarse} -> {fine} at dt = {dt}"
        );
    }
}
