//! Trace a transient solve with wells and dump the telemetry three ways:
//! the aggregated phase tree as text, the same tree as canonical JSON, and
//! the raw spans as a Chrome trace-event file loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! ```text
//! cargo run --example trace_dump            # writes trace_transient.json
//! cargo run --example trace_dump -- out.json
//! ```

use mffv::prelude::*;
use mffv::telemetry::{chrome_trace_json, phase_tree_json, render_phase_tree, Tracer};
use mffv::Simulation;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_transient.json".to_string());

    // A small injection scenario: one rate well, eight backward-Euler steps.
    let workload = WorkloadSpec {
        name: "trace-demo".into(),
        boundary: mffv::mesh::workload::BoundarySpec::None,
        dims: Dims::new(12, 12, 6),
        tolerance: 1e-12,
        ..WorkloadSpec::quickstart()
    }
    .build();
    let spec = TransientSpec::new(2.0, 0.25, 1e-3)
        .with_wells(WellSet::empty().with(Well::rate("inj", CellIndex::new(6, 6, 3), 1.0)))
        .with_initial_pressure(1.0);

    let tracer = Tracer::new();
    let report = Simulation::new(workload)
        .tracer(tracer.clone())
        .transient(&spec)
        .expect("transient solve");
    println!(
        "transient on {}: {} steps, {} total CG iterations, all converged: {}\n",
        report.backend,
        report.num_steps(),
        report.total_iterations(),
        report.all_converged()
    );

    // 1. Human-readable phase tree (counts + total seconds per phase).
    let tree = tracer.phase_tree();
    println!("{}", render_phase_tree(&tree));

    // 2. Canonical JSON of the same tree (stable key order, no NaN/Inf).
    println!("phase tree JSON:\n{}\n", phase_tree_json(&tree));

    // 3. Chrome trace events — open the file in Perfetto to see the solve
    //    timeline with per-step and per-CG-chunk spans.
    let chrome = chrome_trace_json(&tracer.records());
    std::fs::write(&out, &chrome).expect("write chrome trace");
    println!(
        "wrote {} ({} spans) — load it at https://ui.perfetto.dev",
        out,
        tracer.records().len()
    );
}
