//! Communication-machinery walkthrough: programs a small fabric, runs one four-step
//! Table-I halo exchange and one whole-fabric all-reduce, and prints what moved
//! where — a readable trace of the paper's §III-B/§III-C machinery.
//!
//! Run with `cargo run --release --example comm_trace`.

use mffv::prelude::*;
use mffv_core::allreduce::AllReduce;
use mffv_core::comm::CardinalExchange;
use mffv_core::mapping::PeColumnBuffers;

fn main() {
    let dims = Dims::new(4, 3, 5);
    let workload = WorkloadSpec::paper_grid(dims.nx, dims.ny, dims.nz).build();
    let mut fabric = Fabric::new(FabricDims::new(dims.nx, dims.ny));

    // Load every PE with its column; the direction column is x*100 + y*10 + z so the
    // received halos are recognisable.
    let mut buffers = Vec::new();
    for idx in 0..fabric.num_pes() {
        let pe_id = fabric.dims().unlinear(idx);
        let pe = fabric.pe_mut(pe_id);
        let bufs = PeColumnBuffers::allocate(pe, &workload, pe_id.x, pe_id.y).unwrap();
        let column: Vec<f32> = (0..dims.nz)
            .map(|z| (pe_id.x * 100 + pe_id.y * 10 + z) as f32)
            .collect();
        pe.memory_mut().write(bufs.direction, 0, &column).unwrap();
        buffers.push(bufs);
    }

    let mut colors = ColorAllocator::new();
    let mut exchange = CardinalExchange::new(&mut fabric, &mut colors).unwrap();
    println!(
        "Programmed colours: actions C1-C4 = {:?}, callbacks C5-C12 = {:?}",
        exchange.action_colors(),
        exchange.callback_colors()
    );

    let report = exchange.exchange(&mut fabric, &buffers).unwrap();
    println!(
        "Four-step exchange complete: {} messages, {} wavelets, {} completion callbacks",
        report.messages, report.wavelets, report.callbacks
    );

    // Show the halos of the centre PE.
    let pe = PeId::new(1, 1);
    let idx = fabric.dims().linear(pe);
    println!(
        "\nHalos received by PE {pe} (its own column starts at {}):",
        100 + 10
    );
    for (name, buf) in [
        ("west ", buffers[idx].halo_west),
        ("east ", buffers[idx].halo_east),
        ("north", buffers[idx].halo_north),
        ("south", buffers[idx].halo_south),
    ] {
        let halo = fabric.pe(pe).memory().read(buf, 0, dims.nz).unwrap();
        println!("  from {name}: {halo:?}");
    }

    // Whole-fabric all-reduce of one value per PE.
    let allreduce = AllReduce::new(&mut colors).unwrap();
    let local: Vec<f32> = (0..fabric.num_pes()).map(|i| i as f32).collect();
    let (values, ar_report) = allreduce.sum(&mut fabric, &local).unwrap();
    println!(
        "\nAll-reduce of per-PE values 0..{}: every PE now holds {}, {} messages, critical path {} hops",
        fabric.num_pes() - 1,
        values[0],
        ar_report.messages,
        ar_report.critical_path_hops
    );

    let stats = fabric.stats();
    println!("\nFabric statistics:");
    println!("  messages sent:     {}", stats.messages_sent);
    println!("  link crossings:    {}", stats.link_crossings);
    println!("  payload bytes:     {}", stats.link_bytes);
    println!("  switch advances:   {}", stats.control_advances);
    println!("  deepest route:     {} links", stats.max_route_depth);
}
