//! Roofline analysis (the Figure-6 experiment): where the matrix-free FV kernel
//! sits on the CS-2 and A100 rooflines, from the Table-V per-cell work model —
//! plus a *measured* section that times the planned host kernel and reports its
//! achieved bandwidth next to the modelled numbers, so the op-count model is
//! checked against reality on every run.
//!
//! Run with `cargo run --release --example roofline_report`.

use mffv::prelude::*;
use mffv_perf::report::{fmt_flops, fmt_percent};

fn main() {
    let counts = CellOpCounts::paper_table5();
    println!("Per-cell work model (Table V):");
    println!(
        "  {} FLOPs, {} memory accesses, {} fabric loads",
        counts.flops_per_cell(),
        counts.mem_accesses_per_cell(),
        counts.fabric_loads_per_cell()
    );
    println!(
        "  arithmetic intensity: {:.4} FLOP/B (memory), {:.1} FLOP/B (fabric)\n",
        counts.memory_arithmetic_intensity(),
        counts.fabric_arithmetic_intensity()
    );

    let dims = Dims::new(750, 994, 922);
    let timing = AnalyticTiming::paper();
    let achieved = timing.cs2_achieved_flops(dims, 225);

    let cs2 = Roofline::new(MachineSpec::cs2());
    println!("CS-2 (peak {}):", fmt_flops(MachineSpec::cs2().peak_flops));
    for (label, ai, ceiling) in [
        ("memory", counts.memory_arithmetic_intensity(), "Memory"),
        ("fabric", counts.fabric_arithmetic_intensity(), "Fabric"),
    ] {
        println!(
            "  vs {label:7} ceiling: attainable {}, achieved {} ({} of attainable), compute-bound = {}",
            fmt_flops(cs2.attainable(ai, Some(ceiling))),
            fmt_flops(achieved),
            fmt_percent(cs2.fraction_of_attainable(ai, achieved, Some(ceiling))),
            cs2.is_compute_bound(ai, Some(ceiling)),
        );
    }
    println!("  (paper: 1.217 PFLOP/s achieved, 68% of peak, compute-bound for both)\n");

    let a100 = Roofline::new(MachineSpec::a100());
    let ai_dram = 96.0 / mffv::gpu_ref::device_model::DRAM_BYTES_PER_CELL_PER_ITERATION;
    let gpu_achieved = GpuTimeModel::new(GpuSpec::a100()).achieved_flops(dims);
    println!("A100 (peak {}):", fmt_flops(MachineSpec::a100().peak_flops));
    println!(
        "  vs HBM ceiling: attainable {}, achieved {} ({} of attainable), memory-bound = {}",
        fmt_flops(a100.attainable(ai_dram, Some("HBM"))),
        fmt_flops(gpu_achieved),
        fmt_percent(a100.fraction_of_attainable(ai_dram, gpu_achieved, Some("HBM"))),
        !a100.is_compute_bound(ai_dram, Some("HBM")),
    );
    println!("  (paper: memory-bound, ~78% of the bandwidth ceiling)");

    measured_host_section();
}

/// Time the planned branch-free apply on this host and report its achieved
/// bandwidth and FLOP rate next to the modelled arithmetic intensities above.
fn measured_host_section() {
    let dims = Dims::new(64, 64, 64);
    let workload = WorkloadSpec::paper_grid(dims.nx, dims.ny, dims.nz).build();
    let op = MatrixFreeOperator::<f32>::from_workload(&workload);
    let stats = op.plan_stats();
    let x = CellField::<f32>::from_fn(dims, |c| ((c.x + c.y * 3 + c.z * 7) % 16) as f32 * 0.125);
    let mut y = CellField::<f32>::zeros(dims);

    let naive = time_best_of(5, || op.apply_spd_naive(&x, &mut y));
    let planned = time_best_of(5, || op.apply_spd(&x, &mut y));

    // Traffic model shared with the spmv_bench report bin; FLOPs: 3 per
    // neighbour (1 sub, 1 mul, 1 add — the pre-multiplied coefficient form of
    // `mffv_fv::flux`).
    let bytes_per_cell = APPLY_STREAMS_PER_CELL * std::mem::size_of::<f32>();
    let flops_per_cell = 6 * FLOPS_PER_NEIGHBOR;
    let cells = dims.num_cells() as f64;
    let gbps = cells * bytes_per_cell as f64 / planned / 1e9;
    let flops = cells * flops_per_cell as f64 / planned;
    println!("\nMeasured planned host kernel ({dims}, f32, 1 thread):");
    println!(
        "  plan: {:.1}% of cells branch-free ({} runs, {} slabs)",
        100.0 * stats.run_fraction(),
        stats.num_runs,
        stats.num_slabs
    );
    println!(
        "  naive {:.3} ms -> planned {:.3} ms ({:.2}x); achieved {} at {:.2} GB/s",
        naive * 1e3,
        planned * 1e3,
        naive / planned,
        fmt_flops(flops),
        gbps
    );
    println!(
        "  measured intensity {:.3} FLOP/B vs modelled memory intensity {:.3} FLOP/B",
        flops_per_cell as f64 / bytes_per_cell as f64,
        CellOpCounts::paper_table5().memory_arithmetic_intensity()
    );
}
