//! Roofline analysis (the Figure-6 experiment): where the matrix-free FV kernel
//! sits on the CS-2 and A100 rooflines, from the Table-V per-cell work model.
//!
//! Run with `cargo run --release --example roofline_report`.

use mffv::prelude::*;
use mffv_perf::report::{fmt_flops, fmt_percent};

fn main() {
    let counts = CellOpCounts::paper_table5();
    println!("Per-cell work model (Table V):");
    println!(
        "  {} FLOPs, {} memory accesses, {} fabric loads",
        counts.flops_per_cell(),
        counts.mem_accesses_per_cell(),
        counts.fabric_loads_per_cell()
    );
    println!(
        "  arithmetic intensity: {:.4} FLOP/B (memory), {:.1} FLOP/B (fabric)\n",
        counts.memory_arithmetic_intensity(),
        counts.fabric_arithmetic_intensity()
    );

    let dims = Dims::new(750, 994, 922);
    let timing = AnalyticTiming::paper();
    let achieved = timing.cs2_achieved_flops(dims, 225);

    let cs2 = Roofline::new(MachineSpec::cs2());
    println!("CS-2 (peak {}):", fmt_flops(MachineSpec::cs2().peak_flops));
    for (label, ai, ceiling) in [
        ("memory", counts.memory_arithmetic_intensity(), "Memory"),
        ("fabric", counts.fabric_arithmetic_intensity(), "Fabric"),
    ] {
        println!(
            "  vs {label:7} ceiling: attainable {}, achieved {} ({} of attainable), compute-bound = {}",
            fmt_flops(cs2.attainable(ai, Some(ceiling))),
            fmt_flops(achieved),
            fmt_percent(cs2.fraction_of_attainable(ai, achieved, Some(ceiling))),
            cs2.is_compute_bound(ai, Some(ceiling)),
        );
    }
    println!("  (paper: 1.217 PFLOP/s achieved, 68% of peak, compute-bound for both)\n");

    let a100 = Roofline::new(MachineSpec::a100());
    let ai_dram = 96.0 / mffv::gpu_ref::device_model::DRAM_BYTES_PER_CELL_PER_ITERATION;
    let gpu_achieved = GpuTimeModel::new(GpuSpec::a100()).achieved_flops(dims);
    println!("A100 (peak {}):", fmt_flops(MachineSpec::a100().peak_flops));
    println!(
        "  vs HBM ceiling: attainable {}, achieved {} ({} of attainable), memory-bound = {}",
        fmt_flops(a100.attainable(ai_dram, Some("HBM"))),
        fmt_flops(gpu_achieved),
        fmt_percent(a100.fraction_of_attainable(ai_dram, gpu_achieved, Some("HBM"))),
        !a100.is_compute_bound(ai_dram, Some("HBM")),
    );
    println!("  (paper: memory-bound, ~78% of the bandwidth ceiling)");
}
