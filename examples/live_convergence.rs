//! Live convergence monitoring: watch the residual trajectory of the
//! paper's Algorithm 1 *while it runs*, on each of the three backends, then
//! demonstrate the two serving-path controls — a wall-clock deadline and a
//! mid-flight cancellation.
//!
//! Run with `cargo run --release --example live_convergence`.

use mffv::prelude::*;
use std::time::Duration;

fn main() {
    let workload = WorkloadSpec::quickstart().build();
    println!(
        "Workload: {} ({} cells), tolerance 1e-10\n",
        workload.name(),
        workload.dims().num_cells()
    );

    // 1. Live residual trajectory per backend.  The monitor receives every
    //    iteration boundary of the inner CG loop; the printed `rr` values are
    //    bitwise the entries of the report's ConvergenceHistory.
    for backend in [Backend::host(), Backend::gpu_ref(), Backend::dataflow()] {
        let simulation = Simulation::new(workload.clone())
            .tolerance(1e-10)
            .backend(backend);
        println!("--- {} ---", backend.name());
        let mut printer = monitor_fn(|event: &SolveEvent| {
            match *event {
                SolveEvent::Started { initial_rr } => {
                    println!("  start      rr = {initial_rr:.6e}");
                }
                SolveEvent::Iteration { k, rr } if k % 10 == 0 => {
                    println!("  iter {k:>4}  rr = {rr:.6e}");
                }
                SolveEvent::Iteration { .. } => {}
                SolveEvent::Converged { iterations, rr } => {
                    println!("  converged after {iterations} iterations, rr = {rr:.6e}");
                }
                SolveEvent::Stopped(reason) => println!("  stopped: {reason}"),
            }
            Flow::Continue
        });
        let report = simulation.monitor(&mut printer).expect("solve failed");
        assert!(report.converged());
        println!();
    }

    // 2. A wall-clock deadline: the solve stops at the first iteration
    //    boundary past the budget and still reports its partial history.
    let deadlined = Simulation::new(workload.clone())
        .tolerance(1e-14)
        .deadline(Duration::ZERO)
        .run()
        .expect("a stopped solve is not an error");
    println!(
        "Deadline demo: stopped = {:?} after {} iterations ({} history entries kept)",
        deadlined.stop_reason().expect("deadline must fire"),
        deadlined.iterations(),
        deadlined.history.residual_norms_squared.len(),
    );

    // 3. Cooperative cancellation: any thread holding a clone of the token
    //    can stop the solve; here a monitor trips it at iteration 3 and the
    //    session ends one boundary later.
    let token = CancelToken::new();
    let trip = token.clone();
    let mut tripper = monitor_fn(move |event: &SolveEvent| {
        if matches!(event, SolveEvent::Iteration { k: 3, .. }) {
            trip.cancel();
        }
        Flow::Continue
    });
    let cancelled = Simulation::new(workload)
        .tolerance(1e-14)
        .backend(Backend::dataflow())
        .cancel_token(token)
        .monitor(&mut tripper)
        .expect("a cancelled solve is not an error");
    println!(
        "Cancellation demo: stopped = {:?} after {} iterations",
        cancelled
            .stop_reason()
            .expect("the token must stop the solve"),
        cancelled.iterations(),
    );
    assert_eq!(cancelled.stop_reason(), Some(StopReason::Cancelled));
}
