//! Quickstart: solve a small single-phase pressure problem three ways — on the host
//! (f64 oracle), with the GPU-style reference, and on the simulated dataflow fabric
//! — and compare the results.
//!
//! Run with `cargo run --release --example quickstart`.

use mffv::prelude::*;

fn main() {
    // 1. Describe the problem: a 16×16×8 homogeneous box with a pressurised source
    //    column in one corner and a producer column in the opposite corner.
    let workload = WorkloadSpec::quickstart().build();
    println!("Workload: {} ({} cells)", workload.name(), workload.dims().num_cells());

    // 2. Host oracle: sequential matrix-free CG in f64.
    let oracle = solve_pressure::<f64>(&workload);
    println!(
        "Host oracle:        {} iterations, converged = {}, |r|_max = {:.2e}",
        oracle.history.iterations, oracle.history.converged, oracle.final_residual_max
    );

    // 3. GPU-style reference: 16×8×8 thread blocks, one thread per cell, f32.
    let gpu = GpuReferenceSolver::new(workload.clone(), GpuSpec::a100())
        .with_tolerance(1e-10)
        .solve();
    println!(
        "GPU-style reference: {} iterations, modelled A100 kernel time = {:.4e} s",
        gpu.history.iterations, gpu.modelled_kernel_time
    );

    // 4. Dataflow fabric: one PE per vertical column, Table-I halo exchanges,
    //    whole-fabric all-reduces, 14-state CG state machine.
    let dataflow = DataflowFvSolver::new(
        workload.clone(),
        SolverOptions::paper().with_tolerance(1e-10),
    )
    .solve()
    .expect("dataflow solve failed");
    println!(
        "Dataflow fabric:     {} iterations, modelled CS-2 region time = {:.4e} s",
        dataflow.stats.iterations, dataflow.modelled_time.total
    );

    // 5. Numerical integrity (§V-B): all three agree.
    let gpu_diff = oracle.pressure.max_abs_diff(&gpu.pressure.convert());
    let dataflow_diff = oracle.pressure.max_abs_diff(&dataflow.pressure.convert());
    println!("Max |oracle - GPU reference| = {gpu_diff:.3e}");
    println!("Max |oracle - dataflow|      = {dataflow_diff:.3e}");
    assert!(gpu_diff < 1e-3 && dataflow_diff < 1e-3, "implementations disagree");
    println!("All implementations agree to single precision.");
}
