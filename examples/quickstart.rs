//! Quickstart: solve a small single-phase pressure problem on all three
//! backends — host f64 oracle, GPU-style reference, simulated dataflow fabric —
//! through the one `Simulation` facade, and print the §V-B agreement table.
//!
//! Run with `cargo run --release --example quickstart`.

use mffv::prelude::*;

fn main() {
    // 1. Describe the problem: a 16×16×8 homogeneous box with a pressurised
    //    source column in one corner and a producer column in the opposite one.
    let workload = WorkloadSpec::quickstart().build();
    println!(
        "Workload: {} ({} cells)\n",
        workload.name(),
        workload.dims().num_cells()
    );

    // 2. One facade call runs every registered backend; with none registered,
    //    the standard set (host oracle, GPU reference, dataflow fabric) runs.
    let simulation = Simulation::new(workload).tolerance(1e-10);
    let agreement = simulation.compare().expect("solve failed");

    // 3. The agreement report is the paper's numerical-integrity table.
    println!("{agreement}");
    assert!(agreement.agrees_within(1e-3), "implementations disagree");
    println!("All implementations agree to single precision.");

    // 4. Individual reports stay accessible for backend-specific detail.
    let dataflow = agreement.report("dataflow").expect("dataflow ran");
    let device = dataflow.device.as_ref().expect("dataflow models a device");
    println!(
        "\nDataflow detail: {} iterations on {}, {} fabric bytes, modelled {:.4e} s",
        dataflow.iterations(),
        device.device,
        device.counter("fabric_link_bytes").unwrap_or(0.0),
        device.modelled_time_seconds,
    );
}
