//! Weak-scaling study (the Table-III experiment): grow the fabric X/Y extents at a
//! fixed column depth and watch how the Algorithm-2 sweep stays flat while the full
//! Algorithm-1 iteration picks up reduction cost.
//!
//! Run with `cargo run --release --example weak_scaling`.

use mffv::prelude::*;
use mffv_perf::report::{fmt_gcells, fmt_seconds, format_table};

fn main() {
    // Analytic model at the paper's full sizes.
    println!("Analytic model at the paper's grid family (Nz = 922, 225 steps):\n");
    let model = AnalyticTiming::paper();
    let mut rows = Vec::new();
    for (nx, ny, nz) in WorkloadSpec::table3_grids() {
        let dims = Dims::new(nx, ny, nz);
        let row = model.scaling_row(dims, 225);
        rows.push(vec![
            format!("{nx} x {ny} x {nz}"),
            fmt_seconds(row.cs2_alg2_time),
            fmt_seconds(row.cs2_alg1_time),
            fmt_gcells(row.cs2_alg1_throughput),
            fmt_seconds(row.a100_alg1_time),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "Grid",
                "CS-2 Alg2 [s]",
                "CS-2 Alg1 [s]",
                "Alg1 thpt [Gcell/s]",
                "A100 Alg1 [s]"
            ],
            &rows
        )
    );

    // Executed sweep on the simulated fabric at small sizes with a fixed iteration
    // count, reporting the measured critical-path growth that causes the Alg-1 trend.
    // The grid family is generated with `SweepBuilder` and the four solves run
    // concurrently on the `mffv-engine` worker pool.
    println!("Executed sweep (simulated fabric, 15 iterations, Nz = 24):\n");
    let base = WorkloadSpec {
        name: "weak-scaling".to_string(),
        tolerance: 1e-30, // unreachable: run exactly max_iterations steps
        max_iterations: 15,
        ..WorkloadSpec::paper_grid(6, 6, 24)
    };
    let jobs = SweepBuilder::new(base)
        .grids([6usize, 10, 14, 18].map(|side| Dims::new(side, side, 24)))
        .backends([Backend::dataflow()])
        .jobs();
    let engine = Engine::with_available_parallelism();
    let batch = engine.run(jobs);
    let mut rows = Vec::new();
    for outcome in &batch.outcomes {
        let report = outcome
            .report()
            .unwrap_or_else(|| panic!("{}: {:?}", outcome.label, outcome.failure()));
        let device = report.device.as_ref().expect("dataflow models a device");
        rows.push(vec![
            format!("{}", report.pressure.dims()),
            format!("{}", report.iterations()),
            format!("{}", device.counter("critical_path_hops").unwrap_or(0.0)),
            format!("{}", device.counter("fabric_link_bytes").unwrap_or(0.0)),
            format!("{:.3e}", device.modelled_time_seconds),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "Grid",
                "Iterations",
                "Critical-path hops",
                "Fabric bytes",
                "Modelled time [s]"
            ],
            &rows
        )
    );
    println!(
        "Engine: {} jobs on {} workers in {:.3} s wall ({:.2} jobs/s, p95 latency {:.3e} s)\n",
        batch.jobs(),
        batch.workers,
        batch.wall_seconds,
        batch.jobs_per_second(),
        batch.latency.p95,
    );
    println!("The critical-path hop count grows with the fabric perimeter — the reduction cost");
    println!(
        "that makes Algorithm 1 scale sub-linearly in Table III while Algorithm 2 stays flat."
    );
}
