//! CO₂-injection scenario — now a genuine *transient* simulation: a rate-
//! controlled injector ramps reservoir pressure against a BHP-controlled
//! producer through implicit backward-Euler time stepping
//! (`Simulation::transient`), with layered permeability from the Figure-5
//! workload family.  Earlier revisions mislabelled a single steady solve as
//! "injection"; this is the real thing — pressure *evolves*.
//!
//! Prints the step-by-step well ledger, ASCII pressure maps of the requested
//! snapshots, and the cumulative injected/produced volumes.
//!
//! Run with `cargo run --release --example co2_injection`.

use mffv::prelude::*;
use mffv_mesh::workload::BoundarySpec;
use mffv_mesh::CellIndex;

const DAY: f64 = 86_400.0;

fn main() {
    let dims = Dims::new(36, 24, 8);
    // The Figure-5 layered reservoir, sealed (no Dirichlet columns): every
    // exchanged m³ goes through a well, so the mass ledger must close.
    let workload = WorkloadSpec {
        boundary: BoundarySpec::None,
        ..WorkloadSpec::fig5(dims)
    }
    .build();

    let injector = CellIndex::new(0, 0, dims.nz - 1);
    let producer = CellIndex::new(dims.nx - 1, dims.ny - 1, 0);
    let spec = TransientSpec::new(30.0 * DAY, DAY, 1.0e-9)
        .with_wells(
            WellSet::empty()
                // 0.05 m³/s ≈ 4300 m³/day of injected CO₂ (reservoir volume).
                .with(Well::rate("injector", injector, 0.05))
                // The producer flows against a 9 MPa bottom-hole pressure.
                .with(Well::bhp("producer", producer, 9.0e6, 2.0e-9)),
        )
        .with_initial_pressure(1.0e7)
        .with_snapshots([10.0 * DAY, 30.0 * DAY]);

    println!(
        "Scenario: {} — layered permeability (contrast {:.1}x), {} steps of {:.0} h",
        workload.name(),
        mffv_mesh::permeability::contrast_ratio(workload.permeability()),
        spec.num_steps(),
        DAY / 3600.0
    );
    println!(
        "  injector: rate well at ({}, {}, {}), +0.05 m³/s",
        injector.x, injector.y, injector.z
    );
    println!(
        "  producer: BHP well at ({}, {}, {}), 9 MPa, WI 2e-9 m³/(Pa·s)\n",
        producer.x, producer.y, producer.z
    );

    let report = Simulation::new(workload)
        .tolerance(1e-16)
        .transient(&spec)
        .expect("transient run failed");

    println!("step   t [d]   CG its   p̄ [MPa]   inj [m³/s]   prod [m³/s]   balance [m³/s]");
    for step in &report.steps {
        if step.index % 5 == 0 || step.index + 1 == report.num_steps() {
            let p = &step.report.pressure;
            let mean_mpa = p.as_slice().iter().sum::<f64>() / p.len() as f64 / 1.0e6;
            println!(
                "{:4} {:7.1} {:8} {:9.3} {:12.4} {:13.4} {:14.2e}",
                step.index,
                step.end_time() / DAY,
                step.report.iterations(),
                mean_mpa,
                step.well_rates[0],
                step.well_rates[1],
                step.mass_balance_error(),
            );
        }
    }

    for snapshot in &report.snapshots {
        println!(
            "\nPressure slice at z = {} after {:.0} days (MPa):",
            dims.nz / 2,
            snapshot.time / DAY
        );
        ascii_map(&snapshot.pressure, dims);
    }

    println!(
        "\nWell totals over {:.0} days:",
        report.simulated_time() / DAY
    );
    for well in &report.wells {
        println!(
            "  {:9}  net {:+.0} m³  (injected {:.0}, produced {:.0})",
            well.name, well.net_volume, well.injected, well.produced
        );
    }
    println!(
        "\n{} CG iterations across {} warm-started implicit steps (all converged: {}),\n\
         worst per-step mass-balance defect {:.2e} m³/s",
        report.total_iterations(),
        report.num_steps(),
        report.all_converged(),
        report.max_mass_balance_error(),
    );
}

/// Darker = higher pressure, over the mid-depth slice.
fn ascii_map(pressure: &CellField<f64>, dims: Dims) {
    let slice = pressure.horizontal_slice(dims.nz / 2);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &slice {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let shades = b" .:-=+*#%@";
    println!("  range {:.3} .. {:.3} MPa", lo / 1e6, hi / 1e6);
    for y in 0..dims.ny {
        let line: String = (0..dims.nx)
            .map(|x| {
                let t = (slice[y * dims.nx + x] - lo) / (hi - lo).max(f64::MIN_POSITIVE);
                shades[(t.clamp(0.0, 1.0) * (shades.len() - 1) as f64).round() as usize] as char
            })
            .collect();
        println!("  {line}");
    }
}
