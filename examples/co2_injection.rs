//! CO₂-injection scenario (the Figure-5 workload): layered permeability, a
//! high-pressure injection column in the top-left corner and a producer column in
//! the bottom-right corner.  Solves on the dataflow fabric and prints an ASCII
//! pressure map plus well-to-well statistics.
//!
//! Run with `cargo run --release --example co2_injection`.

use mffv::prelude::*;
use mffv_mesh::CellIndex;

fn main() {
    let dims = Dims::new(36, 24, 8);
    let workload = WorkloadSpec::fig5(dims).build();
    println!(
        "Scenario: {} — layered permeability (contrast {:.1}x), source at (0,0), producer at ({},{})",
        workload.name(),
        mffv_mesh::permeability::contrast_ratio(workload.permeability()),
        dims.nx - 1,
        dims.ny - 1
    );

    let report = Simulation::new(workload.clone())
        .tolerance(1e-14)
        .backend(Backend::dataflow())
        .run()
        .expect("dataflow solve failed");
    println!(
        "Converged in {} CG iterations (converged = {}), |r|_max = {:.3e}",
        report.iterations(),
        report.converged(),
        report.final_residual_max
    );

    // ASCII pressure map of the mid-depth slice (darker = higher pressure).
    let z = dims.nz / 2;
    let slice = report.pressure.horizontal_slice(z);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &slice {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let shades = b" .:-=+*#%@";
    println!(
        "\nPressure slice at z = {z} (range {:.3e} .. {:.3e} Pa):",
        lo, hi
    );
    for y in 0..dims.ny {
        let line: String = (0..dims.nx)
            .map(|x| {
                let t = (slice[y * dims.nx + x] - lo) / (hi - lo).max(f64::MIN_POSITIVE);
                shades[(t.clamp(0.0, 1.0) * (shades.len() - 1) as f64).round() as usize] as char
            })
            .collect();
        println!("{line}");
    }

    // Pressure profile along the source-producer diagonal.
    println!("\nDiagonal pressure profile (cell, pressure [MPa]):");
    let steps = dims.nx.min(dims.ny);
    for i in 0..steps {
        let x = i * (dims.nx - 1) / (steps - 1);
        let y = i * (dims.ny - 1) / (steps - 1);
        let p = report.pressure.at(CellIndex::new(x, y, z));
        println!("  ({x:3}, {y:3})  {:8.3}", p / 1.0e6);
    }

    // Communication/computation profile of the run, from the unified report's
    // device section.
    let device = report
        .device
        .as_ref()
        .expect("dataflow backend models a device");
    println!("\nRun profile ({}):", device.device);
    println!(
        "  fabric messages: {}",
        device.counter("fabric_messages").unwrap_or(0.0)
    );
    println!(
        "  fabric payload bytes: {}",
        device.counter("fabric_link_bytes").unwrap_or(0.0)
    );
    println!(
        "  total FLOPs (all PEs): {}",
        device.counter("total_flops").unwrap_or(0.0)
    );
    println!(
        "  modelled device time: {:.4e} s",
        device.modelled_time_seconds
    );
}
