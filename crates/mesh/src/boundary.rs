//! Dirichlet boundary conditions.
//!
//! Eq. (3) of the paper distinguishes cells in the set `T_D` where a Dirichlet
//! boundary condition is imposed: their residual is `p_K − p_K^D` and the Jacobian
//! row reduces to the identity (Eq. 6, second branch).  In the paper's CCS scenario
//! the Dirichlet cells model the injection source and the producer (Figure 5).

use crate::dims::{CellIndex, Dims};
use crate::field::CellField;
use crate::scalar::Scalar;

/// A single Dirichlet cell: a cell index and its prescribed pressure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DirichletCell {
    pub cell: CellIndex,
    /// Prescribed pressure value `p_K^D`.
    pub value: f64,
}

/// The set `T_D` of Dirichlet cells, with fast membership queries by linear index.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DirichletSet {
    cells: Vec<DirichletCell>,
    /// Sorted linear indices for O(log n) membership checks.
    sorted_indices: Vec<(usize, f64)>,
}

impl DirichletSet {
    /// An empty set (pure Neumann / no-flow problem; the operator then has a null
    /// space and CG is only applicable after pinning at least one cell).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build a set from explicit cells. Duplicate cells are rejected.
    pub fn new(dims: Dims, cells: Vec<DirichletCell>) -> Self {
        let mut sorted: Vec<(usize, f64)> = cells
            .iter()
            .map(|d| (dims.linear(d.cell), d.value))
            .collect();
        sorted.sort_by_key(|&(idx, _)| idx);
        for w in sorted.windows(2) {
            assert_ne!(
                w[0].0, w[1].0,
                "duplicate Dirichlet cell at linear index {}",
                w[0].0
            );
        }
        Self {
            cells,
            sorted_indices: sorted,
        }
    }

    /// Number of Dirichlet cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The raw cells.
    pub fn cells(&self) -> &[DirichletCell] {
        &self.cells
    }

    /// Whether the cell at `linear_index` is a Dirichlet cell.
    #[inline]
    pub fn contains_linear(&self, linear_index: usize) -> bool {
        self.sorted_indices
            .binary_search_by_key(&linear_index, |&(idx, _)| idx)
            .is_ok()
    }

    /// Prescribed value at `linear_index`, if the cell is Dirichlet.
    #[inline]
    pub fn value_at_linear(&self, linear_index: usize) -> Option<f64> {
        self.sorted_indices
            .binary_search_by_key(&linear_index, |&(idx, _)| idx)
            .ok()
            .map(|pos| self.sorted_indices[pos].1)
    }

    /// A boolean mask field: 1 for Dirichlet cells, 0 elsewhere. This is the form the
    /// per-PE kernel consumes (a flag per cell of the local z-column).
    pub fn mask<T: Scalar>(&self, dims: Dims) -> CellField<T> {
        let mut mask = CellField::zeros(dims);
        for &(idx, _) in &self.sorted_indices {
            mask.set(idx, T::ONE);
        }
        mask
    }

    /// A field holding the prescribed values at Dirichlet cells and zero elsewhere.
    pub fn values<T: Scalar>(&self, dims: Dims) -> CellField<T> {
        let mut vals = CellField::zeros(dims);
        for &(idx, v) in &self.sorted_indices {
            vals.set(idx, T::from_f64(v));
        }
        vals
    }

    /// Impose the prescribed values onto a pressure field (in place).
    pub fn impose<T: Scalar>(&self, pressure: &mut CellField<T>) {
        for &(idx, v) in &self.sorted_indices {
            pressure.set(idx, T::from_f64(v));
        }
    }

    /// FNV-1a fingerprint of the Dirichlet topology *and* pinned values:
    /// every `(linear index, value bits)` pair in sorted-index order — the
    /// boundary component of a solve-context cache key (see
    /// [`crate::fingerprint`]).  Moving a cell, adding one, or nudging a
    /// pinned pressure by one ulp all change the digest.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = crate::fingerprint::Fnv1a::new();
        hash.write_usize(self.sorted_indices.len());
        for &(idx, v) in &self.sorted_indices {
            hash.write_usize(idx);
            hash.write_f64(v);
        }
        hash.finish()
    }

    /// A full vertical column of Dirichlet cells at fabric position `(x, y)` — the
    /// shape of the injector and producer "wells" in the Figure-5 scenario.
    pub fn well_column(dims: Dims, x: usize, y: usize, value: f64) -> Vec<DirichletCell> {
        assert!(x < dims.nx && y < dims.ny, "well column outside the grid");
        (0..dims.nz)
            .map(|z| DirichletCell {
                cell: CellIndex::new(x, y, z),
                value,
            })
            .collect()
    }

    /// The paper's Figure-5 scenario: a high-pressure source column in the top-left
    /// corner of the horizontal plane and a low-pressure producer column in the
    /// bottom-right corner.
    pub fn source_producer(dims: Dims, source_pressure: f64, producer_pressure: f64) -> Self {
        let mut cells = Self::well_column(dims, 0, 0, source_pressure);
        cells.extend(Self::well_column(
            dims,
            dims.nx - 1,
            dims.ny - 1,
            producer_pressure,
        ));
        Self::new(dims, cells)
    }

    /// Dirichlet conditions on the two X-extreme faces of the domain (a classic
    /// "left-to-right" pressure-drop configuration used in several unit tests).
    pub fn x_faces(dims: Dims, left_pressure: f64, right_pressure: f64) -> Self {
        let mut cells = Vec::with_capacity(2 * dims.ny * dims.nz);
        for z in 0..dims.nz {
            for y in 0..dims.ny {
                cells.push(DirichletCell {
                    cell: CellIndex::new(0, y, z),
                    value: left_pressure,
                });
                cells.push(DirichletCell {
                    cell: CellIndex::new(dims.nx - 1, y, z),
                    value: right_pressure,
                });
            }
        }
        Self::new(dims, cells)
    }

    /// Dirichlet conditions on every boundary face of the domain (each cell
    /// touching the box boundary pinned to `pressure`).  On 1-cell-thin grids
    /// this is the whole domain — a useful degenerate case for kernel tests.
    pub fn all_faces(dims: Dims, pressure: f64) -> Self {
        let cells: Vec<DirichletCell> = dims
            .iter_cells()
            .filter(|c| {
                c.x == 0
                    || c.x == dims.nx - 1
                    || c.y == 0
                    || c.y == dims.ny - 1
                    || c.z == 0
                    || c.z == dims.nz - 1
            })
            .map(|cell| DirichletCell {
                cell,
                value: pressure,
            })
            .collect();
        Self::new(dims, cells)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> Dims {
        Dims::new(4, 3, 5)
    }

    #[test]
    fn membership_and_values() {
        let d = dims();
        let set = DirichletSet::new(
            d,
            vec![
                DirichletCell {
                    cell: CellIndex::new(1, 1, 1),
                    value: 10.0,
                },
                DirichletCell {
                    cell: CellIndex::new(3, 2, 4),
                    value: -1.0,
                },
            ],
        );
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        let idx = d.linear(CellIndex::new(1, 1, 1));
        assert!(set.contains_linear(idx));
        assert_eq!(set.value_at_linear(idx), Some(10.0));
        assert!(!set.contains_linear(0));
        assert_eq!(set.value_at_linear(0), None);
    }

    #[test]
    fn mask_and_values_fields() {
        let d = dims();
        let set = DirichletSet::new(
            d,
            vec![DirichletCell {
                cell: CellIndex::new(0, 0, 0),
                value: 7.5,
            }],
        );
        let mask: CellField<f32> = set.mask(d);
        let vals: CellField<f64> = set.values(d);
        assert_eq!(mask.get(0), 1.0);
        assert_eq!(vals.get(0), 7.5);
        assert_eq!(mask.as_slice()[1..].iter().copied().sum::<f32>(), 0.0);
    }

    #[test]
    fn impose_overwrites_pressure() {
        let d = dims();
        let set = DirichletSet::source_producer(d, 100.0, 1.0);
        let mut p = CellField::<f64>::constant(d, 50.0);
        set.impose(&mut p);
        assert_eq!(p.at(CellIndex::new(0, 0, 0)), 100.0);
        assert_eq!(p.at(CellIndex::new(3, 2, 4)), 1.0);
        assert_eq!(p.at(CellIndex::new(1, 1, 1)), 50.0);
    }

    #[test]
    fn source_producer_spans_full_columns() {
        let d = dims();
        let set = DirichletSet::source_producer(d, 2.0, 1.0);
        assert_eq!(set.len(), 2 * d.nz);
        for z in 0..d.nz {
            assert!(set.contains_linear(d.linear(CellIndex::new(0, 0, z))));
            assert!(set.contains_linear(d.linear(CellIndex::new(d.nx - 1, d.ny - 1, z))));
        }
    }

    #[test]
    fn x_faces_cover_both_faces() {
        let d = dims();
        let set = DirichletSet::x_faces(d, 5.0, 1.0);
        assert_eq!(set.len(), 2 * d.ny * d.nz);
        assert_eq!(
            set.value_at_linear(d.linear(CellIndex::new(0, 2, 3))),
            Some(5.0)
        );
        assert_eq!(
            set.value_at_linear(d.linear(CellIndex::new(d.nx - 1, 0, 0))),
            Some(1.0)
        );
    }

    #[test]
    fn all_faces_pin_exactly_the_boundary_shell() {
        let d = Dims::new(4, 3, 5);
        let set = DirichletSet::all_faces(d, 2.0);
        // Interior cells: (4-2)*(3-2)*(5-2) = 6; everything else is boundary.
        assert_eq!(set.len(), d.num_cells() - d.num_interior_cells());
        assert!(set.contains_linear(d.linear(CellIndex::new(0, 1, 2))));
        assert!(!set.contains_linear(d.linear(CellIndex::new(1, 1, 1))));
        assert_eq!(
            set.value_at_linear(d.linear(CellIndex::new(3, 2, 4))),
            Some(2.0)
        );
        // A 1-cell-thin grid is all boundary.
        let thin = Dims::new(1, 3, 3);
        assert_eq!(DirichletSet::all_faces(thin, 1.0).len(), thin.num_cells());
    }

    #[test]
    #[should_panic]
    fn duplicate_cells_rejected() {
        let d = dims();
        let _ = DirichletSet::new(
            d,
            vec![
                DirichletCell {
                    cell: CellIndex::new(0, 0, 0),
                    value: 1.0,
                },
                DirichletCell {
                    cell: CellIndex::new(0, 0, 0),
                    value: 2.0,
                },
            ],
        );
    }

    #[test]
    fn empty_set() {
        let set = DirichletSet::empty();
        assert!(set.is_empty());
        assert!(!set.contains_linear(0));
    }
}
