//! Deterministic structural fingerprints for solve-context cache keys.
//!
//! A pooled serving path reuses a planned operator and preconditioner only
//! when the problem *structure* is unchanged: same grid extents, same
//! Dirichlet topology (cells **and** pinned values), same transmissibility
//! table bit for bit.  The fingerprints here hash exactly those bits —
//! `f64::to_bits`/`usize` words fed through FNV-1a in a fixed order — so two
//! workloads collide only when their solve trajectories would be bitwise
//! identical anyway.  No wall clock, no randomness, no pointer identity:
//! the same inputs fingerprint to the same value in every process.

/// A 64-bit FNV-1a hasher over explicit `u64` words.
///
/// FNV-1a is tiny, dependency-free and stable across platforms — exactly
/// what a cache key needs (this is *not* a collision-resistant hash; keys
/// additionally compare dims and kind, and a collision merely reuses a
/// compatible-shaped arena).
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv1a {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Absorb one 64-bit word, byte by byte, little-endian.
    pub fn write_u64(&mut self, word: u64) {
        let mut h = self.state;
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// Absorb a `usize` (widened to 64 bits).
    pub fn write_usize(&mut self, word: usize) {
        self.write_u64(word as u64);
    }

    /// Absorb an `f64` by its exact bit pattern (`-0.0` ≠ `+0.0`, NaN
    /// payloads distinguish — the cache must be strictly bitwise).
    pub fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_deterministic_and_order_sensitive() {
        let mut a = Fnv1a::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv1a::new();
        b.write_u64(1);
        b.write_u64(2);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv1a::new();
        c.write_u64(2);
        c.write_u64(1);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn f64_words_hash_by_bit_pattern() {
        let mut pos = Fnv1a::new();
        pos.write_f64(0.0);
        let mut neg = Fnv1a::new();
        neg.write_f64(-0.0);
        assert_ne!(pos.finish(), neg.finish());
        let mut x = Fnv1a::new();
        x.write_f64(1.5);
        let mut y = Fnv1a::new();
        y.write_f64(1.5);
        assert_eq!(x.finish(), y.finish());
    }

    #[test]
    fn empty_hasher_is_the_offset_basis() {
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv1a::default().finish(), Fnv1a::new().finish());
    }
}
