//! TPFA transmissibilities.
//!
//! The interfacial flux of Eq. (4) is `f_KL = Υ_KL λ_KL (p_L − p_K)` where the
//! transmissibility `Υ_KL` "is a coefficient accounting for the geometry of the cells
//! and their permeability" and the interfacial mobility `λ_KL` is the arithmetic
//! average of the (constant) cell mobilities.  This module precomputes, for every
//! cell and every one of its six faces, the combined coefficient `Υ_KL λ_KL` — the
//! exact quantity each PE stores ("six transmissibilities for the computation of
//! Eq. (6)", §III-A).
//!
//! `Υ_KL` is the standard harmonic average of the two half-transmissibilities
//! `T_K = κ_K A / (d/2)`; faces on the domain boundary get a zero coefficient
//! (no-flow), which is how the boundary of the Cartesian box is closed.

use crate::dims::Dims;
use crate::field::CellField;
use crate::mesh::CartesianMesh;
use crate::neighbors::Direction;
use crate::scalar::Scalar;

/// Per-cell, per-direction transmissibility coefficients `Υ_KL λ_KL`.
#[derive(Clone, Debug, PartialEq)]
pub struct Transmissibilities<T: Scalar> {
    dims: Dims,
    /// `data[cell][Direction::index()]`.
    data: Vec<[T; 6]>,
}

impl<T: Scalar> Transmissibilities<T> {
    /// Compute TPFA transmissibilities from mesh geometry, a permeability field (m²)
    /// and a constant fluid viscosity (Pa·s).
    ///
    /// The computation is carried out in `f64` and converted to `T` at the end, so
    /// `f32` device tables are rounded once rather than accumulating error.
    pub fn from_mesh(mesh: &CartesianMesh, permeability: &CellField<f64>, viscosity: f64) -> Self {
        assert!(viscosity > 0.0, "viscosity must be positive");
        assert_eq!(
            mesh.dims(),
            permeability.dims(),
            "permeability grid mismatch"
        );
        let dims = mesh.dims();
        let mobility = 1.0 / viscosity; // λ_K = λ_L = 1/μ, so λ_KL = 1/μ as well.
        let mut data = vec![[T::ZERO; 6]; dims.num_cells()];
        for c in dims.iter_cells() {
            let idx = dims.linear(c);
            let k_c = permeability.at(c);
            for dir in Direction::ALL {
                if let Some(n) = dims.neighbor(c, dir) {
                    let k_n = permeability.at(n);
                    let half = mesh.half_geometric_factor(dir);
                    let t_c = k_c * half;
                    let t_n = k_n * half;
                    // Harmonic average of the two half-transmissibilities.
                    let upsilon = if t_c > 0.0 && t_n > 0.0 {
                        1.0 / (1.0 / t_c + 1.0 / t_n)
                    } else {
                        0.0
                    };
                    data[idx][dir.index()] = T::from_f64(upsilon * mobility);
                }
            }
        }
        Self { dims, data }
    }

    /// A uniform coefficient on every interior face (zero on boundary faces).  This
    /// is the setting of the kernel-level experiments, where the operator reduces to
    /// a scaled 7-point Laplacian.
    pub fn uniform(dims: Dims, coefficient: T) -> Self {
        let mut data = vec![[T::ZERO; 6]; dims.num_cells()];
        for c in dims.iter_cells() {
            let idx = dims.linear(c);
            for dir in Direction::ALL {
                if dims.neighbor(c, dir).is_some() {
                    data[idx][dir.index()] = coefficient;
                }
            }
        }
        Self { dims, data }
    }

    /// Build from an explicit per-cell coefficient table (one `[T; 6]` row per
    /// cell in linear-layout order, each row in [`Direction::ALL`] order).
    /// The caller is responsible for face symmetry (`Υ_KL λ_KL == Υ_LK λ_LK`)
    /// and for zero coefficients on boundary faces; this is the constructor
    /// coarsened multigrid levels use, where the coarse table is derived from
    /// an already-symmetric fine table.
    pub fn from_rows(dims: Dims, data: Vec<[T; 6]>) -> Self {
        assert_eq!(data.len(), dims.num_cells(), "coefficient row count");
        Self { dims, data }
    }

    /// Grid extents.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Coefficient for the face of cell `cell_linear` in direction `dir` (zero when
    /// the face lies on the domain boundary).
    #[inline]
    pub fn get(&self, cell_linear: usize, dir: Direction) -> T {
        self.data[cell_linear][dir.index()]
    }

    /// All six coefficients of a cell in [`Direction::ALL`] order.
    #[inline]
    pub fn all(&self, cell_linear: usize) -> [T; 6] {
        self.data[cell_linear]
    }

    /// The whole coefficient table as a raw slice — one `[T; 6]` row per cell
    /// in linear-layout order, each row in [`Direction::ALL`] order.  This is
    /// the zero-copy view the planned stencil kernels stream through.
    #[inline]
    pub fn cell_rows(&self) -> &[[T; 6]] {
        &self.data
    }

    /// The coefficients of the z-column at `(x, y)` for one direction, ordered
    /// z = 0 .. nz-1 — the layout a PE keeps in local memory.
    pub fn column_dir(&self, x: usize, y: usize, dir: Direction) -> Vec<T> {
        let base = self.dims.column_base(x, y);
        let stride = self.dims.column_stride();
        (0..self.dims.nz)
            .map(|z| self.data[base + z * stride][dir.index()])
            .collect()
    }

    /// Sum of the six coefficients of a cell (the magnitude of the operator's
    /// diagonal entry for interior cells).
    pub fn row_sum(&self, cell_linear: usize) -> T {
        let mut s = T::ZERO;
        for v in self.data[cell_linear] {
            s += v;
        }
        s
    }

    /// Verify the face symmetry `Υ_KL λ_KL == Υ_LK λ_LK` to within `tolerance`
    /// (relative).  Returns the largest relative asymmetry found.
    pub fn max_asymmetry(&self) -> f64 {
        let mut worst = 0.0f64;
        for c in self.dims.iter_cells() {
            let idx = self.dims.linear(c);
            for dir in Direction::ALL {
                if let Some(n) = self.dims.neighbor(c, dir) {
                    let nidx = self.dims.linear(n);
                    let a = self.get(idx, dir).to_f64();
                    let b = self.get(nidx, dir.opposite()).to_f64();
                    let denom = a.abs().max(b.abs()).max(f64::MIN_POSITIVE);
                    worst = worst.max((a - b).abs() / denom);
                }
            }
        }
        worst
    }

    /// Convert to a different scalar precision.
    pub fn convert<U: Scalar>(&self) -> Transmissibilities<U> {
        Transmissibilities {
            dims: self.dims,
            data: self
                .data
                .iter()
                .map(|row| {
                    let mut out = [U::ZERO; 6];
                    for (o, v) in out.iter_mut().zip(row.iter()) {
                        *o = U::from_f64(v.to_f64());
                    }
                    out
                })
                .collect(),
        }
    }

    /// Approximate memory footprint in bytes of the per-cell coefficient table; used
    /// by the PE local-memory budgeting in `mffv-core`.
    pub fn bytes(&self) -> usize {
        self.data.len() * 6 * std::mem::size_of::<T>()
    }

    /// FNV-1a fingerprint over the grid extents and every coefficient's
    /// exact bit pattern, in fixed cell-then-direction order — the
    /// transmissibility component of a solve-context cache key (see
    /// [`crate::fingerprint`]).  Equal tables fingerprint equal; any single
    /// bit of any coefficient changes the digest.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = crate::fingerprint::Fnv1a::new();
        hash.write_usize(self.dims.nx);
        hash.write_usize(self.dims.ny);
        hash.write_usize(self.dims.nz);
        for row in &self.data {
            for v in row {
                hash.write_f64(v.to_f64());
            }
        }
        hash.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::CellIndex;
    use crate::permeability::PermeabilityModel;
    use proptest::prelude::*;

    #[test]
    fn uniform_coefficients_zero_on_boundary() {
        let dims = Dims::new(3, 3, 3);
        let t = Transmissibilities::<f64>::uniform(dims, 2.0);
        let corner = dims.linear(CellIndex::new(0, 0, 0));
        assert_eq!(t.get(corner, Direction::XM), 0.0);
        assert_eq!(t.get(corner, Direction::XP), 2.0);
        let center = dims.linear(CellIndex::new(1, 1, 1));
        for dir in Direction::ALL {
            assert_eq!(t.get(center, dir), 2.0);
        }
        assert_eq!(t.row_sum(center), 12.0);
        assert_eq!(t.row_sum(corner), 6.0);
    }

    #[test]
    fn homogeneous_unit_mesh_matches_hand_computation() {
        // κ = 1, unit spacing: half transmissibility T = 1 * 1 / 0.5 = 2, harmonic
        // average of (2, 2) = 1, mobility = 1/μ with μ = 1 → coefficient 1.
        let dims = Dims::new(4, 4, 4);
        let mesh = CartesianMesh::unit(dims);
        let perm = CellField::constant(dims, 1.0);
        let t = Transmissibilities::<f64>::from_mesh(&mesh, &perm, 1.0);
        let center = dims.linear(CellIndex::new(1, 1, 1));
        for dir in Direction::ALL {
            assert!((t.get(center, dir) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn viscosity_scales_inverse() {
        let dims = Dims::new(3, 3, 3);
        let mesh = CartesianMesh::unit(dims);
        let perm = CellField::constant(dims, 1.0);
        let t1 = Transmissibilities::<f64>::from_mesh(&mesh, &perm, 1.0);
        let t2 = Transmissibilities::<f64>::from_mesh(&mesh, &perm, 2.0);
        let c = dims.linear(CellIndex::new(1, 1, 1));
        assert!((t1.get(c, Direction::XP) / t2.get(c, Direction::XP) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_average_respects_heterogeneity() {
        // Two-layer permeability along X: cells with κ = 1 adjacent to κ = 3 on a
        // unit mesh. Half transmissibilities: 2 and 6 → harmonic: 1/(1/2+1/6) = 1.5.
        let dims = Dims::new(2, 1, 1);
        let mesh = CartesianMesh::unit(dims);
        let perm = CellField::from_fn(dims, |c| if c.x == 0 { 1.0 } else { 3.0 });
        let t = Transmissibilities::<f64>::from_mesh(&mesh, &perm, 1.0);
        assert!((t.get(0, Direction::XP) - 1.5).abs() < 1e-14);
        assert!((t.get(1, Direction::XM) - 1.5).abs() < 1e-14);
    }

    #[test]
    fn symmetry_holds_for_heterogeneous_fields() {
        let dims = Dims::new(6, 5, 4);
        let mesh = CartesianMesh::with_spacing(dims, 2.0, 3.0, 1.0);
        let perm = PermeabilityModel::LogNormal {
            mean_log: 0.0,
            std_log: 1.5,
            seed: 3,
        }
        .generate(dims);
        let t = Transmissibilities::<f64>::from_mesh(&mesh, &perm, 0.5);
        assert!(t.max_asymmetry() < 1e-12);
    }

    #[test]
    fn column_extraction() {
        let dims = Dims::new(3, 3, 4);
        let t = Transmissibilities::<f32>::uniform(dims, 1.0);
        let col = t.column_dir(1, 1, Direction::ZP);
        assert_eq!(col.len(), 4);
        assert_eq!(col[3], 0.0); // top face of the column is a boundary
        assert_eq!(col[0], 1.0);
        let col_down = t.column_dir(1, 1, Direction::ZM);
        assert_eq!(col_down[0], 0.0); // bottom face is a boundary
    }

    #[test]
    fn cell_rows_exposes_the_linear_layout() {
        let dims = Dims::new(3, 2, 2);
        let t = Transmissibilities::<f64>::uniform(dims, 4.0);
        let rows = t.cell_rows();
        assert_eq!(rows.len(), dims.num_cells());
        for (idx, row) in rows.iter().enumerate() {
            for dir in Direction::ALL {
                assert_eq!(row[dir.index()], t.get(idx, dir));
            }
        }
    }

    #[test]
    fn conversion_and_bytes() {
        let dims = Dims::new(2, 2, 2);
        let t = Transmissibilities::<f64>::uniform(dims, 1.25);
        let tf: Transmissibilities<f32> = t.convert();
        assert_eq!(tf.get(0, Direction::XP), 1.25);
        assert_eq!(t.bytes(), 8 * 6 * 8);
        assert_eq!(tf.bytes(), 8 * 6 * 4);
    }

    proptest! {
        #[test]
        fn symmetry_property(seed in 0u64..50, nx in 2usize..6, ny in 2usize..6, nz in 2usize..6) {
            let dims = Dims::new(nx, ny, nz);
            let mesh = CartesianMesh::unit(dims);
            let perm = PermeabilityModel::LogNormal { mean_log: 0.0, std_log: 1.0, seed }
                .generate(dims);
            let t = Transmissibilities::<f64>::from_mesh(&mesh, &perm, 1.0);
            prop_assert!(t.max_asymmetry() < 1e-12);
        }

        #[test]
        fn coefficients_are_nonnegative(seed in 0u64..50) {
            let dims = Dims::new(4, 4, 4);
            let mesh = CartesianMesh::unit(dims);
            let perm = PermeabilityModel::LogNormal { mean_log: -1.0, std_log: 2.0, seed }
                .generate(dims);
            let t = Transmissibilities::<f64>::from_mesh(&mesh, &perm, 1.0);
            for c in 0..dims.num_cells() {
                for dir in Direction::ALL {
                    prop_assert!(t.get(c, dir) >= 0.0);
                }
            }
        }
    }
}
