//! Synthetic permeability models.
//!
//! The paper's simulations consume "highly detailed geomodels" that are proprietary.
//! Per the reproduction's substitution rule (see `DESIGN.md`), this module provides
//! synthetic permeability generators that exercise the same code path — the
//! transmissibility computation and the heterogeneous matrix-free operator — with
//! controlled heterogeneity:
//!
//! * [`PermeabilityModel::Homogeneous`] — a single scalar permeability;
//! * [`PermeabilityModel::Layered`] — piecewise-constant layers along Z, the
//!   classic "layer-cake" reservoir description;
//! * [`PermeabilityModel::LogNormal`] — spatially uncorrelated log-normal
//!   permeability, the standard stochastic model for field heterogeneity;
//! * [`PermeabilityModel::Channelized`] — high-permeability sinusoidal channels in a
//!   low-permeability background, mimicking fluvial geomodels (SPE10-like contrast).

use crate::dims::Dims;
use crate::field::CellField;
use crate::rng::DeterministicRng;

/// Millidarcy expressed in square metres, the usual unit conversion for reservoir
/// permeability.
pub const MILLIDARCY: f64 = 9.869_233e-16;

/// A synthetic permeability model. All permeabilities are isotropic scalars, as in
/// the paper (Eq. 1a uses a scalar κ).
#[derive(Clone, Debug, PartialEq)]
pub enum PermeabilityModel {
    /// Uniform permeability everywhere (value in m²).
    Homogeneous { value: f64 },
    /// Horizontal layers along Z; `layer_values[z * layer_values.len() / nz]` is used
    /// for depth `z`.
    Layered { layer_values: Vec<f64> },
    /// Log-normal permeability: `exp(N(mean_log, std_log))` per cell, reproducible
    /// from `seed`.
    LogNormal {
        mean_log: f64,
        std_log: f64,
        seed: u64,
    },
    /// Sinusoidal high-permeability channels embedded in a background.
    Channelized {
        background: f64,
        channel: f64,
        /// Number of channels across the Y extent.
        num_channels: usize,
        /// Channel half-width in cells.
        half_width: f64,
        /// Amplitude of the sinusoidal meander, in cells.
        amplitude: f64,
        seed: u64,
    },
}

impl PermeabilityModel {
    /// A reasonable default: 100 mD homogeneous.
    pub fn default_homogeneous() -> Self {
        PermeabilityModel::Homogeneous {
            value: 100.0 * MILLIDARCY,
        }
    }

    /// Evaluate the model on a grid, producing a per-cell permeability field in m².
    pub fn generate(&self, dims: Dims) -> CellField<f64> {
        match self {
            PermeabilityModel::Homogeneous { value } => {
                assert!(*value > 0.0, "permeability must be positive");
                CellField::constant(dims, *value)
            }
            PermeabilityModel::Layered { layer_values } => {
                assert!(!layer_values.is_empty(), "at least one layer required");
                assert!(
                    layer_values.iter().all(|&v| v > 0.0),
                    "permeability must be positive"
                );
                let n_layers = layer_values.len();
                CellField::from_fn(dims, |c| {
                    let layer = (c.z * n_layers) / dims.nz;
                    layer_values[layer.min(n_layers - 1)]
                })
            }
            PermeabilityModel::LogNormal {
                mean_log,
                std_log,
                seed,
            } => {
                assert!(*std_log >= 0.0, "standard deviation must be non-negative");
                let mut rng = DeterministicRng::seed_from_u64(*seed);
                let mut values = Vec::with_capacity(dims.num_cells());
                for _ in 0..dims.num_cells() {
                    let z = sample_standard_normal(&mut rng);
                    values.push((mean_log + std_log * z).exp());
                }
                CellField::from_vec(dims, values)
            }
            PermeabilityModel::Channelized {
                background,
                channel,
                num_channels,
                half_width,
                amplitude,
                seed,
            } => {
                assert!(
                    *background > 0.0 && *channel > 0.0,
                    "permeability must be positive"
                );
                assert!(*num_channels > 0, "at least one channel required");
                let mut rng = DeterministicRng::seed_from_u64(*seed);
                // Random phase per channel so different seeds give different geometries.
                let phases: Vec<f64> = (0..*num_channels)
                    .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
                    .collect();
                let spacing = dims.ny as f64 / *num_channels as f64;
                CellField::from_fn(dims, |c| {
                    let x = c.x as f64;
                    let y = c.y as f64;
                    let mut inside = false;
                    for (k, phase) in phases.iter().enumerate() {
                        let center = (k as f64 + 0.5) * spacing
                            + amplitude
                                * (x / dims.nx.max(1) as f64 * std::f64::consts::TAU + phase).sin();
                        if (y - center).abs() <= *half_width {
                            inside = true;
                            break;
                        }
                    }
                    if inside {
                        *channel
                    } else {
                        *background
                    }
                })
            }
        }
    }

    /// The model with its random seed replaced, for stochastic models
    /// ([`LogNormal`](PermeabilityModel::LogNormal) /
    /// [`Channelized`](PermeabilityModel::Channelized)); deterministic models
    /// are returned unchanged.  Scenario sweeps use this to fan one spec
    /// across reproducible permeability realisations.
    pub fn reseeded(&self, seed: u64) -> Self {
        let mut model = self.clone();
        match &mut model {
            PermeabilityModel::LogNormal { seed: s, .. } => *s = seed,
            PermeabilityModel::Channelized { seed: s, .. } => *s = seed,
            PermeabilityModel::Homogeneous { .. } | PermeabilityModel::Layered { .. } => {}
        }
        model
    }

    /// Short human-readable label used in workload names and reports.
    pub fn label(&self) -> &'static str {
        match self {
            PermeabilityModel::Homogeneous { .. } => "homogeneous",
            PermeabilityModel::Layered { .. } => "layered",
            PermeabilityModel::LogNormal { .. } => "log-normal",
            PermeabilityModel::Channelized { .. } => "channelized",
        }
    }
}

/// Box–Muller sample of a standard normal variate.
fn sample_standard_normal(rng: &mut DeterministicRng) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// Contrast ratio (max/min) of a permeability field — a quick heterogeneity metric
/// used in tests and reports.
pub fn contrast_ratio(perm: &CellField<f64>) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for &v in perm.as_slice() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    hi / lo
}

/// Arithmetic mean of a permeability field (explicitly sequential fold: the
/// value feeds reports that must be bitwise-reproducible).
pub fn mean(perm: &CellField<f64>) -> f64 {
    crate::reduce::seq_sum(perm.as_slice().iter().copied()) / perm.len() as f64
}

/// Evaluate the layer index a given depth belongs to (exposed for tests).
pub fn layer_of(z: usize, nz: usize, n_layers: usize) -> usize {
    ((z * n_layers) / nz).min(n_layers - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::CellIndex;

    fn dims() -> Dims {
        Dims::new(8, 6, 10)
    }

    #[test]
    fn homogeneous_is_constant() {
        let f = PermeabilityModel::Homogeneous { value: 5.0 }.generate(dims());
        assert!(f.as_slice().iter().all(|&v| v == 5.0));
        assert_eq!(contrast_ratio(&f), 1.0);
        assert_eq!(mean(&f), 5.0);
    }

    #[test]
    fn layered_respects_depth() {
        let layers = vec![1.0, 10.0, 100.0];
        let f = PermeabilityModel::Layered {
            layer_values: layers.clone(),
        }
        .generate(dims());
        // nz = 10 with 3 layers: z in 0..=3 -> layer 0, 4..=6 -> layer 1, 7..=9 -> layer 2
        assert_eq!(f.at(CellIndex::new(0, 0, 0)), 1.0);
        assert_eq!(f.at(CellIndex::new(0, 0, 9)), 100.0);
        // Same value within one horizontal plane.
        for y in 0..6 {
            for x in 0..8 {
                assert_eq!(f.at(CellIndex::new(x, y, 5)), f.at(CellIndex::new(0, 0, 5)));
            }
        }
        assert!(contrast_ratio(&f) >= 100.0 - 1e-12);
    }

    #[test]
    fn log_normal_is_reproducible_and_positive() {
        let m = PermeabilityModel::LogNormal {
            mean_log: 0.0,
            std_log: 1.0,
            seed: 42,
        };
        let a = m.generate(dims());
        let b = m.generate(dims());
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&v| v > 0.0));
        let c = PermeabilityModel::LogNormal {
            mean_log: 0.0,
            std_log: 1.0,
            seed: 43,
        }
        .generate(dims());
        assert_ne!(a, c);
    }

    #[test]
    fn log_normal_zero_std_is_exp_mean() {
        let m = PermeabilityModel::LogNormal {
            mean_log: 2.0,
            std_log: 0.0,
            seed: 1,
        };
        let f = m.generate(dims());
        for &v in f.as_slice() {
            assert!((v - 2.0f64.exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn channelized_contains_both_values() {
        let m = PermeabilityModel::Channelized {
            background: 1.0,
            channel: 1000.0,
            num_channels: 2,
            half_width: 1.0,
            amplitude: 1.5,
            seed: 7,
        };
        let f = m.generate(Dims::new(32, 32, 4));
        let has_bg = f.as_slice().contains(&1.0);
        let has_ch = f.as_slice().contains(&1000.0);
        assert!(has_bg && has_ch);
        assert_eq!(contrast_ratio(&f), 1000.0);
    }

    #[test]
    fn labels() {
        assert_eq!(
            PermeabilityModel::default_homogeneous().label(),
            "homogeneous"
        );
        assert_eq!(
            PermeabilityModel::Layered {
                layer_values: vec![1.0]
            }
            .label(),
            "layered"
        );
    }

    #[test]
    fn layer_of_covers_range() {
        assert_eq!(layer_of(0, 10, 3), 0);
        assert_eq!(layer_of(9, 10, 3), 2);
        assert_eq!(layer_of(5, 10, 3), 1);
    }

    #[test]
    fn millidarcy_constant_is_sane() {
        assert!((MILLIDARCY - 9.87e-16).abs() < 1e-17);
    }
}
