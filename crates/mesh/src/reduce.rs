//! Explicitly sequential deterministic folds.
//!
//! Floating-point addition is not associative, so `Iterator::sum` — whose
//! documentation makes no ordering promise, and whose specialisations are free
//! to reassociate — is banned in the bitwise-contract crates by the
//! `float-reduction` audit rule (see `AUDIT.md`).  The helpers here are the
//! blessed small-scale alternative: a plain left fold in iteration order,
//! guaranteed to stay that way.  They complement, not replace, the solver's
//! large-scale deterministic reductions (`mffv_solver::reduction` for the
//! fabric all-reduce order, `mffv_fv::plan::det_dot` for the slab order): use
//! those on field-sized data, these for small per-report aggregates (well
//! totals, Dirichlet means, latency sums) where the contract is simply "the
//! same inputs in the same order produce the same bits".
//!
//! This module lives in `mffv-mesh` — the bottom of the crate stack — so every
//! layer (mesh itself, fv, solver, engine, the umbrella crate) can share one
//! implementation without a dependency cycle; `mffv-fv` re-exports it.

use crate::scalar::Scalar;

/// Sum `values` by a plain sequential left fold in iteration order.
///
/// Bitwise-deterministic for a given input sequence: no pairwise splitting, no
/// SIMD reassociation, no iterator-specialisation surprises.
pub fn seq_sum<T: Scalar>(values: impl IntoIterator<Item = T>) -> T {
    let mut acc = T::ZERO;
    for v in values {
        acc += v;
    }
    acc
}

/// Arithmetic mean via [`seq_sum`]; zero for an empty sequence.
pub fn seq_mean<T: Scalar>(values: impl IntoIterator<Item = T>) -> T {
    let mut acc = T::ZERO;
    let mut n = 0usize;
    for v in values {
        acc += v;
        n += 1;
    }
    if n == 0 {
        T::ZERO
    } else {
        acc / T::from_f64(n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_sum_is_the_left_fold() {
        // Catastrophic-cancellation ordering: left fold loses the tiny value,
        // so equality with the explicit loop proves the order is sequential.
        let values = [1.0e16f64, 1.0, -1.0e16];
        let mut expected = 0.0f64;
        for v in values {
            expected += v;
        }
        assert_eq!(seq_sum(values).to_bits(), expected.to_bits());
        assert_eq!(seq_sum(values), 0.0); // the 1.0 was absorbed
    }

    #[test]
    fn seq_sum_empty_is_zero() {
        assert_eq!(seq_sum::<f64>([]), 0.0);
        assert_eq!(seq_sum::<f32>([]), 0.0);
    }

    #[test]
    fn seq_mean_matches_sum_over_len_and_handles_empty() {
        let values = [2.0f64, 4.0, 9.0];
        assert_eq!(seq_mean(values), (2.0 + 4.0 + 9.0) / 3.0);
        assert_eq!(seq_mean::<f64>([]), 0.0);
    }

    #[test]
    fn seq_sum_works_in_f32() {
        let values = [0.1f32, 0.2, 0.3];
        let mut expected = 0.0f32;
        for v in values {
            expected += v;
        }
        assert_eq!(seq_sum(values).to_bits(), expected.to_bits());
    }
}
