//! Named problem setups ("workloads") reproducing the paper's experimental grids.
//!
//! The evaluation section of the paper uses a family of grids with `Nz = 922` and
//! X/Y extents growing up to the full CS-2 fabric of `750 × 994` PEs (Table III), a
//! Figure-5 injection scenario with a source column in one corner and a producer in
//! the opposite corner, and a fixed CG tolerance of `2 × 10⁻¹⁰`.
//!
//! Because the full 687-million-cell grid does not fit in host memory here, every
//! paper grid can be **scaled**: [`WorkloadSpec::scaled`] divides each extent by a
//! factor while keeping the aspect ratio, so executed experiments sweep the same
//! shape and the analytic performance models are evaluated at the paper's full
//! logical sizes (see `DESIGN.md` §2).

use crate::boundary::DirichletSet;
use crate::dims::Dims;
use crate::field::CellField;
use crate::mesh::CartesianMesh;
use crate::permeability::PermeabilityModel;
use crate::transmissibility::Transmissibilities;

/// A [`WorkloadSpec`] that cannot be materialised into a solvable problem.
///
/// Produced by [`WorkloadSpec::validate`]; callers above the mesh layer (the
/// `Simulation` facade, the `mffv-engine` batch executor) convert it into
/// their own error types so invalid specs surface as descriptive errors
/// instead of downstream panics or silent overflow.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadError {
    message: String,
}

impl WorkloadError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for WorkloadError {}

/// The CG convergence tolerance used throughout the paper's evaluation (§V-C).
pub const PAPER_TOLERANCE: f64 = 2e-10;

/// The fabric extent available on the CS-2 ("the grid size is 750 × 994", §V-A).
pub const PAPER_FABRIC: (usize, usize) = (750, 994);

/// The Z depth used in every paper experiment.
pub const PAPER_NZ: usize = 922;

/// How the Dirichlet boundary is configured for a workload.
#[derive(Clone, Debug, PartialEq)]
pub enum BoundarySpec {
    /// Source column at (0, 0) and producer column at (nx-1, ny-1), as in Figure 5.
    SourceProducer {
        source_pressure: f64,
        producer_pressure: f64,
    },
    /// Fixed pressures on the two X faces of the domain.
    XFaces {
        left_pressure: f64,
        right_pressure: f64,
    },
    /// No Dirichlet cells (only usable with a pinned/regularised solver).
    None,
}

/// A declarative description of a problem setup.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Human-readable name used in reports and benchmark IDs.
    pub name: String,
    /// Grid extents.
    pub dims: Dims,
    /// Cell spacing in metres.
    pub spacing: [f64; 3],
    /// Permeability model.
    pub permeability: PermeabilityModel,
    /// Fluid viscosity in Pa·s.
    pub viscosity: f64,
    /// Boundary configuration.
    pub boundary: BoundarySpec,
    /// CG convergence tolerance on `rᵀr`.
    pub tolerance: f64,
    /// Maximum number of CG iterations.
    pub max_iterations: usize,
}

impl WorkloadSpec {
    /// A small, fully homogeneous setup for quickstarts and unit tests.
    pub fn quickstart() -> Self {
        Self {
            name: "quickstart-16x16x8".to_string(),
            dims: Dims::new(16, 16, 8),
            spacing: [1.0, 1.0, 1.0],
            permeability: PermeabilityModel::Homogeneous { value: 1.0 },
            viscosity: 1.0,
            boundary: BoundarySpec::SourceProducer {
                source_pressure: 1.0,
                producer_pressure: 0.0,
            },
            tolerance: 1e-10,
            max_iterations: 2000,
        }
    }

    /// The Figure-5 CO₂-injection scenario at a configurable grid size: unit
    /// permeability contrast through a layered model, a pressurised source column in
    /// the top-left corner and a producer column in the bottom-right corner.
    pub fn fig5(dims: Dims) -> Self {
        Self {
            name: format!("fig5-{dims}"),
            dims,
            spacing: [10.0, 10.0, 2.0],
            permeability: PermeabilityModel::Layered {
                layer_values: vec![2.0e-13, 5.0e-14, 1.0e-13, 2.5e-14],
            },
            viscosity: 5.0e-4,
            boundary: BoundarySpec::SourceProducer {
                source_pressure: 4.0e7,
                producer_pressure: 1.0e7,
            },
            tolerance: PAPER_TOLERANCE,
            max_iterations: 10_000,
        }
    }

    /// A paper-style grid (homogeneous permeability, source/producer wells, the
    /// paper's tolerance) at the given logical extents.
    pub fn paper_grid(nx: usize, ny: usize, nz: usize) -> Self {
        let dims = Dims::new(nx, ny, nz);
        Self {
            name: format!("paper-{dims}"),
            dims,
            spacing: [1.0, 1.0, 1.0],
            permeability: PermeabilityModel::Homogeneous { value: 1.0 },
            viscosity: 1.0,
            boundary: BoundarySpec::SourceProducer {
                source_pressure: 1.0,
                producer_pressure: 0.0,
            },
            tolerance: PAPER_TOLERANCE,
            max_iterations: 10_000,
        }
    }

    /// The seven grid sizes of Table III, at their full logical extents.
    pub fn table3_grids() -> Vec<(usize, usize, usize)> {
        vec![
            (200, 200, PAPER_NZ),
            (400, 400, PAPER_NZ),
            (600, 600, PAPER_NZ),
            (750, 600, PAPER_NZ),
            (750, 800, PAPER_NZ),
            (750, 950, PAPER_NZ),
            (750, 994, PAPER_NZ),
        ]
    }

    /// The largest grid of the paper (Table II / Table IV: `750 × 994 × 922`).
    pub fn table2_grid() -> (usize, usize, usize) {
        (PAPER_FABRIC.0, PAPER_FABRIC.1, PAPER_NZ)
    }

    /// Scale every extent down by `factor` (each extent is divided by `factor` and
    /// clamped to at least 2 cells), keeping the rest of the spec unchanged.  Used to
    /// execute the paper's grid family on host-sized memory.
    pub fn scaled(&self, factor: usize) -> Self {
        assert!(factor >= 1, "scale factor must be at least 1");
        let scale = |n: usize| (n / factor).max(2);
        let dims = Dims::new(
            scale(self.dims.nx),
            scale(self.dims.ny),
            scale(self.dims.nz),
        );
        Self {
            name: format!("{}-scaled{}", self.name, factor),
            dims,
            ..self.clone()
        }
    }

    /// Replace the seed of a stochastic permeability model ([`LogNormal`] /
    /// [`Channelized`]), leaving deterministic models untouched — the hook the
    /// engine's `JobSpec::seed` and scenario sweeps use to fan one spec across
    /// reproducible permeability realisations.
    ///
    /// [`LogNormal`]: PermeabilityModel::LogNormal
    /// [`Channelized`]: PermeabilityModel::Channelized
    pub fn with_permeability_seed(&self, seed: u64) -> Self {
        Self {
            permeability: self.permeability.reseeded(seed),
            ..self.clone()
        }
    }

    /// Check that the spec describes a solvable problem: non-zero grid extents
    /// whose cell count does not overflow `usize`, finite positive spacing and
    /// viscosity, a finite positive tolerance, and a non-zero iteration cap.
    ///
    /// [`Workload::from_spec`] and the engine's job intake call this, so a bad
    /// spec fails with a descriptive [`WorkloadError`] instead of panicking
    /// (or wrapping around) somewhere deep in field allocation or the solver.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        let Dims { nx, ny, nz } = self.dims;
        if nx == 0 || ny == 0 || nz == 0 {
            return Err(WorkloadError::new(format!(
                "grid extents must all be non-zero, got {}x{}x{}",
                nx, ny, nz
            )));
        }
        if nx
            .checked_mul(ny)
            .and_then(|xy| xy.checked_mul(nz))
            .is_none()
        {
            return Err(WorkloadError::new(format!(
                "grid {}x{}x{} overflows the addressable cell count",
                nx, ny, nz
            )));
        }
        for (axis, &h) in ["dx", "dy", "dz"].iter().zip(self.spacing.iter()) {
            if !h.is_finite() || h <= 0.0 {
                return Err(WorkloadError::new(format!(
                    "cell spacing {axis} must be finite and positive, got {h}"
                )));
            }
        }
        if !self.viscosity.is_finite() || self.viscosity <= 0.0 {
            return Err(WorkloadError::new(format!(
                "viscosity must be finite and positive, got {}",
                self.viscosity
            )));
        }
        if !self.tolerance.is_finite() || self.tolerance <= 0.0 {
            return Err(WorkloadError::new(format!(
                "tolerance must be finite and positive, got {}",
                self.tolerance
            )));
        }
        if self.max_iterations == 0 {
            return Err(WorkloadError::new(
                "max_iterations must be non-zero (the solver could never step)",
            ));
        }
        Ok(())
    }

    /// Materialise the spec into a [`Workload`] (computes permeability and
    /// transmissibility fields).  Panics on an invalid spec; use
    /// [`Workload::try_from_spec`] for a fallible build.
    pub fn build(&self) -> Workload {
        Workload::from_spec(self)
    }
}

/// A fully materialised problem: mesh, permeability, transmissibilities, boundary
/// conditions and an initial pressure field with the Dirichlet values imposed.
#[derive(Clone, Debug)]
pub struct Workload {
    spec: WorkloadSpec,
    mesh: CartesianMesh,
    permeability: CellField<f64>,
    transmissibility: Transmissibilities<f64>,
    dirichlet: DirichletSet,
}

impl Workload {
    /// Materialise a [`WorkloadSpec`], panicking with the validation message
    /// when the spec is invalid (see [`Workload::try_from_spec`]).
    pub fn from_spec(spec: &WorkloadSpec) -> Self {
        Self::try_from_spec(spec)
            // audit: allow(panic) — invariant: documented panicking constructor;
            // fallible callers use try_from_spec, the engine validates at intake.
            .unwrap_or_else(|e| panic!("invalid workload `{}`: {e}", spec.name))
    }

    /// Materialise a [`WorkloadSpec`], rejecting invalid specs with a
    /// descriptive [`WorkloadError`] instead of a downstream panic.
    pub fn try_from_spec(spec: &WorkloadSpec) -> Result<Self, WorkloadError> {
        spec.validate()?;
        let mesh = CartesianMesh::with_spacing(
            spec.dims,
            spec.spacing[0],
            spec.spacing[1],
            spec.spacing[2],
        );
        let permeability = spec.permeability.generate(spec.dims);
        let transmissibility = Transmissibilities::from_mesh(&mesh, &permeability, spec.viscosity);
        let dirichlet = match spec.boundary {
            BoundarySpec::SourceProducer {
                source_pressure,
                producer_pressure,
            } => DirichletSet::source_producer(spec.dims, source_pressure, producer_pressure),
            BoundarySpec::XFaces {
                left_pressure,
                right_pressure,
            } => DirichletSet::x_faces(spec.dims, left_pressure, right_pressure),
            BoundarySpec::None => DirichletSet::empty(),
        };
        Ok(Self {
            spec: spec.clone(),
            mesh,
            permeability,
            transmissibility,
            dirichlet,
        })
    }

    /// The originating spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Grid extents.
    pub fn dims(&self) -> Dims {
        self.spec.dims
    }

    /// The mesh geometry.
    pub fn mesh(&self) -> &CartesianMesh {
        &self.mesh
    }

    /// The permeability field (m²).
    pub fn permeability(&self) -> &CellField<f64> {
        &self.permeability
    }

    /// The TPFA transmissibility coefficients in `f64`.
    pub fn transmissibility(&self) -> &Transmissibilities<f64> {
        &self.transmissibility
    }

    /// The Dirichlet cell set.
    pub fn dirichlet(&self) -> &DirichletSet {
        &self.dirichlet
    }

    /// CG tolerance for this workload.
    pub fn tolerance(&self) -> f64 {
        self.spec.tolerance
    }

    /// Maximum CG iterations for this workload.
    pub fn max_iterations(&self) -> usize {
        self.spec.max_iterations
    }

    /// An initial pressure guess: the mean of the Dirichlet values everywhere (or
    /// zero when there are none), with the Dirichlet values imposed exactly.
    pub fn initial_pressure<T: crate::scalar::Scalar>(&self) -> CellField<T> {
        // Sequential fold: the initial guess seeds the CG iteration, so its
        // bits are part of the solve's determinism contract.
        let mean = crate::reduce::seq_mean(self.dirichlet.cells().iter().map(|c| c.value));
        let mut p = CellField::constant(self.dims(), T::from_f64(mean));
        self.dirichlet.impose(&mut p);
        p
    }

    /// [`initial_pressure`](Self::initial_pressure) into a caller-owned
    /// buffer — bitwise the same field, zero allocations.  Panics when the
    /// buffer's dims differ from the workload's.
    pub fn initial_pressure_into<T: crate::scalar::Scalar>(&self, out: &mut CellField<T>) {
        assert_eq!(out.dims(), self.dims(), "initial-pressure buffer mismatch");
        let mean = crate::reduce::seq_mean(self.dirichlet.cells().iter().map(|c| c.value));
        out.fill(T::from_f64(mean));
        self.dirichlet.impose(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_builds() {
        let w = WorkloadSpec::quickstart().build();
        assert_eq!(w.dims(), Dims::new(16, 16, 8));
        assert_eq!(w.dirichlet().len(), 2 * 8);
        assert!(w.tolerance() > 0.0);
        assert_eq!(w.name(), "quickstart-16x16x8");
    }

    #[test]
    fn table3_grid_family_matches_paper() {
        let grids = WorkloadSpec::table3_grids();
        assert_eq!(grids.len(), 7);
        assert_eq!(grids[0], (200, 200, 922));
        assert_eq!(grids[6], (750, 994, 922));
        let cells: usize = grids[6].0 * grids[6].1 * grids[6].2;
        assert_eq!(cells, 687_351_000);
        assert_eq!(WorkloadSpec::table2_grid(), (750, 994, 922));
    }

    #[test]
    fn scaling_preserves_aspect_and_floors_at_two() {
        let spec = WorkloadSpec::paper_grid(750, 994, 922);
        let scaled = spec.scaled(8);
        assert_eq!(scaled.dims, Dims::new(93, 124, 115));
        let tiny = spec.scaled(1000);
        assert_eq!(tiny.dims, Dims::new(2, 2, 2));
        assert!(scaled.name.contains("scaled8"));
    }

    #[test]
    fn fig5_has_corner_wells() {
        let w = WorkloadSpec::fig5(Dims::new(12, 10, 6)).build();
        let d = w.dims();
        assert!(w
            .dirichlet()
            .contains_linear(d.linear(crate::dims::CellIndex::new(0, 0, 0))));
        assert!(w
            .dirichlet()
            .contains_linear(d.linear(crate::dims::CellIndex::new(11, 9, 5))));
        // Layered model gives a heterogeneous field.
        assert!(crate::permeability::contrast_ratio(w.permeability()) > 1.0);
    }

    #[test]
    fn initial_pressure_respects_dirichlet() {
        let w = WorkloadSpec::quickstart().build();
        let p: CellField<f64> = w.initial_pressure();
        let d = w.dims();
        assert_eq!(p.at(crate::dims::CellIndex::new(0, 0, 0)), 1.0);
        assert_eq!(
            p.at(crate::dims::CellIndex::new(d.nx - 1, d.ny - 1, 0)),
            0.0
        );
        // interior initialised to the mean of the boundary values
        assert_eq!(p.at(crate::dims::CellIndex::new(4, 4, 4)), 0.5);
    }

    #[test]
    fn paper_tolerance_constant() {
        assert_eq!(PAPER_TOLERANCE, 2e-10);
        assert_eq!(PAPER_FABRIC, (750, 994));
        assert_eq!(PAPER_NZ, 922);
    }

    #[test]
    fn transmissibilities_are_symmetric_for_fig5() {
        let w = WorkloadSpec::fig5(Dims::new(6, 5, 8)).build();
        assert!(w.transmissibility().max_asymmetry() < 1e-12);
    }

    #[test]
    fn validate_accepts_every_named_spec() {
        assert!(WorkloadSpec::quickstart().validate().is_ok());
        assert!(WorkloadSpec::fig5(Dims::new(12, 10, 6)).validate().is_ok());
        assert!(WorkloadSpec::paper_grid(750, 994, 922).validate().is_ok());
    }

    #[test]
    fn validate_rejects_degenerate_specs() {
        let base = WorkloadSpec::quickstart();

        let zero = WorkloadSpec {
            dims: Dims {
                nx: 0,
                ny: 4,
                nz: 4,
            },
            ..base.clone()
        };
        assert!(zero
            .validate()
            .unwrap_err()
            .to_string()
            .contains("non-zero"));

        let huge = WorkloadSpec {
            dims: Dims {
                nx: usize::MAX,
                ny: 2,
                nz: 2,
            },
            ..base.clone()
        };
        assert!(huge
            .validate()
            .unwrap_err()
            .to_string()
            .contains("overflow"));

        let bad_tol = WorkloadSpec {
            tolerance: f64::NAN,
            ..base.clone()
        };
        assert!(bad_tol
            .validate()
            .unwrap_err()
            .to_string()
            .contains("tolerance"));
        let neg_tol = WorkloadSpec {
            tolerance: -1e-10,
            ..base.clone()
        };
        assert!(neg_tol.validate().is_err());

        let no_iters = WorkloadSpec {
            max_iterations: 0,
            ..base.clone()
        };
        assert!(no_iters
            .validate()
            .unwrap_err()
            .to_string()
            .contains("max_iterations"));

        let bad_spacing = WorkloadSpec {
            spacing: [1.0, 0.0, 1.0],
            ..base.clone()
        };
        assert!(bad_spacing
            .validate()
            .unwrap_err()
            .to_string()
            .contains("spacing"));

        let bad_viscosity = WorkloadSpec {
            viscosity: f64::INFINITY,
            ..base
        };
        assert!(bad_viscosity
            .validate()
            .unwrap_err()
            .to_string()
            .contains("viscosity"));
    }

    #[test]
    fn try_from_spec_surfaces_the_validation_error() {
        let bad = WorkloadSpec {
            max_iterations: 0,
            ..WorkloadSpec::quickstart()
        };
        let err = Workload::try_from_spec(&bad).unwrap_err();
        assert!(err.to_string().contains("max_iterations"));
    }

    #[test]
    #[should_panic(expected = "invalid workload")]
    fn from_spec_panics_with_the_validation_message() {
        let bad = WorkloadSpec {
            tolerance: 0.0,
            ..WorkloadSpec::quickstart()
        };
        let _ = bad.build();
    }

    #[test]
    fn permeability_seed_reseeds_only_stochastic_models() {
        let deterministic = WorkloadSpec::quickstart().with_permeability_seed(7);
        assert_eq!(
            deterministic.permeability,
            WorkloadSpec::quickstart().permeability
        );

        let stochastic = WorkloadSpec {
            permeability: crate::permeability::PermeabilityModel::LogNormal {
                mean_log: 0.0,
                std_log: 0.5,
                seed: 1,
            },
            ..WorkloadSpec::quickstart()
        };
        let a = stochastic.with_permeability_seed(2);
        let b = stochastic.with_permeability_seed(2);
        assert_eq!(a.permeability, b.permeability);
        assert_ne!(a.permeability, stochastic.permeability);
        assert_ne!(
            a.build().permeability().as_slice(),
            stochastic.build().permeability().as_slice()
        );
    }
}
