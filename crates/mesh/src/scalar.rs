//! Floating-point scalar abstraction.
//!
//! The paper runs every device computation in 32-bit floating point ("all
//! floating-point numbers used in the experiments are 32-bit", §V-C), while host-side
//! verification benefits from a 64-bit path.  [`Scalar`] is the minimal trait the
//! rest of the workspace needs to be generic over both.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type usable in every kernel of the workspace.
///
/// Implemented for `f32` (device precision in the paper) and `f64` (host
/// verification precision).
pub trait Scalar:
    Copy
    + PartialOrd
    + PartialEq
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of the type.
    const EPSILON: Self;

    /// Lossy conversion from `f64`.
    fn from_f64(v: f64) -> Self;
    /// Lossless widening to `f64`.
    fn to_f64(self) -> f64;
    /// Conversion from a cell count / index.
    fn from_usize(v: usize) -> Self {
        Self::from_f64(v as f64)
    }
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Fused multiply-add `self * a + b` (maps onto the FMA instruction counted in
    /// Table V of the paper).
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Elementwise maximum.
    fn max_with(self, other: Self) -> Self;
    /// Elementwise minimum.
    fn min_with(self, other: Self) -> Self;
    /// Whether the value is finite (not NaN / ±inf).
    fn is_finite(self) -> bool;
}

macro_rules! impl_scalar {
    ($t:ty) => {
        impl Scalar for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;

            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline]
            fn max_with(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline]
            fn min_with(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_scalar!(f32);
impl_scalar!(f64);

/// Relative comparison helper used throughout the test suites.
///
/// Returns `true` when `|a - b| <= atol + rtol * max(|a|, |b|)`.
pub fn approx_eq<T: Scalar>(a: T, b: T, rtol: f64, atol: f64) -> bool {
    let a = a.to_f64();
    let b = b.to_f64();
    (a - b).abs() <= atol + rtol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_literals() {
        assert_eq!(f32::ZERO, 0.0f32);
        assert_eq!(f64::ONE, 1.0f64);
        assert_eq!(<f32 as Scalar>::EPSILON, f32::EPSILON);
    }

    #[test]
    fn conversions_round_trip() {
        let x = 3.25f64;
        assert_eq!(f64::from_f64(x), x);
        assert_eq!(f32::from_f64(x).to_f64(), 3.25);
        assert_eq!(f32::from_usize(7), 7.0);
    }

    #[test]
    fn mul_add_matches_expression() {
        let a = 2.0f32;
        assert_eq!(a.mul_add(3.0, 4.0), 10.0);
        let b = 2.0f64;
        assert_eq!(b.mul_add(3.0, 4.0), 10.0);
    }

    #[test]
    fn min_max_and_abs() {
        assert_eq!((-2.0f32).abs(), 2.0);
        assert_eq!(1.0f64.max_with(2.0), 2.0);
        assert_eq!(1.0f64.min_with(2.0), 1.0);
    }

    #[test]
    fn finiteness() {
        assert!(1.0f32.is_finite());
        assert!(!(f32::INFINITY).is_finite());
        assert!(!(f64::NAN).is_finite());
    }

    #[test]
    fn approx_eq_behaviour() {
        assert!(approx_eq(1.0f64, 1.0 + 1e-12, 1e-9, 0.0));
        assert!(!approx_eq(1.0f64, 1.1, 1e-9, 0.0));
        assert!(approx_eq(0.0f32, 1e-9f32, 0.0, 1e-6));
    }
}
