//! A small deterministic pseudo-random generator for the synthetic
//! permeability models.
//!
//! The build environment has no registry access, so the usual `rand` crate is
//! unavailable; the generators only need reproducible, reasonably-distributed
//! draws, which this splitmix64/xorshift combination provides.  Fields are
//! reproducible from their `seed` across platforms (the tests in
//! [`crate::permeability`] pin this).

use std::ops::Range;

/// Deterministic 64-bit generator (splitmix64 seeding, xorshift64* stream).
#[derive(Clone, Debug)]
pub struct DeterministicRng {
    state: u64,
}

impl DeterministicRng {
    /// Seed the generator; equal seeds give equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 of the seed avoids the degenerate all-zero state and
        // decorrelates consecutive integer seeds.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Self { state: z | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[range.start, range.end)`.
    pub fn gen_range(&mut self, range: Range<f64>) -> f64 {
        assert!(
            range.start < range.end,
            "gen_range requires a non-empty range"
        );
        range.start + self.next_f64() * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = DeterministicRng::seed_from_u64(42);
        let mut b = DeterministicRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DeterministicRng::seed_from_u64(1);
        let mut b = DeterministicRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_draws_stay_in_range() {
        let mut rng = DeterministicRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen_range(2.0..5.0);
            assert!((2.0..5.0).contains(&v));
            sum += v;
        }
        // The mean of U(2, 5) is 3.5; 10k draws put the sample mean close.
        let mean = sum / 10_000.0;
        assert!((mean - 3.5).abs() < 0.05, "sample mean {mean}");
    }
}
