//! Dense cell-centred fields with the BLAS-1 helpers the solvers need.
//!
//! A [`CellField`] owns one value per mesh cell, stored in the paper's memory layout
//! (X innermost, Z outermost).  The vector operations (`axpy`, `dot`, norms, …) are
//! exactly the host-side counterparts of the per-PE DSD operations the dataflow
//! implementation performs, so they are also used to verify the fabric execution.

use crate::dims::{CellIndex, Dims};
use crate::scalar::Scalar;

/// A dense field with one scalar value per mesh cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellField<T: Scalar> {
    dims: Dims,
    data: Vec<T>,
}

impl<T: Scalar> CellField<T> {
    /// A field of zeros.
    pub fn zeros(dims: Dims) -> Self {
        Self {
            dims,
            data: vec![T::ZERO; dims.num_cells()],
        }
    }

    /// A field filled with `value`.
    pub fn constant(dims: Dims, value: T) -> Self {
        Self {
            dims,
            data: vec![value; dims.num_cells()],
        }
    }

    /// Build a field by evaluating `f` at every cell.
    pub fn from_fn(dims: Dims, mut f: impl FnMut(CellIndex) -> T) -> Self {
        let mut data = Vec::with_capacity(dims.num_cells());
        for c in dims.iter_cells() {
            data.push(f(c));
        }
        Self { dims, data }
    }

    /// Wrap an existing vector (must have exactly `dims.num_cells()` entries).
    pub fn from_vec(dims: Dims, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            dims.num_cells(),
            "vector length {} does not match dims {dims}",
            data.len()
        );
        Self { dims, data }
    }

    /// Grid extents of the field.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Number of cells (vector length).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the field has zero cells (never true for a valid [`Dims`]).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw slice in linear-layout order.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable raw slice in linear-layout order.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the field, returning its storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Value at a cell.
    #[inline]
    pub fn at(&self, c: CellIndex) -> T {
        self.data[self.dims.linear(c)]
    }

    /// Mutable reference to the value at a cell.
    #[inline]
    pub fn at_mut(&mut self, c: CellIndex) -> &mut T {
        let idx = self.dims.linear(c);
        &mut self.data[idx]
    }

    /// Value at a linear index.
    #[inline]
    pub fn get(&self, idx: usize) -> T {
        self.data[idx]
    }

    /// Set the value at a linear index.
    #[inline]
    pub fn set(&mut self, idx: usize, value: T) {
        self.data[idx] = value;
    }

    /// Copy the z-column of cells at fabric position `(x, y)` into a vector ordered
    /// bottom (z = 0) to top (z = nz-1) — the layout each PE holds in local memory.
    pub fn column(&self, x: usize, y: usize) -> Vec<T> {
        let base = self.dims.column_base(x, y);
        let stride = self.dims.column_stride();
        (0..self.dims.nz)
            .map(|z| self.data[base + z * stride])
            .collect()
    }

    /// Overwrite the z-column at `(x, y)` from a slice of length `nz`.
    pub fn set_column(&mut self, x: usize, y: usize, column: &[T]) {
        assert_eq!(column.len(), self.dims.nz, "column length mismatch");
        let base = self.dims.column_base(x, y);
        let stride = self.dims.column_stride();
        for (z, &v) in column.iter().enumerate() {
            self.data[base + z * stride] = v;
        }
    }

    /// Fill every cell with `value`.
    pub fn fill(&mut self, value: T) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    /// Overwrite every cell from `other` without reallocating — the
    /// buffer-reusing counterpart of `clone()` for pooled solve scratch.
    pub fn copy_from(&mut self, other: &Self) {
        self.check_same_dims(other);
        self.data.copy_from_slice(&other.data);
    }

    /// `self += alpha * other` (the classic axpy update of CG lines 6–7).
    pub fn axpy(&mut self, alpha: T, other: &Self) {
        self.check_same_dims(other);
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = alpha.mul_add(b, *a);
        }
    }

    /// `self = other + beta * self` (the search-direction update of CG line 10).
    pub fn xpby(&mut self, other: &Self, beta: T) {
        self.check_same_dims(other);
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a = beta.mul_add(*a, b);
        }
    }

    /// `self *= alpha`.
    pub fn scale(&mut self, alpha: T) {
        self.data.iter_mut().for_each(|v| *v *= alpha);
    }

    /// Euclidean dot product with `other`, accumulated left-to-right in linear order.
    pub fn dot(&self, other: &Self) -> T {
        self.check_same_dims(other);
        let mut acc = T::ZERO;
        for (&a, &b) in self.data.iter().zip(other.data.iter()) {
            acc = a.mul_add(b, acc);
        }
        acc
    }

    /// Squared Euclidean norm.
    pub fn norm_squared(&self) -> T {
        self.dot(self)
    }

    /// Euclidean norm.
    pub fn norm(&self) -> T {
        self.norm_squared().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> T {
        self.data.iter().fold(T::ZERO, |m, &v| m.max_with(v.abs()))
    }

    /// Maximum absolute difference against another field.
    pub fn max_abs_diff(&self, other: &Self) -> T {
        self.check_same_dims(other);
        self.data
            .iter()
            .zip(other.data.iter())
            .fold(T::ZERO, |m, (&a, &b)| m.max_with((a - b).abs()))
    }

    /// Convert the field to a different scalar precision (e.g. `f32` → `f64` for host
    /// verification).
    pub fn convert<U: Scalar>(&self) -> CellField<U> {
        CellField {
            dims: self.dims,
            data: self.data.iter().map(|v| U::from_f64(v.to_f64())).collect(),
        }
    }

    /// Whether every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Extract the horizontal slice at depth `z` as a row-major (y, then x) vector —
    /// used by the Figure-5 pressure-map rendering.
    pub fn horizontal_slice(&self, z: usize) -> Vec<T> {
        assert!(z < self.dims.nz, "slice depth out of range");
        let mut out = Vec::with_capacity(self.dims.num_columns());
        for y in 0..self.dims.ny {
            for x in 0..self.dims.nx {
                out.push(self.at(CellIndex::new(x, y, z)));
            }
        }
        out
    }

    fn check_same_dims(&self, other: &Self) {
        assert_eq!(self.dims, other.dims, "field dimension mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dims() -> Dims {
        Dims::new(4, 3, 2)
    }

    #[test]
    fn construction_and_access() {
        let mut f = CellField::<f64>::zeros(dims());
        assert_eq!(f.len(), 24);
        assert!(!f.is_empty());
        *f.at_mut(CellIndex::new(1, 2, 1)) = 5.0;
        assert_eq!(f.at(CellIndex::new(1, 2, 1)), 5.0);
        assert_eq!(f.get(f.dims().linear(CellIndex::new(1, 2, 1))), 5.0);
    }

    #[test]
    fn from_fn_matches_layout() {
        let d = dims();
        let f = CellField::<f64>::from_fn(d, |c| (c.x + 10 * c.y + 100 * c.z) as f64);
        assert_eq!(f.at(CellIndex::new(3, 2, 1)), 123.0);
        assert_eq!(f.as_slice()[0], 0.0);
        assert_eq!(f.as_slice()[1], 1.0);
    }

    #[test]
    fn column_round_trip() {
        let d = Dims::new(3, 2, 4);
        let f = CellField::<f32>::from_fn(d, |c| (c.x + 10 * c.y + 100 * c.z) as f32);
        let col = f.column(2, 1);
        assert_eq!(col, vec![12.0, 112.0, 212.0, 312.0]);
        let mut g = CellField::<f32>::zeros(d);
        g.set_column(2, 1, &col);
        assert_eq!(g.column(2, 1), col);
        assert_eq!(g.at(CellIndex::new(0, 0, 0)), 0.0);
    }

    #[test]
    fn axpy_and_xpby() {
        let d = dims();
        let mut a = CellField::<f64>::constant(d, 1.0);
        let b = CellField::<f64>::constant(d, 2.0);
        a.axpy(3.0, &b);
        assert!(a.as_slice().iter().all(|&v| v == 7.0));
        a.xpby(&b, 0.5);
        assert!(a.as_slice().iter().all(|&v| v == 5.5));
        a.scale(2.0);
        assert!(a.as_slice().iter().all(|&v| v == 11.0));
    }

    #[test]
    fn dot_and_norms() {
        let d = dims();
        let a = CellField::<f64>::constant(d, 2.0);
        let b = CellField::<f64>::constant(d, 3.0);
        assert_eq!(a.dot(&b), 6.0 * 24.0);
        assert_eq!(a.norm_squared(), 4.0 * 24.0);
        assert!((a.norm() - (96.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(a.max_abs(), 2.0);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    fn conversion_and_finiteness() {
        let d = dims();
        let a = CellField::<f32>::constant(d, 1.5);
        let b: CellField<f64> = a.convert();
        assert_eq!(b.at(CellIndex::new(0, 0, 0)), 1.5);
        assert!(a.all_finite());
        let mut c = a.clone();
        c.set(0, f32::NAN);
        assert!(!c.all_finite());
    }

    #[test]
    fn horizontal_slice_is_row_major() {
        let d = Dims::new(2, 2, 2);
        let f = CellField::<f64>::from_fn(d, |c| (c.x + 10 * c.y + 100 * c.z) as f64);
        assert_eq!(f.horizontal_slice(1), vec![100.0, 101.0, 110.0, 111.0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_dims_panic() {
        let a = CellField::<f64>::zeros(Dims::new(2, 2, 2));
        let b = CellField::<f64>::zeros(Dims::new(2, 2, 3));
        let _ = a.dot(&b);
    }

    proptest! {
        #[test]
        fn dot_is_symmetric(values in proptest::collection::vec(-100.0f64..100.0, 24)) {
            let d = dims();
            let a = CellField::from_vec(d, values.clone());
            let b = CellField::from_fn(d, |c| (c.x as f64) - (c.z as f64));
            let ab = a.dot(&b);
            let ba = b.dot(&a);
            prop_assert!((ab - ba).abs() <= 1e-9 * ab.abs().max(1.0));
        }

        #[test]
        fn axpy_matches_manual(alpha in -10.0f64..10.0,
                               values in proptest::collection::vec(-10.0f64..10.0, 24)) {
            let d = dims();
            let base = CellField::from_vec(d, values.clone());
            let other = CellField::from_fn(d, |c| c.y as f64 + 0.5);
            let mut updated = base.clone();
            updated.axpy(alpha, &other);
            for i in 0..base.len() {
                let expected = alpha.mul_add(other.get(i), base.get(i));
                prop_assert!((updated.get(i) - expected).abs() < 1e-12);
            }
        }
    }
}
