//! Grid extents and index arithmetic.
//!
//! The paper stores the mesh "with the X-dimension as the innermost dimension and
//! Z-dimension as the outermost dimension in the memory layout" (§IV).  [`Dims`]
//! encodes exactly that layout: the linear index of cell `(x, y, z)` is
//! `x + nx * (y + ny * z)`.

use crate::neighbors::Direction;

/// Extents of a 3-D Cartesian grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Dims {
    /// Number of cells along X (innermost in memory, mapped to the fabric X axis).
    pub nx: usize,
    /// Number of cells along Y (mapped to the fabric Y axis).
    pub ny: usize,
    /// Number of cells along Z (the per-PE column depth).
    pub nz: usize,
}

/// A cell location expressed in grid coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CellIndex {
    pub x: usize,
    pub y: usize,
    pub z: usize,
}

impl CellIndex {
    /// Construct a cell index.
    pub const fn new(x: usize, y: usize, z: usize) -> Self {
        Self { x, y, z }
    }
}

impl Dims {
    /// Construct grid extents. Panics if any extent is zero.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "all grid extents must be non-zero"
        );
        Self { nx, ny, nz }
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Number of vertical columns, i.e. the number of processing elements the grid
    /// occupies under the paper's z-column-per-PE mapping.
    pub fn num_columns(&self) -> usize {
        self.nx * self.ny
    }

    /// Linear index of `(x, y, z)` with X innermost and Z outermost.
    #[inline]
    pub fn linear(&self, c: CellIndex) -> usize {
        debug_assert!(self.contains(c), "cell {c:?} outside dims {self:?}");
        c.x + self.nx * (c.y + self.ny * c.z)
    }

    /// Inverse of [`Dims::linear`].
    #[inline]
    pub fn unlinear(&self, idx: usize) -> CellIndex {
        debug_assert!(idx < self.num_cells());
        let x = idx % self.nx;
        let y = (idx / self.nx) % self.ny;
        let z = idx / (self.nx * self.ny);
        CellIndex { x, y, z }
    }

    /// Whether the cell lies inside the grid.
    #[inline]
    pub fn contains(&self, c: CellIndex) -> bool {
        c.x < self.nx && c.y < self.ny && c.z < self.nz
    }

    /// The neighbour of `c` in direction `dir`, or `None` when it would fall off the
    /// grid boundary (the TPFA scheme imposes no-flow across such faces).
    #[inline]
    pub fn neighbor(&self, c: CellIndex, dir: Direction) -> Option<CellIndex> {
        let (dx, dy, dz) = dir.offset();
        let x = c.x as isize + dx;
        let y = c.y as isize + dy;
        let z = c.z as isize + dz;
        if x < 0
            || y < 0
            || z < 0
            || x >= self.nx as isize
            || y >= self.ny as isize
            || z >= self.nz as isize
        {
            None
        } else {
            Some(CellIndex::new(x as usize, y as usize, z as usize))
        }
    }

    /// Iterate over every cell in memory-layout order (X fastest, then Y, then Z).
    pub fn iter_cells(&self) -> impl Iterator<Item = CellIndex> + '_ {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        (0..nz).flat_map(move |z| {
            (0..ny).flat_map(move |y| (0..nx).map(move |x| CellIndex { x, y, z }))
        })
    }

    /// Iterate over every (x, y) column in row-major order — the set of processing
    /// elements under the paper's data mapping.
    pub fn iter_columns(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let (nx, ny) = (self.nx, self.ny);
        (0..ny).flat_map(move |y| (0..nx).map(move |x| (x, y)))
    }

    /// Linear index of the first (z = 0) cell of column `(x, y)`.
    #[inline]
    pub fn column_base(&self, x: usize, y: usize) -> usize {
        self.linear(CellIndex::new(x, y, 0))
    }

    /// Stride between consecutive z cells of the same column in the linear layout.
    #[inline]
    pub fn column_stride(&self) -> usize {
        self.nx * self.ny
    }

    /// Linear index of the first (x = 0) cell of the x-line at `(y, z)` — the
    /// contiguous stretch of `nx` cells the planned stencil kernels sweep.
    #[inline]
    pub fn line_base(&self, y: usize, z: usize) -> usize {
        debug_assert!(y < self.ny && z < self.nz);
        self.nx * (y + self.ny * z)
    }

    /// Linear-index range of the whole x-line at `(y, z)`: the cells
    /// `(0..nx, y, z)`, contiguous in the memory layout.
    #[inline]
    pub fn x_line(&self, y: usize, z: usize) -> std::ops::Range<usize> {
        let base = self.line_base(y, z);
        base..base + self.nx
    }

    /// Linear-index stride between a cell and its `y + 1` neighbour.
    #[inline]
    pub fn y_stride(&self) -> usize {
        self.nx
    }

    /// Linear-index stride between a cell and its `z + 1` neighbour (alias of
    /// [`Dims::column_stride`], named for stencil-offset arithmetic).
    #[inline]
    pub fn z_stride(&self) -> usize {
        self.nx * self.ny
    }

    /// Iterate over the `(y, z)` coordinates of every x-line in memory order
    /// (y fastest), pairing each with its linear-index range.
    pub fn iter_x_lines(
        &self,
    ) -> impl Iterator<Item = (usize, usize, std::ops::Range<usize>)> + '_ {
        let (ny, nz) = (self.ny, self.nz);
        (0..nz).flat_map(move |z| (0..ny).map(move |y| (y, z, self.x_line(y, z))))
    }

    /// Number of interior cells (cells whose six neighbours all exist).
    pub fn num_interior_cells(&self) -> usize {
        let ix = self.nx.saturating_sub(2);
        let iy = self.ny.saturating_sub(2);
        let iz = self.nz.saturating_sub(2);
        ix * iy * iz
    }
}

impl std::fmt::Display for Dims {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.nx, self.ny, self.nz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_layout_is_x_innermost() {
        let d = Dims::new(4, 3, 2);
        assert_eq!(d.linear(CellIndex::new(0, 0, 0)), 0);
        assert_eq!(d.linear(CellIndex::new(1, 0, 0)), 1);
        assert_eq!(d.linear(CellIndex::new(0, 1, 0)), 4);
        assert_eq!(d.linear(CellIndex::new(0, 0, 1)), 12);
        assert_eq!(d.linear(CellIndex::new(3, 2, 1)), 23);
    }

    #[test]
    fn counts() {
        let d = Dims::new(4, 3, 2);
        assert_eq!(d.num_cells(), 24);
        assert_eq!(d.num_columns(), 12);
        assert_eq!(d.column_stride(), 12);
        assert_eq!(d.num_interior_cells(), 0);
        assert_eq!(Dims::new(5, 4, 3).num_interior_cells(), (3 * 2));
    }

    #[test]
    fn neighbors_respect_boundaries() {
        let d = Dims::new(3, 3, 3);
        let corner = CellIndex::new(0, 0, 0);
        assert_eq!(d.neighbor(corner, Direction::XM), None);
        assert_eq!(d.neighbor(corner, Direction::YM), None);
        assert_eq!(d.neighbor(corner, Direction::ZM), None);
        assert_eq!(
            d.neighbor(corner, Direction::XP),
            Some(CellIndex::new(1, 0, 0))
        );
        let center = CellIndex::new(1, 1, 1);
        for dir in Direction::ALL {
            assert!(d.neighbor(center, dir).is_some());
        }
    }

    #[test]
    fn iter_cells_matches_linear_order() {
        let d = Dims::new(3, 2, 2);
        let order: Vec<usize> = d.iter_cells().map(|c| d.linear(c)).collect();
        let expected: Vec<usize> = (0..d.num_cells()).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn x_lines_tile_the_grid_contiguously() {
        let d = Dims::new(5, 3, 2);
        assert_eq!(d.line_base(0, 0), 0);
        assert_eq!(d.line_base(2, 1), 25);
        assert_eq!(d.x_line(1, 1), 20..25);
        assert_eq!(d.y_stride(), 5);
        assert_eq!(d.z_stride(), 15);
        let mut next = 0;
        for (y, z, range) in d.iter_x_lines() {
            assert_eq!(range.start, next, "line ({y}, {z}) not contiguous");
            assert_eq!(range.len(), d.nx);
            next = range.end;
        }
        assert_eq!(next, d.num_cells());
    }

    #[test]
    fn iter_columns_covers_all_pes() {
        let d = Dims::new(3, 4, 5);
        let cols: Vec<(usize, usize)> = d.iter_columns().collect();
        assert_eq!(cols.len(), 12);
        assert_eq!(cols[0], (0, 0));
        assert_eq!(cols[1], (1, 0));
        assert_eq!(cols[3], (0, 1));
    }

    #[test]
    #[should_panic]
    fn zero_extent_rejected() {
        let _ = Dims::new(0, 1, 1);
    }

    proptest! {
        #[test]
        fn unlinear_is_inverse_of_linear(
            nx in 1usize..20, ny in 1usize..20, nz in 1usize..20, seed in 0usize..10_000
        ) {
            let d = Dims::new(nx, ny, nz);
            let idx = seed % d.num_cells();
            let c = d.unlinear(idx);
            prop_assert!(d.contains(c));
            prop_assert_eq!(d.linear(c), idx);
        }

        #[test]
        fn neighbor_is_symmetric(
            nx in 2usize..10, ny in 2usize..10, nz in 2usize..10, seed in 0usize..10_000
        ) {
            let d = Dims::new(nx, ny, nz);
            let c = d.unlinear(seed % d.num_cells());
            for dir in Direction::ALL {
                if let Some(n) = d.neighbor(c, dir) {
                    prop_assert_eq!(d.neighbor(n, dir.opposite()), Some(c));
                }
            }
        }
    }
}
