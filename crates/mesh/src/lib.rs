#![forbid(unsafe_code)]
//! # mffv-mesh
//!
//! Structured 3-D Cartesian meshes and cell-centred fields for the matrix-free
//! finite-volume (FV) reproduction of *"Matrix-Free Finite Volume Kernels on a
//! Dataflow Architecture"* (SC 2024).
//!
//! The paper discretises an incompressible single-phase Darcy flow problem with a
//! two-point flux approximation (TPFA) on a 3-D Cartesian mesh in which every
//! interior cell has six neighbours (a 7-point stencil).  This crate provides the
//! geometric and data substrate every other crate builds on:
//!
//! * [`Dims`] / [`CellIndex`] — grid extents and (x, y, z) ⇄ linear index mapping with
//!   the paper's memory layout (X innermost, Z outermost);
//! * [`Direction`] — the six face directions of the 7-point stencil;
//! * [`CellField`] — a dense cell-centred field generic over [`Scalar`] (`f32`/`f64`)
//!   with the BLAS-1 style helpers (axpy, dot, norms) the CG solver needs;
//! * [`CartesianMesh`] — cell sizes, volumes and face areas;
//! * [`permeability`] — synthetic permeability generators (homogeneous, layered,
//!   log-normal, channelised) substituting for proprietary geomodels;
//! * [`DirichletSet`] — Dirichlet boundary cells (wells / fixed-pressure columns);
//! * [`Transmissibilities`] — the six per-cell TPFA transmissibilities Υ_KL;
//! * [`workload`] — named problem setups reproducing the paper's grid family
//!   (Table III) and the Figure-5 injection scenario.

pub mod boundary;
pub mod dims;
pub mod field;
pub mod fingerprint;
pub mod mesh;
pub mod neighbors;
pub mod permeability;
pub mod reduce;
pub mod rng;
pub mod scalar;
pub mod transient;
pub mod transmissibility;
pub mod wells;
pub mod workload;

pub use boundary::{DirichletCell, DirichletSet};
pub use dims::{CellIndex, Dims};
pub use field::CellField;
pub use fingerprint::Fnv1a;
pub use mesh::CartesianMesh;
pub use neighbors::Direction;
pub use permeability::PermeabilityModel;
pub use reduce::{seq_mean, seq_sum};
pub use scalar::Scalar;
pub use transient::{DtPolicy, TransientSpec};
pub use transmissibility::Transmissibilities;
pub use wells::{Well, WellControl, WellSet};
pub use workload::{Workload, WorkloadError, WorkloadSpec};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::boundary::{DirichletCell, DirichletSet};
    pub use crate::dims::{CellIndex, Dims};
    pub use crate::field::CellField;
    pub use crate::mesh::CartesianMesh;
    pub use crate::neighbors::Direction;
    pub use crate::permeability::PermeabilityModel;
    pub use crate::scalar::Scalar;
    pub use crate::transient::{DtPolicy, TransientSpec};
    pub use crate::transmissibility::Transmissibilities;
    pub use crate::wells::{Well, WellControl, WellSet};
    pub use crate::workload::{Workload, WorkloadError, WorkloadSpec};
}
