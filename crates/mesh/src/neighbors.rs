//! The six face directions of the 7-point stencil (Figure 1 of the paper).
//!
//! On the horizontal X-Y plane a cell has four cardinal neighbours that live on
//! *different* processing elements; the two vertical (Z) neighbours live in the same
//! PE's local memory (§III-A), so the distinction between "horizontal" and
//! "vertical" directions matters throughout the dataflow mapping.

/// One of the six neighbour directions of a cell in the 3-D Cartesian mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// +X ("East" on the fabric).
    XP,
    /// -X ("West" on the fabric).
    XM,
    /// +Y ("South" on the fabric: the paper's southbound neighbour is (x, y+1, z)).
    YP,
    /// -Y ("North" on the fabric: the paper's northbound neighbour is (x, y−1, z)).
    YM,
    /// +Z (up the column, same PE).
    ZP,
    /// -Z (down the column, same PE).
    ZM,
}

impl Direction {
    /// All six directions, in the canonical order used for per-cell transmissibility
    /// storage (E, W, N, S, Up, Down).
    pub const ALL: [Direction; 6] = [
        Direction::XP,
        Direction::XM,
        Direction::YP,
        Direction::YM,
        Direction::ZP,
        Direction::ZM,
    ];

    /// The four horizontal (cardinal) directions that require fabric communication.
    pub const HORIZONTAL: [Direction; 4] =
        [Direction::XP, Direction::XM, Direction::YP, Direction::YM];

    /// The two vertical directions resolved inside a PE's local memory.
    pub const VERTICAL: [Direction; 2] = [Direction::ZP, Direction::ZM];

    /// Index of the direction in [`Direction::ALL`]; used as the per-cell
    /// transmissibility slot.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Direction::XP => 0,
            Direction::XM => 1,
            Direction::YP => 2,
            Direction::YM => 3,
            Direction::ZP => 4,
            Direction::ZM => 5,
        }
    }

    /// Grid offset `(dx, dy, dz)` of the neighbour in this direction.
    #[inline]
    pub fn offset(self) -> (isize, isize, isize) {
        match self {
            Direction::XP => (1, 0, 0),
            Direction::XM => (-1, 0, 0),
            Direction::YP => (0, 1, 0),
            Direction::YM => (0, -1, 0),
            Direction::ZP => (0, 0, 1),
            Direction::ZM => (0, 0, -1),
        }
    }

    /// The opposite direction (the one the neighbour uses to refer back to us).
    #[inline]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::XP => Direction::XM,
            Direction::XM => Direction::XP,
            Direction::YP => Direction::YM,
            Direction::YM => Direction::YP,
            Direction::ZP => Direction::ZM,
            Direction::ZM => Direction::ZP,
        }
    }

    /// Whether the neighbour in this direction lives on a different processing
    /// element under the paper's z-column-per-PE mapping.
    #[inline]
    pub fn is_horizontal(self) -> bool {
        !matches!(self, Direction::ZP | Direction::ZM)
    }

    /// Whether the neighbour in this direction lives in the same PE's local memory.
    #[inline]
    pub fn is_vertical(self) -> bool {
        !self.is_horizontal()
    }

    /// Which grid axis the direction moves along (0 = X, 1 = Y, 2 = Z).
    #[inline]
    pub fn axis(self) -> usize {
        match self {
            Direction::XP | Direction::XM => 0,
            Direction::YP | Direction::YM => 1,
            Direction::ZP | Direction::ZM => 2,
        }
    }

    /// Human-readable compass name used in traces and reports.
    pub fn compass(self) -> &'static str {
        match self {
            Direction::XP => "East",
            Direction::XM => "West",
            Direction::YP => "South",
            Direction::YM => "North",
            Direction::ZP => "Up",
            Direction::ZM => "Down",
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.compass())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_unique_and_dense() {
        let mut seen = [false; 6];
        for dir in Direction::ALL {
            assert!(!seen[dir.index()]);
            seen[dir.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn opposite_is_involutive() {
        for dir in Direction::ALL {
            assert_eq!(dir.opposite().opposite(), dir);
            assert_ne!(dir.opposite(), dir);
        }
    }

    #[test]
    fn offsets_cancel_with_opposite() {
        for dir in Direction::ALL {
            let (dx, dy, dz) = dir.offset();
            let (ox, oy, oz) = dir.opposite().offset();
            assert_eq!((dx + ox, dy + oy, dz + oz), (0, 0, 0));
        }
    }

    #[test]
    fn horizontal_vertical_partition() {
        assert_eq!(Direction::HORIZONTAL.len() + Direction::VERTICAL.len(), 6);
        for dir in Direction::HORIZONTAL {
            assert!(dir.is_horizontal());
            assert!(!dir.is_vertical());
            assert!(dir.axis() < 2);
        }
        for dir in Direction::VERTICAL {
            assert!(dir.is_vertical());
            assert_eq!(dir.axis(), 2);
        }
    }

    #[test]
    fn compass_names() {
        assert_eq!(Direction::XP.to_string(), "East");
        assert_eq!(Direction::YM.to_string(), "North");
        assert_eq!(Direction::YP.to_string(), "South");
        assert_eq!(Direction::ZP.to_string(), "Up");
    }
}
