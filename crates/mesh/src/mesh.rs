//! Cartesian mesh geometry.
//!
//! The paper's physical problem is "represented by a 3D Cartesian mesh, where each
//! cell has six neighbors" (§III-A).  [`CartesianMesh`] carries the grid extents and
//! the (uniform) cell spacing from which face areas, cell volumes and the geometric
//! part of the TPFA transmissibility are computed.

use crate::dims::{CellIndex, Dims};
use crate::neighbors::Direction;

/// A uniform 3-D Cartesian mesh.
#[derive(Clone, Debug, PartialEq)]
pub struct CartesianMesh {
    dims: Dims,
    /// Cell spacing along each axis, in metres.
    spacing: [f64; 3],
}

impl CartesianMesh {
    /// A mesh with unit cell spacing — the canonical setting for kernel-level
    /// experiments where only the algebraic structure matters.
    pub fn unit(dims: Dims) -> Self {
        Self {
            dims,
            spacing: [1.0, 1.0, 1.0],
        }
    }

    /// A mesh with explicit cell spacing `(dx, dy, dz)` in metres.
    pub fn with_spacing(dims: Dims, dx: f64, dy: f64, dz: f64) -> Self {
        assert!(
            dx > 0.0 && dy > 0.0 && dz > 0.0,
            "cell spacing must be positive"
        );
        Self {
            dims,
            spacing: [dx, dy, dz],
        }
    }

    /// Grid extents.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Cell spacing along each axis.
    pub fn spacing(&self) -> [f64; 3] {
        self.spacing
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.dims.num_cells()
    }

    /// Volume of a single cell.
    pub fn cell_volume(&self) -> f64 {
        self.spacing[0] * self.spacing[1] * self.spacing[2]
    }

    /// Area of the face orthogonal to the given direction.
    pub fn face_area(&self, dir: Direction) -> f64 {
        let [dx, dy, dz] = self.spacing;
        match dir.axis() {
            0 => dy * dz,
            1 => dx * dz,
            _ => dx * dy,
        }
    }

    /// Distance between the centres of two face-adjacent cells along `dir`.
    pub fn center_distance(&self, dir: Direction) -> f64 {
        self.spacing[dir.axis()]
    }

    /// Physical coordinates of a cell centre.
    pub fn cell_center(&self, c: CellIndex) -> [f64; 3] {
        [
            (c.x as f64 + 0.5) * self.spacing[0],
            (c.y as f64 + 0.5) * self.spacing[1],
            (c.z as f64 + 0.5) * self.spacing[2],
        ]
    }

    /// Physical extent of the whole domain.
    pub fn domain_size(&self) -> [f64; 3] {
        [
            self.dims.nx as f64 * self.spacing[0],
            self.dims.ny as f64 * self.spacing[1],
            self.dims.nz as f64 * self.spacing[2],
        ]
    }

    /// The geometric half-transmissibility of cell `c` towards direction `dir`:
    /// `A / (d/2)` where `A` is the face area and `d` the centre distance.  Combined
    /// with permeability and harmonically averaged across the face, this yields the
    /// TPFA transmissibility Υ_KL of Eq. (4).
    pub fn half_geometric_factor(&self, dir: Direction) -> f64 {
        self.face_area(dir) / (0.5 * self.center_distance(dir))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_mesh_geometry() {
        let m = CartesianMesh::unit(Dims::new(4, 5, 6));
        assert_eq!(m.cell_volume(), 1.0);
        for dir in Direction::ALL {
            assert_eq!(m.face_area(dir), 1.0);
            assert_eq!(m.center_distance(dir), 1.0);
            assert_eq!(m.half_geometric_factor(dir), 2.0);
        }
        assert_eq!(m.domain_size(), [4.0, 5.0, 6.0]);
    }

    #[test]
    fn anisotropic_spacing() {
        let m = CartesianMesh::with_spacing(Dims::new(2, 2, 2), 10.0, 20.0, 2.0);
        assert_eq!(m.cell_volume(), 400.0);
        assert_eq!(m.face_area(Direction::XP), 40.0); // dy*dz
        assert_eq!(m.face_area(Direction::YP), 20.0); // dx*dz
        assert_eq!(m.face_area(Direction::ZP), 200.0); // dx*dy
        assert_eq!(m.center_distance(Direction::XP), 10.0);
        assert_eq!(m.half_geometric_factor(Direction::ZM), 200.0 / 1.0);
    }

    #[test]
    fn cell_centers() {
        let m = CartesianMesh::with_spacing(Dims::new(3, 3, 3), 2.0, 2.0, 2.0);
        assert_eq!(m.cell_center(CellIndex::new(0, 0, 0)), [1.0, 1.0, 1.0]);
        assert_eq!(m.cell_center(CellIndex::new(2, 1, 0)), [5.0, 3.0, 1.0]);
    }

    #[test]
    #[should_panic]
    fn non_positive_spacing_rejected() {
        let _ = CartesianMesh::with_spacing(Dims::new(2, 2, 2), 0.0, 1.0, 1.0);
    }
}
