//! Transient scenario descriptions: time horizon, dt policy, compressibility
//! and wells.
//!
//! A [`TransientSpec`] extends a steady [`Workload`](crate::Workload) into a
//! slightly-compressible time-dependent problem: backward-Euler steps of the
//! mass balance
//!
//! ```text
//! V_K · c_t · (p_K^{n+1} − p_K^n) / Δt  =  Σ_L Υλ (p_L^{n+1} − p_K^{n+1})  +  q_K(p^{n+1})
//! ```
//!
//! where `c_t` is the total (rock + fluid) compressibility in 1/Pa and `q_K`
//! the well source terms of the spec's [`WellSet`].  The spec is a pure
//! *value* — like `WorkloadSpec` it can be cloned into engine jobs and swept
//! over dt × compressibility × well schedules.
//!
//! # Stability
//!
//! Backward Euler is unconditionally stable: any `Δt > 0` yields a
//! well-posed SPD step system (the accumulation term adds `V·c_t/Δt` to the
//! diagonal).  Larger steps are *less accurate* and *harder* (smaller
//! diagonal shift ⇒ worse conditioning ⇒ more CG iterations); halving dt
//! never increases per-step CG iteration counts.

use crate::wells::WellSet;
use crate::workload::WorkloadError;

/// How the time-step size evolves over a transient run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DtPolicy {
    /// The same `dt` for every step (the last step is clipped to land exactly
    /// on the total time).
    Fixed {
        /// Step size, seconds.
        dt: f64,
    },
    /// A deterministic geometric ramp: start at `initial`, multiply by
    /// `growth` after every step, never exceed `max`.  The standard
    /// adaptive-dt opening for well start-up transients — small steps while
    /// pressure changes fast, long steps towards (pseudo-)steady state.
    Ramp {
        /// First step size, seconds.
        initial: f64,
        /// Per-step growth factor (≥ 1).
        growth: f64,
        /// Upper bound on the step size, seconds.
        max: f64,
    },
}

impl DtPolicy {
    /// Fixed steps of `dt` seconds.
    pub fn fixed(dt: f64) -> Self {
        DtPolicy::Fixed { dt }
    }

    /// A geometric ramp from `initial` by `growth` up to `max`.
    pub fn ramp(initial: f64, growth: f64, max: f64) -> Self {
        DtPolicy::Ramp {
            initial,
            growth,
            max,
        }
    }

    /// The first step's nominal size.
    pub fn first_dt(&self) -> f64 {
        match *self {
            DtPolicy::Fixed { dt } => dt,
            DtPolicy::Ramp { initial, max, .. } => initial.min(max),
        }
    }

    /// The nominal size of the step following one of nominal size
    /// `current` — the incremental form schedules are built with.
    pub fn next_dt(&self, current: f64) -> f64 {
        match *self {
            DtPolicy::Fixed { dt } => dt,
            DtPolicy::Ramp { growth, max, .. } => (current * growth).min(max),
        }
    }

    /// The size of step number `index` (0-based), before clipping to the
    /// total time.
    pub fn nominal_dt(&self, index: usize) -> f64 {
        let mut dt = self.first_dt();
        for _ in 0..index {
            let next = self.next_dt(dt);
            if next == dt {
                break;
            }
            dt = next;
        }
        dt
    }

    fn validate(&self) -> Result<(), WorkloadError> {
        let check = |label: &str, v: f64| -> Result<(), WorkloadError> {
            if !v.is_finite() || v <= 0.0 {
                return Err(WorkloadError::new(format!(
                    "dt policy: {label} must be finite and positive, got {v}"
                )));
            }
            Ok(())
        };
        match *self {
            DtPolicy::Fixed { dt } => check("dt", dt),
            DtPolicy::Ramp {
                initial,
                growth,
                max,
            } => {
                check("initial dt", initial)?;
                check("max dt", max)?;
                if !growth.is_finite() || growth < 1.0 {
                    return Err(WorkloadError::new(format!(
                        "dt policy: growth factor must be ≥ 1, got {growth}"
                    )));
                }
                if max < initial {
                    return Err(WorkloadError::new(format!(
                        "dt policy: max dt {max} below initial dt {initial}"
                    )));
                }
                Ok(())
            }
        }
    }
}

/// A declarative transient scenario on top of a steady workload.
#[derive(Clone, Debug, PartialEq)]
pub struct TransientSpec {
    /// Simulated time horizon, seconds.
    pub total_time: f64,
    /// Time-step policy.
    pub dt: DtPolicy,
    /// Total (rock + fluid) compressibility `c_t`, 1/Pa; must be positive —
    /// it is what makes the accumulation term (and the step system's
    /// diagonal shift) non-degenerate.
    pub total_compressibility: f64,
    /// Well source terms (see [`WellSet`] for units and sign conventions).
    pub wells: WellSet,
    /// Initial reservoir pressure, Pa; `None` uses the workload's own
    /// initial guess (the mean of its Dirichlet values).  Dirichlet values
    /// are imposed on top either way.
    pub initial_pressure: Option<f64>,
    /// Times (seconds) at which to keep full pressure snapshots in the
    /// report; each requested time captures the end of the first step that
    /// reaches it.  The final pressure is always available.
    pub snapshot_times: Vec<f64>,
    /// Warm-start each step's CG from the previous step's pressure update
    /// (`true`, the default) instead of from zero.  Deterministic either
    /// way; warm starts only change how *fast* steps converge.
    pub warm_start: bool,
}

impl TransientSpec {
    /// A transient scenario over `total_time` seconds with fixed steps of
    /// `dt`, compressibility `c_t`, and no wells yet.
    pub fn new(total_time: f64, dt: f64, total_compressibility: f64) -> Self {
        Self {
            total_time,
            dt: DtPolicy::fixed(dt),
            total_compressibility,
            wells: WellSet::empty(),
            initial_pressure: None,
            snapshot_times: Vec::new(),
            warm_start: true,
        }
    }

    /// Replace the dt policy.
    pub fn with_dt_policy(mut self, dt: DtPolicy) -> Self {
        self.dt = dt;
        self
    }

    /// Replace the well set.
    pub fn with_wells(mut self, wells: WellSet) -> Self {
        self.wells = wells;
        self
    }

    /// Set a uniform initial reservoir pressure (Pa).
    pub fn with_initial_pressure(mut self, pressure: f64) -> Self {
        self.initial_pressure = Some(pressure);
        self
    }

    /// Request pressure snapshots at the given times (seconds).
    pub fn with_snapshots(mut self, times: impl IntoIterator<Item = f64>) -> Self {
        self.snapshot_times = times.into_iter().collect();
        self
    }

    /// Disable warm starting (every step's CG starts from zero) — the
    /// cold-start baseline warm-start savings are measured against.
    pub fn cold_start(mut self) -> Self {
        self.warm_start = false;
        self
    }

    /// Override the compressibility.
    pub fn with_compressibility(mut self, total_compressibility: f64) -> Self {
        self.total_compressibility = total_compressibility;
        self
    }

    /// The `(start_time, dt)` schedule of the whole run: nominal policy steps
    /// clipped so the last step lands exactly on `total_time`.  Purely a
    /// function of the spec — every backend steps the identical schedule.
    pub fn schedule(&self) -> Vec<(f64, f64)> {
        let mut steps = Vec::new();
        let mut t = 0.0;
        let mut nominal = self.dt.first_dt();
        // Relative guard against a float-dust final step.
        let eps = self.total_time * 1e-12;
        while t < self.total_time - eps {
            let dt = nominal.min(self.total_time - t);
            steps.push((t, dt));
            t += dt;
            nominal = self.dt.next_dt(nominal);
        }
        steps
    }

    /// Number of steps the schedule will take.
    pub fn num_steps(&self) -> usize {
        self.schedule().len()
    }

    /// Check the spec against a grid: positive finite horizon and
    /// compressibility, a valid dt policy, valid wells, and finite snapshot
    /// times.
    pub fn validate(&self, dims: crate::dims::Dims) -> Result<(), WorkloadError> {
        if !self.total_time.is_finite() || self.total_time <= 0.0 {
            return Err(WorkloadError::new(format!(
                "total_time must be finite and positive, got {}",
                self.total_time
            )));
        }
        self.dt.validate()?;
        if !self.total_compressibility.is_finite() || self.total_compressibility <= 0.0 {
            return Err(WorkloadError::new(format!(
                "total compressibility must be finite and positive, got {}",
                self.total_compressibility
            )));
        }
        if let Some(p) = self.initial_pressure {
            if !p.is_finite() {
                return Err(WorkloadError::new(format!(
                    "initial pressure must be finite, got {p}"
                )));
            }
        }
        for &t in &self.snapshot_times {
            if !t.is_finite() || t < 0.0 || t > self.total_time {
                return Err(WorkloadError::new(format!(
                    "snapshot times must lie within [0, total_time = {}], got {t} \
                     (a later time would silently never be captured)",
                    self.total_time
                )));
            }
        }
        self.wells.validate(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dims::{CellIndex, Dims};
    use crate::wells::Well;

    #[test]
    fn fixed_schedule_clips_the_last_step() {
        let spec = TransientSpec::new(10.0, 3.0, 1e-9);
        let steps = spec.schedule();
        assert_eq!(steps.len(), 4);
        assert_eq!(steps[0], (0.0, 3.0));
        assert_eq!(steps[3], (9.0, 1.0));
        let total: f64 = steps.iter().map(|&(_, dt)| dt).sum();
        assert!((total - 10.0).abs() < 1e-12);
        assert_eq!(spec.num_steps(), 4);
    }

    #[test]
    fn exact_division_produces_no_dust_step() {
        let spec = TransientSpec::new(1.0, 0.1, 1e-9);
        assert_eq!(spec.num_steps(), 10);
    }

    #[test]
    fn ramp_grows_geometrically_and_caps() {
        let policy = DtPolicy::ramp(1.0, 2.0, 5.0);
        assert_eq!(policy.nominal_dt(0), 1.0);
        assert_eq!(policy.nominal_dt(1), 2.0);
        assert_eq!(policy.nominal_dt(2), 4.0);
        assert_eq!(policy.nominal_dt(3), 5.0);
        assert_eq!(policy.nominal_dt(10), 5.0);
        let spec = TransientSpec::new(20.0, 1.0, 1e-9).with_dt_policy(policy);
        let steps = spec.schedule();
        assert_eq!(steps[0].1, 1.0);
        assert!(steps.iter().all(|&(_, dt)| dt <= 5.0));
        let total: f64 = steps.iter().map(|&(_, dt)| dt).sum();
        assert!((total - 20.0).abs() < 1e-12);
    }

    #[test]
    fn validation_covers_every_field() {
        let dims = Dims::new(4, 4, 2);
        let good = TransientSpec::new(10.0, 1.0, 1e-9)
            .with_wells(WellSet::empty().with(Well::rate("w", CellIndex::new(0, 0, 0), 1.0)))
            .with_snapshots([1.0, 5.0]);
        assert!(good.validate(dims).is_ok());

        assert!(TransientSpec::new(0.0, 1.0, 1e-9).validate(dims).is_err());
        assert!(TransientSpec::new(10.0, -1.0, 1e-9).validate(dims).is_err());
        assert!(TransientSpec::new(10.0, 1.0, 0.0).validate(dims).is_err());
        assert!(TransientSpec::new(10.0, 1.0, 1e-9)
            .with_dt_policy(DtPolicy::ramp(1.0, 0.5, 2.0))
            .validate(dims)
            .is_err());
        assert!(TransientSpec::new(10.0, 1.0, 1e-9)
            .with_initial_pressure(f64::NAN)
            .validate(dims)
            .is_err());
        assert!(TransientSpec::new(10.0, 1.0, 1e-9)
            .with_snapshots([-1.0])
            .validate(dims)
            .is_err());
        assert!(
            TransientSpec::new(10.0, 1.0, 1e-9)
                .with_snapshots([10.5])
                .validate(dims)
                .is_err(),
            "snapshot beyond the horizon would silently never capture"
        );
        assert!(TransientSpec::new(10.0, 1.0, 1e-9)
            .with_wells(WellSet::empty().with(Well::rate("w", CellIndex::new(9, 0, 0), 1.0)))
            .validate(dims)
            .is_err());
    }
}
