//! Wells: rate- and BHP-controlled source terms for transient simulation.
//!
//! The steady-state workloads model wells as Dirichlet pressure columns
//! (`DirichletSet`).  Transient simulation needs genuine *source terms*: a
//! [`Well`] completes in one cell and either injects/produces at a fixed
//! volumetric rate or is controlled by a bottom-hole pressure (BHP) through a
//! productivity index.  A [`WellSet`] is the declarative collection a
//! `TransientSpec` carries.
//!
//! # Units and sign conventions
//!
//! * Rates are **volumetric**, in m³/s.  **Positive = injection** (fluid enters
//!   the reservoir cell), **negative = production** — the same sign the
//!   residual convention uses for inflow.
//! * A BHP well contributes `q = WI · (p_bhp − p_cell)` where `WI` is the
//!   productivity index in m³/(Pa·s): the well injects while the cell pressure
//!   is below `p_bhp` and produces once it rises above — so the same control
//!   models an injector (high BHP) or a producer (low BHP).
//! * Schedules are half-open activity windows `[start, end)` in seconds; a
//!   well contributes nothing outside its window.

use crate::dims::{CellIndex, Dims};
use crate::workload::WorkloadError;

/// How a well is controlled.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WellControl {
    /// Fixed volumetric rate in m³/s (positive = injection, negative =
    /// production).
    Rate {
        /// Volumetric rate, m³/s.
        volumetric_rate: f64,
    },
    /// Bottom-hole-pressure control: the well exchanges `WI · (p_bhp −
    /// p_cell)` m³/s with its completion cell.
    Bhp {
        /// Bottom-hole pressure, Pa.
        pressure: f64,
        /// Productivity index `WI`, m³/(Pa·s); must be positive (it is the
        /// well-to-cell transmissibility and lands on the system diagonal).
        productivity_index: f64,
    },
}

/// One well, completed in a single cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Well {
    /// Human-readable name used in reports and well totals.
    pub name: String,
    /// Completion cell.
    pub cell: CellIndex,
    /// Control mode (rate or BHP).
    pub control: WellControl,
    /// Activity window start, seconds (inclusive).
    pub start_time: f64,
    /// Activity window end, seconds (exclusive); `f64::INFINITY` = never
    /// shuts in.
    pub end_time: f64,
}

impl Well {
    /// A rate-controlled well active for the whole simulation (positive rate
    /// = injection, negative = production).
    pub fn rate(name: impl Into<String>, cell: CellIndex, volumetric_rate: f64) -> Self {
        Self {
            name: name.into(),
            cell,
            control: WellControl::Rate { volumetric_rate },
            start_time: 0.0,
            end_time: f64::INFINITY,
        }
    }

    /// A BHP-controlled well active for the whole simulation.
    pub fn bhp(
        name: impl Into<String>,
        cell: CellIndex,
        pressure: f64,
        productivity_index: f64,
    ) -> Self {
        Self {
            name: name.into(),
            cell,
            control: WellControl::Bhp {
                pressure,
                productivity_index,
            },
            start_time: 0.0,
            end_time: f64::INFINITY,
        }
    }

    /// Restrict the well to the half-open activity window `[start, end)`
    /// (seconds).
    pub fn scheduled(mut self, start_time: f64, end_time: f64) -> Self {
        self.start_time = start_time;
        self.end_time = end_time;
        self
    }

    /// Whether the well is active at time `t` (seconds).
    pub fn is_active(&self, t: f64) -> bool {
        t >= self.start_time && t < self.end_time
    }

    /// The productivity index the well adds to the system diagonal when
    /// active (zero for rate wells — their contribution is pure RHS).
    pub fn diagonal_coefficient(&self) -> f64 {
        match self.control {
            WellControl::Rate { .. } => 0.0,
            WellControl::Bhp {
                productivity_index, ..
            } => productivity_index,
        }
    }

    /// The well's volumetric rate (m³/s, positive = injection) at cell
    /// pressure `p_cell`.
    pub fn rate_at(&self, p_cell: f64) -> f64 {
        match self.control {
            WellControl::Rate { volumetric_rate } => volumetric_rate,
            WellControl::Bhp {
                pressure,
                productivity_index,
            } => productivity_index * (pressure - p_cell),
        }
    }

    fn validate(&self, dims: Dims) -> Result<(), WorkloadError> {
        let c = self.cell;
        if c.x >= dims.nx || c.y >= dims.ny || c.z >= dims.nz {
            return Err(WorkloadError::new(format!(
                "well `{}` completes outside the {}x{}x{} grid at ({}, {}, {})",
                self.name, dims.nx, dims.ny, dims.nz, c.x, c.y, c.z
            )));
        }
        match self.control {
            WellControl::Rate { volumetric_rate } => {
                if !volumetric_rate.is_finite() {
                    return Err(WorkloadError::new(format!(
                        "well `{}`: rate must be finite, got {volumetric_rate}",
                        self.name
                    )));
                }
            }
            WellControl::Bhp {
                pressure,
                productivity_index,
            } => {
                if !pressure.is_finite() {
                    return Err(WorkloadError::new(format!(
                        "well `{}`: BHP must be finite, got {pressure}",
                        self.name
                    )));
                }
                if !productivity_index.is_finite() || productivity_index <= 0.0 {
                    return Err(WorkloadError::new(format!(
                        "well `{}`: productivity index must be finite and positive, got {productivity_index}",
                        self.name
                    )));
                }
            }
        }
        if self.start_time.is_nan() || self.end_time.is_nan() || self.end_time <= self.start_time {
            return Err(WorkloadError::new(format!(
                "well `{}`: schedule window [{}, {}) is empty or not ordered",
                self.name, self.start_time, self.end_time
            )));
        }
        Ok(())
    }
}

/// The wells of one transient scenario.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WellSet {
    wells: Vec<Well>,
}

impl WellSet {
    /// No wells.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A well set from explicit wells.
    pub fn new(wells: Vec<Well>) -> Self {
        Self { wells }
    }

    /// Add one well.
    pub fn with(mut self, well: Well) -> Self {
        self.wells.push(well);
        self
    }

    /// The wells, in declaration order (the order of every per-well vector in
    /// transient reports).
    pub fn wells(&self) -> &[Well] {
        &self.wells
    }

    /// Number of wells.
    pub fn len(&self) -> usize {
        self.wells.len()
    }

    /// Whether the set has no wells.
    pub fn is_empty(&self) -> bool {
        self.wells.is_empty()
    }

    /// Check every well against the grid: in-range completion cells, finite
    /// controls, non-empty schedule windows, and no two wells sharing a
    /// completion cell.
    pub fn validate(&self, dims: Dims) -> Result<(), WorkloadError> {
        // BTreeSet, not HashSet: validation error messages surface the first
        // duplicate in iteration order, which must not vary with the hash seed
        // (nondet-iter audit rule).
        let mut seen = std::collections::BTreeSet::new();
        for well in &self.wells {
            well.validate(dims)?;
            if !seen.insert(dims.linear(well.cell)) {
                return Err(WorkloadError::new(format!(
                    "two wells complete in the same cell ({}, {}, {})",
                    well.cell.x, well.cell.y, well.cell.z
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_well_is_constant_and_schedulable() {
        let w = Well::rate("inj", CellIndex::new(0, 0, 0), 2.5).scheduled(10.0, 20.0);
        assert_eq!(w.rate_at(1e7), 2.5);
        assert_eq!(w.diagonal_coefficient(), 0.0);
        assert!(!w.is_active(9.9));
        assert!(w.is_active(10.0));
        assert!(!w.is_active(20.0));
    }

    #[test]
    fn bhp_well_switches_sign_with_cell_pressure() {
        let w = Well::bhp("prod", CellIndex::new(1, 1, 1), 1.0e7, 2.0e-6);
        assert!(w.rate_at(2.0e7) < 0.0, "cell above BHP: production");
        assert!(w.rate_at(0.5e7) > 0.0, "cell below BHP: injection");
        assert_eq!(w.diagonal_coefficient(), 2.0e-6);
        assert!(w.is_active(0.0) && w.is_active(1e30));
    }

    #[test]
    fn validation_rejects_bad_wells() {
        let dims = Dims::new(4, 4, 2);
        let out_of_range = WellSet::new(vec![Well::rate("w", CellIndex::new(4, 0, 0), 1.0)]);
        assert!(out_of_range
            .validate(dims)
            .unwrap_err()
            .to_string()
            .contains("outside"));

        let nan_rate = WellSet::new(vec![Well::rate("w", CellIndex::new(0, 0, 0), f64::NAN)]);
        assert!(nan_rate.validate(dims).is_err());

        let zero_wi = WellSet::new(vec![Well::bhp("w", CellIndex::new(0, 0, 0), 1.0, 0.0)]);
        assert!(zero_wi
            .validate(dims)
            .unwrap_err()
            .to_string()
            .contains("productivity"));

        let empty_window = WellSet::new(vec![
            Well::rate("w", CellIndex::new(0, 0, 0), 1.0).scheduled(5.0, 5.0)
        ]);
        assert!(empty_window.validate(dims).is_err());

        let duplicate = WellSet::new(vec![
            Well::rate("a", CellIndex::new(1, 1, 1), 1.0),
            Well::bhp("b", CellIndex::new(1, 1, 1), 1.0, 1.0),
        ]);
        assert!(duplicate
            .validate(dims)
            .unwrap_err()
            .to_string()
            .contains("same cell"));

        let good = WellSet::new(vec![
            Well::rate("a", CellIndex::new(0, 0, 0), 1.0),
            Well::bhp("b", CellIndex::new(3, 3, 1), 1.0, 1.0),
        ]);
        assert!(good.validate(dims).is_ok());
    }
}
