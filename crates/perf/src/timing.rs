//! Analytic device-time estimates at the paper's full problem sizes.
//!
//! The executed simulator runs scaled-down grids; the paper's Tables II–IV are
//! regenerated at full logical size with this analytic model, built from the same
//! ingredients the paper's own analysis uses: the Table-V per-cell work counts, the
//! CS-2 ceilings (per-PE FLOP rate and bandwidths), a per-hop fabric latency for the
//! all-reduce chains, and a bandwidth-bound model for the GPUs.
//!
//! The absolute numbers are *modelled*, not measured — `EXPERIMENTS.md` records them
//! against the paper's measurements; the claims that must hold are the shapes: the
//! CS-2 is orders of magnitude faster than the GPUs, Algorithm-2 weak scaling is
//! flat across the fabric, Algorithm-1 time grows slowly with fabric extent because
//! of the reduction path, and data movement is a small fraction of device time.

use crate::opcount::CellOpCounts;
use mffv_fabric::timing::WseSpec;
use mffv_gpu_ref::device_model::{GpuSpec, GpuTimeModel};
use mffv_mesh::Dims;
use mffv_telemetry::LogHistogram;

/// Best-of-`reps` wall time of `f` in seconds, after one untimed warmup —
/// the measurement discipline shared by the kernel report binaries
/// (`spmv_bench`) and the measured section of `roofline_report`.
pub fn time_best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        // mffv-perf is the blessed wall-clock crate (AUDIT.md rule 5); the
        // clippy mirror still needs a site-level allow.
        #[allow(clippy::disallowed_methods)]
        let start = std::time::Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Nearest-rank percentile of an **ascending-sorted** sample set; `q` in
/// `[0, 1]`.  Empty samples yield `0.0`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Summary statistics over a set of measured latencies (seconds) — the
/// aggregate the batch engine's `BatchReport` prints alongside throughput.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyStats {
    /// Number of samples summarised.
    pub samples: usize,
    /// Smallest sample, s.
    pub min: f64,
    /// Largest sample, s.
    pub max: f64,
    /// Arithmetic mean, s.
    pub mean: f64,
    /// Median (nearest-rank 50th percentile), s.
    pub p50: f64,
    /// Nearest-rank 95th percentile, s.
    pub p95: f64,
    /// Nearest-rank 99th percentile, s.
    pub p99: f64,
    /// Nearest-rank 99.9th percentile, s.
    pub p999: f64,
}

impl LatencyStats {
    /// Summarise `samples` (any order; an empty set yields all-zero stats).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self {
                samples: 0,
                min: 0.0,
                max: 0.0,
                mean: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
                p999: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Self {
            samples: sorted.len(),
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            p999: percentile(&sorted, 0.999),
        }
    }

    /// Summarise a streaming [`LogHistogram`] instead of a sample buffer.
    ///
    /// `samples`/`min`/`max`/`mean` are exact (the histogram tracks them
    /// alongside its buckets); percentiles are log₂-bucket estimates
    /// (within ~2× of the sorted-sample value, monotone in `q`).  This is
    /// the hot-path constructor: workers keep allocation-free per-worker
    /// histograms and merge them instead of collecting every sample.
    pub fn from_histogram(hist: &LogHistogram) -> Self {
        Self {
            samples: hist.count() as usize,
            min: hist.min_seconds(),
            max: hist.max_seconds(),
            mean: hist.mean(),
            p50: hist.p50(),
            p95: hist.p95(),
            p99: hist.p99(),
            p999: hist.p999(),
        }
    }
}

/// One row of the weak-scaling table (Table III).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScalingRow {
    /// Grid extents.
    pub dims: Dims,
    /// Number of CG steps to convergence (taken from the paper's reported counts or
    /// from an executed run).
    pub iterations: usize,
    /// Modelled CS-2 time for Algorithm 2 only (the matrix-free operator sweep), s.
    pub cs2_alg2_time: f64,
    /// Modelled CS-2 throughput for Algorithm 2, cells/s.
    pub cs2_alg2_throughput: f64,
    /// Modelled CS-2 time for the full Algorithm 1, s.
    pub cs2_alg1_time: f64,
    /// Modelled CS-2 throughput for Algorithm 1, cells/s.
    pub cs2_alg1_throughput: f64,
    /// Modelled A100 time for Algorithm 2, s.
    pub a100_alg2_time: f64,
    /// Modelled A100 time for Algorithm 1, s.
    pub a100_alg1_time: f64,
}

/// The analytic timing model.
#[derive(Clone, Debug)]
pub struct AnalyticTiming {
    counts: CellOpCounts,
    /// Efficiency factor applied to the CS-2 compute ceiling (the paper achieves
    /// 68 % of peak).
    pub cs2_efficiency: f64,
    /// Cost of one hop of the chained all-reduce *including* the per-PE
    /// receive-add-forward processing (s).  The bare wire latency is the
    /// [`WseSpec::hop_latency`]; the chained reduction additionally activates a task
    /// and performs an addition at every PE it passes through, which is what makes
    /// Algorithm 1 scale with the fabric extent in Table III.
    pub reduction_hop_cost: f64,
}

impl AnalyticTiming {
    /// Model with the paper's Table-V counts and achieved efficiency.
    pub fn paper() -> Self {
        Self {
            counts: CellOpCounts::paper_table5(),
            cs2_efficiency: 0.68,
            reduction_hop_cost: 30.0e-9,
        }
    }

    /// The per-cell work model in use.
    pub fn counts(&self) -> &CellOpCounts {
        &self.counts
    }

    /// Modelled CS-2 time for `iterations` sweeps of Algorithm 2 over a grid whose
    /// X-Y extents occupy an equally sized fabric region.
    ///
    /// Every PE processes its own `nz`-deep column concurrently, so the time depends
    /// only on the column depth — which is exactly the flat scaling Table III shows
    /// for Algorithm 2.
    pub fn cs2_alg2_time(&self, dims: Dims, iterations: usize) -> f64 {
        let spec = WseSpec::cs2_region(dims.nx, dims.ny);
        let per_pe_flops = self.counts.alg2_flops_per_cell() as f64 * dims.nz as f64;
        let per_pe_mem = self.counts.mem_bytes_per_cell() as f64 * dims.nz as f64 * 84.0 / 96.0;
        let per_iteration = (per_pe_flops / (spec.per_pe_flops() * self.cs2_efficiency))
            .max(per_pe_mem / spec.per_pe_memory_bandwidth());
        iterations as f64 * per_iteration + spec.launch_overhead
    }

    /// Modelled CS-2 time for `iterations` of the full Algorithm 1: Algorithm 2 plus
    /// the CG vector work plus two whole-fabric all-reduces per iteration whose
    /// latency grows with the fabric extents.
    pub fn cs2_alg1_time(&self, dims: Dims, iterations: usize) -> f64 {
        let spec = WseSpec::cs2_region(dims.nx, dims.ny);
        let per_pe_flops = self.counts.flops_per_cell() as f64 * dims.nz as f64;
        let per_pe_mem = self.counts.mem_bytes_per_cell() as f64 * dims.nz as f64;
        let compute = (per_pe_flops / (spec.per_pe_flops() * self.cs2_efficiency))
            .max(per_pe_mem / spec.per_pe_memory_bandwidth());
        // Two all-reduces per iteration, each a reduction plus a broadcast spanning
        // the fabric: 2 × 2 × ((w−1) + (h−1)) dependent hops, each paying the
        // receive-add-forward cost.
        let hops = 2 * 2 * ((dims.nx - 1) + (dims.ny - 1));
        let reduce_latency = hops as f64 * self.reduction_hop_cost;
        iterations as f64 * (compute + reduce_latency) + spec.launch_overhead
    }

    /// Modelled GPU time for `iterations` of Algorithm 2 (one matrix-free sweep per
    /// iteration, memory-bound).
    pub fn gpu_alg2_time(&self, spec: GpuSpec, dims: Dims, iterations: usize) -> f64 {
        // The operator sweep accounts for the Alg-2 share of the DRAM traffic.
        GpuTimeModel::new(spec).cg_time(dims, iterations) * 84.0 / 96.0
    }

    /// Modelled GPU time for `iterations` of the full Algorithm 1.
    pub fn gpu_alg1_time(&self, spec: GpuSpec, dims: Dims, iterations: usize) -> f64 {
        GpuTimeModel::new(spec).cg_time(dims, iterations)
    }

    /// Modelled CS-2 data-movement time over a whole Algorithm-1 run (the Table-IV
    /// experiment): halo exchange traffic at the fabric bandwidth plus the
    /// all-reduce latency, with all floating-point work removed.
    pub fn cs2_data_movement_time(&self, dims: Dims, iterations: usize) -> f64 {
        let spec = WseSpec::cs2_region(dims.nx, dims.ny);
        // Each iteration a PE sends its nz-deep column to four neighbours and
        // receives four columns: 8 · nz wavelets of 4 B across its links.
        let fabric_bytes = 8.0 * dims.nz as f64 * 4.0;
        let exchange = fabric_bytes / spec.per_pe_fabric_bandwidth();
        let hops = 2 * 2 * ((dims.nx - 1) + (dims.ny - 1));
        let reduce_latency = hops as f64 * spec.hop_latency;
        iterations as f64 * (exchange + reduce_latency) + spec.launch_overhead
    }

    /// The Table-IV style split at a grid size: (data movement, computation, total),
    /// assuming perfect overlap (total = max of the two plus the non-overlapped
    /// remainder, which is how the paper presents the 6.27 % / 93.73 % split).
    pub fn cs2_time_split(&self, dims: Dims, iterations: usize) -> (f64, f64, f64) {
        let data_movement = self.cs2_data_movement_time(dims, iterations);
        let total = self.cs2_alg1_time(dims, iterations);
        let computation = total - data_movement.min(total);
        (data_movement, computation, total)
    }

    /// Build a full Table-III row.
    pub fn scaling_row(&self, dims: Dims, iterations: usize) -> ScalingRow {
        let cs2_alg2_time = self.cs2_alg2_time(dims, iterations);
        let cs2_alg1_time = self.cs2_alg1_time(dims, iterations);
        let a100_alg2_time = self.gpu_alg2_time(GpuSpec::a100(), dims, iterations);
        let a100_alg1_time = self.gpu_alg1_time(GpuSpec::a100(), dims, iterations);
        let work = dims.num_cells() as f64 * iterations as f64;
        ScalingRow {
            dims,
            iterations,
            cs2_alg2_time,
            cs2_alg2_throughput: work / cs2_alg2_time,
            cs2_alg1_time,
            cs2_alg1_throughput: work / cs2_alg1_time,
            a100_alg2_time,
            a100_alg1_time,
        }
    }

    /// Modelled speedup of the CS-2 over a GPU for the full Algorithm 1.
    pub fn speedup_over_gpu(&self, spec: GpuSpec, dims: Dims, iterations: usize) -> f64 {
        self.gpu_alg1_time(spec, dims, iterations) / self.cs2_alg1_time(dims, iterations)
    }

    /// Modelled achieved FLOP/s of the CS-2 Algorithm-1 run (the Figure-6 dot).
    pub fn cs2_achieved_flops(&self, dims: Dims, iterations: usize) -> f64 {
        let flops =
            self.counts.flops_per_cell() as f64 * dims.num_cells() as f64 * iterations as f64;
        flops / self.cs2_alg1_time(dims, iterations)
    }

    /// Modelled achieved FLOP/s of the Algorithm-2 sweep alone — the matrix-free
    /// kernel rate that corresponds to the paper's headline 1.217 PFLOP/s figure
    /// (the reduction latency of the full Algorithm 1 is excluded, as it performs
    /// almost no floating-point work).
    pub fn cs2_alg2_achieved_flops(&self, dims: Dims, iterations: usize) -> f64 {
        let flops =
            self.counts.alg2_flops_per_cell() as f64 * dims.num_cells() as f64 * iterations as f64;
        flops / self.cs2_alg2_time(dims, iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_grid() -> Dims {
        Dims::new(750, 994, 922)
    }

    #[test]
    fn latency_stats_summarise_unsorted_samples() {
        let stats = LatencyStats::from_samples(&[0.3, 0.1, 0.2, 0.4, 1.0]);
        assert_eq!(stats.samples, 5);
        assert_eq!(stats.min, 0.1);
        assert_eq!(stats.max, 1.0);
        assert!((stats.mean - 0.4).abs() < 1e-12);
        assert_eq!(stats.p50, 0.3);
        assert_eq!(stats.p95, 1.0);
        assert_eq!(stats.p99, 1.0);
        assert_eq!(stats.p999, 1.0);
    }

    #[test]
    fn latency_stats_from_histogram_match_exact_moments() {
        let mut hist = LogHistogram::new();
        let samples = [0.25, 0.5, 1.0, 2.0];
        for v in samples {
            hist.record(v);
        }
        let stats = LatencyStats::from_histogram(&hist);
        let exact = LatencyStats::from_samples(&samples);
        assert_eq!(stats.samples, exact.samples);
        assert_eq!(stats.min, exact.min);
        assert_eq!(stats.max, exact.max);
        assert!((stats.mean - exact.mean).abs() < 1e-12);
        // Percentiles are log2-bucket estimates: monotone and within 2x.
        assert!(stats.p50 <= stats.p95 && stats.p95 <= stats.p99 && stats.p99 <= stats.p999);
        assert!(stats.p50 >= exact.p50 / 2.0 && stats.p50 <= exact.p50 * 2.0);
        let empty = LatencyStats::from_histogram(&LogHistogram::new());
        assert_eq!(empty, LatencyStats::from_samples(&[]));
    }

    #[test]
    fn latency_stats_handle_empty_and_single_samples() {
        let empty = LatencyStats::from_samples(&[]);
        assert_eq!(empty.samples, 0);
        assert_eq!(empty.p95, 0.0);
        let one = LatencyStats::from_samples(&[2.5]);
        assert_eq!((one.min, one.max, one.p50, one.p95), (2.5, 2.5, 2.5, 2.5));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 0.25), 1.0);
        assert_eq!(percentile(&sorted, 0.5), 2.0);
        assert_eq!(percentile(&sorted, 0.75), 3.0);
        assert_eq!(percentile(&sorted, 1.0), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn cs2_is_two_orders_of_magnitude_faster_than_the_a100() {
        let model = AnalyticTiming::paper();
        let speedup = model.speedup_over_gpu(GpuSpec::a100(), paper_grid(), 225);
        assert!(
            speedup > 100.0 && speedup < 2000.0,
            "modelled A100 speedup {speedup} not in the paper's order of magnitude (427x)"
        );
        let h100 = model.speedup_over_gpu(GpuSpec::h100(), paper_grid(), 225);
        assert!(
            h100 > 50.0 && h100 < speedup,
            "H100 speedup {h100} must be below A100's"
        );
    }

    #[test]
    fn alg2_weak_scaling_is_flat_across_the_fabric() {
        // Table III: Algorithm-2 time is constant (0.0122 s at every grid size).
        let model = AnalyticTiming::paper();
        let t_small = model.cs2_alg2_time(Dims::new(200, 200, 922), 225);
        let t_large = model.cs2_alg2_time(Dims::new(750, 994, 922), 225);
        assert!((t_small - t_large).abs() / t_large < 0.01);
    }

    #[test]
    fn alg1_time_grows_with_fabric_extent() {
        // Table III: Algorithm-1 time grows from 0.0251 s to 0.0542 s as the fabric
        // grows, because the reduction path lengthens.
        let model = AnalyticTiming::paper();
        let t_small = model.cs2_alg1_time(Dims::new(200, 200, 922), 226);
        let t_large = model.cs2_alg1_time(Dims::new(750, 994, 922), 225);
        assert!(t_large > t_small, "Alg-1 time must grow with the fabric");
        let ratio = t_large / t_small;
        assert!(
            ratio > 1.3 && ratio < 6.0,
            "growth ratio {ratio} outside the paper's shape (~2.2)"
        );
    }

    #[test]
    fn gpu_times_grow_linearly_with_cells() {
        let model = AnalyticTiming::paper();
        let t1 = model.gpu_alg1_time(GpuSpec::a100(), Dims::new(200, 200, 922), 225);
        let t2 = model.gpu_alg1_time(GpuSpec::a100(), Dims::new(400, 400, 922), 225);
        assert!((t2 / t1 - 4.0).abs() < 0.05);
    }

    #[test]
    fn data_movement_is_a_small_fraction_of_device_time() {
        // Table IV: 6.27 % data movement at the largest grid.
        let model = AnalyticTiming::paper();
        let (dm, comp, total) = model.cs2_time_split(paper_grid(), 225);
        let fraction = dm / total;
        assert!(
            fraction > 0.005 && fraction < 0.35,
            "data-movement fraction {fraction}"
        );
        assert!(comp > dm);
    }

    #[test]
    fn cs2_kernel_time_is_in_the_papers_order_of_magnitude() {
        // Paper Table II/III: 0.0542 s for the full Algorithm 1 at the largest grid.
        let model = AnalyticTiming::paper();
        let t = model.cs2_alg1_time(paper_grid(), 225);
        assert!(
            t > 0.005 && t < 0.5,
            "modelled CS-2 time {t} s out of range"
        );
        let achieved = model.cs2_achieved_flops(paper_grid(), 225);
        assert!(
            achieved > 0.1e15 && achieved <= 1.785e15,
            "achieved {achieved} FLOP/s"
        );
        // The Algorithm-2 kernel rate reproduces the paper's 1.217 PFLOP/s headline
        // figure to within ~10%.
        let alg2 = model.cs2_alg2_achieved_flops(paper_grid(), 225);
        assert!(
            (alg2 - 1.217e15).abs() / 1.217e15 < 0.1,
            "Alg-2 rate {alg2} FLOP/s"
        );
    }

    #[test]
    fn scaling_rows_are_consistent() {
        let model = AnalyticTiming::paper();
        let row = model.scaling_row(Dims::new(400, 400, 922), 225);
        assert_eq!(row.iterations, 225);
        assert!(row.cs2_alg2_time < row.cs2_alg1_time);
        assert!(row.cs2_alg2_throughput > row.cs2_alg1_throughput);
        assert!(row.a100_alg2_time < row.a100_alg1_time);
        assert!(row.a100_alg1_time > row.cs2_alg1_time);
    }
}
