//! The roofline model (Figure 6).
//!
//! Attainable performance at arithmetic intensity `AI` is
//! `min(peak, AI × bandwidth)` for each bandwidth ceiling; a kernel is
//! compute-bound with respect to a ceiling when its intensity puts the bandwidth
//! term above the compute peak.  The paper reports the CS-2 kernel compute-bound
//! for both its memory and fabric intensities at 68 % of peak, and the A100 kernel
//! memory-bound at 78 % of its ceiling.

use crate::machine::MachineSpec;

/// A kernel plotted on the roofline: its arithmetic intensity with respect to one
/// traffic class and its achieved performance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RooflinePoint {
    /// Label for reports ("memory", "fabric", …).
    pub label: &'static str,
    /// Arithmetic intensity, FLOP/byte.
    pub arithmetic_intensity: f64,
    /// Achieved performance, FLOP/s.
    pub achieved_flops: f64,
}

/// A roofline for one machine.
#[derive(Clone, Debug)]
pub struct Roofline {
    spec: MachineSpec,
}

impl Roofline {
    /// Build the roofline of a machine.
    pub fn new(spec: MachineSpec) -> Self {
        Self { spec }
    }

    /// The machine.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Attainable FLOP/s at an arithmetic intensity, against a named bandwidth
    /// ceiling (`None` uses the slowest level).
    pub fn attainable(&self, arithmetic_intensity: f64, bandwidth: Option<&str>) -> f64 {
        let bw = match bandwidth {
            Some(name) => {
                self.spec
                    .bandwidth(name)
                    // audit: allow(panic) — invariant: documented panicking
                    // lookup; callers pass names enumerated by the spec itself.
                    .expect("unknown bandwidth level")
                    .bytes_per_second
            }
            None => self.spec.slowest_bandwidth().bytes_per_second,
        };
        (arithmetic_intensity * bw).min(self.spec.peak_flops)
    }

    /// Whether a kernel with this intensity is compute-bound against a ceiling.
    pub fn is_compute_bound(&self, arithmetic_intensity: f64, bandwidth: Option<&str>) -> bool {
        self.attainable(arithmetic_intensity, bandwidth) >= self.spec.peak_flops
    }

    /// The intensity at which a bandwidth ceiling meets the compute peak (the
    /// "ridge point" of the roofline).
    pub fn ridge_intensity(&self, bandwidth: Option<&str>) -> f64 {
        let bw = match bandwidth {
            Some(name) => {
                self.spec
                    .bandwidth(name)
                    // audit: allow(panic) — invariant: documented panicking
                    // lookup; callers pass names enumerated by the spec itself.
                    .expect("unknown bandwidth level")
                    .bytes_per_second
            }
            None => self.spec.slowest_bandwidth().bytes_per_second,
        };
        self.spec.peak_flops / bw
    }

    /// Fraction of the attainable ceiling a measured performance achieves at a given
    /// intensity.
    pub fn fraction_of_attainable(
        &self,
        arithmetic_intensity: f64,
        achieved_flops: f64,
        bandwidth: Option<&str>,
    ) -> f64 {
        achieved_flops / self.attainable(arithmetic_intensity, bandwidth)
    }

    /// Generate the (intensity, attainable) series of the roofline chart between two
    /// intensities on a log grid — the data behind Figure 6.
    pub fn chart_series(
        &self,
        bandwidth: Option<&str>,
        min_intensity: f64,
        max_intensity: f64,
        points: usize,
    ) -> Vec<(f64, f64)> {
        assert!(points >= 2, "a chart series needs at least two points");
        assert!(min_intensity > 0.0 && max_intensity > min_intensity);
        let log_min = min_intensity.ln();
        let log_max = max_intensity.ln();
        (0..points)
            .map(|i| {
                let t = i as f64 / (points - 1) as f64;
                let ai = (log_min + t * (log_max - log_min)).exp();
                (ai, self.attainable(ai, bandwidth))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opcount::CellOpCounts;

    #[test]
    fn cs2_kernel_is_compute_bound_for_both_intensities() {
        // The paper's Figure-6 conclusion: compute-bound for memory AND fabric.
        let roofline = Roofline::new(MachineSpec::cs2());
        let counts = CellOpCounts::paper_table5();
        assert!(roofline.is_compute_bound(counts.memory_arithmetic_intensity(), Some("Memory")));
        assert!(roofline.is_compute_bound(counts.fabric_arithmetic_intensity(), Some("Fabric")));
    }

    #[test]
    fn a100_kernel_is_memory_bound() {
        let roofline = Roofline::new(MachineSpec::a100());
        let counts = CellOpCounts::paper_table5();
        // Against the HBM ceiling the kernel intensity is far below the ridge point.
        assert!(!roofline.is_compute_bound(counts.memory_arithmetic_intensity(), Some("HBM")));
        assert!(roofline.ridge_intensity(Some("HBM")) > counts.memory_arithmetic_intensity());
    }

    #[test]
    fn papers_achieved_fraction_is_consistent() {
        // 1.217 PFLOP/s on a 1.785 PFLOP/s peak is the paper's 68 %.
        let roofline = Roofline::new(MachineSpec::cs2());
        let counts = CellOpCounts::paper_table5();
        let fraction = roofline.fraction_of_attainable(
            counts.fabric_arithmetic_intensity(),
            1.217e15,
            Some("Fabric"),
        );
        assert!((fraction - 0.6818).abs() < 0.01, "fraction {fraction}");
    }

    #[test]
    fn attainable_is_min_of_peak_and_bandwidth_term() {
        let roofline = Roofline::new(MachineSpec::a100());
        // Far left of the ridge: bandwidth-limited.
        let low = roofline.attainable(0.01, Some("HBM"));
        assert!((low - 0.01 * 1_262.9e9).abs() / low < 1e-12);
        // Far right: compute-limited.
        assert_eq!(roofline.attainable(1e6, Some("HBM")), 14.7e12);
    }

    #[test]
    fn chart_series_is_monotone_and_clamped() {
        let roofline = Roofline::new(MachineSpec::cs2());
        let series = roofline.chart_series(Some("Memory"), 1e-2, 1e2, 33);
        assert_eq!(series.len(), 33);
        for pair in series.windows(2) {
            assert!(pair[1].0 > pair[0].0);
            assert!(pair[1].1 >= pair[0].1);
        }
        assert_eq!(series.last().unwrap().1, 1.785e15);
    }

    #[test]
    #[should_panic]
    fn chart_series_rejects_degenerate_ranges() {
        let roofline = Roofline::new(MachineSpec::cs2());
        let _ = roofline.chart_series(None, 1.0, 0.5, 10);
    }
}
