//! Machine descriptions used by the roofline and timing models.
//!
//! The ceilings are the ones the paper itself prints on its Figure-6 rooflines:
//! CS-2 — 1.785 PFLOP/s fp32, 20 PB/s memory, 3.3 PB/s fabric; A100 — 14.7 TFLOP/s,
//! L1 19 353.6 GB/s, L2 3 705.0 GB/s, HBM 1 262.9 GB/s.

/// A named bandwidth level (roofline slope).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BandwidthLevel {
    /// Label ("HBM", "Fabric", …).
    pub name: &'static str,
    /// Bandwidth in bytes/s.
    pub bytes_per_second: f64,
}

/// A machine as the roofline model sees it: one compute ceiling, several bandwidth
/// ceilings.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineSpec {
    /// Machine name.
    pub name: &'static str,
    /// FP32 peak, FLOP/s.
    pub peak_flops: f64,
    /// Bandwidth levels, fastest first.
    pub bandwidths: Vec<BandwidthLevel>,
}

impl MachineSpec {
    /// The CS-2 as characterised in the paper (Figure 6, top).
    pub fn cs2() -> Self {
        Self {
            name: "CS-2",
            peak_flops: 1.785e15,
            bandwidths: vec![
                BandwidthLevel {
                    name: "Memory",
                    bytes_per_second: 20.0e15,
                },
                BandwidthLevel {
                    name: "Fabric",
                    bytes_per_second: 3.3e15,
                },
            ],
        }
    }

    /// The A100 as characterised in the paper (Figure 6, bottom).
    pub fn a100() -> Self {
        Self {
            name: "A100",
            peak_flops: 14.7e12,
            bandwidths: vec![
                BandwidthLevel {
                    name: "L1",
                    bytes_per_second: 19_353.6e9,
                },
                BandwidthLevel {
                    name: "L2",
                    bytes_per_second: 3_705.0e9,
                },
                BandwidthLevel {
                    name: "HBM",
                    bytes_per_second: 1_262.9e9,
                },
            ],
        }
    }

    /// The H100 of the Grace Hopper superchip used for the Table-II comparison
    /// (nominal public ceilings; the paper does not print an H100 roofline).
    pub fn h100() -> Self {
        Self {
            name: "H100",
            peak_flops: 66.9e12,
            bandwidths: vec![BandwidthLevel {
                name: "HBM3",
                bytes_per_second: 3.35e12,
            }],
        }
    }

    /// The slowest (lowest) bandwidth level — the one that usually bounds a
    /// memory-bound kernel.
    pub fn slowest_bandwidth(&self) -> BandwidthLevel {
        *self
            .bandwidths
            .iter()
            .min_by(|a, b| a.bytes_per_second.total_cmp(&b.bytes_per_second))
            // audit: allow(panic) — invariant: every MachineSpec constructor
            // installs at least one bandwidth level.
            .expect("a machine needs at least one bandwidth level")
    }

    /// The bandwidth level with the given name, if present.
    pub fn bandwidth(&self, name: &str) -> Option<BandwidthLevel> {
        self.bandwidths.iter().copied().find(|b| b.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ceilings_are_reproduced() {
        let cs2 = MachineSpec::cs2();
        assert_eq!(cs2.peak_flops, 1.785e15);
        assert_eq!(cs2.bandwidth("Fabric").unwrap().bytes_per_second, 3.3e15);
        let a100 = MachineSpec::a100();
        assert_eq!(a100.peak_flops, 14.7e12);
        assert_eq!(a100.bandwidth("HBM").unwrap().bytes_per_second, 1_262.9e9);
        assert_eq!(a100.bandwidths.len(), 3);
    }

    #[test]
    fn slowest_bandwidth_is_the_memory_system() {
        assert_eq!(MachineSpec::a100().slowest_bandwidth().name, "HBM");
        assert_eq!(MachineSpec::cs2().slowest_bandwidth().name, "Fabric");
    }

    #[test]
    fn cs2_peak_dwarfs_the_gpus() {
        assert!(MachineSpec::cs2().peak_flops / MachineSpec::a100().peak_flops > 100.0);
        assert!(MachineSpec::h100().peak_flops > MachineSpec::a100().peak_flops);
    }

    #[test]
    fn unknown_bandwidth_name_is_none() {
        assert!(MachineSpec::cs2().bandwidth("L2").is_none());
    }
}
