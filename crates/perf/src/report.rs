//! Plain-text table formatting shared by the benchmark/report binaries.
//!
//! The paper's tables are regenerated as fixed-width text so `cargo run -p
//! mffv-bench --bin table2` (etc.) prints something directly comparable with the
//! published table; no plotting dependencies are needed.

/// Format a table with a header row and data rows as fixed-width text.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let num_cols = headers.len();
    for row in rows {
        assert_eq!(
            row.len(),
            num_cols,
            "every row must have {num_cols} columns"
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:w$} |", w = w));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:>w$} |", w = w));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Format seconds with four significant decimals (the paper's table style).
pub fn fmt_seconds(t: f64) -> String {
    format!("{t:.4}")
}

/// Format a throughput in Gcell/s (the Table-III unit).
pub fn fmt_gcells(cells_per_second: f64) -> String {
    format!("{:.2}", cells_per_second / 1e9)
}

/// Format a FLOP/s figure in the most readable SI unit.
pub fn fmt_flops(flops: f64) -> String {
    if flops >= 1e15 {
        format!("{:.3} PFLOP/s", flops / 1e15)
    } else if flops >= 1e12 {
        format!("{:.2} TFLOP/s", flops / 1e12)
    } else if flops >= 1e9 {
        format!("{:.2} GFLOP/s", flops / 1e9)
    } else {
        format!("{flops:.0} FLOP/s")
    }
}

/// Format a percentage.
pub fn fmt_percent(fraction: f64) -> String {
    format!("{:.2}%", 100.0 * fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned_and_complete() {
        let t = format_table(
            &["Arch", "Time [s]"],
            &[
                vec!["Dataflow".to_string(), "0.0542".to_string()],
                vec!["A100".to_string(), "23.1879".to_string()],
            ],
        );
        assert!(t.contains("| Arch     |"));
        assert!(t.contains("23.1879"));
        assert_eq!(t.lines().count(), 6);
        // Every line has the same width.
        let widths: Vec<usize> = t.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    #[should_panic]
    fn ragged_rows_are_rejected() {
        let _ = format_table(&["a", "b"], &[vec!["1".to_string()]]);
    }

    #[test]
    fn numeric_formatting() {
        assert_eq!(fmt_seconds(0.05423), "0.0542");
        assert_eq!(fmt_gcells(12_688_550_000_000.0), "12688.55");
        assert_eq!(fmt_flops(1.217e15), "1.217 PFLOP/s");
        assert_eq!(fmt_flops(14.7e12), "14.70 TFLOP/s");
        assert_eq!(fmt_flops(2.4e9), "2.40 GFLOP/s");
        assert_eq!(fmt_flops(96.0), "96 FLOP/s");
        assert_eq!(fmt_percent(0.0627), "6.27%");
    }
}
