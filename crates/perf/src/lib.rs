#![forbid(unsafe_code)]
//! # mffv-perf
//!
//! The performance-analysis layer of the reproduction: machine descriptions,
//! per-cell instruction and traffic accounting (Table V), the roofline model
//! (Figure 6), analytic device-time estimates used to regenerate Tables II–IV at
//! the paper's full problem sizes, and plain-text report formatting shared by the
//! benchmark binaries.

pub mod machine;
pub mod opcount;
pub mod report;
pub mod roofline;
pub mod timing;

pub use machine::MachineSpec;
pub use opcount::{CellOpCounts, InstructionClass, OpCountRow};
pub use roofline::{Roofline, RooflinePoint};
pub use timing::{time_best_of, AnalyticTiming, LatencyStats, ScalingRow};

/// Convenient glob import.
pub mod prelude {
    pub use crate::machine::MachineSpec;
    pub use crate::opcount::{CellOpCounts, InstructionClass, OpCountRow};
    pub use crate::report::format_table;
    pub use crate::roofline::{Roofline, RooflinePoint};
    pub use crate::timing::{time_best_of, AnalyticTiming, LatencyStats, ScalingRow};
}
