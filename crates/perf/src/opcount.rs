//! Per-cell instruction and traffic accounting — the model behind Table V.
//!
//! "Computing line 5 in Algorithm 2 consists of 6 FMULs, 4 FSUBs, 1 FADD, 1 FMA,
//! and 1 FNEG, with FMA requiring two FLOPs … computing with one neighbor requires
//! 14 FLOPs, and each cell computing with all six neighbors performs a total of 84
//! FLOPs.  The rest of the computations in Algorithm 1 perform 2 FMULs and 5 FMAs,
//! totaling 12 FLOPs.  In total, each cell … performs a total of 96 FLOPS.  The
//! floating-point operations perform a total of 268 loads and stores … and 8 loads
//! from fabric." (§V-D)

/// The instruction classes Table V enumerates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstructionClass {
    Fmul,
    Fsub,
    Fneg,
    Fadd,
    Fma,
    Fmov,
}

impl InstructionClass {
    /// FLOPs per instruction of this class (FMA counts two, FMOV zero).
    pub fn flops(self) -> usize {
        match self {
            InstructionClass::Fma => 2,
            InstructionClass::Fmov => 0,
            _ => 1,
        }
    }

    /// Display mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            InstructionClass::Fmul => "FMUL",
            InstructionClass::Fsub => "FSUB",
            InstructionClass::Fneg => "FNEG",
            InstructionClass::Fadd => "FADD",
            InstructionClass::Fma => "FMA",
            InstructionClass::Fmov => "FMOV",
        }
    }
}

/// One row of Table V: an instruction class, how many times it executes per cell,
/// and its per-instruction memory and fabric traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpCountRow {
    /// Which part of the algorithm the row belongs to ("Alg. 2" or "Rest of Alg. 1").
    pub area: &'static str,
    /// Instruction class.
    pub class: InstructionClass,
    /// Executions per cell.
    pub count: usize,
    /// Memory loads per instruction (f32 words).
    pub mem_loads: usize,
    /// Memory stores per instruction (f32 words).
    pub mem_stores: usize,
    /// Fabric loads per instruction (f32 words).
    pub fabric_loads: usize,
}

impl OpCountRow {
    /// FLOPs contributed by this row per cell.
    pub fn total_flops(&self) -> usize {
        self.count * self.class.flops()
    }

    /// Memory accesses (loads + stores) contributed per cell.
    pub fn total_mem_accesses(&self) -> usize {
        self.count * (self.mem_loads + self.mem_stores)
    }

    /// Fabric loads contributed per cell.
    pub fn total_fabric_loads(&self) -> usize {
        self.count * self.fabric_loads
    }
}

/// The full per-cell accounting of the matrix-free FV kernel.
#[derive(Clone, Debug, PartialEq)]
pub struct CellOpCounts {
    rows: Vec<OpCountRow>,
}

impl CellOpCounts {
    /// The exact Table V of the paper.
    pub fn paper_table5() -> Self {
        use InstructionClass as I;
        let rows = vec![
            // Algorithm 2 (the matrix-free flux computation with six neighbours).
            OpCountRow {
                area: "Alg. 2",
                class: I::Fmul,
                count: 36,
                mem_loads: 2,
                mem_stores: 1,
                fabric_loads: 0,
            },
            OpCountRow {
                area: "Alg. 2",
                class: I::Fsub,
                count: 24,
                mem_loads: 2,
                mem_stores: 1,
                fabric_loads: 0,
            },
            OpCountRow {
                area: "Alg. 2",
                class: I::Fneg,
                count: 6,
                mem_loads: 1,
                mem_stores: 1,
                fabric_loads: 0,
            },
            OpCountRow {
                area: "Alg. 2",
                class: I::Fadd,
                count: 6,
                mem_loads: 2,
                mem_stores: 1,
                fabric_loads: 0,
            },
            OpCountRow {
                area: "Alg. 2",
                class: I::Fma,
                count: 6,
                mem_loads: 3,
                mem_stores: 1,
                fabric_loads: 0,
            },
            OpCountRow {
                area: "Alg. 2",
                class: I::Fmov,
                count: 4,
                mem_loads: 0,
                mem_stores: 1,
                fabric_loads: 1,
            },
            // Rest of Algorithm 1 (vector updates and reductions).
            OpCountRow {
                area: "Rest of Alg. 1",
                class: I::Fmul,
                count: 2,
                mem_loads: 2,
                mem_stores: 1,
                fabric_loads: 0,
            },
            OpCountRow {
                area: "Rest of Alg. 1",
                class: I::Fma,
                count: 5,
                mem_loads: 3,
                mem_stores: 1,
                fabric_loads: 0,
            },
            OpCountRow {
                area: "Rest of Alg. 1",
                class: I::Fmov,
                count: 4,
                mem_loads: 0,
                mem_stores: 1,
                fabric_loads: 1,
            },
        ];
        Self { rows }
    }

    /// The table rows.
    pub fn rows(&self) -> &[OpCountRow] {
        &self.rows
    }

    /// Total FLOPs per cell per iteration.
    pub fn flops_per_cell(&self) -> usize {
        self.rows.iter().map(OpCountRow::total_flops).sum()
    }

    /// FLOPs per cell attributable to Algorithm 2 only.
    pub fn alg2_flops_per_cell(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.area == "Alg. 2")
            .map(OpCountRow::total_flops)
            .sum()
    }

    /// Memory accesses (f32 words) per cell per iteration.
    pub fn mem_accesses_per_cell(&self) -> usize {
        self.rows.iter().map(OpCountRow::total_mem_accesses).sum()
    }

    /// Fabric loads (f32 words) per cell per iteration.
    pub fn fabric_loads_per_cell(&self) -> usize {
        self.rows.iter().map(OpCountRow::total_fabric_loads).sum()
    }

    /// Memory traffic per cell in bytes.
    pub fn mem_bytes_per_cell(&self) -> usize {
        4 * self.mem_accesses_per_cell()
    }

    /// Fabric traffic per cell in bytes.
    pub fn fabric_bytes_per_cell(&self) -> usize {
        4 * self.fabric_loads_per_cell()
    }

    /// Arithmetic intensity with respect to memory traffic (FLOP/byte).
    pub fn memory_arithmetic_intensity(&self) -> f64 {
        self.flops_per_cell() as f64 / self.mem_bytes_per_cell() as f64
    }

    /// Arithmetic intensity with respect to fabric traffic (FLOP/byte).
    pub fn fabric_arithmetic_intensity(&self) -> f64 {
        self.flops_per_cell() as f64 / self.fabric_bytes_per_cell() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_totals_match_the_paper() {
        let t = CellOpCounts::paper_table5();
        assert_eq!(t.alg2_flops_per_cell(), 84);
        assert_eq!(t.flops_per_cell(), 96);
        assert_eq!(t.mem_accesses_per_cell(), 268);
        assert_eq!(t.fabric_loads_per_cell(), 8);
    }

    #[test]
    fn arithmetic_intensities_match_the_paper() {
        let t = CellOpCounts::paper_table5();
        // "the arithmetic intensity is 0.0895 FLOPs/Byte with respect to memory
        // access and 3 FLOPs/Byte with respect to fabric transfers"
        assert!((t.memory_arithmetic_intensity() - 0.0895).abs() < 5e-4);
        assert!((t.fabric_arithmetic_intensity() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn per_neighbor_accounting_is_14_flops() {
        // 6 FMUL + 4 FSUB + 1 FADD + 1 FMA (2 FLOPs) + 1 FNEG = 14 FLOPs per
        // neighbour contribution.
        let per_neighbor = 6 + 4 + 1 + 2 + 1;
        assert_eq!(per_neighbor, 14);
        assert_eq!(
            per_neighbor * 6,
            CellOpCounts::paper_table5().alg2_flops_per_cell()
        );
    }

    #[test]
    fn instruction_class_flops_and_names() {
        assert_eq!(InstructionClass::Fma.flops(), 2);
        assert_eq!(InstructionClass::Fmov.flops(), 0);
        assert_eq!(InstructionClass::Fmul.flops(), 1);
        assert_eq!(InstructionClass::Fsub.mnemonic(), "FSUB");
    }

    #[test]
    fn row_helpers() {
        let t = CellOpCounts::paper_table5();
        let fmov_rows: Vec<&OpCountRow> = t
            .rows()
            .iter()
            .filter(|r| r.class == InstructionClass::Fmov)
            .collect();
        assert_eq!(fmov_rows.len(), 2);
        assert_eq!(
            fmov_rows
                .iter()
                .map(|r| r.total_fabric_loads())
                .sum::<usize>(),
            8
        );
        assert_eq!(t.rows().len(), 9);
    }
}
