//! Minimal offline stand-in for the [criterion](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment has no registry access, so this crate provides the
//! small API subset the workspace's benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input, finish}`,
//! `Bencher::iter`, `BenchmarkId::new` and the `criterion_group!` /
//! `criterion_main!` macros.  Timing is a straightforward wall-clock mean over
//! a fixed number of iterations — enough to run every bench end-to-end and
//! print comparable numbers, without criterion's statistical machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export mirroring `criterion::black_box` (the real crate re-exports the
/// std hint in current versions).
pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param` as criterion does.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Passed to the closure given to `bench_function`/`bench_with_input`.
pub struct Bencher {
    iterations: usize,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the configured number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One untimed warm-up call, then the timed loop.
        black_box(routine());
        // The bench shim's whole job is timing; outside the audit's scan roots
        // but still under the clippy.toml wall-clock mirror.
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Criterion's `sample_size` controls its statistics; here it directly sets
    /// the number of timed iterations (clamped to at least one).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Criterion requires an explicit `finish`; the shim has nothing to flush.
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let mean = b.elapsed.as_secs_f64() / b.iterations.max(1) as f64;
        println!(
            "{}/{:<40} {:>12.3e} s/iter ({} iters)",
            self.name, id.id, mean, b.iterations
        );
    }
}

/// Entry point handed to every bench function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
        }
    }

    /// Criterion's standalone `bench_function`, for completeness.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Collect bench functions into a runnable group, as `criterion_group!` does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce `main` from the groups, as `criterion_main!` does.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("counting", |b| b.iter(|| calls += 1));
        // warm-up + 3 timed iterations
        assert_eq!(calls, 4);
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("p").id, "p");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
