//! Minimal offline stand-in for the [proptest](https://docs.rs/proptest)
//! property-testing crate.
//!
//! The build environment has no registry access, so this crate implements the
//! macro form the workspace's property tests use:
//!
//! ```ignore
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!     #[test]
//!     fn my_property(x in 0usize..10, y in 0.0f64..1.0) {
//!         prop_assume!(x > 0);
//!         prop_assert!(y >= 0.0, "y was {y}");
//!     }
//! }
//! ```
//!
//! Each property runs `cases` times with inputs drawn from the range
//! strategies by a deterministic xorshift RNG seeded from the test name, so
//! every run (and every failure) is reproducible.  There is no shrinking: a
//! failing case reports its inputs instead.

use std::ops::Range;

/// Configuration block accepted by `#![proptest_config(...)]`.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is skipped, not counted as a failure.
    Reject(String),
    /// `prop_assert!` failed.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (assumption not met).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// A failure (property violated).
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic xorshift64* RNG; seeded from the property name.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from an arbitrary string (the test name).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, never zero.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: h | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator; implemented for the range expressions used as strategies.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

signed_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

/// Collection strategies (the `proptest::collection::vec` entry point).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s of a fixed length.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// `len` values drawn from `element` per case (the real crate also accepts
    /// size ranges; the workspace only uses fixed lengths).
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The property-test macro.  Matches the real crate's block form; the user's
/// `#[test]` attribute passes through onto the generated zero-argument
/// function.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                // As in real proptest, a prop_assume! rejection retries with a
                // fresh draw instead of consuming the case budget; a bound on
                // total attempts catches assumptions that almost never hold.
                let mut case: u32 = 0;
                let mut attempts: u32 = 0;
                while case < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= 10 * config.cases + 100,
                        "property {} rejected too many cases ({} attempts for {} accepted); \
                         the prop_assume! condition almost never holds",
                        stringify!($name),
                        attempts,
                        case
                    );
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+ "case = {}"),
                        $($arg.clone(),)+ case
                    );
                    let outcome: $crate::TestCaseResult = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => case += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                            panic!(
                                "property {} failed: {}\n  inputs: {}",
                                stringify!($name), message, inputs
                            );
                        }
                    }
                }
            }
        )*
    };
    // Form without a config block: fall back to the default configuration.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $($arg in $strategy),+ ) $body
            )*
        }
    };
}

/// Assert within a property body; failures report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skip a case whose inputs do not meet the assumption.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The glob import the real crate recommends.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..7, y in -2i32..5, z in 0.25f64..0.75) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-2..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&z), "z = {z}");
        }

        #[test]
        fn assume_skips_cases(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::deterministic("name");
        let mut b = TestRng::deterministic("name");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
