//! Stopping criteria and convergence history.
//!
//! The paper's Algorithm 1 exits when `rᵀr < ε` (line 8) or when the iteration
//! count reaches `k_max` (line 4); the evaluation uses `ε = 2 × 10⁻¹⁰` and reports
//! the number of steps to convergence for every grid (Table III).

/// When to stop the CG iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StoppingCriterion {
    /// Threshold on the *squared* residual norm `rᵀr` (exactly the paper's line 8).
    pub tolerance: f64,
    /// Maximum number of iterations (`k_max`).
    pub max_iterations: usize,
}

impl StoppingCriterion {
    /// Build a criterion; panics on a non-positive tolerance or zero iteration cap.
    pub fn new(tolerance: f64, max_iterations: usize) -> Self {
        assert!(tolerance > 0.0, "tolerance must be positive");
        assert!(max_iterations > 0, "at least one iteration must be allowed");
        Self {
            tolerance,
            max_iterations,
        }
    }

    /// The paper's evaluation setting: `2 × 10⁻¹⁰`, generous iteration cap.
    pub fn paper() -> Self {
        Self::new(2e-10, 100_000)
    }

    /// Whether `rr = rᵀr` satisfies the convergence test.
    #[inline]
    pub fn is_converged(&self, rr: f64) -> bool {
        rr < self.tolerance
    }
}

impl Default for StoppingCriterion {
    fn default() -> Self {
        Self::paper()
    }
}

/// Record of a Krylov solve.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConvergenceHistory {
    /// `rᵀr` after every iteration, starting with the initial residual.
    pub residual_norms_squared: Vec<f64>,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
    /// Number of iterations actually performed.
    pub iterations: usize,
}

impl ConvergenceHistory {
    /// Start a history from the initial `rᵀr`.
    pub fn starting_from(initial_rr: f64) -> Self {
        Self {
            residual_norms_squared: vec![initial_rr],
            converged: false,
            iterations: 0,
        }
    }

    /// Record the `rᵀr` after one more iteration.
    pub fn record(&mut self, rr: f64) {
        self.residual_norms_squared.push(rr);
        self.iterations += 1;
    }

    /// Reset to a fresh history starting from `initial_rr`, keeping the
    /// entry buffer's capacity — the pooled-scratch counterpart of
    /// [`starting_from`](Self::starting_from).  After warmup a reused
    /// history records a whole solve without reallocating.
    pub fn reset_from(&mut self, initial_rr: f64) {
        self.residual_norms_squared.clear();
        self.residual_norms_squared.push(initial_rr);
        self.converged = false;
        self.iterations = 0;
    }

    /// The initial `rᵀr`.
    pub fn initial_rr(&self) -> f64 {
        *self.residual_norms_squared.first().unwrap_or(&f64::NAN)
    }

    /// The final `rᵀr`.
    pub fn final_rr(&self) -> f64 {
        *self.residual_norms_squared.last().unwrap_or(&f64::NAN)
    }

    /// Overall residual-norm reduction factor `sqrt(rr_final / rr_initial)`.
    pub fn reduction_factor(&self) -> f64 {
        (self.final_rr() / self.initial_rr()).sqrt()
    }

    /// Whether the recorded residual history is monotonically non-increasing within
    /// a tolerance factor (CG residual norms are not strictly monotone, but the
    /// paper's SPD systems should show a broadly decreasing trend; this helper lets
    /// tests assert "no blow-up").
    pub fn is_broadly_decreasing(&self, allowed_growth: f64) -> bool {
        let mut best = f64::INFINITY;
        for &rr in &self.residual_norms_squared {
            if rr > best * allowed_growth {
                return false;
            }
            best = best.min(rr);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_criterion() {
        let c = StoppingCriterion::paper();
        assert_eq!(c.tolerance, 2e-10);
        assert!(c.is_converged(1e-10));
        assert!(!c.is_converged(3e-10));
        assert_eq!(StoppingCriterion::default(), c);
    }

    #[test]
    #[should_panic]
    fn zero_tolerance_rejected() {
        let _ = StoppingCriterion::new(0.0, 10);
    }

    #[test]
    #[should_panic]
    fn zero_iterations_rejected() {
        let _ = StoppingCriterion::new(1e-6, 0);
    }

    #[test]
    fn history_accumulates() {
        let mut h = ConvergenceHistory::starting_from(100.0);
        h.record(10.0);
        h.record(1.0);
        h.converged = true;
        assert_eq!(h.iterations, 2);
        assert_eq!(h.initial_rr(), 100.0);
        assert_eq!(h.final_rr(), 1.0);
        assert!((h.reduction_factor() - 0.1).abs() < 1e-12);
        assert!(h.is_broadly_decreasing(1.0));
    }

    #[test]
    fn blow_up_detected() {
        let mut h = ConvergenceHistory::starting_from(1.0);
        h.record(0.5);
        h.record(50.0);
        assert!(!h.is_broadly_decreasing(10.0));
        assert!(h.is_broadly_decreasing(200.0));
    }
}
