//! Backward-Euler transient simulation: implicit time stepping with wells.
//!
//! The steady solves of this workspace answer "what pressure field balances
//! the wells?" once.  This module chains them in time: the slightly
//! compressible mass balance
//!
//! ```text
//! V_K · c_t · (p_K^{n+1} − p_K^n) / Δt  =  Σ_L Υλ (p_L^{n+1} − p_K^{n+1})  +  q_K(p^{n+1})
//! ```
//!
//! is discretised with backward Euler (unconditionally stable for any
//! `Δt > 0`) and solved per step for the pressure update `δ = p^{n+1} − p^n`:
//!
//! ```text
//! (A + D + W) δ = r(pⁿ) + q(pⁿ)
//! ```
//!
//! where `A` is the existing SPD flux operator, `D = diag(V·c_t/Δt)` the
//! accumulation term and `W = diag(Σ WI)` the productivity indices of active
//! BHP wells — both folded into the planned stencil kernels through
//! [`MatrixFreeOperator::with_diagonal_shift`], so the branch-free, fused,
//! multithreaded apply path (and its bitwise thread-count independence)
//! carries over unchanged to every step.
//!
//! Steps **warm-start**: each CG solve begins from the previous step's `δ`
//! (successive updates are similar for smooth schedules), which measurably
//! reduces total CG iterations against cold zero starts while remaining
//! fully deterministic.  [`run_transient`] drives the schedule of a
//! [`TransientSpec`] through any [`SolveBackend`]'s
//! [`step`](SolveBackend::step) and assembles the [`TransientReport`]:
//! per-step [`SolveReport`]s, requested pressure snapshots, and cumulative
//! per-well volumes.

use crate::backend::{PreconditionerKind, SolveBackend, SolveConfig, SolveError, SolveReport};
use crate::cg::ConjugateGradient;
use crate::convergence::ConvergenceHistory;
use crate::monitor::{MonitorFanout, NullMonitor, SolveMonitor, StopPolicy, StopReason};
use crate::pcg::{JacobiPreconditioner, PreconditionedConjugateGradient};
use crate::trace::TraceMonitor;
use mffv_fv::residual::{interior_mass_imbalance, newton_rhs, residual};
use mffv_fv::{MatrixFreeOperator, MgConfig, MultigridVcycle, Preconditioner};
use mffv_mesh::{CellField, Scalar, TransientSpec, Well, Workload};
use mffv_telemetry::{Span, Stopwatch};

/// Everything one backward-Euler step needs, borrowed from the driver's
/// state: the (steady) workload, the transient spec, the current pressure
/// `pⁿ` and the optional warm-start update from the previous step.
#[derive(Clone, Copy, Debug)]
pub struct StepRequest<'a> {
    /// The steady problem (grid, transmissibilities, Dirichlet set).
    pub workload: &'a Workload,
    /// The transient scenario (compressibility, wells, warm-start flag).
    pub spec: &'a TransientSpec,
    /// Pressure at the start of the step, `pⁿ` (Dirichlet values imposed).
    pub pressure: &'a CellField<f64>,
    /// The previous step's `δ`, when warm starting; `None` starts CG from
    /// zero.
    pub warm_delta: Option<&'a CellField<f64>>,
    /// Step start time, seconds (well schedules are evaluated here).
    pub time: f64,
    /// Step size, seconds.
    pub dt: f64,
}

impl StepRequest<'_> {
    /// The accumulation diagonal coefficient `V·c_t/Δt` (uniform over the
    /// grid: the mesh has uniform spacing).
    pub fn accumulation_coefficient(&self) -> f64 {
        self.workload.mesh().cell_volume() * self.spec.total_compressibility / self.dt
    }

    /// The wells active during this step, with their completion cells'
    /// linear indices (schedule evaluated at the step start time).
    pub fn active_wells(&self) -> Vec<(usize, &Well)> {
        let dims = self.workload.dims();
        self.spec
            .wells
            .wells()
            .iter()
            .filter(|w| w.is_active(self.time))
            .map(|w| (dims.linear(w.cell), w))
            .collect()
    }
}

/// What one backward-Euler step produced.
#[derive(Clone, Debug)]
pub struct StepOutcome {
    /// Pressure at the end of the step, `p^{n+1}`, in canonical `f64`.
    pub pressure: CellField<f64>,
    /// The update `δ = p^{n+1} − pⁿ` (the next step's warm start).
    pub delta: CellField<f64>,
    /// Convergence history of the step's CG solve.
    pub history: ConvergenceHistory,
    /// `Some(reason)` when a stop policy or monitor ended the solve early;
    /// `pressure` then carries the partial update reached at the boundary.
    pub stopped: Option<StopReason>,
    /// Per-well volumetric rate (m³/s, positive = injection) evaluated at
    /// `p^{n+1}`, in the spec's well order; zero for inactive wells.
    pub well_rates: Vec<f64>,
}

/// One armed stepping session: backends hand [`run_transient`] a stepper so
/// per-run kernel state (the planned operator, converted coefficient
/// tables) is built **once** and reused across every step, instead of per
/// step.  Object-safe, like [`SolveBackend`] itself.
pub trait TransientStepper {
    /// Advance one backward-Euler step (see [`SolveBackend::step`] for the
    /// contract; the outcome is bitwise identical to the one-shot path).
    fn step(
        &mut self,
        request: &StepRequest<'_>,
        config: &SolveConfig,
        monitor: &mut dyn SolveMonitor,
    ) -> Result<StepOutcome, SolveError>;
}

/// Signature of the diagonal shift a step installed: the dt bits plus the
/// active wells' completion cells and productivity indices.  While it is
/// unchanged between steps (the common case: fixed dt, static schedule),
/// the cached operator's diagonal is reused as-is.
type DiagKey = (u64, Vec<(usize, u64)>);

/// The default stepping session at precision `T`: the planned matrix-free
/// operator is built once, and only the `Δt`/well-dependent diagonal shift
/// is swapped (via [`MatrixFreeOperator::set_diagonal_shift`]) when the
/// schedule actually changes it.
pub struct PlannedStepper<T: Scalar> {
    operator: MatrixFreeOperator<T>,
    diag_key: Option<DiagKey>,
    /// The step preconditioner, armed lazily on the first preconditioned
    /// step and refreshed only when the diagonal shift actually changes.
    precond: Option<StepPrecond<T>>,
}

/// The per-session preconditioner state of a [`PlannedStepper`]: Jacobi is
/// rebuilt from the shifted diagonal; the multigrid hierarchy is built once
/// and only its diagonal shift is re-propagated down the levels when `Δt`
/// or the active well set changes.
enum StepPrecond<T: Scalar> {
    Jacobi(JacobiPreconditioner<T>),
    Mg(MultigridVcycle<T>),
}

impl<T: Scalar> StepPrecond<T> {
    fn as_dyn(&self) -> &dyn Preconditioner<T> {
        match self {
            StepPrecond::Jacobi(pc) => pc,
            StepPrecond::Mg(pc) => pc,
        }
    }
}

impl<T: Scalar> PlannedStepper<T> {
    /// Build the session's operator for `workload` (threads from `config`).
    pub fn new(workload: &Workload, config: &SolveConfig) -> Self {
        Self {
            operator: MatrixFreeOperator::<T>::from_workload(workload)
                .with_threads(config.effective_threads()),
            diag_key: None,
            precond: None,
        }
    }

    /// (Re)arm the preconditioner for the current shifted operator.  `diag`
    /// is the freshly installed shift; `changed` says whether it differs
    /// from the previous step's (when it doesn't, a cached preconditioner is
    /// reused as-is).
    fn refresh_precond(
        &mut self,
        kind: PreconditionerKind,
        workload: &Workload,
        diag: Option<&CellField<f64>>,
        changed: bool,
        threads: usize,
    ) {
        match kind {
            PreconditionerKind::None => self.precond = None,
            PreconditionerKind::Jacobi => {
                if changed || !matches!(self.precond, Some(StepPrecond::Jacobi(_))) {
                    let dims = workload.dims();
                    let coeffs = self.operator.coefficients();
                    let shifted = CellField::from_fn(dims, |c| {
                        let k = dims.linear(c);
                        if self.operator.is_dirichlet(k) {
                            T::ONE
                        } else {
                            // Boundary faces carry zero coefficients, so the
                            // raw row sum is exactly the operator diagonal.
                            let mut acc = coeffs.row_sum(k);
                            if let Some(d) = diag {
                                acc += T::from_f64(d.get(k));
                            }
                            acc
                        }
                    });
                    self.precond = Some(StepPrecond::Jacobi(JacobiPreconditioner::from_diagonal(
                        &shifted,
                    )));
                }
            }
            PreconditionerKind::Mg => {
                if !matches!(self.precond, Some(StepPrecond::Mg(_))) {
                    let mg = MultigridVcycle::new(
                        self.operator.coefficients().clone(),
                        workload.dirichlet(),
                        threads,
                        MgConfig::default(),
                    );
                    self.precond = Some(StepPrecond::Mg(mg));
                    // A fresh hierarchy has no shift yet: force-install it.
                    if let (Some(StepPrecond::Mg(mg)), Some(d)) = (&mut self.precond, diag) {
                        mg.set_diagonal_shift(d);
                    }
                } else if changed {
                    if let (Some(StepPrecond::Mg(mg)), Some(d)) = (&mut self.precond, diag) {
                        mg.set_diagonal_shift(d);
                    }
                }
            }
        }
    }
}

impl<T: Scalar> TransientStepper for PlannedStepper<T> {
    fn step(
        &mut self,
        request: &StepRequest<'_>,
        config: &SolveConfig,
        monitor: &mut dyn SolveMonitor,
    ) -> Result<StepOutcome, SolveError> {
        let workload = request.workload;
        let dims = workload.dims();
        let active = request.active_wells();

        // Diagonal shift: accumulation everywhere, plus WI at active BHP
        // wells (`set_diagonal_shift` zeroes Dirichlet rows).  Rebuilt only
        // when dt or the active well set changes.
        let key: DiagKey = (
            request.dt.to_bits(),
            active
                .iter()
                .map(|&(k, well)| (k, well.diagonal_coefficient().to_bits()))
                .collect(),
        );
        let diag_changed = self.diag_key.as_ref() != Some(&key);
        let make_diag = || {
            let mut diag = CellField::constant(dims, request.accumulation_coefficient());
            for &(k, well) in &active {
                diag.set(k, diag.get(k) + well.diagonal_coefficient());
            }
            diag
        };
        let mut installed_diag = None;
        if diag_changed {
            let diag = make_diag();
            self.operator.set_diagonal_shift(&diag);
            self.diag_key = Some(key);
            installed_diag = Some(diag);
        }
        // Arm/refresh the configured preconditioner.  The shifted diagonal
        // must propagate into it (down the whole multigrid hierarchy), so it
        // is keyed on the same dt/well signature as the operator's shift.
        let need_refresh = diag_changed
            || match (config.preconditioner, &self.precond) {
                (PreconditionerKind::None, p) => p.is_some(),
                (PreconditionerKind::Jacobi, Some(StepPrecond::Jacobi(_))) => false,
                (PreconditionerKind::Mg, Some(StepPrecond::Mg(_))) => false,
                _ => true,
            };
        if need_refresh {
            let diag = installed_diag.take().unwrap_or_else(make_diag);
            self.refresh_precond(
                config.preconditioner,
                workload,
                Some(&diag),
                diag_changed,
                config.effective_threads(),
            );
        }

        // RHS: flux residual at pⁿ (Dirichlet rows zeroed) plus well
        // sources.  The operator's coefficient table is the same converted
        // `Transmissibilities<T>` the one-shot path used, so reusing it
        // keeps the outcome bitwise identical.
        let p_n: CellField<T> = request.pressure.convert();
        let r = residual(&p_n, self.operator.coefficients(), workload.dirichlet());
        let mut b = newton_rhs(&r, workload.dirichlet());
        for &(k, well) in &active {
            b.set(
                k,
                b.get(k) + T::from_f64(well.rate_at(request.pressure.get(k))),
            );
        }

        let x0 = match request.warm_delta {
            Some(delta) => delta.convert(),
            None => CellField::zeros(dims),
        };
        let tolerance = config.effective_tolerance(workload);
        let max_iterations = config.effective_max_iterations(workload);
        let outcome = match &self.precond {
            Some(pc) => {
                let solver =
                    PreconditionedConjugateGradient::with_tolerance(tolerance, max_iterations);
                solver.solve_monitored(&self.operator, pc.as_dyn(), &b, &x0, monitor)
            }
            None => {
                let solver = ConjugateGradient::with_tolerance(tolerance, max_iterations);
                solver.solve_monitored(&self.operator, &b, &x0, monitor)
            }
        };

        let delta: CellField<f64> = outcome.solution.convert();
        let mut pressure = request.pressure.clone();
        pressure.axpy(1.0, &delta);

        let well_rates = request
            .spec
            .wells
            .wells()
            .iter()
            .map(|w| {
                if w.is_active(request.time) {
                    w.rate_at(pressure.get(dims.linear(w.cell)))
                } else {
                    0.0
                }
            })
            .collect();

        Ok(StepOutcome {
            pressure,
            delta,
            history: outcome.history,
            stopped: outcome.stopped,
            well_rates,
        })
    }
}

/// Solve one backward-Euler step at precision `T` on the host's planned
/// stencil kernels — the one-shot form of [`PlannedStepper`], and the
/// shared implementation behind the default [`SolveBackend::step`].
///
/// The step system `(A + D + W) δ = r(pⁿ) + q(pⁿ)` is SPD for any `Δt > 0`
/// (even without Dirichlet cells: the accumulation diagonal regularises the
/// pure-Neumann operator), so the unmodified CG loop applies.  Dirichlet
/// rows are pinned to `δ = 0`, keeping boundary pressures exact.
pub fn solve_step<T: Scalar>(
    request: &StepRequest<'_>,
    config: &SolveConfig,
    monitor: &mut dyn SolveMonitor,
) -> StepOutcome {
    PlannedStepper::<T>::new(request.workload, config)
        .step(request, config, monitor)
        // audit: allow(panic) — invariant: PlannedStepper::step's only error
        // path is a dims mismatch, and new() just built it from this workload.
        .expect("the planned stepper is infallible")
}

/// One completed (or stopped) step of a transient run.
#[derive(Clone, Debug)]
pub struct TransientStep {
    /// 0-based step index.
    pub index: usize,
    /// Step start time, seconds.
    pub start_time: f64,
    /// Step size, seconds.
    pub dt: f64,
    /// The step's unified solve report: `pressure` is `p^{n+1}`, `history`
    /// the step's CG record, and `final_residual_max` the max-norm residual
    /// of the **transient** equation `D δ − r(p^{n+1}) − q(p^{n+1})` over
    /// non-Dirichlet cells (m³/s).
    pub report: SolveReport,
    /// Per-well volumetric rate at `p^{n+1}` (m³/s, positive = injection),
    /// in spec order; zero while a well is off-schedule.
    pub well_rates: Vec<f64>,
    /// Net accumulation rate `Σ_K V·c_t/Δt · δ_K` over non-Dirichlet cells
    /// (m³/s) — the volume the reservoir stores during this step, per
    /// second.
    pub accumulation_rate: f64,
    /// Net inflow through Dirichlet boundary cells at `p^{n+1}` (m³/s).
    pub boundary_inflow: f64,
}

impl TransientStep {
    /// Step end time, seconds.
    pub fn end_time(&self) -> f64 {
        self.start_time + self.dt
    }

    /// Total well inflow during the step (m³/s; production counts negative).
    pub fn well_inflow(&self) -> f64 {
        mffv_fv::seq_sum(self.well_rates.iter().copied())
    }

    /// Discrete mass-balance defect of the step (m³/s): accumulation minus
    /// well and boundary inflow.  Zero up to the CG tolerance for a
    /// converged step.
    pub fn mass_balance_error(&self) -> f64 {
        self.accumulation_rate - self.well_inflow() - self.boundary_inflow
    }
}

/// A full pressure field captured for a requested snapshot time.
#[derive(Clone, Debug)]
pub struct PressureSnapshot {
    /// The time the snapshot was requested at (seconds).
    pub requested_time: f64,
    /// The time the captured field actually corresponds to: the end of the
    /// first step reaching the requested time.  Equal to `requested_time`
    /// when the request lands on a step boundary; later (never earlier)
    /// when it falls inside a step — e.g. under a ramped dt.
    pub time: f64,
    /// The captured pressure field, `p(time)`.
    pub pressure: CellField<f64>,
}

/// Cumulative volume exchanged by one well over the run.
#[derive(Clone, Debug)]
pub struct WellTotal {
    /// The well's name.
    pub name: String,
    /// Net volume (m³, positive = injected into the reservoir).
    pub net_volume: f64,
    /// Volume injected while the well's rate was positive (m³, ≥ 0).
    pub injected: f64,
    /// Volume produced while the well's rate was negative (m³, ≥ 0).
    pub produced: f64,
}

/// The result of a transient run: per-step reports, snapshots, well totals.
#[derive(Clone, Debug)]
pub struct TransientReport {
    /// Name of the backend that stepped the run.
    pub backend: String,
    /// Every executed step, in time order.  A stopped run keeps the partial
    /// final step (its report has `stopped` set).
    pub steps: Vec<TransientStep>,
    /// Pressure snapshots at the spec's requested times, in request order
    /// (a stopped run carries only the times its completed steps reached).
    pub snapshots: Vec<PressureSnapshot>,
    /// Cumulative per-well volumes, in the spec's well order.  Only
    /// *completed* steps are billed: a stopped run's partial final step
    /// contributes nothing to the ledger.
    pub wells: Vec<WellTotal>,
    /// The initial pressure field `p⁰`.
    pub initial_pressure: CellField<f64>,
    /// `Some(reason)` when a stop policy ended the run before its horizon;
    /// `steps` then holds the state reached so far.
    pub stopped: Option<StopReason>,
    /// Wall-clock seconds of the whole run on the host.
    pub host_wall_seconds: f64,
}

impl TransientReport {
    /// Pressure at the end of the run (the initial field when the run was
    /// stopped before its first step completed).
    pub fn final_pressure(&self) -> &CellField<f64> {
        self.steps
            .last()
            .map(|s| &s.report.pressure)
            .unwrap_or(&self.initial_pressure)
    }

    /// Number of executed steps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Total CG iterations across all steps.
    pub fn total_iterations(&self) -> usize {
        self.steps.iter().map(|s| s.report.iterations()).sum()
    }

    /// Whether every step's CG met its tolerance.
    pub fn all_converged(&self) -> bool {
        self.stopped.is_none() && self.steps.iter().all(|s| s.report.converged())
    }

    /// Simulated seconds actually covered: a stopped run's partial final
    /// step counts only up to its start (its pressure never reached the
    /// step's end state).
    pub fn simulated_time(&self) -> f64 {
        self.steps
            .last()
            .map(|s| {
                if s.report.stopped.is_none() {
                    s.end_time()
                } else {
                    s.start_time
                }
            })
            .unwrap_or(0.0)
    }

    /// Total volume injected by all wells (m³, ≥ 0).
    pub fn total_injected(&self) -> f64 {
        mffv_fv::seq_sum(self.wells.iter().map(|w| w.injected))
    }

    /// Total volume produced by all wells (m³, ≥ 0).
    pub fn total_produced(&self) -> f64 {
        mffv_fv::seq_sum(self.wells.iter().map(|w| w.produced))
    }

    /// The worst per-step mass-balance defect (m³/s).
    pub fn max_mass_balance_error(&self) -> f64 {
        self.steps
            .iter()
            .map(|s| s.mass_balance_error().abs())
            // audit: allow(float-reduction) — reassociation-safe: max is
            // associative and commutative over the non-NaN values here.
            .fold(0.0, f64::max)
    }

    /// All step histories concatenated into one [`ConvergenceHistory`]:
    /// starts from the first step's initial `rᵀr` and records every CG
    /// iteration of every step, so `iterations` is the run total.
    /// `converged` means the run finished and every step converged.
    pub fn merged_history(&self) -> ConvergenceHistory {
        let mut merged = match self.steps.first() {
            Some(first) => ConvergenceHistory::starting_from(first.report.history.initial_rr()),
            None => return ConvergenceHistory::default(),
        };
        for step in &self.steps {
            for &rr in &step.report.history.residual_norms_squared[1..] {
                merged.record(rr);
            }
        }
        merged.converged = self.all_converged();
        merged
    }

    /// Condense the run into one [`SolveReport`] (the shape engine batches
    /// and agreement tables understand): the final pressure with the merged
    /// history, the last step's transient-equation residual, and the run's
    /// stop state.
    pub fn summary_report(&self) -> SolveReport {
        SolveReport {
            backend: self.backend.clone(),
            pressure: self.final_pressure().clone(),
            history: self.merged_history(),
            final_residual_max: self
                .steps
                .last()
                .map(|s| s.report.final_residual_max)
                .unwrap_or(0.0),
            host_wall_seconds: self.host_wall_seconds,
            device: None,
            stopped: self.stopped,
        }
    }
}

impl std::fmt::Display for TransientReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "transient @ {}: {} steps over {:.4e} s, {} CG iterations total{}",
            self.backend,
            self.num_steps(),
            self.simulated_time(),
            self.total_iterations(),
            match self.stopped {
                Some(reason) => format!(" (stopped: {reason})"),
                None => String::new(),
            }
        )?;
        for well in &self.wells {
            writeln!(
                f,
                "  well {:12} net {:+.4e} m³ (injected {:.4e}, produced {:.4e})",
                well.name, well.net_volume, well.injected, well.produced
            )?;
        }
        Ok(())
    }
}

/// Drive a [`TransientSpec`]'s full schedule through one
/// [`transient_session`](SolveBackend::transient_session) of `backend`
/// (kernel state cached across steps), warm-starting successive steps and
/// threading `policy` through every per-step session (one shared wall-clock
/// deadline; per-step budgets and stagnation rules).
///
/// A stopped step truncates the run: the partial step is kept and the
/// report's `stopped` is set.  Invalid specs (bad dt policy, wells outside
/// the grid or completing in Dirichlet cells) fail up front with a
/// [`SolveError`].
pub fn run_transient(
    backend: &dyn SolveBackend,
    workload: &Workload,
    spec: &TransientSpec,
    config: &SolveConfig,
    policy: &StopPolicy,
) -> Result<TransientReport, SolveError> {
    run_transient_traced(backend, workload, spec, config, policy, &Span::null())
}

/// [`run_transient`] with phase spans: each time step records a `step`
/// span under `span`, with the inner CG loop traced beneath it (see
/// [`crate::trace`]) and the mass-ledger/residual bookkeeping in an
/// `accounting` child.  On a null span this is exactly [`run_transient`];
/// tracing never perturbs the numerics either way (the traced and
/// untraced trajectories are bitwise identical).
pub fn run_transient_traced(
    backend: &dyn SolveBackend,
    workload: &Workload,
    spec: &TransientSpec,
    config: &SolveConfig,
    policy: &StopPolicy,
    span: &Span,
) -> Result<TransientReport, SolveError> {
    run_transient_inner(backend, workload, spec, config, policy, span, None)
}

/// [`run_transient_traced`] with a live observer: `monitor` sees the
/// concatenated [`crate::monitor::SolveEvent`] stream of every per-step CG
/// session — each
/// step re-emits `Started` with its own initial residual, then its
/// iterations — exactly as the per-step histories record them (bitwise).
/// The external monitor *observes and controls*: a
/// [`crate::monitor::Flow::Stop`] it
/// returns ends the current step (and thereby the run) at the next
/// iteration boundary, exactly like a policy stop.  This is the serving
/// path: a daemon streams the events over a socket while the shared
/// `policy` keeps its one wall-clock deadline across steps.
pub fn run_transient_monitored(
    backend: &dyn SolveBackend,
    workload: &Workload,
    spec: &TransientSpec,
    config: &SolveConfig,
    policy: &StopPolicy,
    span: &Span,
    monitor: &mut dyn SolveMonitor,
) -> Result<TransientReport, SolveError> {
    run_transient_inner(backend, workload, spec, config, policy, span, Some(monitor))
}

fn run_transient_inner(
    backend: &dyn SolveBackend,
    workload: &Workload,
    spec: &TransientSpec,
    config: &SolveConfig,
    policy: &StopPolicy,
    span: &Span,
    mut external: Option<&mut dyn SolveMonitor>,
) -> Result<TransientReport, SolveError> {
    let name = backend.name();
    let dims = workload.dims();
    spec.validate(dims)
        .map_err(|e| SolveError::new(&name, format!("invalid transient spec: {e}")))?;
    for well in spec.wells.wells() {
        if workload.dirichlet().contains_linear(dims.linear(well.cell)) {
            return Err(SolveError::new(
                &name,
                format!(
                    "well `{}` completes in a Dirichlet cell; its source term would be \
                     discarded by the pinned boundary row",
                    well.name
                ),
            ));
        }
    }

    // Anchors the run's shared StopPolicy deadline (consume_deadline) and
    // elapsed-seconds telemetry; it never feeds the numerics of a step.
    let started = Stopwatch::start();
    let mut pressure: CellField<f64> = match spec.initial_pressure {
        Some(p0) => {
            let mut field = CellField::constant(dims, p0);
            workload.dirichlet().impose(&mut field);
            field
        }
        None => workload.initial_pressure(),
    };
    let initial_pressure = pressure.clone();

    let acc_rate = |delta: &CellField<f64>, dt: f64| -> f64 {
        let coeff = workload.mesh().cell_volume() * spec.total_compressibility / dt;
        let mut sum = 0.0;
        for k in 0..dims.num_cells() {
            if !workload.dirichlet().contains_linear(k) {
                sum += delta.get(k);
            }
        }
        coeff * sum
    };

    let mut steps: Vec<TransientStep> = Vec::new();
    let mut warm: Option<CellField<f64>> = None;
    // One slot per requested time, filled at capture and flattened in
    // request order at the end.
    let mut snapshots: Vec<Option<PressureSnapshot>> = vec![None; spec.snapshot_times.len()];
    let mut totals: Vec<WellTotal> = spec
        .wells
        .wells()
        .iter()
        .map(|w| WellTotal {
            name: w.name.clone(),
            net_volume: 0.0,
            injected: 0.0,
            produced: 0.0,
        })
        .collect();
    let mut run_stopped = None;

    // One stepping session for the whole run: the backend's kernel state
    // (planned operator, converted coefficients) is built once, not per
    // step.
    let mut stepper = backend.transient_session(workload, config)?;
    for (index, (time, dt)) in spec.schedule().into_iter().enumerate() {
        let request = StepRequest {
            workload,
            spec,
            pressure: &pressure,
            warm_delta: if spec.warm_start { warm.as_ref() } else { None },
            time,
            dt,
        };
        let step_span = span.child("step");
        let step_started = Stopwatch::start();
        // One monitor per step: the armed policy session (when any rule is
        // configured), fanned out with the external observer (when one is
        // attached).  The policy keeps stop precedence by sitting first in
        // the fanout; a pure observer changes no arithmetic either way, so
        // every combination below is bitwise-identical on the solve values.
        let mut session =
            (!policy.is_empty()).then(|| policy.consume_deadline(started.elapsed()).session());
        let outcome = match (session.as_mut(), external.as_deref_mut()) {
            (None, None) => {
                if step_span.is_recording() {
                    let mut null = NullMonitor;
                    let mut traced = TraceMonitor::new(&step_span, &mut null);
                    stepper.step(&request, config, &mut traced)?
                } else {
                    stepper.step(&request, config, &mut NullMonitor)?
                }
            }
            (Some(session), None) => {
                if step_span.is_recording() {
                    let mut traced = TraceMonitor::new(&step_span, session);
                    stepper.step(&request, config, &mut traced)?
                } else {
                    stepper.step(&request, config, session)?
                }
            }
            (None, Some(observer)) => {
                if step_span.is_recording() {
                    let mut traced = TraceMonitor::new(&step_span, observer);
                    stepper.step(&request, config, &mut traced)?
                } else {
                    stepper.step(&request, config, observer)?
                }
            }
            (Some(session), Some(observer)) => {
                let mut fanout = MonitorFanout::new().push(session).push(observer);
                if step_span.is_recording() {
                    let mut traced = TraceMonitor::new(&step_span, &mut fanout);
                    stepper.step(&request, config, &mut traced)?
                } else {
                    stepper.step(&request, config, &mut fanout)?
                }
            }
        };
        let step_wall = step_started.elapsed_seconds();
        let accounting = step_span.child("accounting");

        // Transient-equation residual and boundary inflow at p^{n+1}.
        let r_new = residual(
            &outcome.pressure,
            workload.transmissibility(),
            workload.dirichlet(),
        );
        let boundary_inflow = interior_mass_imbalance(&r_new, workload.dirichlet());
        let accumulation_rate = acc_rate(&outcome.delta, dt);
        let acc_coeff = workload.mesh().cell_volume() * spec.total_compressibility / dt;
        let mut step_residual_max = 0.0f64;
        {
            let mut q = vec![0.0f64; dims.num_cells()];
            for (well, &rate) in spec.wells.wells().iter().zip(&outcome.well_rates) {
                q[dims.linear(well.cell)] += rate;
            }
            for (k, &qk) in q.iter().enumerate() {
                if !workload.dirichlet().contains_linear(k) {
                    let defect = acc_coeff * outcome.delta.get(k) - r_new.get(k) - qk;
                    step_residual_max = step_residual_max.max(defect.abs());
                }
            }
        }

        let stopped = outcome.stopped;
        // The well ledger and snapshots only credit *completed* steps: a
        // stopped step's pressure is an unconverged partial iterate, so
        // billing its full dt of well volume would overstate what was
        // simulated (the partial step stays inspectable in `steps`).
        if stopped.is_none() {
            for (total, &rate) in totals.iter_mut().zip(&outcome.well_rates) {
                let volume = rate * dt;
                total.net_volume += volume;
                if volume >= 0.0 {
                    total.injected += volume;
                } else {
                    total.produced -= volume;
                }
            }
        }
        steps.push(TransientStep {
            index,
            start_time: time,
            dt,
            report: SolveReport {
                backend: name.clone(),
                pressure: outcome.pressure.clone(),
                history: outcome.history,
                final_residual_max: step_residual_max,
                host_wall_seconds: step_wall,
                device: None,
                stopped,
            },
            well_rates: outcome.well_rates,
            accumulation_rate,
            boundary_inflow,
        });
        pressure = outcome.pressure;
        warm = Some(outcome.delta);

        // Relative guard so a requested time equal to the horizon (or a step
        // boundary) is captured despite float dust in the accumulated time.
        // Stopped (partial) steps capture nothing.
        let snap_eps = spec.total_time * 1e-9;
        if stopped.is_none() {
            for (slot, &ts) in snapshots.iter_mut().zip(&spec.snapshot_times) {
                if slot.is_none() && time + dt >= ts - snap_eps {
                    *slot = Some(PressureSnapshot {
                        requested_time: ts,
                        // Label the field with the time it actually
                        // corresponds to — the step end — not the request.
                        time: time + dt,
                        pressure: pressure.clone(),
                    });
                }
            }
        }

        accounting.finish();

        if let Some(reason) = stopped {
            run_stopped = Some(reason);
            break;
        }
    }

    Ok(TransientReport {
        backend: name,
        steps,
        snapshots: snapshots.into_iter().flatten().collect(),
        wells: totals,
        initial_pressure,
        stopped: run_stopped,
        host_wall_seconds: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::HostBackend;
    use mffv_mesh::workload::{BoundarySpec, WorkloadSpec};
    use mffv_mesh::{CellIndex, Dims, WellSet};

    fn closed_workload(dims: Dims) -> Workload {
        WorkloadSpec {
            name: format!("closed-{dims}"),
            boundary: BoundarySpec::None,
            dims,
            ..WorkloadSpec::quickstart()
        }
        .build()
    }

    #[test]
    fn single_cell_bhp_decay_matches_the_discrete_rate() {
        // One cell, one BHP well, no Dirichlet: backward Euler gives the
        // exact recurrence p^{n+1} = (D pⁿ + WI·p_bhp) / (D + WI).
        let workload = closed_workload(Dims::new(1, 1, 1));
        let (p_bhp, wi, ct, dt) = (5.0, 0.25, 2.0, 0.5);
        let spec = TransientSpec::new(5.0 * dt, dt, ct)
            .with_wells(WellSet::empty().with(mffv_mesh::Well::bhp(
                "w",
                CellIndex::new(0, 0, 0),
                p_bhp,
                wi,
            )))
            .with_initial_pressure(1.0);
        let config = SolveConfig {
            tolerance: Some(1e-28),
            ..SolveConfig::default()
        };
        let report = run_transient(
            &HostBackend::oracle(),
            &workload,
            &spec,
            &config,
            &StopPolicy::new(),
        )
        .unwrap();
        assert_eq!(report.num_steps(), 5);
        let d = workload.mesh().cell_volume() * ct / dt;
        let mut p = 1.0f64;
        for step in &report.steps {
            p = (d * p + wi * p_bhp) / (d + wi);
            let got = step.report.pressure.get(0);
            assert!(
                (got - p).abs() < 1e-12,
                "step {}: {} vs exact {}",
                step.index,
                got,
                p
            );
        }
        // Monotone relaxation towards the BHP.
        assert!(report.final_pressure().get(0) > 1.0);
        assert!(report.final_pressure().get(0) < p_bhp);
    }

    #[test]
    fn mass_balance_closes_on_a_sealed_reservoir() {
        let workload = closed_workload(Dims::new(6, 5, 4));
        let dims = workload.dims();
        let spec = TransientSpec::new(4.0, 0.5, 1e-3)
            .with_wells(
                WellSet::empty()
                    .with(mffv_mesh::Well::rate("inj", CellIndex::new(0, 0, 0), 2.0))
                    .with(mffv_mesh::Well::rate(
                        "prod",
                        CellIndex::new(dims.nx - 1, dims.ny - 1, dims.nz - 1),
                        -1.25,
                    )),
            )
            .with_initial_pressure(10.0);
        let config = SolveConfig {
            tolerance: Some(1e-24),
            ..SolveConfig::default()
        };
        let report = run_transient(
            &HostBackend::oracle(),
            &workload,
            &spec,
            &config,
            &StopPolicy::new(),
        )
        .unwrap();
        assert!(report.all_converged());
        assert_eq!(report.num_steps(), 8);
        // No boundary: injected − produced must equal stored volume.
        for step in &report.steps {
            assert!(step.boundary_inflow.abs() < 1e-9);
            assert!(
                step.mass_balance_error().abs() < 1e-8,
                "step {}: {}",
                step.index,
                step.mass_balance_error()
            );
        }
        assert!((report.total_injected() - 2.0 * 4.0).abs() < 1e-9);
        assert!((report.total_produced() - 1.25 * 4.0).abs() < 1e-9);
    }

    #[test]
    fn snapshots_and_schedules_are_honoured() {
        let workload = closed_workload(Dims::new(4, 4, 2));
        let spec = TransientSpec::new(2.0, 0.25, 1e-3)
            .with_wells(WellSet::empty().with(
                mffv_mesh::Well::rate("inj", CellIndex::new(0, 0, 0), 1.0).scheduled(0.0, 1.0),
            ))
            .with_initial_pressure(0.0)
            .with_snapshots([0.5, 2.0]);
        let config = SolveConfig {
            tolerance: Some(1e-24),
            ..SolveConfig::default()
        };
        let report = run_transient(
            &HostBackend::oracle(),
            &workload,
            &spec,
            &config,
            &StopPolicy::new(),
        )
        .unwrap();
        assert_eq!(report.snapshots.len(), 2);
        assert_eq!(report.snapshots[0].requested_time, 0.5);
        assert_eq!(report.snapshots[0].time, 0.5);
        // The well shuts in at t = 1: later steps exchange nothing.
        for step in &report.steps {
            if step.start_time >= 1.0 {
                assert_eq!(step.well_rates[0], 0.0);
            } else {
                assert_eq!(step.well_rates[0], 1.0);
            }
        }
        assert!((report.wells[0].net_volume - 1.0).abs() < 1e-12);
        // Sealed reservoir + shut-in well: pressure settles and stays.
        assert!(report.all_converged());
    }

    #[test]
    fn wells_in_dirichlet_cells_are_rejected() {
        let workload = WorkloadSpec::quickstart().build();
        let spec = TransientSpec::new(1.0, 0.5, 1e-9).with_wells(
            WellSet::empty().with(mffv_mesh::Well::rate("w", CellIndex::new(0, 0, 0), 1.0)),
        );
        let err = run_transient(
            &HostBackend::oracle(),
            &workload,
            &spec,
            &SolveConfig::default(),
            &StopPolicy::new(),
        )
        .unwrap_err();
        assert!(err.detail().contains("Dirichlet"), "{}", err.detail());
    }

    #[test]
    fn merged_history_and_summary_report_aggregate_the_run() {
        let workload = closed_workload(Dims::new(4, 3, 2));
        let spec = TransientSpec::new(1.0, 0.25, 1e-3)
            .with_wells(WellSet::empty().with(mffv_mesh::Well::rate(
                "inj",
                CellIndex::new(1, 1, 1),
                0.5,
            )))
            .with_initial_pressure(1.0);
        let config = SolveConfig {
            tolerance: Some(1e-20),
            ..SolveConfig::default()
        };
        let report = run_transient(
            &HostBackend::oracle(),
            &workload,
            &spec,
            &config,
            &StopPolicy::new(),
        )
        .unwrap();
        let merged = report.merged_history();
        assert_eq!(merged.iterations, report.total_iterations());
        assert_eq!(
            merged.residual_norms_squared.len(),
            report.total_iterations() + 1
        );
        assert!(merged.converged);
        let summary = report.summary_report();
        assert_eq!(summary.backend, "host-f64");
        assert_eq!(summary.iterations(), report.total_iterations());
        assert_eq!(
            summary.pressure.as_slice(),
            report.final_pressure().as_slice()
        );
        assert!(report.to_string().contains("well"));
    }

    #[test]
    fn iteration_budget_policy_stops_the_run_with_partial_state() {
        let workload = closed_workload(Dims::new(8, 8, 4));
        let spec = TransientSpec::new(10.0, 1.0, 1e-6).with_wells(
            WellSet::empty().with(mffv_mesh::Well::rate("inj", CellIndex::new(4, 4, 2), 1.0)),
        );
        let config = SolveConfig {
            tolerance: Some(1e-30),
            ..SolveConfig::default()
        };
        let policy = StopPolicy::new().iteration_budget(2);
        let report =
            run_transient(&HostBackend::oracle(), &workload, &spec, &config, &policy).unwrap();
        assert_eq!(report.stopped, Some(StopReason::IterationBudget));
        assert_eq!(report.num_steps(), 1);
        assert_eq!(report.steps[0].report.iterations(), 2);
        assert!(report.steps[0].report.was_stopped());
        assert!(!report.all_converged());
        // A partial step is not billed: no well volume, no simulated time.
        assert_eq!(report.total_injected(), 0.0);
        assert_eq!(report.wells[0].net_volume, 0.0);
        assert_eq!(report.simulated_time(), 0.0);
    }

    #[test]
    fn snapshots_come_back_in_request_order_even_when_unsorted() {
        let workload = closed_workload(Dims::new(4, 4, 2));
        let spec = TransientSpec::new(2.0, 0.25, 1e-3)
            .with_wells(WellSet::empty().with(mffv_mesh::Well::rate(
                "inj",
                CellIndex::new(1, 1, 1),
                0.5,
            )))
            .with_initial_pressure(1.0)
            .with_snapshots([2.0, 0.5]);
        let config = SolveConfig {
            tolerance: Some(1e-24),
            ..SolveConfig::default()
        };
        let report = run_transient(
            &HostBackend::oracle(),
            &workload,
            &spec,
            &config,
            &StopPolicy::new(),
        )
        .unwrap();
        let requested: Vec<f64> = report.snapshots.iter().map(|s| s.requested_time).collect();
        assert_eq!(
            requested,
            vec![2.0, 0.5],
            "request order, not capture order"
        );
        // Both requests land on step boundaries, so capture times match.
        let captured: Vec<f64> = report.snapshots.iter().map(|s| s.time).collect();
        assert_eq!(captured, vec![2.0, 0.5]);
    }

    #[test]
    fn planned_stepper_session_matches_the_one_shot_step_bitwise() {
        use crate::backend::SolveBackend;
        let workload = closed_workload(Dims::new(6, 5, 4));
        let spec = TransientSpec::new(2.0, 0.5, 1e-3)
            .with_wells(
                WellSet::empty()
                    .with(mffv_mesh::Well::rate("inj", CellIndex::new(0, 0, 0), 1.0))
                    .with(mffv_mesh::Well::bhp(
                        "prod",
                        CellIndex::new(5, 4, 3),
                        5.0,
                        0.25,
                    )),
            )
            .with_initial_pressure(10.0);
        let config = SolveConfig {
            tolerance: Some(1e-20),
            ..SolveConfig::default()
        };
        let backend = HostBackend::oracle();
        let mut session = backend.transient_session(&workload, &config).unwrap();
        let mut pressure: CellField<f64> = CellField::constant(workload.dims(), 10.0);
        workload.dirichlet().impose(&mut pressure);
        let mut warm: Option<CellField<f64>> = None;
        for (time, dt) in spec.schedule() {
            let request = StepRequest {
                workload: &workload,
                spec: &spec,
                pressure: &pressure,
                warm_delta: warm.as_ref(),
                time,
                dt,
            };
            let cached = session
                .step(&request, &config, &mut crate::monitor::NullMonitor)
                .unwrap();
            let one_shot = backend
                .step(&request, &config, &mut crate::monitor::NullMonitor)
                .unwrap();
            let bits = |f: &CellField<f64>| -> Vec<u64> {
                f.as_slice().iter().map(|v| v.to_bits()).collect()
            };
            assert_eq!(bits(&cached.pressure), bits(&one_shot.pressure));
            assert_eq!(cached.history, one_shot.history);
            pressure = cached.pressure;
            warm = Some(cached.delta);
        }
    }
}
