#![forbid(unsafe_code)]
//! # mffv-solver
//!
//! Krylov solvers for the FV linear systems: the conjugate-gradient method of the
//! paper's Algorithm 1, a Jacobi-preconditioned variant (a natural extension the
//! paper leaves for future work), deterministic reduction utilities matching the
//! order of the whole-fabric all-reduce (§III-C), and a one-Newton-step driver that
//! turns a workload into a converged pressure field.
//!
//! The solvers are written against the [`mffv_fv::LinearOperator`] abstraction so
//! the identical iteration runs on the sequential matrix-free kernel, the assembled
//! CSR baseline, the GPU-style reference and (re-implemented as a state machine) the
//! dataflow fabric.

pub mod backend;
pub mod cg;
pub mod context;
pub mod convergence;
pub mod monitor;
pub mod newton;
pub mod pcg;
pub mod reduction;
pub mod trace;
pub mod transient;

pub use backend::{
    DeviceSection, HostBackend, Precision, PreconditionerKind, SolveBackend, SolveConfig,
    SolveError, SolveReport,
};
pub use cg::{ConjugateGradient, SolveOutcome};
pub use context::{CgScratch, ContextKey, ContextStats, SolveContext, SolveContextCache};
pub use convergence::{ConvergenceHistory, StoppingCriterion};
pub use mffv_fv::{MgConfig, MultigridVcycle, Preconditioner};
pub use monitor::{
    monitor_fn, CancelToken, Flow, FnMonitor, MonitorFanout, NullMonitor, PolicySession,
    RecordingMonitor, SolveEvent, SolveMonitor, StopPolicy, StopReason,
};
pub use newton::{solve_pressure, solve_pressure_preconditioned, PressureSolution};
pub use pcg::{JacobiPreconditioner, PreconditionedConjugateGradient};
pub use trace::{TraceMonitor, TRACE_CHUNK_ITERS};
pub use transient::{
    run_transient, run_transient_monitored, run_transient_traced, solve_step, PlannedStepper,
    PressureSnapshot, StepOutcome, StepRequest, TransientReport, TransientStep, TransientStepper,
    WellTotal,
};

/// Convenient glob import.
pub mod prelude {
    pub use crate::backend::{
        DeviceSection, HostBackend, Precision, PreconditionerKind, SolveBackend, SolveConfig,
        SolveError, SolveReport,
    };
    pub use crate::cg::{ConjugateGradient, SolveOutcome};
    pub use crate::context::{
        CgScratch, ContextKey, ContextStats, SolveContext, SolveContextCache,
    };
    pub use crate::convergence::{ConvergenceHistory, StoppingCriterion};
    pub use crate::monitor::{
        monitor_fn, CancelToken, Flow, FnMonitor, MonitorFanout, NullMonitor, PolicySession,
        RecordingMonitor, SolveEvent, SolveMonitor, StopPolicy, StopReason,
    };
    pub use crate::newton::{solve_pressure, solve_pressure_preconditioned, PressureSolution};
    pub use crate::pcg::{JacobiPreconditioner, PreconditionedConjugateGradient};
    pub use crate::reduction::{fabric_ordered_dot, fabric_ordered_sum};
    pub use crate::trace::{TraceMonitor, TRACE_CHUNK_ITERS};
    pub use crate::transient::{
        run_transient, run_transient_monitored, run_transient_traced, solve_step, PlannedStepper,
        PressureSnapshot, StepOutcome, StepRequest, TransientReport, TransientStep,
        TransientStepper, WellTotal,
    };
    pub use mffv_fv::{MgConfig, MultigridVcycle, Preconditioner};
}
