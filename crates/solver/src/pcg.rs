//! Preconditioned conjugate gradient.
//!
//! The paper solves the un-preconditioned system (Algorithm 1).  Diagonal (Jacobi)
//! preconditioning is the natural first extension for the heterogeneous
//! permeability fields real CCS geomodels exhibit, and it maps onto the dataflow
//! architecture trivially — the diagonal is resident per PE, so the extra work per
//! iteration is one local multiply and no additional communication.  The PCG loop
//! itself is written against the [`Preconditioner`] trait, so the same iteration
//! also runs under the geometric-multigrid V-cycle of
//! [`mffv_fv::mg::MultigridVcycle`] (where the win is iteration *count* roughly
//! flat in grid size); the ablation benchmarks compare all of them against plain
//! CG.

use crate::context::CgScratch;
use crate::convergence::StoppingCriterion;
use crate::monitor::{Flow, NullMonitor, SolveEvent, SolveMonitor};
use mffv_fv::plan::{det_dot, det_norm_squared};
use mffv_fv::{LinearOperator, Preconditioner};
use mffv_mesh::{CellField, Dims, Direction, DirichletSet, Scalar, Transmissibilities};
use mffv_telemetry::Span;

/// A diagonal (Jacobi) preconditioner `M⁻¹ = diag(A)⁻¹`.
#[derive(Clone, Debug)]
pub struct JacobiPreconditioner<T: Scalar> {
    inverse_diagonal: CellField<T>,
}

impl<T: Scalar> JacobiPreconditioner<T> {
    /// Build from an explicit diagonal. Zero or negative entries are replaced by 1,
    /// keeping the preconditioner SPD even for degenerate rows.
    pub fn from_diagonal(diagonal: &CellField<T>) -> Self {
        let mut inv = CellField::zeros(diagonal.dims());
        for i in 0..diagonal.len() {
            let d = diagonal.get(i);
            inv.set(i, if d.to_f64() > 0.0 { T::ONE / d } else { T::ONE });
        }
        Self {
            inverse_diagonal: inv,
        }
    }

    /// Build the diagonal of the SPD FV operator directly from the TPFA coefficient
    /// table: `diag_K = Σ_L Υ_KL λ_KL` for interior cells and 1 for Dirichlet cells.
    pub fn from_coefficients(coeffs: &Transmissibilities<T>, dirichlet: &DirichletSet) -> Self {
        let dims = coeffs.dims();
        let diag = CellField::from_fn(dims, |c| {
            let k = dims.linear(c);
            if dirichlet.contains_linear(k) {
                T::ONE
            } else {
                let mut acc = T::ZERO;
                for dir in Direction::ALL {
                    if dims.neighbor(c, dir).is_some() {
                        acc += coeffs.get(k, dir);
                    }
                }
                if acc.to_f64() > 0.0 {
                    acc
                } else {
                    T::ONE
                }
            }
        });
        Self::from_diagonal(&diag)
    }

    /// Apply `z = M⁻¹ r`.
    pub fn apply(&self, r: &CellField<T>, z: &mut CellField<T>) {
        assert_eq!(r.dims(), self.inverse_diagonal.dims());
        assert_eq!(z.dims(), self.inverse_diagonal.dims());
        for i in 0..r.len() {
            z.set(i, r.get(i) * self.inverse_diagonal.get(i));
        }
    }

    /// Grid extents.
    pub fn dims(&self) -> Dims {
        self.inverse_diagonal.dims()
    }
}

impl<T: Scalar> Preconditioner<T> for JacobiPreconditioner<T> {
    fn dims(&self) -> Dims {
        JacobiPreconditioner::dims(self)
    }

    fn apply(&self, r: &CellField<T>, z: &mut CellField<T>) {
        JacobiPreconditioner::apply(self, r, z);
    }

    fn label(&self) -> &'static str {
        "jacobi"
    }
}

/// Preconditioned conjugate gradient solver.
#[derive(Clone, Copy, Debug)]
pub struct PreconditionedConjugateGradient {
    /// Stopping criterion (tolerance on `rᵀr` and iteration cap); the convergence
    /// test deliberately uses the *unpreconditioned* `rᵀr` so histories are
    /// comparable with plain CG.
    pub criterion: StoppingCriterion,
}

impl PreconditionedConjugateGradient {
    /// A solver with an explicit criterion.
    pub fn new(criterion: StoppingCriterion) -> Self {
        Self { criterion }
    }

    /// A solver with the given tolerance on `rᵀr` and iteration cap.
    pub fn with_tolerance(tolerance: f64, max_iterations: usize) -> Self {
        Self {
            criterion: StoppingCriterion::new(tolerance, max_iterations),
        }
    }

    /// Solve `A x = b` with preconditioner `M⁻¹`, starting from `x0`.
    pub fn solve<T: Scalar, Op: LinearOperator<T>, P: Preconditioner<T> + ?Sized>(
        &self,
        operator: &Op,
        preconditioner: &P,
        rhs: &CellField<T>,
        x0: &CellField<T>,
    ) -> crate::cg::SolveOutcome<T> {
        self.solve_monitored(operator, preconditioner, rhs, x0, &mut NullMonitor)
    }

    /// Solve `A x = b` as an observable, cancellable session (the PCG
    /// counterpart of
    /// [`ConjugateGradient::solve_monitored`](crate::cg::ConjugateGradient::solve_monitored)):
    /// `monitor` sees the recorded *unpreconditioned* `rᵀr` at every
    /// iteration boundary and may stop the solve early.
    pub fn solve_monitored<T: Scalar, Op: LinearOperator<T>, P: Preconditioner<T> + ?Sized>(
        &self,
        operator: &Op,
        preconditioner: &P,
        rhs: &CellField<T>,
        x0: &CellField<T>,
        monitor: &mut dyn SolveMonitor,
    ) -> crate::cg::SolveOutcome<T> {
        self.solve_traced(operator, preconditioner, rhs, x0, monitor, &Span::null())
    }

    /// [`solve_monitored`](Self::solve_monitored) with telemetry: every
    /// preconditioner application runs under `span`, so structured
    /// preconditioners (the multigrid V-cycle) emit their `mg.vcycle` /
    /// `mg.level` phase spans.  Tracing never touches the arithmetic —
    /// traced and untraced solves are bitwise identical.
    pub fn solve_traced<T: Scalar, Op: LinearOperator<T>, P: Preconditioner<T> + ?Sized>(
        &self,
        operator: &Op,
        preconditioner: &P,
        rhs: &CellField<T>,
        x0: &CellField<T>,
        monitor: &mut dyn SolveMonitor,
        span: &Span,
    ) -> crate::cg::SolveOutcome<T> {
        let mut scratch = CgScratch::new(operator.dims());
        let stopped = self.solve_traced_into(
            operator,
            preconditioner,
            rhs,
            Some(x0),
            monitor,
            span,
            &mut scratch,
        );
        scratch.into_outcome(stopped)
    }

    /// [`solve_traced`](Self::solve_traced) into a caller-owned
    /// [`CgScratch`] — the zero-allocation form of the pooled serving path
    /// (the PCG counterpart of
    /// [`ConjugateGradient::solve_into`](crate::cg::ConjugateGradient::solve_into)).
    ///
    /// `x0 = None` starts from the zero vector.  Every scratch buffer —
    /// including `z`, which every [`Preconditioner::apply`] fully overwrites
    /// — is written before it is read, so results are bitwise identical to a
    /// fresh-allocation solve.  On a numerical breakdown the solve ends with
    /// a terminal
    /// [`SolveEvent::Stopped`]`(`[`StopReason::Breakdown`](crate::monitor::StopReason::Breakdown)`)`.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_traced_into<T: Scalar, Op: LinearOperator<T>, P: Preconditioner<T> + ?Sized>(
        &self,
        operator: &Op,
        preconditioner: &P,
        rhs: &CellField<T>,
        x0: Option<&CellField<T>>,
        monitor: &mut dyn SolveMonitor,
        span: &Span,
        scratch: &mut CgScratch<T>,
    ) -> Option<crate::monitor::StopReason> {
        use crate::monitor::StopReason;

        let dims = operator.dims();
        assert_eq!(rhs.dims(), dims);
        assert_eq!(scratch.dims(), dims, "scratch dimension mismatch");
        assert_eq!(preconditioner.dims(), dims);
        match x0 {
            Some(x0) => {
                assert_eq!(x0.dims(), dims);
                scratch.solution.copy_from(x0);
            }
            None => scratch.solution.fill(T::ZERO),
        }
        scratch.residual.copy_from(rhs);
        operator.apply(&scratch.solution, &mut scratch.ad);
        scratch.residual.axpy(-T::ONE, &scratch.ad);

        preconditioner.apply_traced(&scratch.residual, &mut scratch.z, span);
        scratch.direction.copy_from(&scratch.z);

        let mut rz = det_dot(&scratch.residual, &scratch.z).to_f64();
        let rr0 = det_norm_squared(&scratch.residual).to_f64();
        scratch.history.reset_from(rr0);
        if self.criterion.is_converged(rr0) {
            scratch.history.converged = true;
            monitor.on_event(&SolveEvent::Started { initial_rr: rr0 });
            monitor.on_event(&SolveEvent::Converged {
                iterations: 0,
                rr: rr0,
            });
            return None;
        }
        if let Flow::Stop(reason) = monitor.on_event(&SolveEvent::Started { initial_rr: rr0 }) {
            monitor.on_event(&SolveEvent::Stopped(reason));
            return Some(reason);
        }

        let mut stopped = None;
        for _ in 0..self.criterion.max_iterations {
            // Fused kernels (see `mffv_fv::LinearOperator`): one pass for
            // A d + dᵀ(A d), one pass for both axpy updates + rᵀr.
            let d_ad = operator
                .apply_dot(&scratch.direction, &mut scratch.ad)
                .to_f64();
            if d_ad <= 0.0 || !d_ad.is_finite() {
                // Breakdown: terminate the stream with a Stopped event
                // instead of ending it silently.
                monitor.on_event(&SolveEvent::Stopped(StopReason::Breakdown));
                stopped = Some(StopReason::Breakdown);
                break;
            }
            let alpha = T::from_f64(rz / d_ad);
            let rr = operator
                .cg_update(
                    alpha,
                    &scratch.direction,
                    &scratch.ad,
                    &mut scratch.solution,
                    &mut scratch.residual,
                )
                .to_f64();
            scratch.history.record(rr);
            if self.criterion.is_converged(rr) {
                scratch.history.converged = true;
                monitor.on_event(&SolveEvent::Iteration {
                    k: scratch.history.iterations,
                    rr,
                });
                monitor.on_event(&SolveEvent::Converged {
                    iterations: scratch.history.iterations,
                    rr,
                });
                break;
            }
            if let Flow::Stop(reason) = monitor.on_event(&SolveEvent::Iteration {
                k: scratch.history.iterations,
                rr,
            }) {
                monitor.on_event(&SolveEvent::Stopped(reason));
                stopped = Some(reason);
                break;
            }
            preconditioner.apply_traced(&scratch.residual, &mut scratch.z, span);
            let rz_new = det_dot(&scratch.residual, &scratch.z).to_f64();
            let beta = T::from_f64(rz_new / rz);
            scratch.direction.xpby(&scratch.z, beta);
            rz = rz_new;
        }
        stopped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::ConjugateGradient;
    use mffv_fv::matrix_free::MatrixFreeOperator;
    use mffv_fv::residual::{newton_rhs, residual};
    use mffv_mesh::permeability::PermeabilityModel;
    use mffv_mesh::workload::{BoundarySpec, WorkloadSpec};
    use mffv_mesh::Dims;

    fn heterogeneous_workload() -> mffv_mesh::Workload {
        WorkloadSpec {
            name: "pcg-test".to_string(),
            dims: Dims::new(10, 10, 6),
            spacing: [1.0, 1.0, 1.0],
            permeability: PermeabilityModel::LogNormal {
                mean_log: 0.0,
                std_log: 2.0,
                seed: 11,
            },
            viscosity: 1.0,
            boundary: BoundarySpec::SourceProducer {
                source_pressure: 1.0,
                producer_pressure: 0.0,
            },
            tolerance: 1e-16,
            max_iterations: 5000,
        }
        .build()
    }

    #[test]
    fn jacobi_preconditioner_inverts_diagonal() {
        let dims = Dims::new(2, 2, 1);
        let diag = CellField::from_vec(dims, vec![2.0f64, 4.0, 0.0, -3.0]);
        let pc = JacobiPreconditioner::from_diagonal(&diag);
        let r = CellField::constant(dims, 8.0);
        let mut z = CellField::zeros(dims);
        pc.apply(&r, &mut z);
        assert_eq!(z.as_slice(), &[4.0, 2.0, 8.0, 8.0]); // degenerate rows fall back to 1
    }

    #[test]
    fn pcg_matches_cg_solution_and_converges_no_slower() {
        let w = heterogeneous_workload();
        let op = MatrixFreeOperator::<f64>::from_workload(&w);
        let pc = JacobiPreconditioner::from_coefficients(op.coefficients(), w.dirichlet());
        let p0: CellField<f64> = w.initial_pressure();
        let r = residual(&p0, w.transmissibility(), w.dirichlet());
        let b = newton_rhs(&r, w.dirichlet());
        let x0 = CellField::zeros(w.dims());

        let cg = ConjugateGradient::with_tolerance(1e-18, 5000).solve(&op, &b, &x0);
        let pcg =
            PreconditionedConjugateGradient::with_tolerance(1e-18, 5000).solve(&op, &pc, &b, &x0);
        assert!(cg.history.converged && pcg.history.converged);
        assert!(
            pcg.solution.max_abs_diff(&cg.solution) < 1e-6,
            "solutions differ by {}",
            pcg.solution.max_abs_diff(&cg.solution)
        );
        // On a strongly heterogeneous field Jacobi scaling should not be slower.
        assert!(
            pcg.history.iterations <= cg.history.iterations + 2,
            "PCG took {} vs CG {}",
            pcg.history.iterations,
            cg.history.iterations
        );
    }

    #[test]
    fn breakdown_on_indefinite_operator_emits_terminal_stopped_event() {
        use crate::monitor::{RecordingMonitor, SolveEvent, StopReason};
        use mffv_fv::operator::ScaledIdentity;
        let dims = Dims::new(4, 4, 2);
        let op = ScaledIdentity::new(dims, -1.0f64);
        let pc = JacobiPreconditioner::from_diagonal(&CellField::constant(dims, 1.0));
        let b = CellField::constant(dims, 1.0);
        let mut recorder = RecordingMonitor::new();
        let solver = PreconditionedConjugateGradient::with_tolerance(1e-20, 50);
        let out = solver.solve_monitored(&op, &pc, &b, &CellField::zeros(dims), &mut recorder);
        assert_eq!(out.stopped, Some(StopReason::Breakdown));
        assert!(!out.history.converged);
        assert!(matches!(
            recorder.terminal(),
            Some(SolveEvent::Stopped(StopReason::Breakdown))
        ));
    }

    #[test]
    fn scratch_reuse_is_bitwise_identical_across_solves() {
        use crate::context::CgScratch;
        let w = heterogeneous_workload();
        let op = MatrixFreeOperator::<f64>::from_workload(&w);
        let pc = JacobiPreconditioner::from_coefficients(op.coefficients(), w.dirichlet());
        let p0: CellField<f64> = w.initial_pressure();
        let r = residual(&p0, w.transmissibility(), w.dirichlet());
        let b = newton_rhs(&r, w.dirichlet());
        let solver = PreconditionedConjugateGradient::with_tolerance(1e-18, 5000);
        let fresh = solver.solve(&op, &pc, &b, &CellField::zeros(w.dims()));

        let mut scratch = CgScratch::new(w.dims());
        for round in 0..2 {
            let stopped = solver.solve_traced_into(
                &op,
                &pc,
                &b,
                None,
                &mut NullMonitor,
                &Span::null(),
                &mut scratch,
            );
            assert_eq!(stopped, None);
            assert_eq!(
                scratch.history(),
                &fresh.history,
                "round {round}: history must be bitwise identical"
            );
            for i in 0..fresh.solution.len() {
                assert_eq!(
                    scratch.solution().get(i).to_bits(),
                    fresh.solution.get(i).to_bits(),
                    "round {round}, cell {i}"
                );
            }
        }
    }

    #[test]
    fn preconditioner_from_coefficients_has_unit_dirichlet_rows() {
        let w = heterogeneous_workload();
        let op = MatrixFreeOperator::<f64>::from_workload(&w);
        let pc = JacobiPreconditioner::from_coefficients(op.coefficients(), w.dirichlet());
        let r = CellField::constant(w.dims(), 1.0);
        let mut z = CellField::zeros(w.dims());
        pc.apply(&r, &mut z);
        for idx in 0..w.dims().num_cells() {
            if w.dirichlet().contains_linear(idx) {
                assert_eq!(z.get(idx), 1.0);
            }
        }
    }
}
