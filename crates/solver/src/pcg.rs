//! Preconditioned conjugate gradient.
//!
//! The paper solves the un-preconditioned system (Algorithm 1).  Diagonal (Jacobi)
//! preconditioning is the natural first extension for the heterogeneous
//! permeability fields real CCS geomodels exhibit, and it maps onto the dataflow
//! architecture trivially — the diagonal is resident per PE, so the extra work per
//! iteration is one local multiply and no additional communication.  The PCG loop
//! itself is written against the [`Preconditioner`] trait, so the same iteration
//! also runs under the geometric-multigrid V-cycle of
//! [`mffv_fv::mg::MultigridVcycle`] (where the win is iteration *count* roughly
//! flat in grid size); the ablation benchmarks compare all of them against plain
//! CG.

use crate::convergence::{ConvergenceHistory, StoppingCriterion};
use crate::monitor::{Flow, NullMonitor, SolveEvent, SolveMonitor};
use mffv_fv::plan::{det_dot, det_norm_squared};
use mffv_fv::{LinearOperator, Preconditioner};
use mffv_mesh::{CellField, Dims, Direction, DirichletSet, Scalar, Transmissibilities};
use mffv_telemetry::Span;

/// A diagonal (Jacobi) preconditioner `M⁻¹ = diag(A)⁻¹`.
#[derive(Clone, Debug)]
pub struct JacobiPreconditioner<T: Scalar> {
    inverse_diagonal: CellField<T>,
}

impl<T: Scalar> JacobiPreconditioner<T> {
    /// Build from an explicit diagonal. Zero or negative entries are replaced by 1,
    /// keeping the preconditioner SPD even for degenerate rows.
    pub fn from_diagonal(diagonal: &CellField<T>) -> Self {
        let mut inv = CellField::zeros(diagonal.dims());
        for i in 0..diagonal.len() {
            let d = diagonal.get(i);
            inv.set(i, if d.to_f64() > 0.0 { T::ONE / d } else { T::ONE });
        }
        Self {
            inverse_diagonal: inv,
        }
    }

    /// Build the diagonal of the SPD FV operator directly from the TPFA coefficient
    /// table: `diag_K = Σ_L Υ_KL λ_KL` for interior cells and 1 for Dirichlet cells.
    pub fn from_coefficients(coeffs: &Transmissibilities<T>, dirichlet: &DirichletSet) -> Self {
        let dims = coeffs.dims();
        let diag = CellField::from_fn(dims, |c| {
            let k = dims.linear(c);
            if dirichlet.contains_linear(k) {
                T::ONE
            } else {
                let mut acc = T::ZERO;
                for dir in Direction::ALL {
                    if dims.neighbor(c, dir).is_some() {
                        acc += coeffs.get(k, dir);
                    }
                }
                if acc.to_f64() > 0.0 {
                    acc
                } else {
                    T::ONE
                }
            }
        });
        Self::from_diagonal(&diag)
    }

    /// Apply `z = M⁻¹ r`.
    pub fn apply(&self, r: &CellField<T>, z: &mut CellField<T>) {
        assert_eq!(r.dims(), self.inverse_diagonal.dims());
        assert_eq!(z.dims(), self.inverse_diagonal.dims());
        for i in 0..r.len() {
            z.set(i, r.get(i) * self.inverse_diagonal.get(i));
        }
    }

    /// Grid extents.
    pub fn dims(&self) -> Dims {
        self.inverse_diagonal.dims()
    }
}

impl<T: Scalar> Preconditioner<T> for JacobiPreconditioner<T> {
    fn dims(&self) -> Dims {
        JacobiPreconditioner::dims(self)
    }

    fn apply(&self, r: &CellField<T>, z: &mut CellField<T>) {
        JacobiPreconditioner::apply(self, r, z);
    }

    fn label(&self) -> &'static str {
        "jacobi"
    }
}

/// Preconditioned conjugate gradient solver.
#[derive(Clone, Copy, Debug)]
pub struct PreconditionedConjugateGradient {
    /// Stopping criterion (tolerance on `rᵀr` and iteration cap); the convergence
    /// test deliberately uses the *unpreconditioned* `rᵀr` so histories are
    /// comparable with plain CG.
    pub criterion: StoppingCriterion,
}

impl PreconditionedConjugateGradient {
    /// A solver with an explicit criterion.
    pub fn new(criterion: StoppingCriterion) -> Self {
        Self { criterion }
    }

    /// A solver with the given tolerance on `rᵀr` and iteration cap.
    pub fn with_tolerance(tolerance: f64, max_iterations: usize) -> Self {
        Self {
            criterion: StoppingCriterion::new(tolerance, max_iterations),
        }
    }

    /// Solve `A x = b` with preconditioner `M⁻¹`, starting from `x0`.
    pub fn solve<T: Scalar, Op: LinearOperator<T>, P: Preconditioner<T> + ?Sized>(
        &self,
        operator: &Op,
        preconditioner: &P,
        rhs: &CellField<T>,
        x0: &CellField<T>,
    ) -> crate::cg::SolveOutcome<T> {
        self.solve_monitored(operator, preconditioner, rhs, x0, &mut NullMonitor)
    }

    /// Solve `A x = b` as an observable, cancellable session (the PCG
    /// counterpart of
    /// [`ConjugateGradient::solve_monitored`](crate::cg::ConjugateGradient::solve_monitored)):
    /// `monitor` sees the recorded *unpreconditioned* `rᵀr` at every
    /// iteration boundary and may stop the solve early.
    pub fn solve_monitored<T: Scalar, Op: LinearOperator<T>, P: Preconditioner<T> + ?Sized>(
        &self,
        operator: &Op,
        preconditioner: &P,
        rhs: &CellField<T>,
        x0: &CellField<T>,
        monitor: &mut dyn SolveMonitor,
    ) -> crate::cg::SolveOutcome<T> {
        self.solve_traced(operator, preconditioner, rhs, x0, monitor, &Span::null())
    }

    /// [`solve_monitored`](Self::solve_monitored) with telemetry: every
    /// preconditioner application runs under `span`, so structured
    /// preconditioners (the multigrid V-cycle) emit their `mg.vcycle` /
    /// `mg.level` phase spans.  Tracing never touches the arithmetic —
    /// traced and untraced solves are bitwise identical.
    pub fn solve_traced<T: Scalar, Op: LinearOperator<T>, P: Preconditioner<T> + ?Sized>(
        &self,
        operator: &Op,
        preconditioner: &P,
        rhs: &CellField<T>,
        x0: &CellField<T>,
        monitor: &mut dyn SolveMonitor,
        span: &Span,
    ) -> crate::cg::SolveOutcome<T> {
        let dims = operator.dims();
        assert_eq!(rhs.dims(), dims);
        assert_eq!(x0.dims(), dims);
        assert_eq!(preconditioner.dims(), dims);

        let mut solution = x0.clone();
        let mut residual = rhs.clone();
        let ax0 = operator.apply_new(&solution);
        residual.axpy(-T::ONE, &ax0);

        let mut z = CellField::zeros(dims);
        preconditioner.apply_traced(&residual, &mut z, span);
        let mut direction = z.clone();
        let mut ad = CellField::zeros(dims);

        let mut rz = det_dot(&residual, &z).to_f64();
        let rr0 = det_norm_squared(&residual).to_f64();
        let mut history = ConvergenceHistory::starting_from(rr0);
        if self.criterion.is_converged(rr0) {
            history.converged = true;
            monitor.on_event(&SolveEvent::Started { initial_rr: rr0 });
            monitor.on_event(&SolveEvent::Converged {
                iterations: 0,
                rr: rr0,
            });
            return crate::cg::SolveOutcome {
                solution,
                history,
                stopped: None,
            };
        }
        if let Flow::Stop(reason) = monitor.on_event(&SolveEvent::Started { initial_rr: rr0 }) {
            monitor.on_event(&SolveEvent::Stopped(reason));
            return crate::cg::SolveOutcome {
                solution,
                history,
                stopped: Some(reason),
            };
        }

        let mut stopped = None;
        for _ in 0..self.criterion.max_iterations {
            // Fused kernels (see `mffv_fv::LinearOperator`): one pass for
            // A d + dᵀ(A d), one pass for both axpy updates + rᵀr.
            let d_ad = operator.apply_dot(&direction, &mut ad).to_f64();
            if d_ad <= 0.0 || !d_ad.is_finite() {
                break;
            }
            let alpha = T::from_f64(rz / d_ad);
            let rr = operator
                .cg_update(alpha, &direction, &ad, &mut solution, &mut residual)
                .to_f64();
            history.record(rr);
            if self.criterion.is_converged(rr) {
                history.converged = true;
                monitor.on_event(&SolveEvent::Iteration {
                    k: history.iterations,
                    rr,
                });
                monitor.on_event(&SolveEvent::Converged {
                    iterations: history.iterations,
                    rr,
                });
                break;
            }
            if let Flow::Stop(reason) = monitor.on_event(&SolveEvent::Iteration {
                k: history.iterations,
                rr,
            }) {
                monitor.on_event(&SolveEvent::Stopped(reason));
                stopped = Some(reason);
                break;
            }
            preconditioner.apply_traced(&residual, &mut z, span);
            let rz_new = det_dot(&residual, &z).to_f64();
            let beta = T::from_f64(rz_new / rz);
            direction.xpby(&z, beta);
            rz = rz_new;
        }
        crate::cg::SolveOutcome {
            solution,
            history,
            stopped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::ConjugateGradient;
    use mffv_fv::matrix_free::MatrixFreeOperator;
    use mffv_fv::residual::{newton_rhs, residual};
    use mffv_mesh::permeability::PermeabilityModel;
    use mffv_mesh::workload::{BoundarySpec, WorkloadSpec};
    use mffv_mesh::Dims;

    fn heterogeneous_workload() -> mffv_mesh::Workload {
        WorkloadSpec {
            name: "pcg-test".to_string(),
            dims: Dims::new(10, 10, 6),
            spacing: [1.0, 1.0, 1.0],
            permeability: PermeabilityModel::LogNormal {
                mean_log: 0.0,
                std_log: 2.0,
                seed: 11,
            },
            viscosity: 1.0,
            boundary: BoundarySpec::SourceProducer {
                source_pressure: 1.0,
                producer_pressure: 0.0,
            },
            tolerance: 1e-16,
            max_iterations: 5000,
        }
        .build()
    }

    #[test]
    fn jacobi_preconditioner_inverts_diagonal() {
        let dims = Dims::new(2, 2, 1);
        let diag = CellField::from_vec(dims, vec![2.0f64, 4.0, 0.0, -3.0]);
        let pc = JacobiPreconditioner::from_diagonal(&diag);
        let r = CellField::constant(dims, 8.0);
        let mut z = CellField::zeros(dims);
        pc.apply(&r, &mut z);
        assert_eq!(z.as_slice(), &[4.0, 2.0, 8.0, 8.0]); // degenerate rows fall back to 1
    }

    #[test]
    fn pcg_matches_cg_solution_and_converges_no_slower() {
        let w = heterogeneous_workload();
        let op = MatrixFreeOperator::<f64>::from_workload(&w);
        let pc = JacobiPreconditioner::from_coefficients(op.coefficients(), w.dirichlet());
        let p0: CellField<f64> = w.initial_pressure();
        let r = residual(&p0, w.transmissibility(), w.dirichlet());
        let b = newton_rhs(&r, w.dirichlet());
        let x0 = CellField::zeros(w.dims());

        let cg = ConjugateGradient::with_tolerance(1e-18, 5000).solve(&op, &b, &x0);
        let pcg =
            PreconditionedConjugateGradient::with_tolerance(1e-18, 5000).solve(&op, &pc, &b, &x0);
        assert!(cg.history.converged && pcg.history.converged);
        assert!(
            pcg.solution.max_abs_diff(&cg.solution) < 1e-6,
            "solutions differ by {}",
            pcg.solution.max_abs_diff(&cg.solution)
        );
        // On a strongly heterogeneous field Jacobi scaling should not be slower.
        assert!(
            pcg.history.iterations <= cg.history.iterations + 2,
            "PCG took {} vs CG {}",
            pcg.history.iterations,
            cg.history.iterations
        );
    }

    #[test]
    fn preconditioner_from_coefficients_has_unit_dirichlet_rows() {
        let w = heterogeneous_workload();
        let op = MatrixFreeOperator::<f64>::from_workload(&w);
        let pc = JacobiPreconditioner::from_coefficients(op.coefficients(), w.dirichlet());
        let r = CellField::constant(w.dims(), 1.0);
        let mut z = CellField::zeros(w.dims());
        pc.apply(&r, &mut z);
        for idx in 0..w.dims().num_cells() {
            if w.dirichlet().contains_linear(idx) {
                assert_eq!(z.get(idx), 1.0);
            }
        }
    }
}
