//! Pooled solve contexts for the zero-allocation steady-state serving path.
//!
//! A service worker solving the same problem family job after job should not
//! rebuild the stencil plan, the preconditioner, or the five CG work vectors
//! on every request.  [`SolveContext`] keeps all of that warm across solves,
//! keyed the same way [`crate::transient::PlannedStepper`] caches across
//! transient steps: identical dims + Dirichlet topology + transmissibility
//! values + diagonal shift ⇒ reuse, anything else ⇒ rebuild.  The cached path
//! is **bitwise identical** to the one-shot
//! [`HostBackend`](crate::backend::HostBackend) path — every reused buffer is
//! fully overwritten before it is read (see [`CgScratch`]) — so turning the
//! cache on or off never changes a residual history.
//!
//! [`SolveContextCache`] bundles one context per host precision plus a
//! spec-keyed [`Workload`] cache; the engine gives each worker one and
//! threads it through [`SolveBackend::solve_pooled`](crate::backend::SolveBackend::solve_pooled).

use crate::backend::{PreconditionerKind, SolveConfig};
use crate::cg::ConjugateGradient;
use crate::convergence::ConvergenceHistory;
use crate::monitor::{SolveMonitor, StopReason};
use crate::pcg::{JacobiPreconditioner, PreconditionedConjugateGradient};
use crate::trace::TraceMonitor;
use mffv_fv::{newton_rhs_into, residual_into, MatrixFreeOperator, MgConfig, MultigridVcycle};
use mffv_mesh::{CellField, Dims, Fnv1a, Scalar, Workload, WorkloadSpec};
use mffv_telemetry::Span;

/// Reusable work vectors of one Krylov solve.
///
/// Holds exactly the five fields `cg.rs` / `pcg.rs` historically allocated
/// per solve (`solution`, `residual`, `direction`, `ad`, `z`) plus the
/// [`ConvergenceHistory`] entry buffer.  Every field is fully overwritten by
/// the solver before it is read — `copy_from` replaces `clone()`, a full
/// `apply` overwrite replaces `apply_new`, [`ConvergenceHistory::reset_from`]
/// replaces `starting_from` — so reuse is bitwise invisible.
#[derive(Clone, Debug)]
pub struct CgScratch<T: Scalar> {
    pub(crate) solution: CellField<T>,
    pub(crate) residual: CellField<T>,
    pub(crate) direction: CellField<T>,
    /// The `A·d` product; also reused for the initial `A·x₀`.
    pub(crate) ad: CellField<T>,
    /// The preconditioned residual (PCG only; plain CG never touches it).
    pub(crate) z: CellField<T>,
    pub(crate) history: ConvergenceHistory,
}

impl<T: Scalar> CgScratch<T> {
    /// Allocate scratch for `dims`-shaped solves.
    pub fn new(dims: Dims) -> Self {
        Self {
            solution: CellField::zeros(dims),
            residual: CellField::zeros(dims),
            direction: CellField::zeros(dims),
            ad: CellField::zeros(dims),
            z: CellField::zeros(dims),
            history: ConvergenceHistory::default(),
        }
    }

    /// The grid shape this scratch serves.
    pub fn dims(&self) -> Dims {
        self.solution.dims()
    }

    /// Make the scratch fit `dims`, reallocating only on a shape change.
    /// Returns `true` when a reallocation happened (an allocation-counter
    /// signal for the steady-state metrics).
    pub fn ensure(&mut self, dims: Dims) -> bool {
        if self.dims() == dims {
            return false;
        }
        *self = Self::new(dims);
        true
    }

    /// The solution vector of the last solve run on this scratch.
    pub fn solution(&self) -> &CellField<T> {
        &self.solution
    }

    /// The convergence history of the last solve run on this scratch.
    pub fn history(&self) -> &ConvergenceHistory {
        &self.history
    }

    /// Consume the scratch into the [`SolveOutcome`](crate::cg::SolveOutcome)
    /// shape of the one-shot API.
    pub fn into_outcome(self, stopped: Option<StopReason>) -> crate::cg::SolveOutcome<T> {
        crate::cg::SolveOutcome {
            solution: self.solution,
            history: self.history,
            stopped,
        }
    }
}

/// Reusable buffers of the outer Newton step (one linear step for the paper's
/// linear problem): initial pressure, residual, and CG right-hand side.
#[derive(Clone, Debug)]
struct NewtonScratch<T: Scalar> {
    pressure: CellField<T>,
    residual: CellField<T>,
    rhs: CellField<T>,
}

impl<T: Scalar> NewtonScratch<T> {
    fn new(dims: Dims) -> Self {
        Self {
            pressure: CellField::zeros(dims),
            residual: CellField::zeros(dims),
            rhs: CellField::zeros(dims),
        }
    }
}

/// The reuse key of a cached operator + preconditioner pair.
///
/// Two solves may share a context exactly when every field matches: the grid
/// shape, the apply thread count (threads change work *partitioning*, and the
/// planned operator bakes its slab schedule in), the preconditioner kind, the
/// Dirichlet set (indices *and* values), the transmissibility table, and the
/// diagonal shift.  Value equality is tracked by FNV-1a fingerprints over the
/// exact bit patterns ([`mffv_mesh::Fnv1a`]) — a collision could only alias
/// two different workloads onto one operator, and 64-bit FNV over
/// deterministic inputs makes that vanishingly unlikely while keeping the key
/// `Copy` and comparison O(1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContextKey {
    /// Grid shape.
    pub dims: Dims,
    /// Apply thread count baked into the planned operator.
    pub threads: usize,
    /// Which preconditioner the cached pair was built for.
    pub kind: PreconditionerKind,
    /// Fingerprint of the Dirichlet cells (sorted indices + values).
    pub dirichlet_fp: u64,
    /// Fingerprint of the transmissibility table (all face coefficients).
    pub transmissibility_fp: u64,
    /// Fingerprint of the diagonal shift, when one is applied (transient
    /// steps); `None` for steady solves.
    pub shift_fp: Option<u64>,
}

impl ContextKey {
    /// Compute the key for `workload` under the given solve knobs.
    pub fn of(
        workload: &Workload,
        threads: usize,
        kind: PreconditionerKind,
        shift: Option<&CellField<f64>>,
    ) -> Self {
        Self {
            dims: workload.dims(),
            threads,
            kind,
            dirichlet_fp: workload.dirichlet().fingerprint(),
            transmissibility_fp: workload.transmissibility().fingerprint(),
            shift_fp: shift.map(|s| {
                let mut hash = Fnv1a::new();
                for &v in s.as_slice() {
                    hash.write_f64(v);
                }
                hash.finish()
            }),
        }
    }
}

/// The preconditioner half of a cached context.
enum ContextPrecond<T: Scalar> {
    None,
    Jacobi(JacobiPreconditioner<T>),
    Mg(MultigridVcycle<T>),
}

/// A cached operator + preconditioner pair and the key it was built for.
struct ContextState<T: Scalar> {
    key: ContextKey,
    operator: MatrixFreeOperator<T>,
    precond: ContextPrecond<T>,
}

/// Cache-behaviour counters of a [`SolveContext`] (and, summed, of a
/// [`SolveContextCache`]).  All monotone; the engine surfaces them in
/// `MetricsRegistry` as `engine.context.*`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Solves that reused the cached operator + preconditioner.
    pub hits: u64,
    /// Solves that had to (re)build them.
    pub misses: u64,
    /// Times the CG scratch arena had to reallocate for a new shape.
    pub scratch_reallocs: u64,
}

impl ContextStats {
    /// Component-wise sum.
    pub fn merged(self, other: ContextStats) -> ContextStats {
        ContextStats {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            scratch_reallocs: self.scratch_reallocs + other.scratch_reallocs,
        }
    }
}

/// A warm, reusable steady-solve context at one precision.
///
/// Owns the keyed operator/preconditioner cache, the [`CgScratch`] arena and
/// the Newton buffers.  After the first solve of a given shape ("warmup"),
/// [`solve`](Self::solve) performs **zero heap allocations** for the
/// `None`/`Jacobi` preconditioner kinds (the MG V-cycle's coarse solve still
/// allocates internally), and its pressure, history and final residual are
/// bitwise identical to [`HostBackend`](crate::backend::HostBackend)'s
/// one-shot path — pinned by `tests/alloc_regression.rs` and the cache
/// equivalence tests.
#[derive(Default)]
pub struct SolveContext<T: Scalar> {
    state: Option<ContextState<T>>,
    scratch: Option<CgScratch<T>>,
    newton: Option<NewtonScratch<T>>,
    stats: ContextStats,
}

impl<T: Scalar> SolveContext<T> {
    /// A cold context: first solve builds everything.
    pub fn new() -> Self {
        Self {
            state: None,
            scratch: None,
            newton: None,
            stats: ContextStats::default(),
        }
    }

    /// Cache-behaviour counters accumulated by this context.
    pub fn stats(&self) -> ContextStats {
        self.stats
    }

    /// Ensure the cached operator + preconditioner match `workload` under the
    /// given knobs, rebuilding on a key mismatch.  Returns `true` on a cache
    /// hit.  Build-phase spans (`build-operator`, `mg.build`) are recorded
    /// under `span` on hits and misses alike — on a hit they close
    /// immediately, so span-tree *shape* stays independent of cache warmth
    /// (job-to-worker assignment varies with worker count, and shape is
    /// pinned across worker counts by `tests/telemetry.rs`).  The cache
    /// counters, not span presence, are the reuse observable; a hit costs
    /// two fingerprints and a key compare.
    pub fn prepare(
        &mut self,
        workload: &Workload,
        threads: usize,
        kind: PreconditionerKind,
        shift: Option<&CellField<f64>>,
        span: &Span,
    ) -> bool {
        let key = ContextKey::of(workload, threads, kind, shift);
        if let Some(state) = &self.state {
            if state.key == key {
                self.stats.hits += 1;
                // Emit the build-phase skeleton even when nothing rebuilds:
                // a null span makes these free, and a recording span keeps
                // the tree shape identical whether this worker's cache was
                // warm or cold.
                span.child("build-operator").finish();
                if matches!(kind, PreconditionerKind::Mg) {
                    span.child("mg.build").finish();
                }
                return true;
            }
        }
        self.stats.misses += 1;
        let build = span.child("build-operator");
        let mut operator = MatrixFreeOperator::<T>::from_workload(workload).with_threads(threads);
        if let Some(diag) = shift {
            operator.set_diagonal_shift(diag);
        }
        build.finish();
        let precond = match kind {
            PreconditionerKind::None => ContextPrecond::None,
            PreconditionerKind::Jacobi => ContextPrecond::Jacobi(match shift {
                // Bitwise-match the steady host path: Jacobi from the raw
                // coefficient row sums.
                None => JacobiPreconditioner::from_coefficients(
                    operator.coefficients(),
                    workload.dirichlet(),
                ),
                // Bitwise-match the transient path: shifted row-sum diagonal
                // (see `PlannedStepper::refresh_precond`).
                Some(diag) => {
                    let dims = workload.dims();
                    let coeffs = operator.coefficients();
                    let shifted = CellField::from_fn(dims, |c| {
                        let k = dims.linear(c);
                        if operator.is_dirichlet(k) {
                            T::ONE
                        } else {
                            coeffs.row_sum(k) + T::from_f64(diag.get(k))
                        }
                    });
                    JacobiPreconditioner::from_diagonal(&shifted)
                }
            }),
            PreconditionerKind::Mg => {
                let mg_build = span.child("mg.build");
                let mut mg =
                    MultigridVcycle::<T>::from_workload(workload, threads, MgConfig::default());
                if let Some(diag) = shift {
                    mg.set_diagonal_shift(diag);
                }
                mg_build.finish();
                ContextPrecond::Mg(mg)
            }
        };
        self.state = Some(ContextState {
            key,
            operator,
            precond,
        });
        false
    }

    /// Run one steady pressure solve on the warm context, mirroring
    /// [`HostBackend`](crate::backend::HostBackend)'s un-pooled path bitwise:
    /// same operator build parameters, same Newton step, same Krylov loop,
    /// same monitor/tracing semantics.  Results stay in the context's own
    /// buffers — read them through [`pressure`](Self::pressure),
    /// [`history`](Self::history) and
    /// [`final_residual_max`](Self::final_residual_max).
    pub fn solve(
        &mut self,
        workload: &Workload,
        config: &SolveConfig,
        monitor: &mut dyn SolveMonitor,
        span: &Span,
    ) -> Option<StopReason> {
        let tolerance = config.effective_tolerance(workload);
        let max_iterations = config.effective_max_iterations(workload);
        let threads = config.effective_threads();
        let dims = workload.dims();

        self.prepare(workload, threads, config.preconditioner, None, span);
        if self
            .scratch
            .get_or_insert_with(|| CgScratch::new(dims))
            .ensure(dims)
        {
            self.stats.scratch_reallocs += 1;
        }
        if self
            .newton
            .as_ref()
            .map(|n| n.pressure.dims() != dims)
            .unwrap_or(true)
        {
            self.newton = Some(NewtonScratch::new(dims));
        }

        // `state` was just prepared; split the borrows so the operator (shared)
        // and the scratch buffers (exclusive) can be used together.
        // audit: allow(panic) — invariant: `prepare` above always sets `state`
        let state = self.state.as_ref().expect("prepare populated the state");
        // audit: allow(panic) — invariant: `get_or_insert_with` above always sets `scratch`
        let scratch = self.scratch.as_mut().expect("scratch was just ensured");
        // audit: allow(panic) — invariant: the block above always sets `newton`
        let newton = self.newton.as_mut().expect("newton was just ensured");

        // The Newton step of `solve_pressure_monitored`, on reused buffers:
        // every `_into` target is fully overwritten.
        workload.initial_pressure_into(&mut newton.pressure);
        residual_into(
            &newton.pressure,
            state.operator.coefficients(),
            workload.dirichlet(),
            &mut newton.residual,
        );
        newton_rhs_into(&newton.residual, workload.dirichlet(), &mut newton.rhs);

        let stopped = match &state.precond {
            ContextPrecond::None => {
                let solver = ConjugateGradient::with_tolerance(tolerance, max_iterations);
                if span.is_recording() {
                    let mut traced = TraceMonitor::new(span, monitor);
                    solver.solve_into(&state.operator, &newton.rhs, None, &mut traced, scratch)
                } else {
                    solver.solve_into(&state.operator, &newton.rhs, None, monitor, scratch)
                }
            }
            ContextPrecond::Jacobi(pc) => {
                let solver =
                    PreconditionedConjugateGradient::with_tolerance(tolerance, max_iterations);
                if span.is_recording() {
                    let mut traced = TraceMonitor::new(span, monitor);
                    solver.solve_traced_into(
                        &state.operator,
                        pc,
                        &newton.rhs,
                        None,
                        &mut traced,
                        span,
                        scratch,
                    )
                } else {
                    solver.solve_traced_into(
                        &state.operator,
                        pc,
                        &newton.rhs,
                        None,
                        monitor,
                        span,
                        scratch,
                    )
                }
            }
            ContextPrecond::Mg(pc) => {
                let solver =
                    PreconditionedConjugateGradient::with_tolerance(tolerance, max_iterations);
                if span.is_recording() {
                    let mut traced = TraceMonitor::new(span, monitor);
                    solver.solve_traced_into(
                        &state.operator,
                        pc,
                        &newton.rhs,
                        None,
                        &mut traced,
                        span,
                        scratch,
                    )
                } else {
                    solver.solve_traced_into(
                        &state.operator,
                        pc,
                        &newton.rhs,
                        None,
                        monitor,
                        span,
                        scratch,
                    )
                }
            }
        };

        newton.pressure.axpy(T::ONE, &scratch.solution);
        residual_into(
            &newton.pressure,
            state.operator.coefficients(),
            workload.dirichlet(),
            &mut newton.residual,
        );
        stopped
    }

    /// The pressure field of the last [`solve`](Self::solve).
    ///
    /// # Panics
    ///
    /// If no solve has run on this context yet.
    pub fn pressure(&self) -> &CellField<T> {
        &self
            .newton
            .as_ref()
            // audit: allow(panic) — invariant: documented accessor contract, callers read results only after `solve`
            .expect("no solve has run on this context")
            .pressure
    }

    /// The convergence history of the last [`solve`](Self::solve).
    ///
    /// # Panics
    ///
    /// If no solve has run on this context yet.
    pub fn history(&self) -> &ConvergenceHistory {
        self.scratch
            .as_ref()
            // audit: allow(panic) — invariant: documented accessor contract, callers read results only after `solve`
            .expect("no solve has run on this context")
            .history()
    }

    /// Max-norm of the Eq. (3) residual at the last solve's pressure,
    /// evaluated at this context's precision (the `HostBackend` pooled path
    /// re-evaluates in `f64` for `f32` contexts, exactly like its un-pooled
    /// path).
    ///
    /// # Panics
    ///
    /// If no solve has run on this context yet.
    pub fn final_residual_max(&self) -> f64 {
        self.newton
            .as_ref()
            // audit: allow(panic) — invariant: documented accessor contract, callers read results only after `solve`
            .expect("no solve has run on this context")
            .residual
            .max_abs()
            .to_f64()
    }
}

/// Everything one engine worker keeps warm between jobs: a [`SolveContext`]
/// per host precision plus a spec-keyed [`Workload`] cache
/// ([`Workload::try_from_spec`] is deterministic, so replaying a cached
/// workload is bitwise identical to rebuilding it).
#[derive(Default)]
pub struct SolveContextCache {
    /// Warm context for `f64` host solves.
    pub f64_context: SolveContext<f64>,
    /// Warm context for `f32` host solves.
    pub f32_context: SolveContext<f32>,
    workload: Option<(WorkloadSpec, Workload)>,
    workload_hits: u64,
    workload_misses: u64,
}

impl SolveContextCache {
    /// A cold cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take the materialised workload for `spec` out of the cache (moving it,
    /// no clone) when the cached spec matches, or materialise a fresh one via
    /// [`Workload::try_from_spec`].  The caller owns the workload for the
    /// duration of the solve — which is what lets it borrow the cache's
    /// contexts mutably at the same time — and hands it back with
    /// [`checkin_workload`](Self::checkin_workload) afterwards.
    /// `try_from_spec` is deterministic, so a cached workload is bitwise
    /// identical to a rebuilt one.
    pub fn checkout_workload(
        &mut self,
        spec: &WorkloadSpec,
    ) -> Result<Workload, mffv_mesh::workload::WorkloadError> {
        match self.workload.take() {
            Some((cached, workload)) if &cached == spec => {
                self.workload_hits += 1;
                Ok(workload)
            }
            _ => {
                self.workload_misses += 1;
                Workload::try_from_spec(spec)
            }
        }
    }

    /// Return a checked-out (or freshly built) workload to the cache for the
    /// next job with the same spec.
    pub fn checkin_workload(&mut self, spec: WorkloadSpec, workload: Workload) {
        self.workload = Some((spec, workload));
    }

    /// Cache counters summed over both precision contexts; workload-cache
    /// hits/misses fold into `hits`/`misses`.
    pub fn stats(&self) -> ContextStats {
        let mut stats = self.f64_context.stats().merged(self.f32_context.stats());
        stats.hits += self.workload_hits;
        stats.misses += self.workload_misses;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffv_mesh::WorkloadSpec;

    fn workload() -> Workload {
        WorkloadSpec::quickstart().build()
    }

    #[test]
    fn same_topology_hits_different_shift_misses() {
        let w = workload();
        let mut ctx = SolveContext::<f64>::new();
        let span = Span::null();
        assert!(!ctx.prepare(&w, 1, PreconditionerKind::None, None, &span));
        assert!(ctx.prepare(&w, 1, PreconditionerKind::None, None, &span));
        // A diagonal shift is part of the operator: same topology, new key.
        let shift = CellField::constant(w.dims(), 0.25);
        assert!(!ctx.prepare(&w, 1, PreconditionerKind::None, Some(&shift), &span));
        // Different shift *values* also miss.
        let shift2 = CellField::constant(w.dims(), 0.5);
        assert!(!ctx.prepare(&w, 1, PreconditionerKind::None, Some(&shift2), &span));
        // Back to the first shift: the cache keeps only one entry, so this
        // rebuilds — the key contract is equality, not history.
        assert!(!ctx.prepare(&w, 1, PreconditionerKind::None, Some(&shift), &span));
        assert!(ctx.prepare(&w, 1, PreconditionerKind::None, Some(&shift), &span));
        assert_eq!(ctx.stats().hits, 2);
        assert_eq!(ctx.stats().misses, 4);
    }

    #[test]
    fn thread_count_and_preconditioner_are_part_of_the_key() {
        let w = workload();
        let mut ctx = SolveContext::<f64>::new();
        let span = Span::null();
        assert!(!ctx.prepare(&w, 1, PreconditionerKind::None, None, &span));
        assert!(!ctx.prepare(&w, 2, PreconditionerKind::None, None, &span));
        assert!(!ctx.prepare(&w, 2, PreconditionerKind::Jacobi, None, &span));
        assert!(ctx.prepare(&w, 2, PreconditionerKind::Jacobi, None, &span));
    }

    #[test]
    fn transmissibility_and_dirichlet_changes_miss() {
        let spec = WorkloadSpec::quickstart();
        let w1 = spec.build();
        let mut thick = spec.clone();
        thick.viscosity *= 2.0;
        let w2 = thick.build();
        let mut ctx = SolveContext::<f64>::new();
        let span = Span::null();
        assert!(!ctx.prepare(&w1, 1, PreconditionerKind::None, None, &span));
        assert!(!ctx.prepare(&w2, 1, PreconditionerKind::None, None, &span));
        assert!(ctx.prepare(&w2, 1, PreconditionerKind::None, None, &span));
    }

    #[test]
    fn pooled_solve_matches_unpooled_bitwise_and_reuses_context() {
        use crate::backend::{HostBackend, SolveBackend};
        use crate::monitor::NullMonitor;

        let w = workload();
        let config = SolveConfig::default();
        let reference = HostBackend::oracle().solve(&w, &config).unwrap();

        let mut ctx = SolveContext::<f64>::new();
        for round in 0..3 {
            let stopped = ctx.solve(&w, &config, &mut NullMonitor, &Span::null());
            assert_eq!(stopped, None);
            assert_eq!(
                ctx.history().residual_norms_squared,
                reference.history.residual_norms_squared,
                "round {round}: pooled history must be bitwise identical"
            );
            assert_eq!(ctx.pressure().as_slice(), reference.pressure.as_slice());
            assert_eq!(ctx.final_residual_max(), reference.final_residual_max);
        }
        assert_eq!(ctx.stats().hits, 2);
        assert_eq!(ctx.stats().misses, 1);
        assert_eq!(ctx.stats().scratch_reallocs, 0);
    }

    #[test]
    fn pooled_jacobi_and_mg_match_unpooled_bitwise() {
        use crate::backend::{HostBackend, SolveBackend};
        use crate::monitor::NullMonitor;

        for kind in [PreconditionerKind::Jacobi, PreconditionerKind::Mg] {
            let w = workload();
            let config = SolveConfig {
                preconditioner: kind,
                ..SolveConfig::default()
            };
            let reference = HostBackend::oracle().solve(&w, &config).unwrap();
            let mut ctx = SolveContext::<f64>::new();
            for _ in 0..2 {
                ctx.solve(&w, &config, &mut NullMonitor, &Span::null());
                assert_eq!(
                    ctx.history().residual_norms_squared,
                    reference.history.residual_norms_squared,
                    "{kind:?}: pooled history must be bitwise identical"
                );
                assert_eq!(ctx.pressure().as_slice(), reference.pressure.as_slice());
            }
        }
    }

    #[test]
    fn workload_cache_replays_bitwise_identical_workloads() {
        let mut cache = SolveContextCache::new();
        let spec = WorkloadSpec::quickstart();
        let fresh = Workload::try_from_spec(&spec).unwrap();
        let first = cache.checkout_workload(&spec).unwrap();
        assert_eq!(
            first.transmissibility().fingerprint(),
            fresh.transmissibility().fingerprint()
        );
        cache.checkin_workload(spec.clone(), first);
        let again = cache.checkout_workload(&spec).unwrap();
        assert_eq!(
            again.dirichlet().fingerprint(),
            fresh.dirichlet().fingerprint()
        );
        cache.checkin_workload(spec.clone(), again);
        // A different spec misses and drops the stale entry.
        let mut other = spec.clone();
        other.viscosity *= 3.0;
        let w2 = cache.checkout_workload(&other).unwrap();
        cache.checkin_workload(other, w2);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
    }
}
