//! The conjugate-gradient method of the paper's Algorithm 1.
//!
//! The loop body is the textbook CG recurrence the paper lists (with its `x` being
//! the search direction and `y` the iterate; here they are called `direction` and
//! `solution`):
//!
//! ```text
//! α_k  = rᵀr / dᵀ(A d)
//! x_{k+1} = x_k + α_k d_k
//! r_{k+1} = r_k − α_k (A d_k)
//! exit if rᵀr < ε
//! β_k  = r_{k+1}ᵀ r_{k+1} / r_kᵀ r_k
//! d_{k+1} = r_{k+1} + β_k d_k
//! ```
//!
//! One operator application and two dot products per iteration — exactly the
//! structure the dataflow implementation reproduces with Algorithm 2 for `A d` and
//! the whole-fabric all-reduce for the dot products.
//!
//! The host loop executes those passes through the two **fused kernels** of
//! [`LinearOperator`]: [`apply_dot`](LinearOperator::apply_dot) computes `A d`
//! and `dᵀ(A d)` in one sweep, and [`cg_update`](LinearOperator::cg_update)
//! performs both axpy updates and the new `rᵀr` in a second sweep.  Every
//! reduction uses the deterministic slab order of [`mffv_fv::plan`], so the
//! history is bitwise identical whether the operator runs the fused planned
//! kernels (on any thread count) or the unfused defaults.
//!
//! Note on reduction order: on grids larger than
//! [`SLAB_CELLS`](mffv_fv::SLAB_CELLS) cells the slab-ordered reductions
//! associate differently from the single global FMA chain earlier releases
//! used, so recorded residual trajectories are not bit-comparable across that
//! boundary (they are within solver precision of each other).  This is the
//! deliberate trade that makes histories *thread-count independent*: a global
//! FMA chain cannot be split across threads without changing its value.
//! Grids of at most `SLAB_CELLS` cells have a single slab and are bitwise
//! unchanged.

use crate::context::CgScratch;
use crate::convergence::{ConvergenceHistory, StoppingCriterion};
use crate::monitor::{Flow, NullMonitor, SolveEvent, SolveMonitor, StopReason};
use mffv_fv::plan::det_norm_squared;
use mffv_fv::LinearOperator;
use mffv_mesh::{CellField, Scalar};

/// Result of a CG solve.
#[derive(Clone, Debug)]
pub struct SolveOutcome<T: Scalar> {
    /// The computed solution.
    pub solution: CellField<T>,
    /// Convergence record.
    pub history: ConvergenceHistory,
    /// `Some(reason)` when a [`SolveMonitor`] or stop policy ended the solve
    /// early; `None` when it converged or exhausted its own iteration cap.
    pub stopped: Option<StopReason>,
}

/// Conjugate-gradient solver configuration.
#[derive(Clone, Copy, Debug)]
pub struct ConjugateGradient {
    /// Stopping criterion (tolerance on `rᵀr` and iteration cap).
    pub criterion: StoppingCriterion,
}

impl ConjugateGradient {
    /// A solver with an explicit criterion.
    pub fn new(criterion: StoppingCriterion) -> Self {
        Self { criterion }
    }

    /// The paper's evaluation setting.
    pub fn paper() -> Self {
        Self {
            criterion: StoppingCriterion::paper(),
        }
    }

    /// A solver with the given tolerance on `rᵀr` and iteration cap.
    pub fn with_tolerance(tolerance: f64, max_iterations: usize) -> Self {
        Self {
            criterion: StoppingCriterion::new(tolerance, max_iterations),
        }
    }

    /// Solve `A x = b` starting from `x0`.
    ///
    /// `A` must be symmetric positive definite over the non-Dirichlet degrees of
    /// freedom (see `mffv-fv`'s sign convention).  Returns the solution together
    /// with the convergence history.
    pub fn solve<T: Scalar, Op: LinearOperator<T>>(
        &self,
        operator: &Op,
        rhs: &CellField<T>,
        x0: &CellField<T>,
    ) -> SolveOutcome<T> {
        self.solve_monitored(operator, rhs, x0, &mut NullMonitor)
    }

    /// Solve `A x = b` as an observable, cancellable session.
    ///
    /// `monitor` receives a [`SolveEvent`] at every iteration boundary — the
    /// `rr` payloads are bitwise identical to the entries recorded in the
    /// returned [`ConvergenceHistory`] — and may end the solve early by
    /// returning [`Flow::Stop`], in which case the partial solution and
    /// history are returned with [`SolveOutcome::stopped`] set.  Monitoring
    /// performs no extra arithmetic: an unstopped monitored solve is bitwise
    /// identical to [`solve`](Self::solve).
    pub fn solve_monitored<T: Scalar, Op: LinearOperator<T>>(
        &self,
        operator: &Op,
        rhs: &CellField<T>,
        x0: &CellField<T>,
        monitor: &mut dyn SolveMonitor,
    ) -> SolveOutcome<T> {
        let mut scratch = CgScratch::new(operator.dims());
        let stopped = self.solve_into(operator, rhs, Some(x0), monitor, &mut scratch);
        scratch.into_outcome(stopped)
    }

    /// [`solve_monitored`](Self::solve_monitored) into a caller-owned
    /// [`CgScratch`] — the zero-allocation form of the pooled serving path.
    ///
    /// `x0 = None` starts from the zero vector (the Newton-step convention)
    /// without needing a zeros field.  Every scratch buffer is fully
    /// overwritten before it is read, so the recorded history and the
    /// solution left in `scratch` are bitwise identical to a fresh-allocation
    /// solve.  On a numerical breakdown (non-positive or non-finite
    /// `dᵀ(A d)`) the solve ends with a terminal
    /// [`SolveEvent::Stopped`]`(`[`StopReason::Breakdown`]`)` and returns
    /// that reason.
    pub fn solve_into<T: Scalar, Op: LinearOperator<T>>(
        &self,
        operator: &Op,
        rhs: &CellField<T>,
        x0: Option<&CellField<T>>,
        monitor: &mut dyn SolveMonitor,
        scratch: &mut CgScratch<T>,
    ) -> Option<StopReason> {
        let dims = operator.dims();
        assert_eq!(rhs.dims(), dims, "rhs dimension mismatch");
        assert_eq!(scratch.dims(), dims, "scratch dimension mismatch");
        match x0 {
            Some(x0) => {
                assert_eq!(x0.dims(), dims, "initial guess dimension mismatch");
                scratch.solution.copy_from(x0);
            }
            None => scratch.solution.fill(T::ZERO),
        }
        // r_0 = b − A x_0 (the `ad` buffer holds A x_0 for a moment; `apply`
        // overwrites it fully, so its previous contents never matter).
        scratch.residual.copy_from(rhs);
        operator.apply(&scratch.solution, &mut scratch.ad);
        scratch.residual.axpy(-T::ONE, &scratch.ad);
        // d_0 = r_0
        scratch.direction.copy_from(&scratch.residual);

        let mut rr = det_norm_squared(&scratch.residual).to_f64();
        scratch.history.reset_from(rr);
        if self.criterion.is_converged(rr) {
            scratch.history.converged = true;
            monitor.on_event(&SolveEvent::Started { initial_rr: rr });
            monitor.on_event(&SolveEvent::Converged { iterations: 0, rr });
            return None;
        }
        if let Flow::Stop(reason) = monitor.on_event(&SolveEvent::Started { initial_rr: rr }) {
            monitor.on_event(&SolveEvent::Stopped(reason));
            return Some(reason);
        }

        let mut stopped = None;
        for _ in 0..self.criterion.max_iterations {
            // Fused kernel 1: A d and dᵀ(A d) in one pass.
            let d_ad = operator
                .apply_dot(&scratch.direction, &mut scratch.ad)
                .to_f64();
            if d_ad <= 0.0 || !d_ad.is_finite() {
                // Operator is not positive definite along this direction (or
                // numerics broke down); stop rather than produce garbage, and
                // say so — streams must always end with a terminal event.
                monitor.on_event(&SolveEvent::Stopped(StopReason::Breakdown));
                stopped = Some(StopReason::Breakdown);
                break;
            }
            let alpha = T::from_f64(rr / d_ad);
            // Fused kernel 2: x += α d, r −= α (A d), and the new rᵀr.
            let rr_new = operator
                .cg_update(
                    alpha,
                    &scratch.direction,
                    &scratch.ad,
                    &mut scratch.solution,
                    &mut scratch.residual,
                )
                .to_f64();
            scratch.history.record(rr_new);
            if self.criterion.is_converged(rr_new) {
                scratch.history.converged = true;
                monitor.on_event(&SolveEvent::Iteration {
                    k: scratch.history.iterations,
                    rr: rr_new,
                });
                monitor.on_event(&SolveEvent::Converged {
                    iterations: scratch.history.iterations,
                    rr: rr_new,
                });
                break;
            }
            if let Flow::Stop(reason) = monitor.on_event(&SolveEvent::Iteration {
                k: scratch.history.iterations,
                rr: rr_new,
            }) {
                monitor.on_event(&SolveEvent::Stopped(reason));
                stopped = Some(reason);
                break;
            }
            let beta = T::from_f64(rr_new / rr);
            scratch.direction.xpby(&scratch.residual, beta);
            rr = rr_new;
        }
        stopped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffv_fv::csr::AssembledOperator;
    use mffv_fv::matrix_free::MatrixFreeOperator;
    use mffv_fv::operator::ScaledIdentity;
    use mffv_fv::residual::{newton_rhs, residual};
    use mffv_mesh::workload::WorkloadSpec;
    use mffv_mesh::{Dims, DirichletSet, Transmissibilities};

    #[test]
    fn identity_system_converges_in_one_iteration() {
        let dims = Dims::new(4, 4, 2);
        let op = ScaledIdentity::new(dims, 2.0f64);
        let b = CellField::from_fn(dims, |c| (c.x + c.y) as f64);
        let out =
            ConjugateGradient::with_tolerance(1e-24, 10).solve(&op, &b, &CellField::zeros(dims));
        assert!(out.history.converged);
        assert!(out.history.iterations <= 1);
        for i in 0..b.len() {
            assert!((out.solution.get(i) - b.get(i) / 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn laplacian_with_dirichlet_converges_to_linear_profile() {
        // Fixed pressures on the X faces, homogeneous coefficients: the solution of
        // the full Newton system is the linear pressure drop.
        let dims = Dims::new(9, 4, 3);
        let coeffs = Transmissibilities::<f64>::uniform(dims, 1.0);
        let dirichlet = DirichletSet::x_faces(dims, 1.0, 0.0);
        let op = MatrixFreeOperator::new(coeffs.clone(), &dirichlet);

        let mut p0 = CellField::constant(dims, 0.5);
        dirichlet.impose(&mut p0);
        let r = residual(&p0, &coeffs, &dirichlet);
        let b = newton_rhs(&r, &dirichlet);
        let out =
            ConjugateGradient::with_tolerance(1e-20, 500).solve(&op, &b, &CellField::zeros(dims));
        assert!(
            out.history.converged,
            "CG did not converge: {:?}",
            out.history
        );

        let mut p = p0.clone();
        p.axpy(1.0, &out.solution);
        let exact = CellField::from_fn(dims, |c| 1.0 - c.x as f64 / (dims.nx - 1) as f64);
        assert!(
            p.max_abs_diff(&exact) < 1e-8,
            "max error {}",
            p.max_abs_diff(&exact)
        );
    }

    #[test]
    fn matrix_free_and_assembled_produce_identical_iterates() {
        let w = WorkloadSpec::quickstart().scaled(2).build();
        let mf = MatrixFreeOperator::<f64>::from_workload(&w);
        let asm = AssembledOperator::<f64>::from_workload(&w);
        let p0: CellField<f64> = w.initial_pressure();
        let r = residual(&p0, w.transmissibility(), w.dirichlet());
        let b = newton_rhs(&r, w.dirichlet());
        let solver = ConjugateGradient::with_tolerance(1e-18, 500);
        let out_mf = solver.solve(&mf, &b, &CellField::zeros(w.dims()));
        let out_asm = solver.solve(&asm, &b, &CellField::zeros(w.dims()));
        assert_eq!(out_mf.history.iterations, out_asm.history.iterations);
        assert!(out_mf.solution.max_abs_diff(&out_asm.solution) < 1e-10);
    }

    #[test]
    fn respects_iteration_cap() {
        let dims = Dims::new(12, 12, 4);
        let coeffs = Transmissibilities::<f64>::uniform(dims, 1.0);
        let dirichlet = DirichletSet::source_producer(dims, 1.0, 0.0);
        let op = MatrixFreeOperator::new(coeffs, &dirichlet);
        let b = CellField::constant(dims, 1.0);
        let out =
            ConjugateGradient::with_tolerance(1e-30, 3).solve(&op, &b, &CellField::zeros(dims));
        assert!(!out.history.converged);
        assert_eq!(out.history.iterations, 3);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let dims = Dims::new(4, 4, 4);
        let op = ScaledIdentity::new(dims, 1.0f64);
        let out =
            ConjugateGradient::paper().solve(&op, &CellField::zeros(dims), &CellField::zeros(dims));
        assert!(out.history.converged);
        assert_eq!(out.history.iterations, 0);
        assert_eq!(out.solution.max_abs(), 0.0);
    }

    #[test]
    fn residual_history_is_broadly_decreasing() {
        let w = WorkloadSpec::quickstart().build();
        let op = MatrixFreeOperator::<f64>::from_workload(&w);
        let p0: CellField<f64> = w.initial_pressure();
        let r = residual(&p0, w.transmissibility(), w.dirichlet());
        let b = newton_rhs(&r, w.dirichlet());
        let out = ConjugateGradient::with_tolerance(1e-16, 2000).solve(
            &op,
            &b,
            &CellField::zeros(w.dims()),
        );
        assert!(out.history.converged);
        assert!(out.history.is_broadly_decreasing(50.0));
    }

    #[test]
    fn monitored_solve_is_bitwise_identical_and_streams_the_history() {
        use crate::monitor::{RecordingMonitor, SolveEvent};
        let w = WorkloadSpec::quickstart().build();
        let op = MatrixFreeOperator::<f64>::from_workload(&w);
        let p0: CellField<f64> = w.initial_pressure();
        let r = residual(&p0, w.transmissibility(), w.dirichlet());
        let b = newton_rhs(&r, w.dirichlet());
        let solver = ConjugateGradient::with_tolerance(1e-12, 2000);
        let x0 = CellField::zeros(w.dims());

        let plain = solver.solve(&op, &b, &x0);
        let mut recorder = RecordingMonitor::new();
        let monitored = solver.solve_monitored(&op, &b, &x0, &mut recorder);

        assert_eq!(plain.history, monitored.history);
        assert_eq!(monitored.stopped, None);
        for i in 0..plain.solution.len() {
            assert_eq!(
                plain.solution.get(i).to_bits(),
                monitored.solution.get(i).to_bits()
            );
        }
        let streamed: Vec<u64> = recorder
            .iteration_rrs()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let recorded: Vec<u64> = monitored.history.residual_norms_squared[1..]
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(streamed, recorded);
        assert!(matches!(
            recorder.terminal(),
            Some(SolveEvent::Converged { .. })
        ));
    }

    #[test]
    fn policy_session_stops_the_solve_with_partial_history() {
        use crate::monitor::{StopPolicy, StopReason};
        let w = WorkloadSpec::quickstart().build();
        let op = MatrixFreeOperator::<f64>::from_workload(&w);
        let b = CellField::constant(w.dims(), 1.0);
        let solver = ConjugateGradient::with_tolerance(1e-20, 2000);
        let mut session = StopPolicy::new().iteration_budget(5).session();
        let out = solver.solve_monitored(&op, &b, &CellField::zeros(w.dims()), &mut session);
        assert_eq!(out.stopped, Some(StopReason::IterationBudget));
        assert!(!out.history.converged);
        assert_eq!(out.history.iterations, 5);
        assert_eq!(out.history.residual_norms_squared.len(), 6);
    }

    #[test]
    fn breakdown_on_indefinite_operator_emits_terminal_stopped_event() {
        use crate::monitor::{RecordingMonitor, SolveEvent, StopReason};
        // A negative-definite operator makes dᵀ(A d) < 0 on the very first
        // direction: the solve must stop, report Breakdown, and terminate the
        // event stream with a Stopped event (it used to end silently).
        let dims = Dims::new(4, 4, 2);
        let op = ScaledIdentity::new(dims, -1.0f64);
        let b = CellField::constant(dims, 1.0);
        let mut recorder = RecordingMonitor::new();
        let solver = ConjugateGradient::with_tolerance(1e-20, 50);
        let out = solver.solve_monitored(&op, &b, &CellField::zeros(dims), &mut recorder);
        assert_eq!(out.stopped, Some(StopReason::Breakdown));
        assert!(!out.history.converged);
        assert_eq!(out.history.iterations, 0);
        assert!(matches!(
            recorder.terminal(),
            Some(SolveEvent::Stopped(StopReason::Breakdown))
        ));
    }

    #[test]
    fn scratch_reuse_is_bitwise_identical_across_solves() {
        use crate::context::CgScratch;
        use crate::monitor::NullMonitor;
        let w = WorkloadSpec::quickstart().build();
        let op = MatrixFreeOperator::<f64>::from_workload(&w);
        let p0: CellField<f64> = w.initial_pressure();
        let r = residual(&p0, w.transmissibility(), w.dirichlet());
        let b = newton_rhs(&r, w.dirichlet());
        let solver = ConjugateGradient::with_tolerance(1e-12, 2000);
        let fresh = solver.solve(&op, &b, &CellField::zeros(w.dims()));

        // One scratch, three solves: the second and third start from dirty
        // buffers and a used history, and must still reproduce every bit.
        let mut scratch = CgScratch::new(w.dims());
        for round in 0..3 {
            let stopped = solver.solve_into(&op, &b, None, &mut NullMonitor, &mut scratch);
            assert_eq!(stopped, None);
            assert_eq!(
                scratch.history(),
                &fresh.history,
                "round {round}: history must be bitwise identical"
            );
            for i in 0..fresh.solution.len() {
                assert_eq!(
                    scratch.solution().get(i).to_bits(),
                    fresh.solution.get(i).to_bits(),
                    "round {round}, cell {i}"
                );
            }
        }
    }

    #[test]
    fn f32_solve_reaches_single_precision_accuracy() {
        let w = WorkloadSpec::quickstart().scaled(2).build();
        let op = MatrixFreeOperator::<f32>::from_workload(&w);
        let p0: CellField<f32> = w.initial_pressure();
        let r = residual(&p0, &w.transmissibility().convert(), w.dirichlet());
        let b = newton_rhs(&r, w.dirichlet());
        let out = ConjugateGradient::with_tolerance(1e-10, 2000).solve(
            &op,
            &b,
            &CellField::zeros(w.dims()),
        );
        assert!(out.history.converged);
        assert!(out.solution.all_finite());
    }
}
