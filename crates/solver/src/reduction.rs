//! Deterministic reductions matching the whole-fabric all-reduce order.
//!
//! §III-C of the paper reduces dot products in a fixed spatial order: each PE first
//! reduces its own z-column, rows are then reduced left → right, the right-most
//! column is reduced top → bottom, and the result is broadcast back.  Floating-point
//! addition is not associative, so reproducing *the same order* on the host is what
//! allows bit-for-bit comparison between the fabric execution and the host oracle.
//!
//! [`fabric_ordered_dot`] and [`fabric_ordered_sum`] implement exactly that order on
//! [`CellField`]s; [`pairwise_sum`] is a deterministic tree reduction provided for
//! accuracy comparisons.

use mffv_mesh::{CellField, Scalar};

/// Sum the per-cell products `a_i · b_i` in fabric all-reduce order:
/// z within each PE column, then columns left → right within each fabric row, then
/// fabric rows top → bottom.
pub fn fabric_ordered_dot<T: Scalar>(a: &CellField<T>, b: &CellField<T>) -> T {
    assert_eq!(a.dims(), b.dims(), "field dimension mismatch");
    let dims = a.dims();
    let mut total = T::ZERO;
    for y in 0..dims.ny {
        let mut row_acc = T::ZERO;
        for x in 0..dims.nx {
            // Per-PE partial: reduce the z-column locally first.
            let col_a = a.column(x, y);
            let col_b = b.column(x, y);
            let mut pe_acc = T::ZERO;
            for (va, vb) in col_a.iter().zip(col_b.iter()) {
                pe_acc = va.mul_add(*vb, pe_acc);
            }
            // Row reduction: values flow left → right, accumulating on the east side.
            row_acc += pe_acc;
        }
        // Column reduction on the right-most fabric column: top → bottom.
        total += row_acc;
    }
    total
}

/// Sum a single field in fabric all-reduce order (dot with an implicit all-ones
/// field, without the multiplications).
pub fn fabric_ordered_sum<T: Scalar>(a: &CellField<T>) -> T {
    let dims = a.dims();
    let mut total = T::ZERO;
    for y in 0..dims.ny {
        let mut row_acc = T::ZERO;
        for x in 0..dims.nx {
            let mut pe_acc = T::ZERO;
            for v in a.column(x, y) {
                pe_acc += v;
            }
            row_acc += pe_acc;
        }
        total += row_acc;
    }
    total
}

/// Deterministic pairwise (tree) summation of a slice — the "well conditioned"
/// reference reduction used in accuracy comparisons against the fabric order.
pub fn pairwise_sum<T: Scalar>(values: &[T]) -> T {
    match values.len() {
        0 => T::ZERO,
        1 => values[0],
        2 => values[0] + values[1],
        n => {
            let mid = n / 2;
            pairwise_sum(&values[..mid]) + pairwise_sum(&values[mid..])
        }
    }
}

/// Dot product via pairwise summation of the per-cell products.
pub fn pairwise_dot<T: Scalar>(a: &CellField<T>, b: &CellField<T>) -> T {
    assert_eq!(a.dims(), b.dims(), "field dimension mismatch");
    let products: Vec<T> = a
        .as_slice()
        .iter()
        .zip(b.as_slice().iter())
        .map(|(&x, &y)| x * y)
        .collect();
    pairwise_sum(&products)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffv_mesh::Dims;
    use proptest::prelude::*;

    #[test]
    fn fabric_sum_matches_naive_sum_for_exact_values() {
        let dims = Dims::new(4, 3, 5);
        let f = CellField::<f64>::from_fn(dims, |c| (c.x + c.y * 10 + c.z * 100) as f64);
        let naive: f64 = f.as_slice().iter().sum();
        assert_eq!(fabric_ordered_sum(&f), naive);
    }

    #[test]
    fn fabric_dot_matches_field_dot_in_f64() {
        let dims = Dims::new(5, 4, 3);
        let a = CellField::<f64>::from_fn(dims, |c| (c.x as f64) - 0.5 * (c.z as f64));
        let b = CellField::<f64>::from_fn(dims, |c| 1.0 + (c.y as f64) * 0.25);
        let expected = a.dot(&b);
        let got = fabric_ordered_dot(&a, &b);
        assert!((expected - got).abs() < 1e-9 * expected.abs().max(1.0));
    }

    #[test]
    fn pairwise_sum_handles_edge_cases() {
        assert_eq!(pairwise_sum::<f64>(&[]), 0.0);
        assert_eq!(pairwise_sum(&[3.0f64]), 3.0);
        assert_eq!(pairwise_sum(&[1.0f64, 2.0, 3.0, 4.0, 5.0]), 15.0);
    }

    #[test]
    fn pairwise_is_at_least_as_accurate_as_sequential_for_adversarial_input() {
        // Large head value followed by many tiny values: sequential f32 summation
        // loses them all, pairwise keeps some.
        let n = 4096;
        let mut values = vec![1.0e8f32];
        values.extend(std::iter::repeat_n(1.0f32, n));
        let sequential: f32 = values.iter().copied().sum();
        let pairwise = pairwise_sum(&values);
        let exact = 1.0e8f64 + n as f64;
        let err_seq = (sequential as f64 - exact).abs();
        let err_pair = (pairwise as f64 - exact).abs();
        assert!(err_pair <= err_seq);
    }

    proptest! {
        #[test]
        fn fabric_dot_is_close_to_pairwise_dot(values in proptest::collection::vec(-1.0f64..1.0, 60)) {
            let dims = Dims::new(5, 4, 3);
            let a = CellField::from_vec(dims, values);
            let b = CellField::from_fn(dims, |c| 0.1 * (c.x as f64 + c.y as f64 + c.z as f64));
            let d1 = fabric_ordered_dot(&a, &b);
            let d2 = pairwise_dot(&a, &b);
            prop_assert!((d1 - d2).abs() < 1e-10);
        }

        #[test]
        fn fabric_sum_is_permutation_invariant_at_f64(values in proptest::collection::vec(-10.0f64..10.0, 24)) {
            let dims = Dims::new(4, 3, 2);
            let f = CellField::from_vec(dims, values.clone());
            let naive: f64 = values.iter().sum();
            prop_assert!((fabric_ordered_sum(&f) - naive).abs() < 1e-9);
        }
    }
}
