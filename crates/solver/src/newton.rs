//! One-Newton-step pressure solve driver.
//!
//! The single-phase incompressible problem of Eq. (1)–(3) is linear, so a single
//! Newton step solves it exactly: evaluate the residual at the initial pressure,
//! solve `A δp = b` with CG, and update.  This driver is the host-side "oracle"
//! solve that the dataflow implementation (`mffv-core`) and the GPU reference
//! (`mffv-gpu-ref`) are validated against (§V-B, "Numerical Integrity").

use crate::cg::ConjugateGradient;
use crate::convergence::ConvergenceHistory;
use crate::monitor::{NullMonitor, SolveMonitor, StopReason};
use crate::pcg::PreconditionedConjugateGradient;
use mffv_fv::residual::{newton_rhs, residual};
use mffv_fv::{LinearOperator, MatrixFreeOperator, Preconditioner};
use mffv_mesh::{CellField, Scalar, Workload};
use mffv_telemetry::Span;

/// A converged pressure field with its solver statistics.
#[derive(Clone, Debug)]
pub struct PressureSolution<T: Scalar> {
    /// The pressure field after the Newton update.
    pub pressure: CellField<T>,
    /// Convergence history of the CG solve.
    pub history: ConvergenceHistory,
    /// Max-norm of the residual evaluated at the returned pressure (a direct check
    /// of Eq. (3), independent of the CG stopping criterion).
    pub final_residual_max: f64,
    /// `Some(reason)` when a monitor or stop policy ended the CG solve early;
    /// the pressure then carries the partial Newton update reached so far.
    pub stopped: Option<StopReason>,
}

/// Solve a workload's pressure problem with CG on an arbitrary operator.
///
/// The operator must be the SPD Newton operator consistent with the workload's
/// transmissibilities and Dirichlet set (e.g. [`MatrixFreeOperator::from_workload`],
/// the assembled baseline, the GPU reference or the dataflow fabric operator).
pub fn solve_pressure_with<T: Scalar, Op: LinearOperator<T>>(
    workload: &Workload,
    operator: &Op,
    solver: &ConjugateGradient,
) -> PressureSolution<T> {
    solve_pressure_monitored(workload, operator, solver, &mut NullMonitor)
}

/// [`solve_pressure_with`] as an observable, cancellable session: `monitor`
/// sees every iteration boundary of the inner CG loop and may stop the solve,
/// in which case the partial pressure update and history are still returned
/// (with [`PressureSolution::stopped`] set).
pub fn solve_pressure_monitored<T: Scalar, Op: LinearOperator<T>>(
    workload: &Workload,
    operator: &Op,
    solver: &ConjugateGradient,
    monitor: &mut dyn SolveMonitor,
) -> PressureSolution<T> {
    let coeffs = workload.transmissibility().convert::<T>();
    let p0: CellField<T> = workload.initial_pressure();
    let r0 = residual(&p0, &coeffs, workload.dirichlet());
    let b = newton_rhs(&r0, workload.dirichlet());
    let outcome = solver.solve_monitored(operator, &b, &CellField::zeros(workload.dims()), monitor);

    let mut pressure = p0;
    pressure.axpy(T::ONE, &outcome.solution);
    let r_final = residual(&pressure, &coeffs, workload.dirichlet());
    PressureSolution {
        pressure,
        history: outcome.history,
        final_residual_max: r_final.max_abs().to_f64(),
        stopped: outcome.stopped,
    }
}

/// The preconditioned counterpart of [`solve_pressure_monitored`]: the same
/// one-Newton-step driver with the inner Krylov loop replaced by PCG under an
/// arbitrary [`Preconditioner`] (Jacobi, the multigrid V-cycle, …).  `span`
/// scopes the preconditioner's telemetry (`mg.vcycle` / `mg.level`); pass
/// [`Span::null`] when not tracing.  The recorded history carries the
/// *unpreconditioned* `rᵀr`, so it is directly comparable with plain CG.
pub fn solve_pressure_preconditioned<T: Scalar, Op, P>(
    workload: &Workload,
    operator: &Op,
    preconditioner: &P,
    solver: &PreconditionedConjugateGradient,
    monitor: &mut dyn SolveMonitor,
    span: &Span,
) -> PressureSolution<T>
where
    Op: LinearOperator<T>,
    P: Preconditioner<T> + ?Sized,
{
    let coeffs = workload.transmissibility().convert::<T>();
    let p0: CellField<T> = workload.initial_pressure();
    let r0 = residual(&p0, &coeffs, workload.dirichlet());
    let b = newton_rhs(&r0, workload.dirichlet());
    let outcome = solver.solve_traced(
        operator,
        preconditioner,
        &b,
        &CellField::zeros(workload.dims()),
        monitor,
        span,
    );

    let mut pressure = p0;
    pressure.axpy(T::ONE, &outcome.solution);
    let r_final = residual(&pressure, &coeffs, workload.dirichlet());
    PressureSolution {
        pressure,
        history: outcome.history,
        final_residual_max: r_final.max_abs().to_f64(),
        stopped: outcome.stopped,
    }
}

/// Solve a workload's pressure problem with the sequential matrix-free operator and
/// the workload's own tolerance settings.
pub fn solve_pressure<T: Scalar>(workload: &Workload) -> PressureSolution<T> {
    let operator = MatrixFreeOperator::<T>::from_workload(workload);
    let solver = ConjugateGradient::with_tolerance(workload.tolerance(), workload.max_iterations());
    solve_pressure_with(workload, &operator, &solver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffv_fv::csr::AssembledOperator;
    use mffv_mesh::workload::WorkloadSpec;
    use mffv_mesh::{CellIndex, Dims};

    #[test]
    fn quickstart_pressure_is_bounded_by_dirichlet_values() {
        let w = WorkloadSpec::quickstart().build();
        let sol = solve_pressure::<f64>(&w);
        assert!(sol.history.converged);
        assert!(sol.final_residual_max < 1e-6);
        // Discrete maximum principle: interior pressures stay within the range of
        // the boundary values.
        for &p in sol.pressure.as_slice() {
            assert!(
                (-1e-9..=1.0 + 1e-9).contains(&p),
                "pressure {p} outside [0, 1]"
            );
        }
        // Monotone decay away from the source towards the producer.
        let d = w.dims();
        let near_source = sol.pressure.at(CellIndex::new(1, 1, 0));
        let near_producer = sol.pressure.at(CellIndex::new(d.nx - 2, d.ny - 2, 0));
        assert!(near_source > near_producer);
    }

    #[test]
    fn matrix_free_and_assembled_drivers_agree() {
        let w = WorkloadSpec::fig5(Dims::new(8, 7, 5)).build();
        let mf = solve_pressure::<f64>(&w);
        let asm_op = AssembledOperator::<f64>::from_workload(&w);
        let solver = ConjugateGradient::with_tolerance(w.tolerance(), w.max_iterations());
        let asm = solve_pressure_with(&w, &asm_op, &solver);
        assert!(mf.history.converged && asm.history.converged);
        let rel = mf.pressure.max_abs_diff(&asm.pressure) / mf.pressure.max_abs();
        assert!(rel < 1e-9, "relative mismatch {rel}");
    }

    #[test]
    fn f32_solution_tracks_f64_solution() {
        let w = WorkloadSpec::quickstart().scaled(2).build();
        let s64 = solve_pressure::<f64>(&w);
        // The paper's f32 device precision: tolerance loosened to what f32 can reach.
        let op32 = MatrixFreeOperator::<f32>::from_workload(&w);
        let solver = ConjugateGradient::with_tolerance(1e-10, 5000);
        let s32 = solve_pressure_with::<f32, _>(&w, &op32, &solver);
        assert!(s32.history.converged);
        let diff = s64.pressure.max_abs_diff(&s32.pressure.convert());
        assert!(diff < 1e-4, "f32 vs f64 gap {diff}");
    }

    #[test]
    fn final_residual_tracks_tolerance() {
        let w = WorkloadSpec::quickstart().build();
        let loose = solve_pressure_with::<f64, _>(
            &w,
            &MatrixFreeOperator::<f64>::from_workload(&w),
            &ConjugateGradient::with_tolerance(1e-4, 10_000),
        );
        let tight = solve_pressure_with::<f64, _>(
            &w,
            &MatrixFreeOperator::<f64>::from_workload(&w),
            &ConjugateGradient::with_tolerance(1e-18, 10_000),
        );
        assert!(tight.final_residual_max <= loose.final_residual_max);
    }
}
