//! Observable, cancellable solve sessions: [`SolveMonitor`], [`SolveEvent`],
//! [`StopPolicy`] and [`CancelToken`].
//!
//! The paper's central loop (Algorithm 1) is an iterative CG solve whose
//! per-iteration residual trajectory is the whole story of the §V-B agreement
//! experiment — yet a fire-and-forget `solve()` only surfaces that trajectory
//! after the fact, as a finished
//! [`ConvergenceHistory`](crate::convergence::ConvergenceHistory).  This
//! module defines the *session* contract that every backend threads through
//! its inner CG loop instead:
//!
//! * [`SolveEvent`] — the typed iteration-boundary events (`Started`,
//!   `Iteration { k, rr }`, `Converged`, `Stopped`);
//! * [`SolveMonitor`] — the observer callback; its return value, a [`Flow`],
//!   makes observation and control share one channel: return
//!   [`Flow::Stop`] and the backend exits at the next iteration boundary,
//!   reporting the partial state it reached;
//! * [`StopPolicy`] — the composable, declarative stop rules a serving path
//!   needs (iteration budget, wall-clock deadline, stagnation and divergence
//!   detection, cooperative cancellation), armed into a [`PolicySession`]
//!   monitor per solve;
//! * [`CancelToken`] — a cheap, shareable cancellation flag
//!   (`Arc<AtomicBool>`) that can stop one solve or a whole engine batch from
//!   another thread.
//!
//! The **`rr` values of the `Iteration` event stream are bitwise identical to
//! the entries the backend records in its `ConvergenceHistory`** — the events
//! are emitted at the exact point the history is recorded, not recomputed.
//! Monitoring therefore never perturbs the arithmetic: a monitored solve
//! that is not stopped produces bitwise the same report as an unmonitored
//! one.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a solve session ended before reaching its natural conclusion
/// (convergence or the solver's own iteration cap).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// A [`CancelToken`] observed by the session was cancelled.
    Cancelled,
    /// The session's wall-clock deadline expired.
    DeadlineExpired,
    /// The session's [`StopPolicy`] iteration budget was spent (distinct from
    /// the solver's own `k_max`, which ends the solve without a stop).
    IterationBudget,
    /// The residual stopped improving for the policy's stagnation window.
    Stagnated,
    /// The residual grew past the policy's divergence factor.
    Diverged,
    /// A user [`SolveMonitor`] returned [`Flow::Stop`] for its own reasons.
    MonitorRequest,
    /// The Krylov iteration broke down: the direction's operator curvature
    /// `dᵀAd` was non-positive or non-finite (an indefinite or corrupted
    /// operator), so continuing would divide by it and produce garbage.
    Breakdown,
}

impl StopReason {
    /// Short stable label (used in status tables and error messages).
    pub fn label(&self) -> &'static str {
        match self {
            StopReason::Cancelled => "cancelled",
            StopReason::DeadlineExpired => "deadline expired",
            StopReason::IterationBudget => "iteration budget spent",
            StopReason::Stagnated => "residual stagnated",
            StopReason::Diverged => "residual diverged",
            StopReason::MonitorRequest => "stopped by monitor",
            StopReason::Breakdown => "numerical breakdown",
        }
    }
}

impl std::fmt::Display for StopReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What the monitor tells the backend to do next.
///
/// Returned from every [`SolveMonitor::on_event`] call; a `Stop` takes effect
/// at the current iteration boundary — the backend emits a final
/// [`SolveEvent::Stopped`] and returns the partial state it reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flow {
    /// Keep iterating.
    Continue,
    /// Stop at this iteration boundary, for the given reason.
    Stop(StopReason),
}

impl Flow {
    /// The stop reason, when this is a `Stop`.
    pub fn stop_reason(&self) -> Option<StopReason> {
        match self {
            Flow::Continue => None,
            Flow::Stop(reason) => Some(*reason),
        }
    }
}

/// A typed event at an iteration boundary of a Krylov solve session.
///
/// The `rr` payloads are the *recorded* squared residual norms — bitwise the
/// same values the backend stores in its `ConvergenceHistory`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SolveEvent {
    /// The session began; `initial_rr` is the `rᵀr` of the initial residual
    /// (the first entry of the convergence history).
    Started {
        /// `rᵀr` before the first iteration.
        initial_rr: f64,
    },
    /// Iteration `k` completed with squared residual norm `rr`.
    Iteration {
        /// 1-based iteration index (matches `ConvergenceHistory::iterations`
        /// after this iteration).
        k: usize,
        /// `rᵀr` after iteration `k`, bitwise equal to the history entry.
        rr: f64,
    },
    /// The stopping criterion was met (`rᵀr < ε`, the paper's line 8).
    Converged {
        /// Iterations performed.
        iterations: usize,
        /// Final `rᵀr`.
        rr: f64,
    },
    /// The session was stopped early: by its monitor or policy (emitted as
    /// the final event after a [`Flow::Stop`]) or by the solver itself on a
    /// numerical breakdown ([`StopReason::Breakdown`]); the backend then
    /// returns the partial state.  A stream that ends without `Converged`
    /// *or* `Stopped` exhausted the solver's own iteration cap.
    Stopped(StopReason),
}

/// Observer + controller of one solve session.
///
/// Backends call [`on_event`](Self::on_event) at every iteration boundary of
/// the inner CG/PCG loop; returning [`Flow::Stop`] ends the solve at that
/// boundary with the partial `ConvergenceHistory` still reported.  The return
/// value of the final `Converged`/`Stopped` notification is ignored.
pub trait SolveMonitor {
    /// Observe one event; decide whether the solve continues.
    fn on_event(&mut self, event: &SolveEvent) -> Flow;
}

/// A monitor that observes nothing and never stops — the implicit monitor of
/// every plain `solve()` call.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullMonitor;

impl SolveMonitor for NullMonitor {
    fn on_event(&mut self, _event: &SolveEvent) -> Flow {
        Flow::Continue
    }
}

/// A monitor that records every event it sees (and never stops) — the test
/// and tracing workhorse.
#[derive(Clone, Debug, Default)]
pub struct RecordingMonitor {
    /// Every observed event, in emission order.
    pub events: Vec<SolveEvent>,
}

impl RecordingMonitor {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The `rr` payloads of the recorded `Iteration` events, in order.
    pub fn iteration_rrs(&self) -> Vec<f64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                SolveEvent::Iteration { rr, .. } => Some(*rr),
                _ => None,
            })
            .collect()
    }

    /// The `initial_rr` of the `Started` event, if one was observed.
    pub fn initial_rr(&self) -> Option<f64> {
        self.events.iter().find_map(|e| match e {
            SolveEvent::Started { initial_rr } => Some(*initial_rr),
            _ => None,
        })
    }

    /// The terminal event (`Converged` or `Stopped`), if one was observed.
    pub fn terminal(&self) -> Option<&SolveEvent> {
        self.events
            .iter()
            .rev()
            .find(|e| matches!(e, SolveEvent::Converged { .. } | SolveEvent::Stopped(_)))
    }
}

impl SolveMonitor for RecordingMonitor {
    fn on_event(&mut self, event: &SolveEvent) -> Flow {
        self.events.push(*event);
        Flow::Continue
    }
}

/// A monitor built from a closure — `monitor_fn(|e| { ...; Flow::Continue })`.
pub struct FnMonitor<F: FnMut(&SolveEvent) -> Flow>(F);

/// Wrap a closure as a [`SolveMonitor`].
pub fn monitor_fn<F: FnMut(&SolveEvent) -> Flow>(f: F) -> FnMonitor<F> {
    FnMonitor(f)
}

impl<F: FnMut(&SolveEvent) -> Flow> SolveMonitor for FnMonitor<F> {
    fn on_event(&mut self, event: &SolveEvent) -> Flow {
        (self.0)(event)
    }
}

/// Fan one event stream out to several monitors.
///
/// Every monitor sees every event; the first `Stop` (in push order) wins, but
/// later monitors still observe the event that triggered it — and all of them
/// observe the final `Stopped` notification the backend emits.
#[derive(Default)]
pub struct MonitorFanout<'a> {
    monitors: Vec<&'a mut dyn SolveMonitor>,
}

impl<'a> MonitorFanout<'a> {
    /// An empty fanout (acts like [`NullMonitor`]).
    pub fn new() -> Self {
        Self {
            monitors: Vec::new(),
        }
    }

    /// Add a monitor; earlier monitors take stop precedence.
    pub fn push(mut self, monitor: &'a mut dyn SolveMonitor) -> Self {
        self.monitors.push(monitor);
        self
    }
}

impl SolveMonitor for MonitorFanout<'_> {
    fn on_event(&mut self, event: &SolveEvent) -> Flow {
        let mut flow = Flow::Continue;
        for monitor in &mut self.monitors {
            if let Flow::Stop(reason) = monitor.on_event(event) {
                if matches!(flow, Flow::Continue) {
                    flow = Flow::Stop(reason);
                }
            }
        }
        flow
    }
}

/// A cheap, shareable cancellation flag.
///
/// Clone the token freely — all clones share one `Arc<AtomicBool>`.  Any
/// thread may call [`cancel`](Self::cancel); every solve session (or engine
/// batch) watching the token stops at its next iteration boundary with
/// [`StopReason::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the token.  Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// The residual-stagnation rule of a [`StopPolicy`].
#[derive(Clone, Copy, Debug, PartialEq)]
struct StagnationRule {
    /// Consecutive iterations without sufficient improvement before stopping.
    window: usize,
    /// Relative improvement over the best `rr` so far that counts as
    /// progress (e.g. `0.01` = the residual must drop by ≥ 1 %).
    min_rel_improvement: f64,
}

/// Declarative, composable stop rules for a solve session.
///
/// A `StopPolicy` is a cheap value (clone it into every
/// [`JobSpec`](../../mffv_engine/struct.JobSpec.html) of a sweep); arming it
/// with [`session`](Self::session) produces the stateful [`PolicySession`]
/// monitor that one solve consumes.  Rules compose — all configured rules are
/// checked at every iteration boundary, in this precedence order:
///
/// 1. cancellation ([`StopReason::Cancelled`])
/// 2. wall-clock deadline ([`StopReason::DeadlineExpired`])
/// 3. iteration budget ([`StopReason::IterationBudget`])
/// 4. divergence ([`StopReason::Diverged`])
/// 5. stagnation ([`StopReason::Stagnated`])
///
/// ```
/// use mffv_solver::monitor::{CancelToken, StopPolicy};
/// use std::time::Duration;
///
/// let token = CancelToken::new();
/// let policy = StopPolicy::new()
///     .iteration_budget(500)
///     .deadline(Duration::from_secs(2))
///     .stagnation(25, 1e-3)
///     .divergence(1e6)
///     .cancel_token(token.clone());
/// assert!(!policy.is_empty());
/// ```
#[derive(Clone, Debug, Default)]
pub struct StopPolicy {
    iteration_budget: Option<usize>,
    deadline: Option<Duration>,
    stagnation: Option<StagnationRule>,
    divergence_factor: Option<f64>,
    cancel: Vec<CancelToken>,
}

impl StopPolicy {
    /// A policy with no rules (never stops anything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Stop after `budget` iterations with [`StopReason::IterationBudget`].
    ///
    /// Unlike the solver's own `k_max` (which ends the solve as "ran to
    /// completion without converging"), spending the policy budget is
    /// reported as an explicit stop.
    pub fn iteration_budget(mut self, budget: usize) -> Self {
        self.iteration_budget = Some(budget);
        self
    }

    /// Stop when `deadline` of wall-clock time has elapsed since the
    /// session's `Started` event, with [`StopReason::DeadlineExpired`].
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Stop with [`StopReason::Stagnated`] after `window` consecutive
    /// iterations in which `rr` failed to drop at least
    /// `min_rel_improvement` (relative) below the best value seen so far.
    pub fn stagnation(mut self, window: usize, min_rel_improvement: f64) -> Self {
        self.stagnation = Some(StagnationRule {
            window: window.max(1),
            min_rel_improvement: min_rel_improvement.clamp(0.0, 1.0),
        });
        self
    }

    /// Stop with [`StopReason::Diverged`] when `rr` exceeds `factor` times
    /// the best `rr` seen so far (blow-up detection).
    pub fn divergence(mut self, factor: f64) -> Self {
        self.divergence_factor = Some(factor.max(1.0));
        self
    }

    /// Watch `token`; stop with [`StopReason::Cancelled`] once it trips.
    /// May be called repeatedly — all registered tokens are watched.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel.push(token);
        self
    }

    /// Whether no rule is configured (a session of an empty policy never
    /// stops a solve, and callers may skip monitoring entirely).
    pub fn is_empty(&self) -> bool {
        self.iteration_budget.is_none()
            && self.deadline.is_none()
            && self.stagnation.is_none()
            && self.divergence_factor.is_none()
            && self.cancel.is_empty()
    }

    /// Whether any watched [`CancelToken`] has tripped.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.iter().any(CancelToken::is_cancelled)
    }

    /// The policy with its deadline reduced by `elapsed` (floored at zero —
    /// an exhausted deadline stops the very next session at its `Started`
    /// event).  Multi-solve drivers (transient time stepping, batch loops)
    /// use this to keep **one** wall-clock budget across the per-solve
    /// sessions they arm, instead of re-arming the full deadline each time.
    pub fn consume_deadline(&self, elapsed: Duration) -> StopPolicy {
        let mut policy = self.clone();
        if let Some(deadline) = policy.deadline {
            policy.deadline = Some(deadline.saturating_sub(elapsed));
        }
        policy
    }

    /// Arm the policy for one solve: the returned [`PolicySession`] is the
    /// [`SolveMonitor`] to pass to `solve_monitored`.  The deadline clock
    /// starts at the session's `Started` event.
    pub fn session(&self) -> PolicySession {
        PolicySession {
            policy: self.clone(),
            started_at: None,
            best_rr: f64::INFINITY,
            stale_iterations: 0,
        }
    }
}

/// One armed [`StopPolicy`]: the per-solve monitor state (deadline clock,
/// best residual, stagnation counter).  Build with [`StopPolicy::session`].
#[derive(Clone, Debug)]
pub struct PolicySession {
    policy: StopPolicy,
    started_at: Option<Instant>,
    best_rr: f64,
    stale_iterations: usize,
}

impl PolicySession {
    /// Evaluate the rules that do not depend on an iteration having
    /// happened (cancellation, deadline).
    fn ambient_stop(&self) -> Option<StopReason> {
        if self.policy.is_cancelled() {
            return Some(StopReason::Cancelled);
        }
        if let (Some(deadline), Some(started)) = (self.policy.deadline, self.started_at) {
            if started.elapsed() >= deadline {
                return Some(StopReason::DeadlineExpired);
            }
        }
        None
    }
}

impl SolveMonitor for PolicySession {
    fn on_event(&mut self, event: &SolveEvent) -> Flow {
        match *event {
            SolveEvent::Started { initial_rr } => {
                // Blessed wall-clock home (deadline enforcement lives here);
                // see clippy.toml and AUDIT.md rule 5.
                #[allow(clippy::disallowed_methods)]
                {
                    self.started_at = Some(Instant::now());
                }
                self.best_rr = initial_rr;
                self.stale_iterations = 0;
                match self.ambient_stop() {
                    Some(reason) => Flow::Stop(reason),
                    // A zero budget means "no iterations at all" — it can
                    // only fire here, before the first iteration runs.
                    None if self.policy.iteration_budget == Some(0) => {
                        Flow::Stop(StopReason::IterationBudget)
                    }
                    None => Flow::Continue,
                }
            }
            SolveEvent::Iteration { k, rr } => {
                if let Some(reason) = self.ambient_stop() {
                    return Flow::Stop(reason);
                }
                if let Some(budget) = self.policy.iteration_budget {
                    if k >= budget {
                        return Flow::Stop(StopReason::IterationBudget);
                    }
                }
                if let Some(factor) = self.policy.divergence_factor {
                    if rr > self.best_rr * factor || !rr.is_finite() {
                        return Flow::Stop(StopReason::Diverged);
                    }
                }
                if let Some(rule) = self.policy.stagnation {
                    if rr <= self.best_rr * (1.0 - rule.min_rel_improvement) {
                        self.best_rr = rr;
                        self.stale_iterations = 0;
                    } else {
                        self.stale_iterations += 1;
                        if self.stale_iterations >= rule.window {
                            return Flow::Stop(StopReason::Stagnated);
                        }
                    }
                } else {
                    self.best_rr = self.best_rr.min(rr);
                }
                Flow::Continue
            }
            SolveEvent::Converged { .. } | SolveEvent::Stopped(_) => Flow::Continue,
        }
    }
}

/// Replay a finished convergence history to a monitor as an event stream —
/// the default [`solve_monitored`](crate::backend::SolveBackend::solve_monitored)
/// path for backends that have not (yet) threaded live events through their
/// inner loop.  Observation works (the stream bitwise-matches the history);
/// control does not (the solve already finished), so returned [`Flow`]s are
/// ignored.
pub fn replay_history(
    history: &crate::convergence::ConvergenceHistory,
    stopped: Option<StopReason>,
    monitor: &mut dyn SolveMonitor,
) {
    let mut entries = history.residual_norms_squared.iter().copied();
    if let Some(initial_rr) = entries.next() {
        monitor.on_event(&SolveEvent::Started { initial_rr });
    }
    let mut last_rr = history.initial_rr();
    for (i, rr) in entries.enumerate() {
        monitor.on_event(&SolveEvent::Iteration { k: i + 1, rr });
        last_rr = rr;
    }
    if let Some(reason) = stopped {
        monitor.on_event(&SolveEvent::Stopped(reason));
    } else if history.converged {
        monitor.on_event(&SolveEvent::Converged {
            iterations: history.iterations,
            rr: last_rr,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::ConvergenceHistory;

    fn iteration(k: usize, rr: f64) -> SolveEvent {
        SolveEvent::Iteration { k, rr }
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled() && !clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled() && clone.is_cancelled());
    }

    #[test]
    fn empty_policy_never_stops() {
        let policy = StopPolicy::new();
        assert!(policy.is_empty());
        let mut session = policy.session();
        assert_eq!(
            session.on_event(&SolveEvent::Started { initial_rr: 1.0 }),
            Flow::Continue
        );
        for k in 1..1000 {
            assert_eq!(session.on_event(&iteration(k, 1.0)), Flow::Continue);
        }
    }

    #[test]
    fn iteration_budget_fires_at_the_boundary() {
        let mut session = StopPolicy::new().iteration_budget(3).session();
        session.on_event(&SolveEvent::Started { initial_rr: 1.0 });
        assert_eq!(session.on_event(&iteration(1, 0.5)), Flow::Continue);
        assert_eq!(session.on_event(&iteration(2, 0.4)), Flow::Continue);
        assert_eq!(
            session.on_event(&iteration(3, 0.3)),
            Flow::Stop(StopReason::IterationBudget)
        );
    }

    #[test]
    fn zero_iteration_budget_stops_before_the_first_iteration() {
        let mut session = StopPolicy::new().iteration_budget(0).session();
        assert_eq!(
            session.on_event(&SolveEvent::Started { initial_rr: 1.0 }),
            Flow::Stop(StopReason::IterationBudget)
        );
    }

    #[test]
    fn cancellation_beats_every_other_rule() {
        let token = CancelToken::new();
        let mut session = StopPolicy::new()
            .iteration_budget(1)
            .cancel_token(token.clone())
            .session();
        token.cancel();
        assert_eq!(
            session.on_event(&SolveEvent::Started { initial_rr: 1.0 }),
            Flow::Stop(StopReason::Cancelled)
        );
    }

    #[test]
    fn zero_deadline_expires_at_start() {
        let mut session = StopPolicy::new().deadline(Duration::ZERO).session();
        assert_eq!(
            session.on_event(&SolveEvent::Started { initial_rr: 1.0 }),
            Flow::Stop(StopReason::DeadlineExpired)
        );
    }

    #[test]
    fn stagnation_fires_after_the_window() {
        let mut session = StopPolicy::new().stagnation(3, 0.1).session();
        session.on_event(&SolveEvent::Started { initial_rr: 100.0 });
        assert_eq!(session.on_event(&iteration(1, 50.0)), Flow::Continue); // improves
        assert_eq!(session.on_event(&iteration(2, 49.0)), Flow::Continue); // stale 1
        assert_eq!(session.on_event(&iteration(3, 48.0)), Flow::Continue); // stale 2
        assert_eq!(
            session.on_event(&iteration(4, 47.0)),
            Flow::Stop(StopReason::Stagnated)
        );
    }

    #[test]
    fn improvement_resets_the_stagnation_window() {
        let mut session = StopPolicy::new().stagnation(2, 0.1).session();
        session.on_event(&SolveEvent::Started { initial_rr: 100.0 });
        assert_eq!(session.on_event(&iteration(1, 99.0)), Flow::Continue); // stale 1
        assert_eq!(session.on_event(&iteration(2, 10.0)), Flow::Continue); // resets
        assert_eq!(session.on_event(&iteration(3, 9.9)), Flow::Continue); // stale 1
        assert_eq!(
            session.on_event(&iteration(4, 9.8)),
            Flow::Stop(StopReason::Stagnated)
        );
    }

    #[test]
    fn divergence_detects_blow_up_and_non_finite_residuals() {
        let mut session = StopPolicy::new().divergence(10.0).session();
        session.on_event(&SolveEvent::Started { initial_rr: 1.0 });
        assert_eq!(session.on_event(&iteration(1, 5.0)), Flow::Continue);
        assert_eq!(
            session.on_event(&iteration(2, 11.0)),
            Flow::Stop(StopReason::Diverged)
        );
        let mut nan_session = StopPolicy::new().divergence(1e12).session();
        nan_session.on_event(&SolveEvent::Started { initial_rr: 1.0 });
        assert_eq!(
            nan_session.on_event(&iteration(1, f64::NAN)),
            Flow::Stop(StopReason::Diverged)
        );
    }

    #[test]
    fn fanout_gives_stop_precedence_to_earlier_monitors() {
        let seen = std::cell::Cell::new(0usize);
        let mut stop_budget = monitor_fn(|_| Flow::Stop(StopReason::IterationBudget));
        let mut stop_monitor = monitor_fn(|_| Flow::Stop(StopReason::MonitorRequest));
        let mut counter = monitor_fn(|_| {
            seen.set(seen.get() + 1);
            Flow::Continue
        });
        let mut fanout = MonitorFanout::new()
            .push(&mut stop_budget)
            .push(&mut stop_monitor)
            .push(&mut counter);
        assert_eq!(
            fanout.on_event(&iteration(1, 1.0)),
            Flow::Stop(StopReason::IterationBudget)
        );
        assert_eq!(seen.get(), 1, "later monitors still observe the event");
    }

    #[test]
    fn replayed_history_matches_the_recorded_trajectory() {
        let mut history = ConvergenceHistory::starting_from(8.0);
        history.record(4.0);
        history.record(1.0);
        history.converged = true;
        let mut recorder = RecordingMonitor::new();
        replay_history(&history, None, &mut recorder);
        assert_eq!(recorder.initial_rr(), Some(8.0));
        assert_eq!(recorder.iteration_rrs(), vec![4.0, 1.0]);
        assert_eq!(
            recorder.terminal(),
            Some(&SolveEvent::Converged {
                iterations: 2,
                rr: 1.0
            })
        );
    }

    #[test]
    fn replayed_stop_emits_the_stop_event() {
        let mut history = ConvergenceHistory::starting_from(8.0);
        history.record(7.0);
        let mut recorder = RecordingMonitor::new();
        replay_history(&history, Some(StopReason::Cancelled), &mut recorder);
        assert_eq!(
            recorder.terminal(),
            Some(&SolveEvent::Stopped(StopReason::Cancelled))
        );
    }

    #[test]
    fn stop_reasons_have_stable_labels() {
        assert_eq!(StopReason::Cancelled.to_string(), "cancelled");
        assert_eq!(StopReason::DeadlineExpired.label(), "deadline expired");
        assert_eq!(
            Flow::Stop(StopReason::Diverged).stop_reason(),
            Some(StopReason::Diverged)
        );
        assert_eq!(Flow::Continue.stop_reason(), None);
    }
}
