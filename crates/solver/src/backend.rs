//! The backend-agnostic solve abstraction behind the `mffv::Simulation` facade.
//!
//! The paper's central experiment runs the *same* matrix-free FV pressure solve
//! on three targets — a host f64 oracle, a GPU-style reference and the simulated
//! dataflow fabric — and compares results (§V-B).  Historically every target had
//! its own entry point, option struct and report type; this module defines the
//! shared contract they all implement instead:
//!
//! * [`SolveConfig`] — the normalized cross-backend settings (tolerance,
//!   iteration cap, host precision), with `None` meaning "use the workload's
//!   own defaults";
//! * [`SolveBackend`] — one object-safe trait every solver implements;
//! * [`SolveReport`] — one report shape: pressure normalized to `f64`,
//!   convergence history, final residual, and an optional [`DeviceSection`]
//!   for backends that model device time;
//! * [`SolveError`] — one error type (backends with richer internal errors,
//!   like the fabric simulator, stringify into it);
//! * [`HostBackend`] — the sequential host oracle, implemented right here.
//!
//! The GPU-style reference and the dataflow solver implement [`SolveBackend`]
//! in their own crates (`mffv-gpu-ref`, `mffv-core`); the umbrella `mffv` crate
//! wires all three into the `Simulation` builder.

use crate::cg::ConjugateGradient;
use crate::context::SolveContextCache;
use crate::convergence::ConvergenceHistory;
use crate::monitor::{replay_history, NullMonitor, SolveMonitor, StopReason};
use crate::newton::{solve_pressure_monitored, solve_pressure_preconditioned, PressureSolution};
use crate::pcg::{JacobiPreconditioner, PreconditionedConjugateGradient};
use crate::trace::TraceMonitor;
use crate::transient::{PlannedStepper, StepOutcome, StepRequest, TransientStepper};
use mffv_fv::residual::residual;
use mffv_fv::{MatrixFreeOperator, MgConfig, MultigridVcycle};
use mffv_mesh::{CellField, Scalar, Workload};
use mffv_telemetry::{Span, Stopwatch};

/// Floating-point precision of a host solve.  The device-style backends are
/// `f32` by construction (the paper's machines compute in single precision);
/// the host oracle can run either way.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Precision {
    /// IEEE single precision (the device precision of the paper).
    F32,
    /// IEEE double precision (the oracle precision of §V-B).
    #[default]
    F64,
}

impl Precision {
    /// Short label used in backend names and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F64 => "f64",
        }
    }
}

/// Which preconditioner a backend's Krylov loop runs under.
///
/// The default is [`PreconditionerKind::None`] — plain CG, the paper's
/// Algorithm 1 — so existing configurations and histories are unchanged.
/// All three backends honour the selection; histories always record the
/// *unpreconditioned* `rᵀr`, so convergence curves stay comparable across
/// kinds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PreconditionerKind {
    /// Plain CG (Algorithm 1 of the paper).
    #[default]
    None,
    /// Diagonal (Jacobi) scaling.
    Jacobi,
    /// The geometric-multigrid V-cycle of [`mffv_fv::mg`]: iteration counts
    /// roughly flat in grid size.
    Mg,
}

impl PreconditionerKind {
    /// Every kind, in declaration order (sweep axes iterate this).
    pub const ALL: [PreconditionerKind; 3] = [
        PreconditionerKind::None,
        PreconditionerKind::Jacobi,
        PreconditionerKind::Mg,
    ];

    /// Short stable label used in spec files, CLI flags and sweep names.
    pub fn label(&self) -> &'static str {
        match self {
            PreconditionerKind::None => "none",
            PreconditionerKind::Jacobi => "jacobi",
            PreconditionerKind::Mg => "mg",
        }
    }

    /// Parse a [`label`](Self::label) back into a kind.
    pub fn parse(s: &str) -> Option<PreconditionerKind> {
        match s {
            "none" => Some(PreconditionerKind::None),
            "jacobi" => Some(PreconditionerKind::Jacobi),
            "mg" => Some(PreconditionerKind::Mg),
            _ => None,
        }
    }
}

/// Cross-backend solve settings.
///
/// `None` fields fall back to the workload's own tolerance / iteration cap, so
/// a default `SolveConfig` reproduces each backend's historical defaults.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SolveConfig {
    /// Convergence tolerance on `rᵀr` (the paper's Algorithm 1, line 8).
    pub tolerance: Option<f64>,
    /// Iteration cap (`k_max`).
    pub max_iterations: Option<usize>,
    /// Host-solve precision; device-style backends always compute in `f32`.
    pub precision: Precision,
    /// Scoped threads for the host backend's planned stencil kernels (`None`
    /// = 1, the sequential path).  Results are bitwise identical for every
    /// thread count; device-style backends model their own parallelism and
    /// ignore this knob.
    pub threads: Option<usize>,
    /// Preconditioner of the Krylov loop (default: none, plain CG).
    pub preconditioner: PreconditionerKind,
}

impl SolveConfig {
    /// The tolerance to use for `workload`.
    pub fn effective_tolerance(&self, workload: &Workload) -> f64 {
        self.tolerance.unwrap_or_else(|| workload.tolerance())
    }

    /// The iteration cap to use for `workload`.
    pub fn effective_max_iterations(&self, workload: &Workload) -> usize {
        self.max_iterations
            .unwrap_or_else(|| workload.max_iterations())
    }

    /// The host apply-thread count (at least 1).
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or(1).max(1)
    }
}

/// Device-side section of a [`SolveReport`], for backends that model a device
/// (modelled seconds plus backend-specific counters).
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSection {
    /// Human-readable device description ("A100", "CS-2 region 16x16", …).
    pub device: String,
    /// Modelled device time of the solve, seconds.
    pub modelled_time_seconds: f64,
    /// Backend-specific named counters (fabric bytes, transfer bytes, FLOPs…).
    pub counters: Vec<(String, f64)>,
}

impl DeviceSection {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<f64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// The unified result every backend produces.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// Name of the backend that produced this report (unique within a run set).
    pub backend: String,
    /// The converged pressure field, normalized to `f64` for comparison across
    /// backends regardless of their native precision.
    pub pressure: CellField<f64>,
    /// Convergence history of the underlying Krylov solve.
    pub history: ConvergenceHistory,
    /// Max-norm of the residual of Eq. (3) at the returned pressure, evaluated
    /// on the host in `f64` — a backend-independent quality check.
    pub final_residual_max: f64,
    /// Wall-clock seconds of the host-side execution (not device time).
    pub host_wall_seconds: f64,
    /// Device-time model and counters, for backends that have one.
    pub device: Option<DeviceSection>,
    /// `Some(reason)` when a [`SolveMonitor`] or stop policy ended the solve
    /// early; the pressure and history then carry the partial state reached
    /// at the stop boundary.  `None` for solves that converged or exhausted
    /// their own iteration cap.
    pub stopped: Option<StopReason>,
}

impl SolveReport {
    /// Iterations performed by the underlying solve.
    pub fn iterations(&self) -> usize {
        self.history.iterations
    }

    /// Whether the solve met its tolerance before the iteration cap.
    pub fn converged(&self) -> bool {
        self.history.converged
    }

    /// Why the solve was stopped early, when it was.
    pub fn stop_reason(&self) -> Option<StopReason> {
        self.stopped
    }

    /// Whether a monitor or stop policy ended the solve early.
    pub fn was_stopped(&self) -> bool {
        self.stopped.is_some()
    }

    /// Treat an early stop as an error: returns the report unchanged when the
    /// solve ran to its natural end, or [`SolveError::Stopped`] otherwise —
    /// the `?`-friendly strict form for callers that cannot use partial
    /// results.
    pub fn require_completed(self) -> Result<SolveReport, SolveError> {
        match self.stopped {
            None => Ok(self),
            Some(reason) => Err(SolveError::stopped(self.backend, reason)),
        }
    }

    /// Modelled device seconds, when the backend models a device.
    pub fn modelled_time(&self) -> Option<f64> {
        self.device.as_ref().map(|d| d.modelled_time_seconds)
    }

    /// Maximum absolute pressure difference against another backend's report.
    pub fn max_abs_diff(&self, other: &SolveReport) -> f64 {
        self.pressure.max_abs_diff(&other.pressure)
    }
}

/// Unified error type of the facade.
///
/// [`SolveError::Backend`] is a genuine failure: backends with structured
/// internal errors (the fabric simulator's `FabricError`) stringify into its
/// `detail`, and the backend name says where the failure came from.
/// [`SolveError::Stopped`] is the strict-caller form of an early stop (see
/// [`SolveReport::require_completed`]): not a failure of the backend, but an
/// error for code paths that need a completed solve.
///
/// Implements [`std::error::Error`], so `?` works against
/// `Box<dyn std::error::Error>`:
///
/// ```
/// use mffv_solver::backend::{HostBackend, SolveBackend, SolveConfig};
/// use mffv_mesh::WorkloadSpec;
///
/// fn main() -> Result<(), Box<dyn std::error::Error>> {
///     let w = WorkloadSpec::quickstart().build();
///     let report = HostBackend::oracle().solve(&w, &SolveConfig::default())?;
///     assert!(report.converged());
///     Ok(())
/// }
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum SolveError {
    /// The backend failed to produce a report.
    Backend {
        /// Name of the failing backend.
        backend: String,
        /// Human-readable failure description.
        detail: String,
    },
    /// The solve was stopped early by a monitor, stop policy or cancellation
    /// — before it could run to its natural end.
    Stopped {
        /// Name of the stopped backend.
        backend: String,
        /// Why the session ended.
        reason: StopReason,
    },
}

impl SolveError {
    /// Build a failure error for `backend`.
    pub fn new(backend: impl Into<String>, detail: impl Into<String>) -> Self {
        SolveError::Backend {
            backend: backend.into(),
            detail: detail.into(),
        }
    }

    /// Build a stopped-session error for `backend`.
    pub fn stopped(backend: impl Into<String>, reason: StopReason) -> Self {
        SolveError::Stopped {
            backend: backend.into(),
            reason,
        }
    }

    /// Name of the backend the error came from.
    pub fn backend_name(&self) -> &str {
        match self {
            SolveError::Backend { backend, .. } | SolveError::Stopped { backend, .. } => backend,
        }
    }

    /// Human-readable description of what went wrong.
    pub fn detail(&self) -> String {
        match self {
            SolveError::Backend { detail, .. } => detail.clone(),
            SolveError::Stopped { reason, .. } => reason.to_string(),
        }
    }

    /// The stop reason, when this error records an early stop rather than a
    /// backend failure.
    pub fn stop_reason(&self) -> Option<StopReason> {
        match self {
            SolveError::Backend { .. } => None,
            SolveError::Stopped { reason, .. } => Some(*reason),
        }
    }

    /// Whether this error records an early stop (cancellation, deadline, …)
    /// rather than a backend failure.
    pub fn is_stopped(&self) -> bool {
        matches!(self, SolveError::Stopped { .. })
    }
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Backend { backend, detail } => {
                write!(f, "backend `{backend}` failed: {detail}")
            }
            SolveError::Stopped { backend, reason } => {
                write!(f, "backend `{backend}` stopped: {reason}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Max-norm of the Eq. (3) residual at `pressure`, evaluated in `f64` with the
/// workload's native `f64` coefficients — the backend-independent quality
/// check every [`SolveReport`] must carry regardless of solve precision.
pub fn final_residual_max_f64(workload: &Workload, pressure: &CellField<f64>) -> f64 {
    residual(pressure, workload.transmissibility(), workload.dirichlet()).max_abs()
}

/// One pressure-solve target: host oracle, GPU-style reference, dataflow
/// fabric, or anything future PRs register.
///
/// The trait is object-safe and stays so: [`solve_monitored`] has a default
/// implementation, so existing backends (and trait objects) keep compiling
/// and working unchanged.
///
/// [`solve_monitored`]: Self::solve_monitored
pub trait SolveBackend {
    /// Unique, stable name ("host-f64", "gpu-ref-A100", "dataflow"…).
    fn name(&self) -> String;

    /// Solve `workload`'s pressure problem under `config`.
    fn solve(&self, workload: &Workload, config: &SolveConfig) -> Result<SolveReport, SolveError>;

    /// Solve `workload` as an observable, cancellable session: `monitor`
    /// receives a [`SolveEvent`](crate::monitor::SolveEvent) at every
    /// iteration boundary — with `rr` payloads bitwise identical to the
    /// report's `ConvergenceHistory` entries — and may stop the solve by
    /// returning [`Flow::Stop`](crate::monitor::Flow::Stop), in which case
    /// the partial report is returned with [`SolveReport::stopped`] set.
    ///
    /// The default implementation runs [`solve`](Self::solve) to completion
    /// and *replays* the finished history as an event stream: observation
    /// works, control does not.  Backends with live inner loops (the three
    /// paper targets all do) override this with real mid-solve event
    /// threading, which is what makes deadlines and cancellation take effect
    /// within one iteration boundary.
    fn solve_monitored(
        &self,
        workload: &Workload,
        config: &SolveConfig,
        monitor: &mut dyn SolveMonitor,
    ) -> Result<SolveReport, SolveError> {
        let report = self.solve(workload, config)?;
        replay_history(&report.history, report.stopped, monitor);
        Ok(report)
    }

    /// Solve as an observable session that additionally records phase
    /// spans under `span` (see [`crate::trace`]).
    ///
    /// On a null (non-recording) span this **is**
    /// [`solve_monitored`](Self::solve_monitored) — no wrapper, no extra
    /// per-iteration work — so callers can leave tracing wired in
    /// permanently.  On a recording span the default implementation wraps
    /// `monitor` in a [`TraceMonitor`], which mirrors the event stream
    /// into a `cg-loop` span with per-chunk `iters` children.  Tracing
    /// never touches solve arithmetic: traced and untraced reports are
    /// bitwise identical (pinned per backend in `tests/telemetry.rs`).
    /// Backends override this to add their own phase spans (the host adds
    /// `build-operator`).
    fn solve_traced(
        &self,
        workload: &Workload,
        config: &SolveConfig,
        monitor: &mut dyn SolveMonitor,
        span: &Span,
    ) -> Result<SolveReport, SolveError> {
        if !span.is_recording() {
            return self.solve_monitored(workload, config, monitor);
        }
        let mut traced = TraceMonitor::new(span, monitor);
        self.solve_monitored(workload, config, &mut traced)
    }

    /// Solve on a warm, worker-owned [`SolveContextCache`]: the
    /// zero-allocation steady-state serving path.
    ///
    /// Engine workers call this with the per-worker cache they keep across
    /// jobs.  Backends with pooled state (the host backend) reuse the cached
    /// operator/preconditioner and scratch arena when the workload key
    /// matches, producing a report **bitwise identical** to
    /// [`solve_traced`](Self::solve_traced); the default implementation just
    /// forwards to `solve_traced`, so device-style backends behave exactly
    /// as before and the cache is inert for them.
    fn solve_pooled(
        &self,
        workload: &Workload,
        config: &SolveConfig,
        monitor: &mut dyn SolveMonitor,
        span: &Span,
        cache: &mut SolveContextCache,
    ) -> Result<SolveReport, SolveError> {
        let _ = cache;
        self.solve_traced(workload, config, monitor, span)
    }

    /// The arithmetic precision this backend steps transient systems at.
    ///
    /// Defaults to `f64`; device-style backends (the paper's machines
    /// compute in single precision) override it to [`Precision::F32`], and
    /// the host backend reports its configured precision.
    fn step_precision(&self) -> Precision {
        Precision::F64
    }

    /// Advance one backward-Euler step of a transient scenario (see
    /// [`crate::transient`]): solve `(A + D + W) δ = r(pⁿ) + q(pⁿ)` and
    /// return `p^{n+1}`, with `monitor` threaded through the step's inner
    /// CG loop exactly like [`solve_monitored`](Self::solve_monitored).
    ///
    /// The default implementation runs the shared shifted-CG step on the
    /// host's planned stencil kernels at [`step_precision`](Self::step_precision)
    /// — every backend therefore supports transient simulation out of the
    /// box, in its native arithmetic, with the same bitwise thread-count
    /// independence as steady solves.  Backends with genuinely different
    /// stepping machinery can override it.
    fn step(
        &self,
        request: &StepRequest<'_>,
        config: &SolveConfig,
        monitor: &mut dyn SolveMonitor,
    ) -> Result<StepOutcome, SolveError> {
        self.transient_session(request.workload, config)?
            .step(request, config, monitor)
    }

    /// Arm a stepping session for a whole transient run: the returned
    /// [`TransientStepper`] may cache per-run kernel state (the default one
    /// builds the planned operator once and swaps only the `Δt`-dependent
    /// diagonal between steps), producing outcomes bitwise identical to
    /// repeated [`step`](Self::step) calls.
    /// [`run_transient`](crate::transient::run_transient) drives the
    /// schedule through one session.
    fn transient_session(
        &self,
        workload: &Workload,
        config: &SolveConfig,
    ) -> Result<Box<dyn TransientStepper>, SolveError> {
        Ok(match self.step_precision() {
            Precision::F64 => Box::new(PlannedStepper::<f64>::new(workload, config)),
            Precision::F32 => Box::new(PlannedStepper::<f32>::new(workload, config)),
        })
    }
}

/// The sequential host oracle (`solve_pressure` behind the trait): matrix-free
/// CG at a selectable precision, no device model.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostBackend {
    /// Arithmetic precision of the solve.
    pub precision: Precision,
}

impl HostBackend {
    /// The §V-B oracle configuration: `f64`.
    pub fn oracle() -> Self {
        Self {
            precision: Precision::F64,
        }
    }

    /// A host solve at the paper's device precision, `f32`.
    pub fn f32() -> Self {
        Self {
            precision: Precision::F32,
        }
    }
}

impl SolveBackend for HostBackend {
    fn name(&self) -> String {
        format!("host-{}", self.precision.label())
    }

    fn step_precision(&self) -> Precision {
        self.precision
    }

    fn solve(&self, workload: &Workload, config: &SolveConfig) -> Result<SolveReport, SolveError> {
        self.solve_monitored(workload, config, &mut NullMonitor)
    }

    fn solve_monitored(
        &self,
        workload: &Workload,
        config: &SolveConfig,
        monitor: &mut dyn SolveMonitor,
    ) -> Result<SolveReport, SolveError> {
        self.solve_traced(workload, config, monitor, &Span::null())
    }

    fn solve_traced(
        &self,
        workload: &Workload,
        config: &SolveConfig,
        monitor: &mut dyn SolveMonitor,
        span: &Span,
    ) -> Result<SolveReport, SolveError> {
        let start = Stopwatch::start();
        let (pressure, history, final_residual_max, stopped) = match self.precision {
            Precision::F64 => {
                let solution = host_solve_pressure::<f64>(workload, config, monitor, span);
                (
                    solution.pressure,
                    solution.history,
                    solution.final_residual_max,
                    solution.stopped,
                )
            }
            Precision::F32 => {
                let solution = host_solve_pressure::<f32>(workload, config, monitor, span);
                let pressure: CellField<f64> = solution.pressure.convert();
                // Re-evaluate the residual in f64 so the field keeps its
                // backend-independent contract (the f32 solve evaluated it in
                // device precision).
                let final_residual_max = final_residual_max_f64(workload, &pressure);
                (
                    pressure,
                    solution.history,
                    final_residual_max,
                    solution.stopped,
                )
            }
        };
        Ok(SolveReport {
            backend: self.name(),
            pressure,
            history,
            final_residual_max,
            host_wall_seconds: start.elapsed().as_secs_f64(),
            device: None,
            stopped,
        })
    }

    fn solve_pooled(
        &self,
        workload: &Workload,
        config: &SolveConfig,
        monitor: &mut dyn SolveMonitor,
        span: &Span,
        cache: &mut SolveContextCache,
    ) -> Result<SolveReport, SolveError> {
        let start = Stopwatch::start();
        let (pressure, history, final_residual_max, stopped) = match self.precision {
            Precision::F64 => {
                let ctx = &mut cache.f64_context;
                let stopped = ctx.solve(workload, config, monitor, span);
                (
                    ctx.pressure().clone(),
                    ctx.history().clone(),
                    ctx.final_residual_max(),
                    stopped,
                )
            }
            Precision::F32 => {
                let ctx = &mut cache.f32_context;
                let stopped = ctx.solve(workload, config, monitor, span);
                let pressure: CellField<f64> = ctx.pressure().convert();
                // Same contract as the un-pooled f32 path: the reported
                // residual is re-evaluated on the host in f64.
                let final_residual_max = final_residual_max_f64(workload, &pressure);
                (pressure, ctx.history().clone(), final_residual_max, stopped)
            }
        };
        Ok(SolveReport {
            backend: self.name(),
            pressure,
            history,
            final_residual_max,
            host_wall_seconds: start.elapsed().as_secs_f64(),
            device: None,
            stopped,
        })
    }
}

/// The host pressure solve at one precision: build the planned operator, then
/// run the Krylov loop selected by [`SolveConfig::preconditioner`].  Every
/// path threads the monitor (wrapped in a [`TraceMonitor`] when `span`
/// records) through the live inner loop, so cancellation and deadlines keep
/// working identically under any preconditioner.
fn host_solve_pressure<T: Scalar>(
    workload: &Workload,
    config: &SolveConfig,
    monitor: &mut dyn SolveMonitor,
    span: &Span,
) -> PressureSolution<T> {
    let tolerance = config.effective_tolerance(workload);
    let max_iterations = config.effective_max_iterations(workload);
    let threads = config.effective_threads();
    let build = span.child("build-operator");
    let operator = MatrixFreeOperator::<T>::from_workload(workload).with_threads(threads);
    build.finish();
    match config.preconditioner {
        PreconditionerKind::None => {
            let solver = ConjugateGradient::with_tolerance(tolerance, max_iterations);
            if span.is_recording() {
                let mut traced = TraceMonitor::new(span, monitor);
                solve_pressure_monitored::<T, _>(workload, &operator, &solver, &mut traced)
            } else {
                solve_pressure_monitored::<T, _>(workload, &operator, &solver, monitor)
            }
        }
        PreconditionerKind::Jacobi => {
            let pc = JacobiPreconditioner::from_coefficients(
                operator.coefficients(),
                workload.dirichlet(),
            );
            let solver = PreconditionedConjugateGradient::with_tolerance(tolerance, max_iterations);
            if span.is_recording() {
                let mut traced = TraceMonitor::new(span, monitor);
                solve_pressure_preconditioned::<T, _, _>(
                    workload,
                    &operator,
                    &pc,
                    &solver,
                    &mut traced,
                    span,
                )
            } else {
                solve_pressure_preconditioned::<T, _, _>(
                    workload, &operator, &pc, &solver, monitor, span,
                )
            }
        }
        PreconditionerKind::Mg => {
            let mg_build = span.child("mg.build");
            let pc = MultigridVcycle::<T>::from_workload(workload, threads, MgConfig::default());
            mg_build.finish();
            let solver = PreconditionedConjugateGradient::with_tolerance(tolerance, max_iterations);
            if span.is_recording() {
                let mut traced = TraceMonitor::new(span, monitor);
                solve_pressure_preconditioned::<T, _, _>(
                    workload,
                    &operator,
                    &pc,
                    &solver,
                    &mut traced,
                    span,
                )
            } else {
                solve_pressure_preconditioned::<T, _, _>(
                    workload, &operator, &pc, &solver, monitor, span,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffv_mesh::workload::WorkloadSpec;

    #[test]
    fn default_config_uses_workload_settings() {
        let w = WorkloadSpec::quickstart().build();
        let c = SolveConfig::default();
        assert_eq!(c.effective_tolerance(&w), w.tolerance());
        assert_eq!(c.effective_max_iterations(&w), w.max_iterations());
        let tight = SolveConfig {
            tolerance: Some(1e-14),
            max_iterations: Some(7),
            ..c
        };
        assert_eq!(tight.effective_tolerance(&w), 1e-14);
        assert_eq!(tight.effective_max_iterations(&w), 7);
    }

    #[test]
    fn host_backend_solves_and_reports() {
        let w = WorkloadSpec::quickstart().build();
        let report = HostBackend::oracle()
            .solve(&w, &SolveConfig::default())
            .unwrap();
        assert_eq!(report.backend, "host-f64");
        assert!(report.converged());
        assert!(report.iterations() > 0);
        assert!(report.final_residual_max < 1e-6);
        assert!(report.device.is_none());
        assert!(report.modelled_time().is_none());
    }

    #[test]
    fn host_precisions_agree_to_single_precision() {
        let w = WorkloadSpec::quickstart().build();
        let config = SolveConfig {
            tolerance: Some(1e-10),
            ..SolveConfig::default()
        };
        let f64_report = HostBackend::oracle().solve(&w, &config).unwrap();
        let f32_report = HostBackend::f32().solve(&w, &config).unwrap();
        assert_eq!(f32_report.backend, "host-f32");
        assert!(f64_report.max_abs_diff(&f32_report) < 1e-3);
    }

    #[test]
    fn device_section_counter_lookup() {
        let section = DeviceSection {
            device: "test".into(),
            modelled_time_seconds: 1.0,
            counters: vec![("flops".into(), 42.0)],
        };
        assert_eq!(section.counter("flops"), Some(42.0));
        assert_eq!(section.counter("missing"), None);
    }

    #[test]
    fn solve_error_displays_backend_and_detail() {
        let e = SolveError::new("dataflow", "out of local memory");
        let msg = e.to_string();
        assert!(msg.contains("dataflow") && msg.contains("out of local memory"));
        assert_eq!(e.backend_name(), "dataflow");
        assert!(!e.is_stopped());
        let s = SolveError::stopped("host-f64", StopReason::DeadlineExpired);
        assert_eq!(s.stop_reason(), Some(StopReason::DeadlineExpired));
        assert!(s.to_string().contains("stopped: deadline expired"), "{s}");
        // Both variants box into std::error::Error.
        let _: Box<dyn std::error::Error> = Box::new(s);
    }

    /// A third-party backend that only implements the required methods: the
    /// default `solve_monitored` must replay the finished history so
    /// observation keeps working without live threading.
    struct ReplayOnlyBackend;

    impl SolveBackend for ReplayOnlyBackend {
        fn name(&self) -> String {
            "replay-only".into()
        }
        fn solve(
            &self,
            workload: &Workload,
            config: &SolveConfig,
        ) -> Result<SolveReport, SolveError> {
            HostBackend::oracle()
                .solve(workload, config)
                .map(|mut report| {
                    report.backend = self.name();
                    report
                })
        }
    }

    #[test]
    fn default_solve_monitored_replays_the_history() {
        use crate::monitor::RecordingMonitor;
        let w = WorkloadSpec::quickstart().build();
        let mut recorder = RecordingMonitor::new();
        let report = ReplayOnlyBackend
            .solve_monitored(&w, &SolveConfig::default(), &mut recorder)
            .unwrap();
        assert_eq!(report.backend, "replay-only");
        let streamed: Vec<u64> = recorder
            .iteration_rrs()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let recorded: Vec<u64> = report.history.residual_norms_squared[1..]
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(streamed, recorded);
        assert_eq!(
            recorder.initial_rr().unwrap().to_bits(),
            report.history.initial_rr().to_bits()
        );
    }

    #[test]
    fn host_backend_reports_a_deadline_stop_with_partial_state() {
        use crate::monitor::StopPolicy;
        let w = WorkloadSpec::quickstart().build();
        let config = SolveConfig {
            tolerance: Some(1e-14),
            ..SolveConfig::default()
        };
        let mut session = StopPolicy::new()
            .deadline(std::time::Duration::ZERO)
            .session();
        let report = HostBackend::oracle()
            .solve_monitored(&w, &config, &mut session)
            .unwrap();
        assert_eq!(report.stopped, Some(StopReason::DeadlineExpired));
        assert!(!report.converged());
        assert_eq!(report.iterations(), 0);
        assert!(report.history.initial_rr() > 0.0);
        let err = report.require_completed().unwrap_err();
        assert_eq!(err.stop_reason(), Some(StopReason::DeadlineExpired));
    }
}
