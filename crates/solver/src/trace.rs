//! Span-emitting monitor adapter: the bridge between `SolveMonitor` event
//! streams and `mffv_telemetry` phase trees.
//!
//! [`TraceMonitor`] wraps any inner monitor and opens/closes spans at the
//! event boundaries the backends already emit — a `cg-loop` span at
//! [`SolveEvent::Started`], then one `iters` span per
//! [`TRACE_CHUNK_ITERS`]-iteration chunk.  It does **no** floating-point
//! work on solve values and never alters the inner monitor's
//! [`Flow`] decision, so traced and untraced solves are bitwise identical
//! (pinned per backend in `tests/telemetry.rs`).  Because iteration counts
//! are themselves bitwise deterministic, the chunk structure — and with it
//! the whole span-tree *shape* — is identical across thread counts.
//!
//! A CG loop can end without a terminal event (`k_max` exhaustion or a
//! `d·Ad` breakdown `break`), so open spans are closed by `Drop` rather
//! than relying on [`SolveEvent::Converged`]/[`SolveEvent::Stopped`].

use crate::monitor::{Flow, SolveEvent, SolveMonitor};
pub use mffv_telemetry::Span;

/// Iterations folded into one `iters` span.  Small enough to see phase
/// structure inside a solve, large enough that span overhead stays far
/// below one iteration's work.
pub const TRACE_CHUNK_ITERS: usize = 32;

/// Wraps an inner monitor, mirroring its event stream into spans under
/// `parent`.  Construct one only when the parent span is recording — on a
/// null parent every span operation is a no-op but the wrapper itself
/// still costs one virtual call per event.
pub struct TraceMonitor<'a> {
    inner: &'a mut dyn SolveMonitor,
    parent: &'a Span,
    chunk_len: usize,
    // Declared before `loop_span` so chunks close first on drop.
    chunk_span: Option<Span>,
    loop_span: Option<Span>,
    in_chunk: usize,
}

impl<'a> TraceMonitor<'a> {
    /// Wrap `inner`, recording spans under `parent` with the default
    /// chunk length.
    pub fn new(parent: &'a Span, inner: &'a mut dyn SolveMonitor) -> TraceMonitor<'a> {
        TraceMonitor {
            inner,
            parent,
            chunk_len: TRACE_CHUNK_ITERS,
            chunk_span: None,
            loop_span: None,
            in_chunk: 0,
        }
    }

    /// Override the per-chunk iteration count (`0` behaves as `1`).
    pub fn with_chunk(mut self, iterations: usize) -> TraceMonitor<'a> {
        self.chunk_len = iterations.max(1);
        self
    }

    fn ensure_loop_open(&mut self) {
        if self.loop_span.is_none() {
            self.loop_span = Some(self.parent.child("cg-loop"));
        }
        if self.chunk_span.is_none() {
            self.in_chunk = 0;
            self.chunk_span = self
                .loop_span
                .as_ref()
                .map(|loop_span| loop_span.child("iters"));
        }
    }

    fn close_all(&mut self) {
        self.chunk_span = None;
        self.loop_span = None;
        self.in_chunk = 0;
    }
}

impl SolveMonitor for TraceMonitor<'_> {
    fn on_event(&mut self, event: &SolveEvent) -> Flow {
        match event {
            SolveEvent::Started { .. } => self.ensure_loop_open(),
            SolveEvent::Iteration { .. } => {
                // Robust to backends that skip `Started`: open lazily.
                self.ensure_loop_open();
                self.in_chunk += 1;
                if self.in_chunk >= self.chunk_len {
                    self.in_chunk = 0;
                    self.chunk_span = self
                        .loop_span
                        .as_ref()
                        .map(|loop_span| loop_span.child("iters"));
                }
            }
            SolveEvent::Converged { .. } | SolveEvent::Stopped(_) => self.close_all(),
        }
        self.inner.on_event(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{NullMonitor, StopReason};
    use mffv_telemetry::Tracer;

    fn pump(monitor: &mut TraceMonitor<'_>, iterations: usize, terminal: Option<SolveEvent>) {
        assert_eq!(
            monitor.on_event(&SolveEvent::Started { initial_rr: 1.0 }),
            Flow::Continue
        );
        for k in 1..=iterations {
            monitor.on_event(&SolveEvent::Iteration { k, rr: 0.5 });
        }
        if let Some(event) = terminal {
            monitor.on_event(&event);
        }
    }

    #[test]
    fn chunks_split_every_n_iterations() {
        let tracer = Tracer::new();
        {
            let root = tracer.span("solve");
            let mut inner = NullMonitor;
            let mut monitor = TraceMonitor::new(&root, &mut inner).with_chunk(4);
            pump(
                &mut monitor,
                10,
                Some(SolveEvent::Converged {
                    iterations: 10,
                    rr: 1e-12,
                }),
            );
        }
        let tree = tracer.phase_tree();
        let cg = tree.find("solve").unwrap().find("cg-loop").unwrap();
        assert_eq!(cg.count, 1);
        // 10 iterations at chunk 4: spans close after 4, 8, and terminal.
        assert_eq!(cg.find("iters").unwrap().count, 3);
    }

    #[test]
    fn drop_closes_spans_when_no_terminal_event_arrives() {
        let tracer = Tracer::new();
        {
            let root = tracer.span("solve");
            let mut inner = NullMonitor;
            let mut monitor = TraceMonitor::new(&root, &mut inner).with_chunk(8);
            // k_max-exhaustion style exit: the loop just stops emitting.
            pump(&mut monitor, 3, None);
        }
        let tree = tracer.phase_tree();
        let cg = tree.find("solve").unwrap().find("cg-loop").unwrap();
        assert_eq!(cg.find("iters").unwrap().count, 1);
    }

    #[test]
    fn stopped_solves_close_cleanly_and_flow_passes_through() {
        let tracer = Tracer::new();
        let mut stops = crate::monitor::monitor_fn(|event| match event {
            SolveEvent::Iteration { k, .. } if *k >= 2 => Flow::Stop(StopReason::Cancelled),
            _ => Flow::Continue,
        });
        {
            let root = tracer.span("solve");
            let mut monitor = TraceMonitor::new(&root, &mut stops);
            assert_eq!(
                monitor.on_event(&SolveEvent::Started { initial_rr: 1.0 }),
                Flow::Continue
            );
            assert_eq!(
                monitor.on_event(&SolveEvent::Iteration { k: 1, rr: 0.5 }),
                Flow::Continue
            );
            assert_eq!(
                monitor.on_event(&SolveEvent::Iteration { k: 2, rr: 0.4 }),
                Flow::Stop(StopReason::Cancelled)
            );
            monitor.on_event(&SolveEvent::Stopped(StopReason::Cancelled));
        }
        assert!(tracer
            .phase_tree()
            .find("solve")
            .and_then(|s| s.find("cg-loop"))
            .is_some());
    }

    #[test]
    fn null_parent_records_nothing() {
        let root = Span::null();
        let mut inner = NullMonitor;
        let mut monitor = TraceMonitor::new(&root, &mut inner);
        pump(
            &mut monitor,
            5,
            Some(SolveEvent::Converged {
                iterations: 5,
                rr: 1e-12,
            }),
        );
        assert!(!root.is_recording());
    }
}
