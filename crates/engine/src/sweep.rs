//! Scenario sweeps: fan one base [`WorkloadSpec`] across axes of variation.
//!
//! A [`SweepBuilder`] is the comparison-study generator the batch engine
//! feeds on: from a single base spec it produces the cartesian product of
//! grid sizes × vertical-anisotropy ratios × tolerances × permeability seeds
//! × backends as a flat, deterministically ordered `Vec<JobSpec>`.  Axes you
//! do not set stay at the base spec's own value, so
//! `SweepBuilder::new(spec).jobs()` is exactly one host job.
//!
//! Job names encode the varied axes (`-az2`, `-tol1e-8`, `-seed3`, and the
//! grid extents), so every row of the resulting
//! [`BatchReport`](crate::BatchReport) is self-describing.

use crate::backend::Backend;
use crate::job::JobSpec;
use mffv_mesh::{Dims, WorkloadSpec};

/// Builder for a cartesian scenario sweep over one base workload.
#[derive(Clone, Debug)]
pub struct SweepBuilder {
    base: WorkloadSpec,
    grids: Vec<Dims>,
    anisotropy: Vec<f64>,
    tolerances: Vec<f64>,
    seeds: Vec<Option<u64>>,
    backends: Vec<Backend>,
    max_iterations: Option<usize>,
}

impl SweepBuilder {
    /// A sweep around `base`, with every axis at the base value: one grid
    /// (the base dims), isotropic spacing, the base tolerance, the base
    /// spec's own permeability seed, and
    /// the host backend.
    pub fn new(base: WorkloadSpec) -> Self {
        let dims = base.dims;
        let tolerance = base.tolerance;
        Self {
            base,
            grids: vec![dims],
            anisotropy: vec![1.0],
            tolerances: vec![tolerance],
            seeds: vec![None],
            backends: vec![Backend::host()],
            max_iterations: None,
        }
    }

    /// Sweep over explicit grid extents.
    pub fn grids(mut self, grids: impl IntoIterator<Item = Dims>) -> Self {
        self.grids = grids.into_iter().collect();
        assert!(!self.grids.is_empty(), "at least one grid required");
        self
    }

    /// Sweep over down-scalings of the base grid: each factor divides every
    /// extent (floored at 2 cells), like [`WorkloadSpec::scaled`].
    pub fn scales(self, factors: impl IntoIterator<Item = usize>) -> Self {
        let base = self.base.dims;
        let scale = |n: usize, f: usize| (n / f.max(1)).max(2);
        let grids: Vec<Dims> = factors
            .into_iter()
            .map(|f| Dims::new(scale(base.nx, f), scale(base.ny, f), scale(base.nz, f)))
            .collect();
        self.grids(grids)
    }

    /// Sweep over vertical anisotropy ratios: each ratio multiplies the base
    /// Z cell spacing, stretching (ratio > 1) or flattening (ratio < 1) the
    /// cells and thereby the Z-transmissibility contrast.
    pub fn anisotropy_ratios(mut self, ratios: impl IntoIterator<Item = f64>) -> Self {
        self.anisotropy = ratios.into_iter().collect();
        assert!(!self.anisotropy.is_empty(), "at least one ratio required");
        self
    }

    /// Sweep over CG tolerances (set on the workload spec).
    pub fn tolerances(mut self, tolerances: impl IntoIterator<Item = f64>) -> Self {
        self.tolerances = tolerances.into_iter().collect();
        assert!(
            !self.tolerances.is_empty(),
            "at least one tolerance required"
        );
        self
    }

    /// Sweep over permeability seeds (reproducible realisations of stochastic
    /// permeability models; a no-op axis for deterministic models).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().map(Some).collect();
        assert!(!self.seeds.is_empty(), "at least one seed required");
        self
    }

    /// Sweep over solve backends.
    pub fn backends(mut self, backends: impl IntoIterator<Item = Backend>) -> Self {
        self.backends = backends.into_iter().collect();
        assert!(!self.backends.is_empty(), "at least one backend required");
        self
    }

    /// Cap the iteration count of every generated workload.
    pub fn max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = Some(max_iterations);
        self
    }

    /// Number of jobs the sweep will generate.
    pub fn job_count(&self) -> usize {
        self.grids.len()
            * self.anisotropy.len()
            * self.tolerances.len()
            * self.seeds.len()
            * self.backends.len()
    }

    /// Generate the jobs: the cartesian product in deterministic order
    /// (grids, then anisotropy, then tolerances, then seeds, with backends
    /// innermost so cross-backend comparisons of one scenario sit adjacent).
    pub fn jobs(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(self.job_count());
        for &dims in &self.grids {
            for &ratio in &self.anisotropy {
                for &tolerance in &self.tolerances {
                    for &seed in &self.seeds {
                        let spec = self.scenario_spec(dims, ratio, tolerance, seed);
                        for &backend in &self.backends {
                            let mut job = JobSpec::new(spec.clone(), backend);
                            if let Some(seed) = seed {
                                job = job.with_seed(seed);
                            }
                            jobs.push(job);
                        }
                    }
                }
            }
        }
        jobs
    }

    /// The workload spec of one scenario, named after its varied axes.
    fn scenario_spec(
        &self,
        dims: Dims,
        ratio: f64,
        tolerance: f64,
        seed: Option<u64>,
    ) -> WorkloadSpec {
        let mut name = self.base.name.clone();
        if self.grids.len() > 1 || dims != self.base.dims {
            name = format!("{name}-{dims}");
        }
        if self.anisotropy.len() > 1 || ratio != 1.0 {
            name = format!("{name}-az{ratio}");
        }
        if self.tolerances.len() > 1 {
            name = format!("{name}-tol{tolerance:e}");
        }
        if let (Some(seed), true) = (seed, self.seeds.len() > 1) {
            name = format!("{name}-seed{seed}");
        }
        WorkloadSpec {
            name,
            dims,
            spacing: [
                self.base.spacing[0],
                self.base.spacing[1],
                self.base.spacing[2] * ratio,
            ],
            tolerance,
            max_iterations: self.max_iterations.unwrap_or(self.base.max_iterations),
            ..self.base.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffv_mesh::PermeabilityModel;

    #[test]
    fn default_sweep_is_one_host_job_of_the_base_spec() {
        let jobs = SweepBuilder::new(WorkloadSpec::quickstart()).jobs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].workload_spec, WorkloadSpec::quickstart());
        assert_eq!(jobs[0].backend.name(), "host-f64");
    }

    #[test]
    fn cartesian_product_covers_every_axis_combination() {
        let sweep = SweepBuilder::new(WorkloadSpec::quickstart())
            .grids([
                Dims::new(8, 8, 4),
                Dims::new(12, 12, 6),
                Dims::new(16, 16, 8),
            ])
            .seeds([1, 2])
            .backends([Backend::host(), Backend::dataflow()]);
        assert_eq!(sweep.job_count(), 12);
        let jobs = sweep.jobs();
        assert_eq!(jobs.len(), 12);
        // Backends innermost: jobs 0 and 1 share a scenario.
        assert_eq!(jobs[0].workload_spec.name, jobs[1].workload_spec.name);
        assert_eq!(jobs[0].backend.name(), "host-f64");
        assert_eq!(jobs[1].backend.name(), "dataflow");
        // All scenario names are distinct.
        let mut names: Vec<String> = jobs
            .iter()
            .map(|j| format!("{} @ {}", j.workload_spec.name, j.backend.name()))
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn scales_divide_the_base_grid_with_a_floor() {
        let sweep = SweepBuilder::new(WorkloadSpec::paper_grid(100, 80, 60)).scales([2, 100]);
        let jobs = sweep.jobs();
        assert_eq!(jobs[0].workload_spec.dims, Dims::new(50, 40, 30));
        assert_eq!(jobs[1].workload_spec.dims, Dims::new(2, 2, 2));
    }

    #[test]
    fn anisotropy_scales_the_z_spacing_and_names_the_job() {
        let jobs = SweepBuilder::new(WorkloadSpec::quickstart())
            .anisotropy_ratios([1.0, 4.0])
            .jobs();
        assert_eq!(jobs[0].workload_spec.spacing, [1.0, 1.0, 1.0]);
        assert_eq!(jobs[1].workload_spec.spacing, [1.0, 1.0, 4.0]);
        assert!(jobs[1].workload_spec.name.contains("az4"));
    }

    #[test]
    fn tolerances_and_max_iterations_reach_the_spec() {
        let jobs = SweepBuilder::new(WorkloadSpec::quickstart())
            .tolerances([1e-6, 1e-12])
            .max_iterations(123)
            .jobs();
        assert_eq!(jobs[0].workload_spec.tolerance, 1e-6);
        assert_eq!(jobs[1].workload_spec.tolerance, 1e-12);
        assert!(jobs.iter().all(|j| j.workload_spec.max_iterations == 123));
        assert!(jobs[0].workload_spec.name.contains("tol1e-6"));
    }

    #[test]
    fn default_sweep_preserves_the_base_specs_own_seed() {
        let base = WorkloadSpec {
            permeability: PermeabilityModel::LogNormal {
                mean_log: 0.0,
                std_log: 0.5,
                seed: 42,
            },
            ..WorkloadSpec::quickstart()
        };
        let jobs = SweepBuilder::new(base.clone()).jobs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].seed, None);
        assert_eq!(jobs[0].effective_spec(), base);
    }

    #[test]
    fn seeds_reach_stochastic_permeability_via_effective_spec() {
        let base = WorkloadSpec {
            permeability: PermeabilityModel::LogNormal {
                mean_log: 0.0,
                std_log: 0.5,
                seed: 0,
            },
            ..WorkloadSpec::quickstart()
        };
        let jobs = SweepBuilder::new(base).seeds([3, 4]).jobs();
        assert_eq!(jobs.len(), 2);
        assert_ne!(
            jobs[0].effective_spec().permeability,
            jobs[1].effective_spec().permeability
        );
        assert!(jobs[0].workload_spec.name.contains("seed3"));
    }

    #[test]
    fn every_generated_job_passes_intake_validation() {
        let sweep = SweepBuilder::new(WorkloadSpec::fig5(Dims::new(12, 10, 6)))
            .scales([1, 2])
            .anisotropy_ratios([0.5, 2.0])
            .backends(Backend::standard_set());
        for job in sweep.jobs() {
            job.validate().expect("sweep jobs must be valid");
        }
    }
}
