//! Scenario sweeps: fan one base [`WorkloadSpec`] across axes of variation.
//!
//! A [`SweepBuilder`] is the comparison-study generator the batch engine
//! feeds on: from a single base spec it produces the cartesian product of
//! grid sizes × vertical-anisotropy ratios × tolerances × permeability seeds
//! × backends as a flat, deterministically ordered `Vec<JobSpec>`.  Axes you
//! do not set stay at the base spec's own value, so
//! `SweepBuilder::new(spec).jobs()` is exactly one host job.
//!
//! Job names encode the varied axes (`-az2`, `-tol1e-8`, `-seed3`, and the
//! grid extents), so every row of the resulting
//! [`BatchReport`](crate::BatchReport) is self-describing.

use crate::backend::Backend;
use crate::job::JobSpec;
use mffv_mesh::{Dims, DtPolicy, TransientSpec, WellSet, WorkloadSpec};
use mffv_solver::backend::PreconditionerKind;

/// Builder for a cartesian scenario sweep over one base workload.
#[derive(Clone, Debug)]
pub struct SweepBuilder {
    base: WorkloadSpec,
    grids: Vec<Dims>,
    anisotropy: Vec<f64>,
    tolerances: Vec<f64>,
    seeds: Vec<Option<u64>>,
    backends: Vec<Backend>,
    preconditioners: Vec<PreconditionerKind>,
    max_iterations: Option<usize>,
    /// Base transient scenario; `None` keeps the sweep steady-state.
    transient: Option<TransientSpec>,
    /// Transient axes (`None` = the base transient value).
    dts: Vec<Option<f64>>,
    compressibilities: Vec<Option<f64>>,
    well_schedules: Vec<Option<WellSet>>,
}

impl SweepBuilder {
    /// A sweep around `base`, with every axis at the base value: one grid
    /// (the base dims), isotropic spacing, the base tolerance, the base
    /// spec's own permeability seed, and
    /// the host backend.
    pub fn new(base: WorkloadSpec) -> Self {
        let dims = base.dims;
        let tolerance = base.tolerance;
        Self {
            base,
            grids: vec![dims],
            anisotropy: vec![1.0],
            tolerances: vec![tolerance],
            seeds: vec![None],
            backends: vec![Backend::host()],
            preconditioners: vec![PreconditionerKind::None],
            max_iterations: None,
            transient: None,
            dts: vec![None],
            compressibilities: vec![None],
            well_schedules: vec![None],
        }
    }

    /// Make every generated job a transient run of `spec` (the base
    /// scenario the [`dts`](Self::dts) / [`compressibilities`](Self::compressibilities)
    /// / [`well_schedules`](Self::well_schedules) axes vary around).
    pub fn transient(mut self, spec: TransientSpec) -> Self {
        self.transient = Some(spec);
        self
    }

    /// Sweep transient runs over fixed time-step sizes (seconds).  Requires
    /// [`transient`](Self::transient).
    pub fn dts(mut self, dts: impl IntoIterator<Item = f64>) -> Self {
        self.dts = dts.into_iter().map(Some).collect();
        assert!(!self.dts.is_empty(), "at least one dt required");
        self
    }

    /// Sweep transient runs over total compressibilities (1/Pa).  Requires
    /// [`transient`](Self::transient).
    pub fn compressibilities(mut self, cts: impl IntoIterator<Item = f64>) -> Self {
        self.compressibilities = cts.into_iter().map(Some).collect();
        assert!(
            !self.compressibilities.is_empty(),
            "at least one compressibility required"
        );
        self
    }

    /// Sweep transient runs over well schedules (each [`WellSet`] replaces
    /// the base scenario's wells).  Requires [`transient`](Self::transient).
    pub fn well_schedules(mut self, sets: impl IntoIterator<Item = WellSet>) -> Self {
        self.well_schedules = sets.into_iter().map(Some).collect();
        assert!(
            !self.well_schedules.is_empty(),
            "at least one well schedule required"
        );
        self
    }

    /// Sweep over explicit grid extents.
    pub fn grids(mut self, grids: impl IntoIterator<Item = Dims>) -> Self {
        self.grids = grids.into_iter().collect();
        assert!(!self.grids.is_empty(), "at least one grid required");
        self
    }

    /// Sweep over down-scalings of the base grid: each factor divides every
    /// extent (floored at 2 cells), like [`WorkloadSpec::scaled`].
    pub fn scales(self, factors: impl IntoIterator<Item = usize>) -> Self {
        let base = self.base.dims;
        let scale = |n: usize, f: usize| (n / f.max(1)).max(2);
        let grids: Vec<Dims> = factors
            .into_iter()
            .map(|f| Dims::new(scale(base.nx, f), scale(base.ny, f), scale(base.nz, f)))
            .collect();
        self.grids(grids)
    }

    /// Sweep over vertical anisotropy ratios: each ratio multiplies the base
    /// Z cell spacing, stretching (ratio > 1) or flattening (ratio < 1) the
    /// cells and thereby the Z-transmissibility contrast.
    pub fn anisotropy_ratios(mut self, ratios: impl IntoIterator<Item = f64>) -> Self {
        self.anisotropy = ratios.into_iter().collect();
        assert!(!self.anisotropy.is_empty(), "at least one ratio required");
        self
    }

    /// Sweep over CG tolerances (set on the workload spec).
    pub fn tolerances(mut self, tolerances: impl IntoIterator<Item = f64>) -> Self {
        self.tolerances = tolerances.into_iter().collect();
        assert!(
            !self.tolerances.is_empty(),
            "at least one tolerance required"
        );
        self
    }

    /// Sweep over permeability seeds (reproducible realisations of stochastic
    /// permeability models; a no-op axis for deterministic models).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().map(Some).collect();
        assert!(!self.seeds.is_empty(), "at least one seed required");
        self
    }

    /// Sweep over solve backends.
    pub fn backends(mut self, backends: impl IntoIterator<Item = Backend>) -> Self {
        self.backends = backends.into_iter().collect();
        assert!(!self.backends.is_empty(), "at least one backend required");
        self
    }

    /// Sweep over Krylov preconditioners (plain CG, Jacobi, the multigrid
    /// V-cycle).  Jobs are suffixed `-pc<label>` when the axis is varied.
    pub fn preconditioners(
        mut self,
        preconditioners: impl IntoIterator<Item = PreconditionerKind>,
    ) -> Self {
        self.preconditioners = preconditioners.into_iter().collect();
        assert!(
            !self.preconditioners.is_empty(),
            "at least one preconditioner required"
        );
        self
    }

    /// Cap the iteration count of every generated workload.
    pub fn max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = Some(max_iterations);
        self
    }

    /// Number of jobs the sweep will generate.
    pub fn job_count(&self) -> usize {
        self.grids.len()
            * self.anisotropy.len()
            * self.tolerances.len()
            * self.seeds.len()
            * self.dts.len()
            * self.compressibilities.len()
            * self.well_schedules.len()
            * self.preconditioners.len()
            * self.backends.len()
    }

    /// Generate the jobs: the cartesian product in deterministic order
    /// (grids, then anisotropy, then tolerances, then seeds, then the
    /// transient axes dt / compressibility / well schedule, with backends
    /// innermost so cross-backend comparisons of one scenario sit adjacent).
    ///
    /// Panics when a transient axis was set without a base
    /// [`transient`](Self::transient) scenario.
    pub fn jobs(&self) -> Vec<JobSpec> {
        let transient_axes_set = self.dts != [None]
            || self.compressibilities != [None]
            || self.well_schedules.iter().any(Option::is_some);
        assert!(
            self.transient.is_some() || !transient_axes_set,
            "dt/compressibility/well-schedule axes require a base `.transient(spec)`"
        );
        let mut jobs = Vec::with_capacity(self.job_count());
        for &dims in &self.grids {
            for &ratio in &self.anisotropy {
                for &tolerance in &self.tolerances {
                    for &seed in &self.seeds {
                        let spec = self.scenario_spec(dims, ratio, tolerance, seed);
                        for &dt in &self.dts {
                            for &ct in &self.compressibilities {
                                for (wi, wells) in self.well_schedules.iter().enumerate() {
                                    let transient = self.transient_variant(dt, ct, wells.as_ref());
                                    let mut spec = spec.clone();
                                    spec.name = self.transient_name(spec.name, dt, ct, wi);
                                    for &preconditioner in &self.preconditioners {
                                        let mut spec = spec.clone();
                                        if self.preconditioners.len() > 1 {
                                            spec.name = format!(
                                                "{}-pc{}",
                                                spec.name,
                                                preconditioner.label()
                                            );
                                        }
                                        for &backend in &self.backends {
                                            let mut job = JobSpec::new(spec.clone(), backend)
                                                .with_preconditioner(preconditioner);
                                            if let Some(seed) = seed {
                                                job = job.with_seed(seed);
                                            }
                                            if let Some(transient) = transient.clone() {
                                                job = job.with_transient(transient);
                                            }
                                            jobs.push(job);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        jobs
    }

    /// The base transient scenario with one sweep point's dt /
    /// compressibility / wells applied (`None` when the sweep is steady).
    fn transient_variant(
        &self,
        dt: Option<f64>,
        ct: Option<f64>,
        wells: Option<&WellSet>,
    ) -> Option<TransientSpec> {
        let mut spec = self.transient.clone()?;
        if let Some(dt) = dt {
            spec.dt = DtPolicy::fixed(dt);
        }
        if let Some(ct) = ct {
            spec.total_compressibility = ct;
        }
        if let Some(wells) = wells {
            spec.wells = wells.clone();
        }
        Some(spec)
    }

    /// Append the varied transient axes to a scenario name.
    fn transient_name(
        &self,
        mut name: String,
        dt: Option<f64>,
        ct: Option<f64>,
        wi: usize,
    ) -> String {
        if let (Some(dt), true) = (dt, self.dts.len() > 1) {
            name = format!("{name}-dt{dt}");
        }
        if let (Some(ct), true) = (ct, self.compressibilities.len() > 1) {
            name = format!("{name}-ct{ct:e}");
        }
        if self.well_schedules.len() > 1 {
            name = format!("{name}-wells{wi}");
        }
        name
    }

    /// The workload spec of one scenario, named after its varied axes.
    fn scenario_spec(
        &self,
        dims: Dims,
        ratio: f64,
        tolerance: f64,
        seed: Option<u64>,
    ) -> WorkloadSpec {
        let mut name = self.base.name.clone();
        if self.grids.len() > 1 || dims != self.base.dims {
            name = format!("{name}-{dims}");
        }
        if self.anisotropy.len() > 1 || ratio != 1.0 {
            name = format!("{name}-az{ratio}");
        }
        if self.tolerances.len() > 1 {
            name = format!("{name}-tol{tolerance:e}");
        }
        if let (Some(seed), true) = (seed, self.seeds.len() > 1) {
            name = format!("{name}-seed{seed}");
        }
        WorkloadSpec {
            name,
            dims,
            spacing: [
                self.base.spacing[0],
                self.base.spacing[1],
                self.base.spacing[2] * ratio,
            ],
            tolerance,
            max_iterations: self.max_iterations.unwrap_or(self.base.max_iterations),
            ..self.base.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffv_mesh::PermeabilityModel;

    #[test]
    fn default_sweep_is_one_host_job_of_the_base_spec() {
        let jobs = SweepBuilder::new(WorkloadSpec::quickstart()).jobs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].workload_spec, WorkloadSpec::quickstart());
        assert_eq!(jobs[0].backend.name(), "host-f64");
    }

    #[test]
    fn cartesian_product_covers_every_axis_combination() {
        let sweep = SweepBuilder::new(WorkloadSpec::quickstart())
            .grids([
                Dims::new(8, 8, 4),
                Dims::new(12, 12, 6),
                Dims::new(16, 16, 8),
            ])
            .seeds([1, 2])
            .backends([Backend::host(), Backend::dataflow()]);
        assert_eq!(sweep.job_count(), 12);
        let jobs = sweep.jobs();
        assert_eq!(jobs.len(), 12);
        // Backends innermost: jobs 0 and 1 share a scenario.
        assert_eq!(jobs[0].workload_spec.name, jobs[1].workload_spec.name);
        assert_eq!(jobs[0].backend.name(), "host-f64");
        assert_eq!(jobs[1].backend.name(), "dataflow");
        // All scenario names are distinct.
        let mut names: Vec<String> = jobs
            .iter()
            .map(|j| format!("{} @ {}", j.workload_spec.name, j.backend.name()))
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn transient_axes_fan_out_dt_compressibility_and_schedules() {
        use mffv_mesh::{CellIndex, Well};
        let base = TransientSpec::new(1.0, 0.25, 1e-3);
        let schedules = [
            WellSet::empty().with(Well::rate("inj", CellIndex::new(1, 1, 1), 1.0)),
            WellSet::empty().with(Well::rate("inj", CellIndex::new(1, 1, 1), 2.0)),
        ];
        let sweep = SweepBuilder::new(WorkloadSpec::quickstart())
            .transient(base.clone())
            .dts([0.25, 0.5])
            .compressibilities([1e-3, 1e-4, 1e-5])
            .well_schedules(schedules.clone());
        assert_eq!(sweep.job_count(), 12);
        let jobs = sweep.jobs();
        assert_eq!(jobs.len(), 12);
        for job in &jobs {
            let t = job.transient.as_ref().expect("every job is transient");
            assert!(matches!(t.dt, DtPolicy::Fixed { dt } if dt == 0.25 || dt == 0.5));
            assert_eq!(t.total_time, base.total_time);
        }
        // Axis order: dt outermost, then ct, then schedule.
        assert_eq!(jobs[0].transient.as_ref().unwrap().wells, schedules[0]);
        assert_eq!(jobs[1].transient.as_ref().unwrap().wells, schedules[1]);
        assert_eq!(
            jobs[1].transient.as_ref().unwrap().total_compressibility,
            1e-3
        );
        assert_eq!(
            jobs[2].transient.as_ref().unwrap().total_compressibility,
            1e-4
        );
        // Names encode the varied axes and stay unique.
        let mut names: Vec<&str> = jobs.iter().map(|j| j.workload_spec.name.as_str()).collect();
        assert!(names[0].contains("-dt0.25") && names[0].contains("-wells0"));
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    #[should_panic(expected = "transient")]
    fn transient_axes_without_a_base_scenario_panic() {
        let _ = SweepBuilder::new(WorkloadSpec::quickstart())
            .dts([0.1])
            .jobs();
    }

    #[test]
    fn scales_divide_the_base_grid_with_a_floor() {
        let sweep = SweepBuilder::new(WorkloadSpec::paper_grid(100, 80, 60)).scales([2, 100]);
        let jobs = sweep.jobs();
        assert_eq!(jobs[0].workload_spec.dims, Dims::new(50, 40, 30));
        assert_eq!(jobs[1].workload_spec.dims, Dims::new(2, 2, 2));
    }

    #[test]
    fn anisotropy_scales_the_z_spacing_and_names_the_job() {
        let jobs = SweepBuilder::new(WorkloadSpec::quickstart())
            .anisotropy_ratios([1.0, 4.0])
            .jobs();
        assert_eq!(jobs[0].workload_spec.spacing, [1.0, 1.0, 1.0]);
        assert_eq!(jobs[1].workload_spec.spacing, [1.0, 1.0, 4.0]);
        assert!(jobs[1].workload_spec.name.contains("az4"));
    }

    #[test]
    fn tolerances_and_max_iterations_reach_the_spec() {
        let jobs = SweepBuilder::new(WorkloadSpec::quickstart())
            .tolerances([1e-6, 1e-12])
            .max_iterations(123)
            .jobs();
        assert_eq!(jobs[0].workload_spec.tolerance, 1e-6);
        assert_eq!(jobs[1].workload_spec.tolerance, 1e-12);
        assert!(jobs.iter().all(|j| j.workload_spec.max_iterations == 123));
        assert!(jobs[0].workload_spec.name.contains("tol1e-6"));
    }

    #[test]
    fn preconditioners_axis_names_jobs_and_reaches_the_config() {
        let jobs = SweepBuilder::new(WorkloadSpec::quickstart())
            .preconditioners([
                PreconditionerKind::None,
                PreconditionerKind::Jacobi,
                PreconditionerKind::Mg,
            ])
            .backends([Backend::host(), Backend::dataflow()])
            .jobs();
        assert_eq!(jobs.len(), 6);
        assert_eq!(
            jobs[0].solve_config.preconditioner,
            PreconditionerKind::None
        );
        assert_eq!(
            jobs[2].solve_config.preconditioner,
            PreconditionerKind::Jacobi
        );
        assert_eq!(jobs[4].solve_config.preconditioner, PreconditionerKind::Mg);
        assert!(jobs[0].workload_spec.name.contains("-pcnone"));
        assert!(jobs[3].workload_spec.name.contains("-pcjacobi"));
        assert!(jobs[5].workload_spec.name.contains("-pcmg"));
        // Backends stay innermost: both backends of one preconditioner are
        // adjacent and share the scenario name.
        assert_eq!(jobs[4].workload_spec.name, jobs[5].workload_spec.name);
    }

    #[test]
    fn default_sweep_preserves_the_base_specs_own_seed() {
        let base = WorkloadSpec {
            permeability: PermeabilityModel::LogNormal {
                mean_log: 0.0,
                std_log: 0.5,
                seed: 42,
            },
            ..WorkloadSpec::quickstart()
        };
        let jobs = SweepBuilder::new(base.clone()).jobs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].seed, None);
        assert_eq!(jobs[0].effective_spec(), base);
    }

    #[test]
    fn seeds_reach_stochastic_permeability_via_effective_spec() {
        let base = WorkloadSpec {
            permeability: PermeabilityModel::LogNormal {
                mean_log: 0.0,
                std_log: 0.5,
                seed: 0,
            },
            ..WorkloadSpec::quickstart()
        };
        let jobs = SweepBuilder::new(base).seeds([3, 4]).jobs();
        assert_eq!(jobs.len(), 2);
        assert_ne!(
            jobs[0].effective_spec().permeability,
            jobs[1].effective_spec().permeability
        );
        assert!(jobs[0].workload_spec.name.contains("seed3"));
    }

    #[test]
    fn every_generated_job_passes_intake_validation() {
        let sweep = SweepBuilder::new(WorkloadSpec::fig5(Dims::new(12, 10, 6)))
            .scales([1, 2])
            .anisotropy_ratios([0.5, 2.0])
            .backends(Backend::standard_set());
        for job in sweep.jobs() {
            job.validate().expect("sweep jobs must be valid");
        }
    }
}
