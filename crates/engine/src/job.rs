//! Job descriptions and per-job results for the batch engine.
//!
//! A [`JobSpec`] is a *value*: a declarative description of one solve
//! (workload spec, target backend, solve settings, permeability seed) that can
//! be cloned, queued, and executed on any worker thread.  Workloads are
//! materialised on the worker — the heavy permeability/transmissibility
//! fields are never built on the submitting thread, and never shared between
//! jobs — which is what makes batch results independent of worker count.

use crate::backend::Backend;
use mffv_mesh::{TransientSpec, Workload, WorkloadSpec};
use mffv_solver::backend::{PreconditionerKind, SolveConfig, SolveError, SolveReport};
use mffv_solver::monitor::{
    CancelToken, MonitorFanout, NullMonitor, SolveMonitor, StopPolicy, StopReason,
};
use mffv_solver::transient::{run_transient_monitored, run_transient_traced};
use mffv_telemetry::Span;

/// One unit of work for the engine: solve `workload_spec` on `backend` under
/// `solve_config`, with stochastic permeability reseeded from `seed` and the
/// solve session governed by `stop_policy`.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// The problem to solve (materialised on the worker thread).
    pub workload_spec: WorkloadSpec,
    /// The solve target.
    pub backend: Backend,
    /// Cross-backend solve settings (`None` fields fall back to the
    /// workload's own tolerance / iteration cap).
    pub solve_config: SolveConfig,
    /// Optional seed override for stochastic permeability models
    /// ([`WorkloadSpec::with_permeability_seed`]).  `None` (the default)
    /// solves the spec exactly as written — its own seed included — so a
    /// default job is bitwise identical to a serial solve of the same spec;
    /// deterministic models ignore the seed either way.
    pub seed: Option<u64>,
    /// Per-job stop rules (deadline, iteration budget, stagnation /
    /// divergence detection, cancellation).  An empty policy (the default)
    /// runs the exact unmonitored solve path.
    pub stop_policy: StopPolicy,
    /// When set, the job runs the transient scenario instead of a single
    /// steady solve: the full backward-Euler schedule executes on the
    /// worker and the job completes with the run's summary report (final
    /// pressure, concatenated per-step CG history).
    pub transient: Option<TransientSpec>,
}

impl JobSpec {
    /// A job with default solve settings and no seed override.
    pub fn new(workload_spec: WorkloadSpec, backend: Backend) -> Self {
        Self {
            workload_spec,
            backend,
            solve_config: SolveConfig::default(),
            seed: None,
            stop_policy: StopPolicy::new(),
            transient: None,
        }
    }

    /// A transient job: run `transient_spec`'s whole backward-Euler schedule
    /// on `backend` (see [`mffv_solver::transient`]).
    pub fn transient(
        workload_spec: WorkloadSpec,
        backend: Backend,
        transient_spec: TransientSpec,
    ) -> Self {
        Self::new(workload_spec, backend).with_transient(transient_spec)
    }

    /// Turn the job into a transient run of `transient_spec`.
    pub fn with_transient(mut self, transient_spec: TransientSpec) -> Self {
        self.transient = Some(transient_spec);
        self
    }

    /// Override the solve settings.
    pub fn with_config(mut self, solve_config: SolveConfig) -> Self {
        self.solve_config = solve_config;
        self
    }

    /// Override the permeability seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Select the preconditioner of the job's Krylov loop — Jacobi diagonal
    /// scaling or the matrix-free multigrid V-cycle
    /// ([`PreconditionerKind::None`], the default, keeps plain CG).
    pub fn with_preconditioner(mut self, preconditioner: PreconditionerKind) -> Self {
        self.solve_config.preconditioner = preconditioner;
        self
    }

    /// Run the host backend's planned stencil kernels on `threads` scoped
    /// threads (bitwise-identical results for every thread count; ignored by
    /// device-style backends).  Composes with the engine's worker pool: a
    /// 4-worker engine running jobs with 2 apply threads uses up to 8 cores.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.solve_config.threads = Some(threads);
        self
    }

    /// Attach stop rules to the job's solve session.
    pub fn with_stop_policy(mut self, stop_policy: StopPolicy) -> Self {
        self.stop_policy = stop_policy;
        self
    }

    /// The workload spec the job actually solves: `workload_spec` with the
    /// job's seed override (when set) applied to stochastic permeability
    /// models.  Exposed so serial reference runs (tests, examples) can
    /// reproduce a job exactly.
    pub fn effective_spec(&self) -> WorkloadSpec {
        match self.seed {
            Some(seed) => self.workload_spec.with_permeability_seed(seed),
            None => self.workload_spec.clone(),
        }
    }

    /// Display label: `workload @ backend`.
    pub fn label(&self) -> String {
        format!("{} @ {}", self.workload_spec.name, self.backend.name())
    }

    /// Validate the job before it is queued, mapping spec problems into the
    /// unified [`SolveError`] (the engine's job-intake check).
    pub fn validate(&self) -> Result<(), SolveError> {
        self.workload_spec
            .validate()
            .map_err(|e| SolveError::new(self.backend.name(), format!("invalid workload: {e}")))?;
        if let Some(t) = self.solve_config.tolerance {
            if !t.is_finite() || t <= 0.0 {
                return Err(SolveError::new(
                    self.backend.name(),
                    format!("invalid solve config: tolerance must be finite and positive, got {t}"),
                ));
            }
        }
        if self.solve_config.max_iterations == Some(0) {
            return Err(SolveError::new(
                self.backend.name(),
                "invalid solve config: max_iterations must be non-zero",
            ));
        }
        if let Some(transient) = &self.transient {
            transient.validate(self.workload_spec.dims).map_err(|e| {
                SolveError::new(self.backend.name(), format!("invalid transient spec: {e}"))
            })?;
        }
        Ok(())
    }

    /// Run the job to completion on the calling thread (validation, workload
    /// materialisation, solve).  The engine calls this from its workers,
    /// wrapped in panic isolation; it is also the serial reference path.
    pub fn execute(&self) -> Result<SolveReport, SolveError> {
        self.execute_cancellable(None)
    }

    /// [`execute`](Self::execute), additionally watching `engine_token` (the
    /// engine threads its batch-level [`CancelToken`] through here so a
    /// tripped token stops an in-flight job at its next iteration boundary).
    ///
    /// A job whose effective policy is empty takes the plain unmonitored
    /// solve path; monitored and unmonitored solves perform identical
    /// arithmetic either way, so batch results stay bitwise deterministic.
    pub fn execute_cancellable(
        &self,
        engine_token: Option<&CancelToken>,
    ) -> Result<SolveReport, SolveError> {
        self.execute_traced(engine_token, &Span::null())
    }

    /// [`execute_cancellable`](Self::execute_cancellable), additionally
    /// recording phase spans under `span` (workload materialisation, then the
    /// solve or transient schedule).  On a null span this is byte-for-byte
    /// the untraced path — the engine threads each job's span through here,
    /// and traced batches stay bitwise identical to untraced ones.
    pub fn execute_traced(
        &self,
        engine_token: Option<&CancelToken>,
        span: &Span,
    ) -> Result<SolveReport, SolveError> {
        self.execute_streamed(engine_token, span, None)
    }

    /// [`execute_traced`](Self::execute_traced) with a live observer:
    /// `external` sees the job's full [`mffv_solver::monitor::SolveEvent`]
    /// stream — the per-iteration events of a steady solve, or the
    /// concatenated per-step sessions of a transient — bitwise-identical to
    /// the recorded convergence history.  The observer can also *stop* the
    /// job (return [`mffv_solver::monitor::Flow::Stop`]); the job's own
    /// [`StopPolicy`] keeps stop precedence by sitting first in the fanout.
    /// This is the serving path: a daemon streams the events over a socket
    /// while policy deadlines and cancel tokens keep working unchanged.
    pub fn execute_streamed(
        &self,
        engine_token: Option<&CancelToken>,
        span: &Span,
        external: Option<&mut dyn SolveMonitor>,
    ) -> Result<SolveReport, SolveError> {
        self.execute_pooled(engine_token, span, external, None)
    }

    /// [`execute_streamed`](Self::execute_streamed) on a warm, worker-owned
    /// [`SolveContextCache`](mffv_solver::context::SolveContextCache): the
    /// zero-allocation steady-state serving path.
    ///
    /// With `cache = Some`, steady jobs reuse the worker's cached workload,
    /// operator/preconditioner and CG scratch whenever the job's key matches
    /// the previous one (see [`mffv_solver::context`]), and rebuild on a
    /// mismatch.  Reports are **bitwise identical** with the cache on or off
    /// — pinned by `tests/engine_batch.rs` across worker counts.  `None` is
    /// the legacy cache-off path; transient jobs keep their own per-run
    /// stepper cache and ignore `cache`.
    pub fn execute_pooled(
        &self,
        engine_token: Option<&CancelToken>,
        span: &Span,
        external: Option<&mut dyn SolveMonitor>,
        cache: Option<&mut mffv_solver::context::SolveContextCache>,
    ) -> Result<SolveReport, SolveError> {
        self.validate()?;
        let materialise = span.child("materialise-workload");
        let spec = self.effective_spec();
        // Transient jobs cache per-run stepper state instead; the pooled
        // steady contexts don't apply to them.
        let cache = if self.transient.is_none() {
            cache
        } else {
            None
        };
        let (workload, cache) = match cache {
            Some(cache) => {
                let w = cache.checkout_workload(&spec).map_err(|e| {
                    SolveError::new(self.backend.name(), format!("invalid workload: {e}"))
                })?;
                (w, Some(cache))
            }
            None => (
                Workload::try_from_spec(&spec).map_err(|e| {
                    SolveError::new(self.backend.name(), format!("invalid workload: {e}"))
                })?,
                None,
            ),
        };
        materialise.finish();
        let mut policy = self.stop_policy.clone();
        if let Some(token) = engine_token {
            policy = policy.cancel_token(token.clone());
        }
        if let Some(transient) = &self.transient {
            let backend = self.backend.instantiate();
            let report = match external {
                Some(observer) => run_transient_monitored(
                    backend.as_ref(),
                    &workload,
                    transient,
                    &self.solve_config,
                    &policy,
                    span,
                    observer,
                )?,
                None => run_transient_traced(
                    backend.as_ref(),
                    &workload,
                    transient,
                    &self.solve_config,
                    &policy,
                    span,
                )?,
            };
            return Ok(report.summary_report());
        }
        match cache {
            Some(cache) => {
                let backend = self.backend.instantiate();
                let result = match external {
                    None => {
                        if policy.is_empty() {
                            backend.solve_pooled(
                                &workload,
                                &self.solve_config,
                                &mut NullMonitor,
                                span,
                                cache,
                            )
                        } else {
                            backend.solve_pooled(
                                &workload,
                                &self.solve_config,
                                &mut policy.session(),
                                span,
                                cache,
                            )
                        }
                    }
                    Some(observer) => {
                        if policy.is_empty() {
                            backend.solve_pooled(
                                &workload,
                                &self.solve_config,
                                observer,
                                span,
                                cache,
                            )
                        } else {
                            let mut session = policy.session();
                            let mut fanout = MonitorFanout::new().push(&mut session).push(observer);
                            backend.solve_pooled(
                                &workload,
                                &self.solve_config,
                                &mut fanout,
                                span,
                                cache,
                            )
                        }
                    }
                };
                // Hand the workload back so the next same-spec job skips
                // materialisation entirely.
                cache.checkin_workload(spec, workload);
                result
            }
            None => match external {
                None => {
                    if policy.is_empty() {
                        if !span.is_recording() {
                            return self
                                .backend
                                .instantiate()
                                .solve(&workload, &self.solve_config);
                        }
                        return self.backend.instantiate().solve_traced(
                            &workload,
                            &self.solve_config,
                            &mut NullMonitor,
                            span,
                        );
                    }
                    self.backend.instantiate().solve_traced(
                        &workload,
                        &self.solve_config,
                        &mut policy.session(),
                        span,
                    )
                }
                Some(observer) => {
                    if policy.is_empty() {
                        return self.backend.instantiate().solve_traced(
                            &workload,
                            &self.solve_config,
                            observer,
                            span,
                        );
                    }
                    let mut session = policy.session();
                    let mut fanout = MonitorFanout::new().push(&mut session).push(observer);
                    self.backend.instantiate().solve_traced(
                        &workload,
                        &self.solve_config,
                        &mut fanout,
                        span,
                    )
                }
            },
        }
    }
}

/// How one job ended.
#[derive(Clone, Debug)]
pub enum JobStatus {
    /// The solve ran to completion (converged or hit its iteration cap — see
    /// [`SolveReport::converged`]).
    Completed(SolveReport),
    /// The solve session was stopped early — by its [`StopPolicy`], a
    /// [`CancelToken`], or batch-level cancellation.  Distinct from
    /// [`Failed`](Self::Failed): nothing went wrong, the job was told to
    /// stop.  `report` carries the partial state for jobs stopped mid-solve
    /// and is `None` for queued jobs cancelled before they started.
    Stopped {
        /// Why the session ended.
        reason: StopReason,
        /// The partial report (pressure + history at the stop boundary),
        /// when the job had started solving.
        report: Option<SolveReport>,
    },
    /// The backend (or job intake) returned a typed error.
    Failed(SolveError),
    /// The job panicked on its worker; the pool survives and the panic
    /// message is captured here.
    Panicked(String),
}

/// The result of one job, in submission order within a
/// [`BatchReport`](crate::BatchReport).
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Index of the job in the submitted batch.
    pub index: usize,
    /// Human-readable job label (`workload @ backend`).
    pub label: String,
    /// How the job ended.
    pub status: JobStatus,
    /// Wall-clock seconds the job spent queued before a worker picked it up
    /// (submission back-pressure; `0.0` for jobs cancelled while queued is
    /// *not* special-cased — they report their real wait).
    pub queue_wait_seconds: f64,
    /// Wall-clock seconds the job spent executing on its worker (validation +
    /// materialisation + solve).  `0.0` for jobs cancelled before they
    /// started.
    pub exec_seconds: f64,
}

impl JobOutcome {
    /// Execution wall-clock seconds — the historical `latency_seconds` field,
    /// kept as an accessor so report consumers see unchanged semantics.
    pub fn latency_seconds(&self) -> f64 {
        self.exec_seconds
    }

    /// The solve report, when the job ran to completion.
    pub fn report(&self) -> Option<&SolveReport> {
        match &self.status {
            JobStatus::Completed(report) => Some(report),
            _ => None,
        }
    }

    /// The partial report of a job stopped mid-solve (pressure and
    /// convergence history at the stop boundary).
    pub fn partial_report(&self) -> Option<&SolveReport> {
        match &self.status {
            JobStatus::Stopped { report, .. } => report.as_ref(),
            _ => None,
        }
    }

    /// Whether the job produced a completed report.
    pub fn is_success(&self) -> bool {
        matches!(self.status, JobStatus::Completed(_))
    }

    /// Whether the job was stopped early (policy, deadline or cancellation).
    pub fn is_stopped(&self) -> bool {
        matches!(self.status, JobStatus::Stopped { .. })
    }

    /// Why the job was stopped, when it was.
    pub fn stop_reason(&self) -> Option<StopReason> {
        match &self.status {
            JobStatus::Stopped { reason, .. } => Some(*reason),
            _ => None,
        }
    }

    /// The failure description for failed or panicked jobs.  Stopped jobs
    /// are not failures — see [`stop_reason`](Self::stop_reason).
    pub fn failure(&self) -> Option<String> {
        match &self.status {
            JobStatus::Completed(_) | JobStatus::Stopped { .. } => None,
            JobStatus::Failed(e) => Some(e.to_string()),
            JobStatus::Panicked(msg) => Some(format!("panicked: {msg}")),
        }
    }

    /// Short status cell for tables: `ok`, `stopped`, `failed`, or
    /// `panicked`.
    pub fn status_label(&self) -> &'static str {
        match &self.status {
            JobStatus::Completed(_) => "ok",
            JobStatus::Stopped { .. } => "stopped",
            JobStatus::Failed(_) => "failed",
            JobStatus::Panicked(_) => "panicked",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_intake_rejects_invalid_specs_with_a_typed_error() {
        let bad_spec = WorkloadSpec {
            max_iterations: 0,
            ..WorkloadSpec::quickstart()
        };
        let err = JobSpec::new(bad_spec, Backend::host())
            .validate()
            .unwrap_err();
        assert_eq!(err.backend_name(), "host-f64");
        assert!(err.detail().contains("max_iterations"), "{}", err.detail());
    }

    #[test]
    fn job_intake_rejects_invalid_solve_configs() {
        let nan_tol =
            JobSpec::new(WorkloadSpec::quickstart(), Backend::host()).with_config(SolveConfig {
                tolerance: Some(f64::NAN),
                ..SolveConfig::default()
            });
        assert!(nan_tol
            .validate()
            .unwrap_err()
            .detail()
            .contains("tolerance"));

        let zero_cap =
            JobSpec::new(WorkloadSpec::quickstart(), Backend::host()).with_config(SolveConfig {
                max_iterations: Some(0),
                ..SolveConfig::default()
            });
        assert!(zero_cap
            .validate()
            .unwrap_err()
            .detail()
            .contains("max_iterations"));
    }

    #[test]
    fn default_jobs_preserve_the_specs_own_permeability_seed() {
        use mffv_mesh::PermeabilityModel;
        let spec = WorkloadSpec {
            permeability: PermeabilityModel::LogNormal {
                mean_log: 0.0,
                std_log: 0.5,
                seed: 42,
            },
            ..WorkloadSpec::quickstart()
        };
        let job = JobSpec::new(spec.clone(), Backend::host());
        assert_eq!(job.effective_spec(), spec);
        assert_ne!(
            job.with_seed(0).effective_spec().permeability,
            spec.permeability
        );
    }

    #[test]
    fn execute_solves_on_the_requested_backend() {
        let report = JobSpec::new(WorkloadSpec::quickstart(), Backend::host())
            .execute()
            .unwrap();
        assert_eq!(report.backend, "host-f64");
        assert!(report.converged());
    }

    #[test]
    fn transient_jobs_execute_the_whole_schedule() {
        use mffv_mesh::workload::BoundarySpec;
        use mffv_mesh::{CellIndex, TransientSpec, Well, WellSet};
        let spec = WorkloadSpec {
            name: "engine-transient".into(),
            boundary: BoundarySpec::None,
            dims: mffv_mesh::Dims::new(5, 4, 3),
            tolerance: 1e-18,
            ..WorkloadSpec::quickstart()
        };
        let transient = TransientSpec::new(1.0, 0.25, 1e-3)
            .with_wells(WellSet::empty().with(Well::rate("inj", CellIndex::new(2, 2, 1), 1.0)))
            .with_initial_pressure(1.0);
        let job = JobSpec::transient(spec, Backend::host(), transient);
        let report = job.execute().unwrap();
        assert_eq!(report.backend, "host-f64");
        assert!(report.converged());
        assert!(
            report.iterations() > 4,
            "4 steps of CG merged into one history"
        );
        assert!(report.pressure.get(0) > 1.0, "injection raises pressure");

        // Re-execution is bitwise identical (worker-count independence rests
        // on this).
        let again = job.execute().unwrap();
        let bits = |r: &SolveReport| -> Vec<u64> {
            r.pressure.as_slice().iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(bits(&report), bits(&again));
    }

    #[test]
    fn job_intake_rejects_invalid_transient_specs() {
        use mffv_mesh::TransientSpec;
        let job = JobSpec::new(WorkloadSpec::quickstart(), Backend::host())
            .with_transient(TransientSpec::new(1.0, -0.5, 1e-9));
        let err = job.validate().unwrap_err();
        assert!(err.detail().contains("transient"), "{}", err.detail());
    }

    #[test]
    fn labels_and_status_helpers() {
        let job = JobSpec::new(WorkloadSpec::quickstart(), Backend::dataflow());
        assert_eq!(job.label(), "quickstart-16x16x8 @ dataflow");
        let outcome = JobOutcome {
            index: 0,
            label: job.label(),
            status: JobStatus::Panicked("boom".into()),
            queue_wait_seconds: 0.0,
            exec_seconds: 0.0,
        };
        assert!(!outcome.is_success());
        assert!(outcome.report().is_none());
        assert_eq!(outcome.failure().unwrap(), "panicked: boom");
        assert_eq!(outcome.status_label(), "panicked");
    }
}
