#![forbid(unsafe_code)]
//! # mffv-engine — concurrent batch-solve engine
//!
//! The execution subsystem that turns the one-solve-at-a-time `Simulation`
//! facade into a multi-scenario solve service: a `std::thread` worker pool
//! (no external dependencies) that executes many independent pressure solves
//! concurrently and reports service-style throughput.
//!
//! ## Queue / worker / report design
//!
//! ```text
//!  JobSpec, JobSpec, …            (index, JobSpec)
//!  ───────────────────▶ BoundedQueue ──▶ worker 0 ──▶ slots[index]
//!   submitting thread        │     └───▶ worker 1 ──▶ slots[index]
//!   (blocks when full)       └─────────▶ worker N ──▶ slots[index]
//!                                                         │
//!                                 BatchReport  ◀──────────┘
//!                    (outcomes in submission order + throughput/latency)
//! ```
//!
//! * **Jobs are values.**  A [`JobSpec`] carries a `WorkloadSpec`, a
//!   [`Backend`], a `SolveConfig` and a seed; the heavy workload fields are
//!   materialised *on the worker*, never shared, so jobs are independent by
//!   construction.
//! * **Bounded intake.**  Jobs flow through a [`queue::BoundedQueue`]
//!   (`Mutex` + `Condvar`), giving back-pressure on the submitter instead of
//!   unbounded buffering.
//! * **Failure isolation.**  Workers run each job behind
//!   `std::panic::catch_unwind`; a panicking or failing job becomes a
//!   [`JobStatus::Panicked`] / [`JobStatus::Failed`] outcome and the pool
//!   keeps draining.  Invalid specs are rejected at job intake with a
//!   descriptive `SolveError` (see `WorkloadSpec::validate`).
//! * **Deterministic results.**  Outcomes land in slots addressed by
//!   submission index, so [`BatchReport::outcomes`] is ordered identically
//!   for 1 or 64 workers — and because every solve is sequential and
//!   self-contained, per-job results are **bitwise identical** across worker
//!   counts and to a serial run of the same spec.
//! * **Seed reproducibility.**  [`JobSpec::seed`] reseeds stochastic
//!   permeability models through `WorkloadSpec::with_permeability_seed`;
//!   `(spec, backend, config, seed)` fully determines a job's result, so any
//!   row of a [`BatchReport`] can be replayed exactly with
//!   [`JobSpec::execute`].
//!
//! ## Scenario sweeps
//!
//! [`SweepBuilder`] fans one base spec across grids × anisotropy ratios ×
//! tolerances × permeability seeds × backends:
//!
//! ```
//! use mffv_engine::{Backend, Engine, SweepBuilder};
//! use mffv_mesh::{Dims, WorkloadSpec};
//!
//! let jobs = SweepBuilder::new(WorkloadSpec::quickstart())
//!     .grids([Dims::new(8, 8, 4), Dims::new(12, 12, 6)])
//!     .backends([Backend::host(), Backend::dataflow()])
//!     .jobs();
//! let report = Engine::new(2).run(jobs);
//! assert!(report.all_succeeded());
//! println!("{report}"); // per-job status + throughput + p50/p95/p99 latency
//! ```
//!
//! ## Telemetry
//!
//! Every run collects per-worker busy/idle stats, a mergeable log₂-bucket
//! execution-latency histogram and the queue's high-water depth into the
//! [`BatchReport`].  Attach a recording `Tracer`
//! ([`Engine::with_tracer`](pool::Engine::with_tracer)) to additionally get
//! a span tree — `engine-batch` → per-job label → `queue-wait`/`execute` —
//! exportable as a Chrome trace via `mffv_telemetry`; job results stay
//! bitwise identical with tracing on or off.

pub mod backend;
pub mod job;
pub mod pool;
pub mod queue;
pub mod report;
pub mod service;
pub mod sweep;

pub use backend::Backend;
pub use job::{JobOutcome, JobSpec, JobStatus};
pub use pool::Engine;
pub use report::{BatchReport, WorkerStats};
pub use service::{
    EngineService, RejectedJob, ServiceJob, ServiceOutcome, ShutdownMode, SubmitError,
};
pub use sweep::SweepBuilder;
// The session-control vocabulary of `mffv-solver`, re-exported so engine
// users can cancel batches and attach stop policies without a direct
// `mffv-solver` dependency.
pub use mffv_solver::monitor::{CancelToken, StopPolicy, StopReason};
// Telemetry vocabulary for attaching tracers/registries to an engine.
pub use mffv_telemetry::{LogHistogram, MetricsRegistry, Tracer};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::backend::Backend;
    pub use crate::job::{JobOutcome, JobSpec, JobStatus};
    pub use crate::pool::Engine;
    pub use crate::report::{BatchReport, WorkerStats};
    pub use crate::service::{
        EngineService, RejectedJob, ServiceJob, ServiceOutcome, ShutdownMode, SubmitError,
    };
    pub use crate::sweep::SweepBuilder;
    pub use mffv_solver::monitor::{CancelToken, StopPolicy, StopReason};
    pub use mffv_telemetry::{LogHistogram, MetricsRegistry, Tracer};
}
