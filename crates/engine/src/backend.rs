//! Backend selection for solves dispatched through the facade or the engine.
//!
//! A [`Backend`] value is a cheap, declarative description of *where* a solve
//! should run; [`Backend::instantiate`] turns it into the live
//! [`SolveBackend`] implementation from the owning crate.  All three paper
//! targets are available, and future targets (sharded multi-region fabric,
//! rayon host, …) slot in as new variants without touching any call site that
//! uses the facade or the batch engine.
//!
//! This enum lives in `mffv-engine` (below the umbrella crate) so that
//! [`JobSpec`](crate::JobSpec)s can name their target; the umbrella `mffv`
//! crate re-exports it from its original `mffv::backend` path.

use mffv_core::{DataflowBackend, SolverOptions};
use mffv_fabric::WseSpec;
use mffv_gpu_ref::{GpuRefBackend, GpuSpec};
use mffv_solver::backend::{HostBackend, Precision, SolveBackend};

/// One of the solve targets the facade and the batch engine can run.
#[derive(Clone, Copy, Debug)]
pub enum Backend {
    /// The sequential host solve (`f64` is the §V-B oracle).
    Host {
        /// Arithmetic precision of the host solve.
        precision: Precision,
    },
    /// The GPU-style reference (§IV): CUDA block/thread structure executed on
    /// the host, device time modelled on `spec`.
    GpuRef {
        /// The modelled GPU.
        spec: GpuSpec,
    },
    /// The simulated WSE-2 dataflow fabric (§III).
    Dataflow {
        /// The §III-E optimisation toggles.
        options: SolverOptions,
        /// Machine spec for the device-time model; `None` models a CS-2
        /// region matching the problem's fabric footprint.
        spec: Option<WseSpec>,
    },
}

impl Backend {
    /// The host oracle: sequential matrix-free CG in `f64`.
    pub fn host() -> Self {
        Backend::Host {
            precision: Precision::F64,
        }
    }

    /// A host solve at the paper's device precision.
    pub fn host_f32() -> Self {
        Backend::Host {
            precision: Precision::F32,
        }
    }

    /// The GPU-style reference on the paper's A100.
    pub fn gpu_ref() -> Self {
        Backend::GpuRef {
            spec: GpuSpec::a100(),
        }
    }

    /// The GPU-style reference on an explicit modelled GPU.
    pub fn gpu_ref_on(spec: GpuSpec) -> Self {
        Backend::GpuRef { spec }
    }

    /// The dataflow fabric with the paper's production options.
    pub fn dataflow() -> Self {
        Backend::Dataflow {
            options: SolverOptions::paper(),
            spec: None,
        }
    }

    /// The dataflow fabric with explicit options.
    pub fn dataflow_with(options: SolverOptions) -> Self {
        Backend::Dataflow {
            options,
            spec: None,
        }
    }

    /// The three paper targets in §V-B order: host oracle, GPU reference,
    /// dataflow fabric.  This is what `Simulation::run_all` executes when no
    /// backend was registered explicitly.
    pub fn standard_set() -> Vec<Backend> {
        vec![Backend::host(), Backend::gpu_ref(), Backend::dataflow()]
    }

    /// The backend's stable name (matches the `backend` field of its reports).
    pub fn name(&self) -> String {
        self.instantiate().name()
    }

    /// Materialise the live solver implementation.
    pub fn instantiate(&self) -> Box<dyn SolveBackend> {
        match *self {
            Backend::Host { precision } => Box::new(HostBackend { precision }),
            Backend::GpuRef { spec } => Box::new(GpuRefBackend::new(spec)),
            Backend::Dataflow { options, spec } => Box::new(DataflowBackend { options, spec }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_unique_within_the_standard_set() {
        let names: Vec<String> = Backend::standard_set().iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["host-f64", "gpu-ref-A100", "dataflow"]);
        assert_eq!(Backend::host_f32().name(), "host-f32");
        assert_eq!(Backend::gpu_ref_on(GpuSpec::h100()).name(), "gpu-ref-H100");
    }

    #[test]
    fn dataflow_constructors_carry_their_options() {
        let comm = Backend::dataflow_with(SolverOptions::communication_only(7));
        match comm {
            Backend::Dataflow { options, spec } => {
                assert!(!options.compute_enabled);
                assert_eq!(options.forced_iterations, 7);
                assert!(spec.is_none());
            }
            _ => panic!("expected a dataflow backend"),
        }
    }
}
