//! Persistent service mode: the long-running counterpart of the one-shot
//! [`Engine::run`] batch.
//!
//! [`Engine::start`] spawns the worker pool once and keeps it alive behind an
//! [`EngineService`] handle; jobs arrive one at a time through
//! [`EngineService::try_submit`] (non-blocking — a full queue is a typed
//! [`SubmitError::Busy`], never a hang) or
//! [`EngineService::submit_blocking`] (the dispatcher path, which *wants* the
//! queue's back-pressure).  Each submitted job carries its own completion
//! callback and, optionally, a live [`SolveEvent`] observer — the hook a
//! solve daemon uses to stream convergence over a socket while the solve
//! runs.
//!
//! Shutdown is explicit and two-flavoured ([`EngineService::shutdown`]):
//!
//! * [`ShutdownMode::Drain`] — refuse new submissions, let every queued job
//!   run to completion, then join the workers (the SIGTERM path: nothing
//!   accepted is dropped);
//! * [`ShutdownMode::Abort`] — additionally trip the service-wide
//!   [`CancelToken`], so in-flight solves stop at their next iteration
//!   boundary and still-queued jobs complete as
//!   [`JobStatus::Stopped`]/[`StopReason::Cancelled`] (their callbacks still
//!   fire — nothing is silently lost).

use crate::job::{JobSpec, JobStatus};
use crate::pool::{status_from_result, Engine};
use crate::queue::{BoundedQueue, TryPushError};
use mffv_solver::monitor::{monitor_fn, CancelToken, Flow, SolveEvent, StopReason};
use mffv_telemetry::{MetricsRegistry, Span, Stopwatch, Tracer};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// How [`EngineService::shutdown`] winds the pool down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Stop accepting, finish everything already queued, then join.
    Drain,
    /// Stop accepting, cancel in-flight and queued jobs, then join.
    Abort,
}

/// Why a submission was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — typed back-pressure.  `depth` is the
    /// queue's occupancy at refusal time, `capacity` its bound.
    Busy {
        /// Items queued when the submission was refused.
        depth: usize,
        /// The queue bound.
        capacity: usize,
    },
    /// The service has begun shutting down and accepts nothing new.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Busy { depth, capacity } => {
                write!(f, "engine queue full ({depth}/{capacity})")
            }
            SubmitError::ShuttingDown => f.write_str("engine service is shutting down"),
        }
    }
}

/// A refused submission: the error plus the job handed back, so the caller
/// can reply to its client (or retry) instead of losing the callbacks.
pub struct RejectedJob {
    /// Why the submission was refused.
    pub error: SubmitError,
    /// The job, returned unexecuted.
    pub job: ServiceJob,
}

/// How one service job ended — the payload of its completion callback.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// The ticket [`EngineService::try_submit`] returned for this job.
    pub ticket: u64,
    /// Human-readable job label (`workload @ backend`).
    pub label: String,
    /// How the job ended (same vocabulary as batch outcomes).
    pub status: JobStatus,
    /// Wall-clock seconds spent queued before a worker picked the job up.
    pub queue_wait_seconds: f64,
    /// Wall-clock seconds spent executing (`0.0` for jobs cancelled while
    /// still queued).
    pub exec_seconds: f64,
}

impl ServiceOutcome {
    /// Whether the job produced a completed report.
    pub fn is_success(&self) -> bool {
        matches!(self.status, JobStatus::Completed(_))
    }

    /// Why the job was stopped, when it was.
    pub fn stop_reason(&self) -> Option<StopReason> {
        match &self.status {
            JobStatus::Stopped { reason, .. } => Some(*reason),
            _ => None,
        }
    }
}

/// A live [`SolveEvent`] observer attached to a [`ServiceJob`].
pub type EventObserver = Box<dyn FnMut(&SolveEvent) -> Flow + Send>;

/// One unit of service work: the [`JobSpec`] plus its delivery callbacks.
///
/// `on_event` (optional) observes the live [`SolveEvent`] stream on the
/// worker thread — bitwise the recorded convergence history — and may stop
/// the solve by returning [`Flow::Stop`].  `on_done` always fires exactly
/// once, on the worker, with the job's [`ServiceOutcome`]; it runs behind
/// the same panic isolation as the job itself.
pub struct ServiceJob {
    /// The solve to run.
    pub job: JobSpec,
    /// Live event observer, called at every iteration boundary.
    pub on_event: Option<EventObserver>,
    /// Completion callback (fires exactly once per accepted job).
    pub on_done: Box<dyn FnOnce(ServiceOutcome) + Send>,
}

impl ServiceJob {
    /// A service job delivering its outcome to `on_done`.
    pub fn new(job: JobSpec, on_done: impl FnOnce(ServiceOutcome) + Send + 'static) -> Self {
        Self {
            job,
            on_event: None,
            on_done: Box::new(on_done),
        }
    }

    /// Attach a live event observer.
    pub fn with_events(
        mut self,
        on_event: impl FnMut(&SolveEvent) -> Flow + Send + 'static,
    ) -> Self {
        self.on_event = Some(Box::new(on_event));
        self
    }
}

/// A queued service job plus its telemetry context (mirrors the batch
/// pool's `QueuedJob`: span parentage travels in the value).
struct QueuedServiceJob {
    ticket: u64,
    job: ServiceJob,
    queued: Stopwatch,
    root: Span,
    wait: Span,
}

struct ServiceShared {
    queue: BoundedQueue<QueuedServiceJob>,
    /// Tripped by [`ShutdownMode::Abort`]; threaded into every job as its
    /// engine token, so in-flight solves stop at the next boundary.
    cancel: CancelToken,
    tracer: Tracer,
    metrics: Option<MetricsRegistry>,
    next_ticket: AtomicU64,
    /// Whether workers keep warm solve contexts across jobs (see
    /// [`Engine::with_context_pooling`]).
    pooling: bool,
}

/// Handle to a started engine service: submit jobs, inspect the queue, shut
/// down.  Dropping the handle without calling
/// [`shutdown`](EngineService::shutdown) detaches the workers (they keep
/// draining); explicit shutdown is the orderly path.
pub struct EngineService {
    shared: Arc<ServiceShared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Start the engine in persistent service mode: `workers()` threads over
    /// a `queue_capacity()`-bounded queue, inheriting the engine's tracer,
    /// metrics registry and (if configured) cancel token.
    pub fn start(&self) -> EngineService {
        let shared = Arc::new(ServiceShared {
            queue: BoundedQueue::new(self.queue_capacity()),
            cancel: self.cancel().cloned().unwrap_or_default(),
            tracer: self.tracer().clone(),
            metrics: self.metrics().cloned(),
            next_ticket: AtomicU64::new(0),
            pooling: self.context_pooling(),
        });
        let workers = (0..self.workers())
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, worker))
            })
            .collect();
        EngineService { shared, workers }
    }
}

impl EngineService {
    /// Number of jobs currently queued (racy snapshot; excludes in-flight
    /// jobs already claimed by a worker).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// The queue bound submissions are admitted against.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// Whether shutdown has begun (new submissions are refused).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.queue.is_closed()
    }

    /// The service-wide cancel token ([`ShutdownMode::Abort`] trips it; a
    /// daemon may also trip it directly for an emergency stop).
    pub fn cancel_token(&self) -> CancelToken {
        self.shared.cancel.clone()
    }

    /// Submit without blocking.  Returns the job's ticket, or hands the job
    /// back with [`SubmitError::Busy`] (queue full — the protocol reply, not
    /// a hang) / [`SubmitError::ShuttingDown`].
    // Handing the whole job back by value is the point of the Err: the
    // caller keeps its callbacks to reply/retry with.
    #[allow(clippy::result_large_err)]
    pub fn try_submit(&self, job: ServiceJob) -> Result<u64, RejectedJob> {
        let queued = self.enqueueable(job);
        let ticket = queued.ticket;
        match self.shared.queue.try_push(queued) {
            Ok(()) => {
                self.note_submitted();
                Ok(ticket)
            }
            Err(TryPushError::Full(item)) => Err(RejectedJob {
                error: SubmitError::Busy {
                    depth: self.shared.queue.depth(),
                    capacity: self.shared.queue.capacity(),
                },
                job: item.job,
            }),
            Err(TryPushError::Closed(item)) => Err(RejectedJob {
                error: SubmitError::ShuttingDown,
                job: item.job,
            }),
        }
    }

    /// Submit, blocking while the queue is full — the dispatcher path, which
    /// deliberately rides the queue's back-pressure.  Fails only when the
    /// service is shutting down (the job is handed back intact).
    #[allow(clippy::result_large_err)]
    pub fn submit_blocking(&self, job: ServiceJob) -> Result<u64, RejectedJob> {
        let queued = self.enqueueable(job);
        let ticket = queued.ticket;
        match self.shared.queue.push_returning(queued) {
            Ok(()) => {
                self.note_submitted();
                Ok(ticket)
            }
            Err(item) => Err(RejectedJob {
                error: SubmitError::ShuttingDown,
                job: item.job,
            }),
        }
    }

    /// Shut the service down.  [`ShutdownMode::Drain`] finishes everything
    /// queued; [`ShutdownMode::Abort`] cancels in-flight and queued jobs
    /// (their `on_done` callbacks still fire, as `Stopped(Cancelled)`).
    /// Joins every worker before returning.
    pub fn shutdown(self, mode: ShutdownMode) {
        if matches!(mode, ShutdownMode::Abort) {
            self.shared.cancel.cancel();
        }
        self.shared.queue.close();
        for handle in self.workers {
            // A worker that panicked outside job isolation has already lost
            // its thread; joining the rest is still the right cleanup.
            let _ = handle.join();
        }
    }

    fn enqueueable(&self, job: ServiceJob) -> QueuedServiceJob {
        let ticket = self.shared.next_ticket.fetch_add(1, Ordering::SeqCst);
        let root = self.shared.tracer.span(&job.job.label());
        let wait = root.child("queue-wait");
        QueuedServiceJob {
            ticket,
            job,
            queued: Stopwatch::start(),
            root,
            wait,
        }
    }

    fn note_submitted(&self) {
        if let Some(metrics) = &self.shared.metrics {
            metrics.inc("engine.service.jobs.submitted");
            metrics.max_gauge(
                "engine.service.queue.high_water",
                self.shared.queue.high_water() as f64,
            );
        }
    }
}

fn worker_loop(shared: &ServiceShared, worker: usize) {
    // One warm solve context per worker, kept across jobs for the lifetime
    // of the service (the steady-state serving path: after the first job of
    // a spec, repeats reuse the operator, preconditioner and CG scratch).
    let mut context_cache = shared
        .pooling
        .then(mffv_solver::context::SolveContextCache::default);
    let mut last_context_stats = mffv_solver::context::ContextStats::default();
    while let Some(item) = shared.queue.pop() {
        let QueuedServiceJob {
            ticket,
            job: service_job,
            queued,
            root,
            wait,
        } = item;
        let queue_wait_seconds = queued.elapsed_seconds();
        wait.finish();
        let ServiceJob {
            job,
            mut on_event,
            on_done,
        } = service_job;
        let label = job.label();
        let outcome = if shared.cancel.is_cancelled() {
            // Abort drains the queue as cancelled instead of solving: queued
            // jobs complete immediately, callbacks included.
            ServiceOutcome {
                ticket,
                label,
                status: JobStatus::Stopped {
                    reason: StopReason::Cancelled,
                    report: None,
                },
                queue_wait_seconds,
                exec_seconds: 0.0,
            }
        } else {
            let exec_span = root.child_on_lane("execute", worker as u32 + 1);
            let started = Stopwatch::start();
            let cache = context_cache.as_mut();
            let result = catch_unwind(AssertUnwindSafe(|| match on_event.as_mut() {
                Some(callback) => {
                    let mut streamer = monitor_fn(|event: &SolveEvent| (callback)(event));
                    job.execute_pooled(Some(&shared.cancel), &exec_span, Some(&mut streamer), cache)
                }
                None => job.execute_pooled(Some(&shared.cancel), &exec_span, None, cache),
            }));
            exec_span.finish();
            ServiceOutcome {
                ticket,
                label,
                status: status_from_result(result),
                queue_wait_seconds,
                exec_seconds: started.elapsed_seconds(),
            }
        };
        root.finish();
        if let Some(metrics) = &shared.metrics {
            let key = match &outcome.status {
                JobStatus::Completed(_) => "engine.service.jobs.ok",
                JobStatus::Stopped { .. } => "engine.service.jobs.stopped",
                JobStatus::Failed(_) => "engine.service.jobs.failed",
                JobStatus::Panicked(_) => "engine.service.jobs.panicked",
            };
            metrics.inc(key);
            metrics.observe("engine.service.exec_seconds", outcome.exec_seconds);
            if let Some(cache) = &context_cache {
                // Publish per-job context-cache deltas, so a long-lived
                // service's counters stay live rather than appearing only
                // at worker exit.
                let stats = cache.stats();
                metrics.add("engine.context.hits", stats.hits - last_context_stats.hits);
                metrics.add(
                    "engine.context.misses",
                    stats.misses - last_context_stats.misses,
                );
                metrics.add(
                    "engine.context.scratch_reallocs",
                    stats.scratch_reallocs - last_context_stats.scratch_reallocs,
                );
                last_context_stats = stats;
            }
        }
        // Completion callbacks get the same isolation as jobs: a panicking
        // callback must not take the worker down with it.
        let _ = catch_unwind(AssertUnwindSafe(move || (on_done)(outcome)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use mffv_mesh::WorkloadSpec;
    use std::sync::mpsc;

    fn quick_job() -> JobSpec {
        JobSpec::new(WorkloadSpec::quickstart().scaled(2), Backend::host())
    }

    #[test]
    fn service_executes_jobs_and_delivers_outcomes() {
        let service = Engine::new(2).start();
        let (tx, rx) = mpsc::channel();
        for _ in 0..4 {
            let tx = tx.clone();
            let submitted = service.try_submit(ServiceJob::new(quick_job(), move |outcome| {
                tx.send(outcome).ok();
            }));
            assert!(submitted.is_ok());
        }
        let outcomes: Vec<ServiceOutcome> = (0..4).map(|_| rx.recv().unwrap()).collect();
        assert!(outcomes.iter().all(|o| o.is_success()));
        service.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn full_queue_surfaces_as_typed_busy_not_a_hang() {
        // One worker plugged by a slow job + a capacity-1 queue: the second
        // queued submission must be refused as Busy.
        let service = Engine::new(1).with_queue_capacity(1).start();
        let (plug_tx, plug_rx) = mpsc::channel();
        let slow = JobSpec::new(
            WorkloadSpec {
                tolerance: 1e-30,
                max_iterations: 200_000,
                ..WorkloadSpec::quickstart()
            },
            Backend::host(),
        );
        let plug_started = mpsc::channel::<()>();
        let started_tx = plug_started.0.clone();
        service
            .try_submit(
                ServiceJob::new(slow.clone(), move |o| {
                    plug_tx.send(o).ok();
                })
                .with_events(move |_| {
                    started_tx.send(()).ok();
                    Flow::Continue
                }),
            )
            .ok()
            .expect("plug accepted");
        // Wait until the plug is actually executing (first event), so the
        // next submission stays queued.
        plug_started.1.recv().unwrap();
        assert!(service
            .try_submit(ServiceJob::new(quick_job(), |_| {}))
            .is_ok());
        match service.try_submit(ServiceJob::new(quick_job(), |_| {})) {
            Err(rejected) => {
                assert_eq!(
                    rejected.error,
                    SubmitError::Busy {
                        depth: 1,
                        capacity: 1
                    }
                );
            }
            Ok(_) => panic!("expected Busy"),
        }
        assert_eq!(service.queue_depth(), 1);
        service.shutdown(ShutdownMode::Abort);
        let plugged = plug_rx.recv().unwrap();
        assert!(
            matches!(
                plugged.status,
                JobStatus::Stopped {
                    reason: StopReason::Cancelled,
                    ..
                }
            ),
            "abort cancels the in-flight plug: {:?}",
            plugged.status
        );
    }

    #[test]
    fn drain_shutdown_finishes_queued_jobs() {
        let service = Engine::new(1).start();
        let (tx, rx) = mpsc::channel();
        for _ in 0..3 {
            let tx = tx.clone();
            // Blocking submit: this test exercises drain semantics, not
            // back-pressure, and `try_submit` races the worker's dequeue.
            service
                .submit_blocking(ServiceJob::new(quick_job(), move |o| {
                    tx.send(o).ok();
                }))
                .ok()
                .expect("accepted");
        }
        service.shutdown(ShutdownMode::Drain);
        let outcomes: Vec<ServiceOutcome> = rx.try_iter().collect();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes.iter().all(|o| o.is_success()));
    }

    #[test]
    fn submissions_after_shutdown_begin_are_refused() {
        let service = Engine::new(1).start();
        service.shared.queue.close();
        match service.try_submit(ServiceJob::new(quick_job(), |_| {})) {
            Err(rejected) => assert_eq!(rejected.error, SubmitError::ShuttingDown),
            Ok(_) => panic!("expected ShuttingDown"),
        }
        assert!(service.is_shutting_down());
        service.shutdown(ShutdownMode::Drain);
    }

    #[test]
    fn streamed_events_match_the_recorded_history() {
        use mffv_solver::monitor::RecordingMonitor;
        let service = Engine::new(1).start();
        let (tx, rx) = mpsc::channel();
        let (ev_tx, ev_rx) = mpsc::channel();
        let job = quick_job();
        service
            .try_submit(
                ServiceJob::new(job.clone(), move |o| {
                    tx.send(o).ok();
                })
                .with_events(move |event| {
                    ev_tx.send(*event).ok();
                    Flow::Continue
                }),
            )
            .ok()
            .expect("accepted");
        let outcome = rx.recv().unwrap();
        assert!(outcome.is_success());
        service.shutdown(ShutdownMode::Drain);
        let streamed: Vec<SolveEvent> = ev_rx.try_iter().collect();
        let mut recorder = RecordingMonitor::new();
        job.execute_streamed(None, &Span::null(), Some(&mut recorder))
            .unwrap();
        assert_eq!(
            streamed, recorder.events,
            "live stream == in-process replay"
        );
    }
}
