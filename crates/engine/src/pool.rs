//! The worker-pool batch executor.
//!
//! [`Engine::run`] pushes queued jobs through a [`BoundedQueue`] to a pool
//! of scoped `std::thread` workers.  Each worker pops jobs, executes them
//! behind [`std::panic::catch_unwind`], and writes the outcome into a result
//! slot addressed by the job's submission index — so the returned
//! [`BatchReport`] lists outcomes in submission order no matter how many
//! workers ran or how execution interleaved, and a panicking job costs
//! exactly one result slot, never the pool.
//!
//! With a recording [`Tracer`] attached ([`Engine::with_tracer`]) the batch
//! emits a span tree — `engine-batch` → one span per job label →
//! `queue-wait` (opened at submission, closed at pop) and `execute` on the
//! executing worker's lane — whose aggregated *shape* is identical for any
//! worker count.  Per-worker busy/idle stats and a merged execution-latency
//! histogram land in the report either way, and optionally in an attached
//! [`MetricsRegistry`] ([`Engine::with_metrics`]).

use crate::job::{JobOutcome, JobSpec, JobStatus};
use crate::queue::BoundedQueue;
use crate::report::{BatchReport, WorkerStats};
use mffv_solver::monitor::{CancelToken, StopReason};
use mffv_telemetry::{LogHistogram, MetricsRegistry, Span, Stopwatch, Tracer};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};

/// One queued unit of work: the job plus its telemetry context.  The
/// `queue-wait` span is opened on the submitting thread and closed on the
/// worker that pops the job — span parentage travels in the value.
struct QueuedJob {
    index: usize,
    job: JobSpec,
    /// Started at submission; read at pop for `queue_wait_seconds`.
    queued: Stopwatch,
    /// Per-job root span (child of `engine-batch`, named by the job label).
    root: Span,
    /// Open `queue-wait` child, finished the moment a worker dequeues.
    wait: Span,
}

/// The concurrent batch-solve engine.
#[derive(Clone, Debug)]
pub struct Engine {
    workers: usize,
    queue_capacity: usize,
    cancel: Option<CancelToken>,
    tracer: Tracer,
    metrics: Option<MetricsRegistry>,
    pooling: bool,
}

impl Engine {
    /// An engine with `workers` worker threads (at least 1) and a default
    /// queue bound of twice the worker count.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Self {
            workers,
            queue_capacity: workers * 2,
            cancel: None,
            tracer: Tracer::disabled(),
            metrics: None,
            pooling: true,
        }
    }

    /// An engine sized to the machine: one worker per available hardware
    /// thread (1 when parallelism cannot be determined).
    pub fn with_available_parallelism() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(workers)
    }

    /// Override the job-queue bound (back-pressure on the submitting thread).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Watch `token` for batch-level cancellation.  When the token trips,
    /// in-flight solves stop at their next iteration boundary and every job
    /// still queued is drained as [`JobStatus::Stopped`] with
    /// [`StopReason::Cancelled`] — the pool never blocks on a cancelled
    /// batch, and [`Engine::run`] still returns a complete, submission-
    /// ordered [`BatchReport`].
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Record batch execution as a span tree under `tracer`.  A disabled
    /// tracer (the default) keeps every span operation a no-op; job results
    /// are bitwise identical either way.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Publish batch rollups (job counts by status, queue high-water, the
    /// merged execution-latency histogram) into `registry` after each run.
    pub fn with_metrics(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Enable or disable the per-worker solve-context pool (on by default).
    ///
    /// With pooling on, each worker keeps a warm
    /// [`SolveContextCache`](mffv_solver::context::SolveContextCache) across
    /// jobs: the stencil plan, preconditioner and CG scratch are rebuilt only
    /// when a job's cache key differs from the previous job's.  Results are
    /// **bitwise identical** either way, for any worker count — the switch
    /// exists for A/B benchmarking, not correctness.
    pub fn with_context_pooling(mut self, pooling: bool) -> Self {
        self.pooling = pooling;
        self
    }

    /// Whether workers keep warm solve contexts across jobs.
    pub fn context_pooling(&self) -> bool {
        self.pooling
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The tracer attached with [`with_tracer`](Self::with_tracer) (disabled
    /// by default).
    pub(crate) fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The metrics registry attached with
    /// [`with_metrics`](Self::with_metrics), if any.
    pub(crate) fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    /// The batch-level cancel token attached with
    /// [`with_cancel_token`](Self::with_cancel_token), if any.
    pub(crate) fn cancel(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Bound of the job queue.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Execute `jobs` across the worker pool and aggregate the results.
    ///
    /// Guarantees:
    /// * **deterministic ordering** — `report.outcomes[i]` is job `i`, for
    ///   any worker count;
    /// * **failure isolation** — a job that returns an error or panics is
    ///   reported as [`JobStatus::Failed`] / [`JobStatus::Panicked`] without
    ///   affecting other jobs or the pool;
    /// * **determinism of results** — each job materialises its own workload
    ///   from its spec and seed, so its report is bitwise identical to a
    ///   serial run of the same spec.
    pub fn run(&self, jobs: Vec<JobSpec>) -> BatchReport {
        let started = Stopwatch::start();
        let total = jobs.len();
        let batch_span = self.tracer.span("engine-batch");
        let queue: BoundedQueue<QueuedJob> = BoundedQueue::new(self.queue_capacity);
        let slots: Mutex<Vec<Option<JobOutcome>>> = Mutex::new((0..total).map(|_| None).collect());
        // An empty batch spawns no workers: there is nothing to pop, and a
        // phantom worker would report a `WorkerStats` row for work that never
        // existed.
        let spawned = if total == 0 {
            0
        } else {
            self.workers.min(total)
        };
        // Each worker folds its stats locally (no per-job contention) and
        // pushes one `(stats, histogram)` pair at shutdown.
        let worker_stats: Mutex<Vec<(WorkerStats, LogHistogram)>> =
            Mutex::new(Vec::with_capacity(spawned));

        std::thread::scope(|scope| {
            for worker in 0..spawned {
                let queue = &queue;
                let slots = &slots;
                let worker_stats = &worker_stats;
                scope.spawn(move || {
                    let mut local = WorkerStats {
                        worker,
                        jobs: 0,
                        busy_seconds: 0.0,
                    };
                    let mut exec_hist = LogHistogram::new();
                    // One warm solve context per worker, reused across jobs
                    // (results stay bitwise identical with or without it).
                    let mut context_cache = self
                        .pooling
                        .then(mffv_solver::context::SolveContextCache::default);
                    while let Some(item) = queue.pop() {
                        let queue_wait = item.queued.elapsed_seconds();
                        item.wait.finish();
                        // A tripped batch token drains the queue instead of
                        // blocking the pool: jobs that never started report
                        // `Stopped(Cancelled)` with no partial state (and no
                        // execution latency — only their real queue wait).
                        let outcome = if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
                        {
                            JobOutcome {
                                index: item.index,
                                label: item.job.label(),
                                status: JobStatus::Stopped {
                                    reason: StopReason::Cancelled,
                                    report: None,
                                },
                                queue_wait_seconds: queue_wait,
                                exec_seconds: 0.0,
                            }
                        } else {
                            let exec_span = item.root.child_on_lane("execute", worker as u32 + 1);
                            let outcome = execute_job(
                                item.index,
                                &item.job,
                                self.cancel.as_ref(),
                                &exec_span,
                                queue_wait,
                                context_cache.as_mut(),
                            );
                            exec_span.finish();
                            local.busy_seconds += outcome.exec_seconds;
                            exec_hist.record(outcome.exec_seconds);
                            outcome
                        };
                        local.jobs += 1;
                        let index = outcome.index;
                        let mut slots = slots.lock().unwrap_or_else(PoisonError::into_inner);
                        slots[index] = Some(outcome);
                    }
                    if let (Some(metrics), Some(cache)) = (&self.metrics, &context_cache) {
                        let stats = cache.stats();
                        metrics.add("engine.context.hits", stats.hits);
                        metrics.add("engine.context.misses", stats.misses);
                        metrics.add("engine.context.scratch_reallocs", stats.scratch_reallocs);
                    }
                    let mut stats = worker_stats.lock().unwrap_or_else(PoisonError::into_inner);
                    stats.push((local, exec_hist));
                });
            }
            for (index, job) in jobs.into_iter().enumerate() {
                let root = batch_span.child(&job.label());
                let wait = root.child("queue-wait");
                queue.push(QueuedJob {
                    index,
                    job,
                    queued: Stopwatch::start(),
                    root,
                    wait,
                });
            }
            queue.close();
        });

        let queue_high_water = queue.high_water();
        let outcomes: Vec<JobOutcome> = slots
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_iter()
            // audit: allow(panic) — invariant: queue.close() plus the scope
            // join guarantee every submitted index was popped and its slot
            // written before we get here (panicking jobs are caught earlier).
            .map(|slot| slot.expect("every queued job writes its result slot"))
            .collect();
        let mut per_worker = worker_stats
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        per_worker.sort_by_key(|(stats, _)| stats.worker);
        let mut exec_histogram = LogHistogram::new();
        for (_, hist) in &per_worker {
            exec_histogram.merge(hist);
        }
        batch_span.finish();
        let report = BatchReport::new(outcomes, spawned, started.elapsed_seconds())
            .with_engine_stats(
                per_worker.into_iter().map(|(stats, _)| stats).collect(),
                exec_histogram,
                queue_high_water,
            );
        if let Some(metrics) = &self.metrics {
            metrics.add("engine.jobs.submitted", report.jobs() as u64);
            metrics.add("engine.jobs.ok", report.succeeded() as u64);
            metrics.add("engine.jobs.stopped", report.stopped() as u64);
            metrics.add("engine.jobs.failed", report.failed() as u64);
            metrics.max_gauge("engine.queue.high_water", report.queue_high_water as f64);
            metrics.merge_histogram("engine.exec_seconds", &report.exec_histogram);
        }
        report
    }
}

/// Run one job behind panic isolation, timing its execution.  An
/// early-stopped solve (job policy or batch cancellation) becomes
/// [`JobStatus::Stopped`] carrying the partial report.
fn execute_job(
    index: usize,
    job: &JobSpec,
    engine_token: Option<&CancelToken>,
    span: &Span,
    queue_wait_seconds: f64,
    context_cache: Option<&mut mffv_solver::context::SolveContextCache>,
) -> JobOutcome {
    let label = job.label();
    let started = Stopwatch::start();
    let status = status_from_result(catch_unwind(AssertUnwindSafe(|| {
        job.execute_pooled(engine_token, span, None, context_cache)
    })));
    JobOutcome {
        index,
        label,
        status,
        queue_wait_seconds,
        exec_seconds: started.elapsed_seconds(),
    }
}

/// Map a panic-isolated execution result onto a [`JobStatus`]: early stops
/// (policy, deadline, cancellation) are `Stopped`, typed backend errors are
/// `Failed`, and a caught panic becomes `Panicked` with its message.  Shared
/// by the batch workers above and the persistent service workers
/// ([`crate::service`]).
pub(crate) fn status_from_result(
    result: std::thread::Result<
        Result<mffv_solver::backend::SolveReport, mffv_solver::backend::SolveError>,
    >,
) -> JobStatus {
    match result {
        Ok(Ok(report)) => match report.stopped {
            Some(reason) => JobStatus::Stopped {
                reason,
                report: Some(report),
            },
            None => JobStatus::Completed(report),
        },
        Ok(Err(error)) => match error.stop_reason() {
            Some(reason) => JobStatus::Stopped {
                reason,
                report: None,
            },
            None => JobStatus::Failed(error),
        },
        Err(payload) => JobStatus::Panicked(panic_message(payload.as_ref())),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use mffv_mesh::WorkloadSpec;

    fn tiny_jobs(n: usize) -> Vec<JobSpec> {
        (0..n)
            .map(|i| {
                JobSpec::new(
                    WorkloadSpec::quickstart().scaled(2 + (i % 2)),
                    Backend::host(),
                )
            })
            .collect()
    }

    #[test]
    fn outcomes_keep_submission_order_for_any_worker_count() {
        let jobs = tiny_jobs(6);
        for workers in [1, 3, 8] {
            let report = Engine::new(workers).run(jobs.clone());
            assert_eq!(report.outcomes.len(), 6);
            for (i, outcome) in report.outcomes.iter().enumerate() {
                assert_eq!(outcome.index, i);
                assert_eq!(outcome.label, jobs[i].label());
                assert!(outcome.is_success(), "{:?}", outcome.failure());
            }
        }
    }

    #[test]
    fn invalid_jobs_fail_at_intake_without_stopping_the_batch() {
        let mut jobs = tiny_jobs(3);
        jobs.insert(
            1,
            JobSpec::new(
                WorkloadSpec {
                    max_iterations: 0,
                    ..WorkloadSpec::quickstart()
                },
                Backend::host(),
            ),
        );
        let report = Engine::new(2).run(jobs);
        assert_eq!(report.succeeded(), 3);
        assert_eq!(report.failed(), 1);
        let failure = report.outcomes[1].failure().unwrap();
        assert!(failure.contains("max_iterations"), "{failure}");
    }

    #[test]
    fn an_empty_batch_reports_zero_jobs_and_spawns_no_workers() {
        let report = Engine::new(4).run(Vec::new());
        assert_eq!(report.jobs(), 0);
        assert!(report.all_succeeded());
        assert_eq!(report.latency.samples, 0);
        // No phantom workers: nothing ran, so no WorkerStats rows either.
        assert_eq!(report.workers, 0);
        assert!(report.worker_stats.is_empty());
        assert_eq!(report.exec_histogram.count(), 0);
    }

    #[test]
    fn context_pooling_is_bitwise_invisible_and_counted() {
        // Two specs alternating across one worker: every switch is a cache
        // miss, every repeat a hit; outcomes must be bitwise identical to the
        // cache-off engine.
        let jobs = tiny_jobs(6);
        let registry = MetricsRegistry::new();
        let pooled = Engine::new(1)
            .with_metrics(registry.clone())
            .run(jobs.clone());
        let unpooled = Engine::new(1).with_context_pooling(false).run(jobs);
        assert!(pooled.all_succeeded() && unpooled.all_succeeded());
        for (a, b) in pooled.outcomes.iter().zip(&unpooled.outcomes) {
            let (ra, rb) = (a.report().unwrap(), b.report().unwrap());
            assert_eq!(
                ra.history.residual_norms_squared,
                rb.history.residual_norms_squared
            );
            let bits = |r: &mffv_solver::backend::SolveReport| -> Vec<u64> {
                r.pressure.as_slice().iter().map(|v| v.to_bits()).collect()
            };
            assert_eq!(bits(ra), bits(rb));
        }
        // tiny_jobs alternates two specs, so a single worker alternates
        // miss/hit; at minimum the first job of each spec misses.
        let hits = registry.counter("engine.context.hits");
        let misses = registry.counter("engine.context.misses");
        assert!(misses >= 2, "misses = {misses}");
        assert_eq!(hits + misses, 2 * 6, "workload + context lookups per job");
    }

    #[test]
    fn worker_and_queue_floors() {
        let engine = Engine::new(0).with_queue_capacity(0);
        assert_eq!(engine.workers(), 1);
        assert_eq!(engine.queue_capacity(), 1);
        assert!(Engine::with_available_parallelism().workers() >= 1);
    }

    #[test]
    fn engine_stats_cover_every_worker_and_job() {
        let report = Engine::new(3).run(tiny_jobs(5));
        assert_eq!(report.worker_stats.len(), 3);
        let jobs: usize = report.worker_stats.iter().map(|w| w.jobs).sum();
        assert_eq!(jobs, 5);
        assert_eq!(report.exec_histogram.count(), 5);
        assert!(report.queue_high_water >= 1);
        assert!(report.queue_high_water <= Engine::new(3).queue_capacity());
        for (i, w) in report.worker_stats.iter().enumerate() {
            assert_eq!(w.worker, i);
            assert!(w.busy_seconds <= report.busy_seconds() + 1e-9);
        }
    }

    #[test]
    fn traced_batches_emit_a_span_per_job_with_wait_and_execute_children() {
        let tracer = Tracer::new();
        let jobs = tiny_jobs(4);
        let report = Engine::new(2).with_tracer(tracer.clone()).run(jobs.clone());
        assert!(report.all_succeeded());
        let tree = tracer.phase_tree();
        let batch = tree.find("engine-batch").expect("batch span");
        for job in &jobs {
            let job_node = batch.find(&job.label()).expect("per-job span");
            assert!(job_node.find("queue-wait").is_some());
            assert!(job_node.find("execute").is_some());
        }
    }

    #[test]
    fn metrics_registry_collects_batch_rollups() {
        let registry = MetricsRegistry::new();
        let report = Engine::new(2)
            .with_metrics(registry.clone())
            .run(tiny_jobs(3));
        assert!(report.all_succeeded());
        assert_eq!(registry.counter("engine.jobs.submitted"), 3);
        assert_eq!(registry.counter("engine.jobs.ok"), 3);
        assert_eq!(registry.counter("engine.jobs.failed"), 0);
        assert!(registry.gauge("engine.queue.high_water").unwrap() >= 1.0);
        assert_eq!(
            registry.histogram("engine.exec_seconds").unwrap().count(),
            3
        );
    }
}
