//! The worker-pool batch executor.
//!
//! [`Engine::run`] pushes `(index, JobSpec)` pairs through a
//! [`BoundedQueue`] to a pool of scoped `std::thread` workers.  Each worker
//! pops jobs, executes them behind [`std::panic::catch_unwind`], and writes
//! the outcome into a result slot addressed by the job's submission index —
//! so the returned [`BatchReport`] lists outcomes in submission order no
//! matter how many workers ran or how execution interleaved, and a panicking
//! job costs exactly one result slot, never the pool.

use crate::job::{JobOutcome, JobSpec, JobStatus};
use crate::queue::BoundedQueue;
use crate::report::BatchReport;
use mffv_solver::monitor::{CancelToken, StopReason};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// The concurrent batch-solve engine.
#[derive(Clone, Debug)]
pub struct Engine {
    workers: usize,
    queue_capacity: usize,
    cancel: Option<CancelToken>,
}

impl Engine {
    /// An engine with `workers` worker threads (at least 1) and a default
    /// queue bound of twice the worker count.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        Self {
            workers,
            queue_capacity: workers * 2,
            cancel: None,
        }
    }

    /// An engine sized to the machine: one worker per available hardware
    /// thread (1 when parallelism cannot be determined).
    pub fn with_available_parallelism() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(workers)
    }

    /// Override the job-queue bound (back-pressure on the submitting thread).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Watch `token` for batch-level cancellation.  When the token trips,
    /// in-flight solves stop at their next iteration boundary and every job
    /// still queued is drained as [`JobStatus::Stopped`] with
    /// [`StopReason::Cancelled`] — the pool never blocks on a cancelled
    /// batch, and [`Engine::run`] still returns a complete, submission-
    /// ordered [`BatchReport`].
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Bound of the job queue.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Execute `jobs` across the worker pool and aggregate the results.
    ///
    /// Guarantees:
    /// * **deterministic ordering** — `report.outcomes[i]` is job `i`, for
    ///   any worker count;
    /// * **failure isolation** — a job that returns an error or panics is
    ///   reported as [`JobStatus::Failed`] / [`JobStatus::Panicked`] without
    ///   affecting other jobs or the pool;
    /// * **determinism of results** — each job materialises its own workload
    ///   from its spec and seed, so its report is bitwise identical to a
    ///   serial run of the same spec.
    pub fn run(&self, jobs: Vec<JobSpec>) -> BatchReport {
        // audit: allow(wall-clock) — telemetry: feeds BatchReport.wall_seconds
        // (throughput stats), never a numeric decision.
        #[allow(clippy::disallowed_methods)]
        let started = Instant::now();
        let total = jobs.len();
        let queue: BoundedQueue<(usize, JobSpec)> = BoundedQueue::new(self.queue_capacity);
        let slots: Mutex<Vec<Option<JobOutcome>>> = Mutex::new((0..total).map(|_| None).collect());

        std::thread::scope(|scope| {
            let spawned = self.workers.min(total.max(1));
            for _ in 0..spawned {
                scope.spawn(|| {
                    while let Some((index, job)) = queue.pop() {
                        // A tripped batch token drains the queue instead of
                        // blocking the pool: jobs that never started report
                        // `Stopped(Cancelled)` with no partial state.
                        let outcome = if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
                        {
                            JobOutcome {
                                index,
                                label: job.label(),
                                status: JobStatus::Stopped {
                                    reason: StopReason::Cancelled,
                                    report: None,
                                },
                                latency_seconds: 0.0,
                            }
                        } else {
                            execute_job(index, &job, self.cancel.as_ref())
                        };
                        let mut slots = slots.lock().unwrap_or_else(PoisonError::into_inner);
                        slots[index] = Some(outcome);
                    }
                });
            }
            for (index, job) in jobs.into_iter().enumerate() {
                queue.push((index, job));
            }
            queue.close();
        });

        let outcomes: Vec<JobOutcome> = slots
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_iter()
            // audit: allow(panic) — invariant: queue.close() plus the scope
            // join guarantee every submitted index was popped and its slot
            // written before we get here (panicking jobs are caught earlier).
            .map(|slot| slot.expect("every queued job writes its result slot"))
            .collect();
        BatchReport::new(
            outcomes,
            self.workers.min(total.max(1)),
            started.elapsed().as_secs_f64(),
        )
    }
}

/// Run one job behind panic isolation, timing it.  An early-stopped solve
/// (job policy or batch cancellation) becomes [`JobStatus::Stopped`] carrying
/// the partial report.
fn execute_job(index: usize, job: &JobSpec, engine_token: Option<&CancelToken>) -> JobOutcome {
    let label = job.label();
    // audit: allow(wall-clock) — telemetry: feeds JobOutcome.latency_seconds,
    // never a numeric decision.
    #[allow(clippy::disallowed_methods)]
    let started = Instant::now();
    let status = match catch_unwind(AssertUnwindSafe(|| job.execute_cancellable(engine_token))) {
        Ok(Ok(report)) => match report.stopped {
            Some(reason) => JobStatus::Stopped {
                reason,
                report: Some(report),
            },
            None => JobStatus::Completed(report),
        },
        Ok(Err(error)) => match error.stop_reason() {
            Some(reason) => JobStatus::Stopped {
                reason,
                report: None,
            },
            None => JobStatus::Failed(error),
        },
        Err(payload) => JobStatus::Panicked(panic_message(payload.as_ref())),
    };
    JobOutcome {
        index,
        label,
        status,
        latency_seconds: started.elapsed().as_secs_f64(),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use mffv_mesh::WorkloadSpec;

    fn tiny_jobs(n: usize) -> Vec<JobSpec> {
        (0..n)
            .map(|i| {
                JobSpec::new(
                    WorkloadSpec::quickstart().scaled(2 + (i % 2)),
                    Backend::host(),
                )
            })
            .collect()
    }

    #[test]
    fn outcomes_keep_submission_order_for_any_worker_count() {
        let jobs = tiny_jobs(6);
        for workers in [1, 3, 8] {
            let report = Engine::new(workers).run(jobs.clone());
            assert_eq!(report.outcomes.len(), 6);
            for (i, outcome) in report.outcomes.iter().enumerate() {
                assert_eq!(outcome.index, i);
                assert_eq!(outcome.label, jobs[i].label());
                assert!(outcome.is_success(), "{:?}", outcome.failure());
            }
        }
    }

    #[test]
    fn invalid_jobs_fail_at_intake_without_stopping_the_batch() {
        let mut jobs = tiny_jobs(3);
        jobs.insert(
            1,
            JobSpec::new(
                WorkloadSpec {
                    max_iterations: 0,
                    ..WorkloadSpec::quickstart()
                },
                Backend::host(),
            ),
        );
        let report = Engine::new(2).run(jobs);
        assert_eq!(report.succeeded(), 3);
        assert_eq!(report.failed(), 1);
        let failure = report.outcomes[1].failure().unwrap();
        assert!(failure.contains("max_iterations"), "{failure}");
    }

    #[test]
    fn an_empty_batch_reports_zero_jobs() {
        let report = Engine::new(4).run(Vec::new());
        assert_eq!(report.jobs(), 0);
        assert!(report.all_succeeded());
        assert_eq!(report.latency.samples, 0);
    }

    #[test]
    fn worker_and_queue_floors() {
        let engine = Engine::new(0).with_queue_capacity(0);
        assert_eq!(engine.workers(), 1);
        assert_eq!(engine.queue_capacity(), 1);
        assert!(Engine::with_available_parallelism().workers() >= 1);
    }
}
