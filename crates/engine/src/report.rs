//! Aggregated results of one engine batch.
//!
//! A [`BatchReport`] keeps every per-job [`JobOutcome`] (in submission order)
//! and summarises the run as a service would: wall-clock time, throughput in
//! jobs/s and cells/s, and latency percentiles over the per-job solve times
//! (via [`mffv_perf::LatencyStats`]).  When the batch ran through
//! [`Engine::run`](crate::Engine::run) the report also carries the engine's
//! own telemetry: per-worker busy/idle accounting ([`WorkerStats`]), a
//! mergeable log₂-bucket execution-latency histogram, and the queue's
//! high-water depth.  Its `Display` impl prints the per-job status table
//! followed by the aggregate lines — the output the sweep report binary and
//! the CI smoke step show.

use crate::job::JobOutcome;
use mffv_perf::report::format_table;
use mffv_perf::LatencyStats;
use mffv_solver::backend::SolveReport;
use mffv_telemetry::LogHistogram;

/// Busy/idle accounting for one worker thread of a batch.
#[derive(Clone, Debug, Default)]
pub struct WorkerStats {
    /// Worker index (0-based; lane `worker + 1` in Chrome traces).
    pub worker: usize,
    /// Jobs this worker executed (including drained cancellations).
    pub jobs: usize,
    /// Wall-clock seconds the worker spent executing jobs.
    pub busy_seconds: f64,
}

impl WorkerStats {
    /// Seconds the worker spent idle (queue waits, startup/shutdown skew)
    /// out of `wall_seconds` of batch wall time.
    pub fn idle_seconds(&self, wall_seconds: f64) -> f64 {
        (wall_seconds - self.busy_seconds).max(0.0)
    }

    /// Fraction of the batch wall time this worker was busy (`0..=1`).
    pub fn utilisation(&self, wall_seconds: f64) -> f64 {
        if wall_seconds > 0.0 {
            (self.busy_seconds / wall_seconds).clamp(0.0, 1.0)
        } else {
            0.0
        }
    }
}

/// Aggregated outcome of one [`Engine::run`](crate::Engine::run) call.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job outcomes, in submission order (independent of worker count).
    pub outcomes: Vec<JobOutcome>,
    /// Number of worker threads the batch ran on.
    pub workers: usize,
    /// Wall-clock seconds from submission of the first job to completion of
    /// the last.
    pub wall_seconds: f64,
    /// Latency percentiles over the per-job execution wall times.
    pub latency: LatencyStats,
    /// Per-worker busy/idle accounting, by worker index.  Empty for reports
    /// assembled outside [`Engine::run`](crate::Engine::run).
    pub worker_stats: Vec<WorkerStats>,
    /// Log₂-bucket histogram of per-job execution latencies, merged from the
    /// workers' thread-local histograms.  Empty when the engine did not
    /// collect one.
    pub exec_histogram: LogHistogram,
    /// Largest queue depth the bounded job queue reached (back-pressure
    /// indicator; at most the engine's queue capacity).
    pub queue_high_water: usize,
}

impl BatchReport {
    /// Aggregate `outcomes` (already in submission order).
    ///
    /// Latency percentiles cover only jobs that actually ran on a worker:
    /// queued jobs drained by a cancellation (stopped with no partial
    /// report) never experienced an execution latency and would skew the
    /// percentiles toward zero.
    pub fn new(outcomes: Vec<JobOutcome>, workers: usize, wall_seconds: f64) -> Self {
        let latencies: Vec<f64> = outcomes
            .iter()
            .filter(|o| !(o.is_stopped() && o.partial_report().is_none()))
            .map(|o| o.exec_seconds)
            .collect();
        Self {
            outcomes,
            workers,
            wall_seconds,
            latency: LatencyStats::from_samples(&latencies),
            worker_stats: Vec::new(),
            exec_histogram: LogHistogram::new(),
            queue_high_water: 0,
        }
    }

    /// Attach the engine's own telemetry: per-worker busy/idle stats, the
    /// merged execution-latency histogram, and the queue high-water mark.
    pub fn with_engine_stats(
        mut self,
        worker_stats: Vec<WorkerStats>,
        exec_histogram: LogHistogram,
        queue_high_water: usize,
    ) -> Self {
        self.worker_stats = worker_stats;
        self.exec_histogram = exec_histogram;
        self.queue_high_water = queue_high_water;
        self
    }

    /// Number of jobs in the batch.
    pub fn jobs(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of jobs that produced a completed report.
    pub fn succeeded(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_success()).count()
    }

    /// Number of jobs stopped early (policy, deadline or cancellation) —
    /// deliberately not counted as failures.
    pub fn stopped(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_stopped()).count()
    }

    /// Number of jobs that failed or panicked.
    pub fn failed(&self) -> usize {
        self.jobs() - self.succeeded() - self.stopped()
    }

    /// Whether every job produced a completed report (no failures *and* no
    /// early stops).
    pub fn all_succeeded(&self) -> bool {
        self.succeeded() == self.jobs()
    }

    /// Completed solve reports, in submission order.
    pub fn reports(&self) -> impl Iterator<Item = &SolveReport> {
        self.outcomes.iter().filter_map(|o| o.report())
    }

    /// Batch throughput in jobs per wall-clock second.
    pub fn jobs_per_second(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.jobs() as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Aggregate solve throughput in cell·iterations per wall-clock second,
    /// summed over completed jobs — the engine-level analogue of the paper's
    /// cells/s weak-scaling metric.
    pub fn cell_iterations_per_second(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        let work = mffv_mesh::seq_sum(
            self.reports()
                .map(|r| r.pressure.dims().num_cells() as f64 * r.iterations() as f64),
        );
        work / self.wall_seconds
    }

    /// Sum of per-job execution latencies — the serial-execution time the
    /// pool amortised; `busy_seconds / wall_seconds` is the effective
    /// parallelism.
    pub fn busy_seconds(&self) -> f64 {
        mffv_mesh::seq_sum(self.outcomes.iter().map(|o| o.exec_seconds))
    }

    /// Sum of per-job queue waits — the back-pressure cost the bounded queue
    /// imposed across the batch.
    pub fn queue_wait_seconds(&self) -> f64 {
        mffv_mesh::seq_sum(self.outcomes.iter().map(|o| o.queue_wait_seconds))
    }
}

impl std::fmt::Display for BatchReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rows: Vec<Vec<String>> = self
            .outcomes
            .iter()
            .map(|o| {
                let (iterations, converged, detail) = match (o.report(), o.stop_reason()) {
                    (Some(r), _) => (
                        r.iterations().to_string(),
                        r.converged().to_string(),
                        String::new(),
                    ),
                    (None, Some(reason)) => (
                        o.partial_report()
                            .map(|r| r.iterations().to_string())
                            .unwrap_or_else(|| "-".into()),
                        "-".into(),
                        format!("stopped: {reason}"),
                    ),
                    (None, None) => ("-".into(), "-".into(), o.failure().unwrap_or_default()),
                };
                vec![
                    o.index.to_string(),
                    o.label.clone(),
                    o.status_label().to_string(),
                    iterations,
                    converged,
                    format!("{:.3e}", o.queue_wait_seconds),
                    format!("{:.3e}", o.exec_seconds),
                    detail,
                ]
            })
            .collect();
        writeln!(
            f,
            "{}",
            format_table(
                &[
                    "#",
                    "Job",
                    "Status",
                    "Iterations",
                    "Converged",
                    "Queue [s]",
                    "Exec [s]",
                    "Detail"
                ],
                &rows
            )
        )?;
        writeln!(
            f,
            "{} jobs on {} workers: {} ok, {} stopped, {} failed in {:.3} s wall ({:.2} jobs/s, {:.3e} cell-iter/s)",
            self.jobs(),
            self.workers,
            self.succeeded(),
            self.stopped(),
            self.failed(),
            self.wall_seconds,
            self.jobs_per_second(),
            self.cell_iterations_per_second(),
        )?;
        write!(
            f,
            "latency: p50 {:.3e} s, p95 {:.3e} s, p99 {:.3e} s, mean {:.3e} s, max {:.3e} s",
            self.latency.p50,
            self.latency.p95,
            self.latency.p99,
            self.latency.mean,
            self.latency.max
        )?;
        if self.queue_high_water > 0 || !self.worker_stats.is_empty() {
            write!(
                f,
                "\nqueue: high-water {} items, total wait {:.3e} s",
                self.queue_high_water,
                self.queue_wait_seconds()
            )?;
        }
        for w in &self.worker_stats {
            write!(
                f,
                "\nworker {}: {} jobs, busy {:.3e} s, idle {:.3e} s ({:.0}% busy)",
                w.worker,
                w.jobs,
                w.busy_seconds,
                w.idle_seconds(self.wall_seconds),
                w.utilisation(self.wall_seconds) * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobStatus;
    use mffv_solver::backend::SolveError;

    fn outcome(index: usize, status: JobStatus, latency: f64) -> JobOutcome {
        JobOutcome {
            index,
            label: format!("job-{index} @ host-f64"),
            status,
            queue_wait_seconds: 0.5 * latency,
            exec_seconds: latency,
        }
    }

    #[test]
    fn aggregates_counts_and_latencies() {
        let report = BatchReport::new(
            vec![
                outcome(
                    0,
                    JobStatus::Failed(SolveError::new("host-f64", "bad")),
                    0.1,
                ),
                outcome(1, JobStatus::Panicked("boom".into()), 0.2),
            ],
            4,
            0.5,
        );
        assert_eq!(report.jobs(), 2);
        assert_eq!(report.succeeded(), 0);
        assert_eq!(report.failed(), 2);
        assert!(!report.all_succeeded());
        assert_eq!(report.latency.samples, 2);
        assert!((report.jobs_per_second() - 4.0).abs() < 1e-12);
        assert!((report.busy_seconds() - 0.3).abs() < 1e-12);
        assert!((report.queue_wait_seconds() - 0.15).abs() < 1e-12);
        assert_eq!(report.cell_iterations_per_second(), 0.0);
    }

    #[test]
    fn stopped_jobs_are_counted_apart_from_failures() {
        use mffv_solver::monitor::StopReason;
        let report = BatchReport::new(
            vec![
                outcome(
                    0,
                    JobStatus::Stopped {
                        reason: StopReason::Cancelled,
                        report: None,
                    },
                    0.0,
                ),
                outcome(
                    1,
                    JobStatus::Failed(SolveError::new("host-f64", "bad")),
                    0.1,
                ),
            ],
            2,
            0.5,
        );
        assert_eq!(report.jobs(), 2);
        assert_eq!(report.stopped(), 1);
        assert_eq!(report.failed(), 1);
        assert_eq!(report.succeeded(), 0);
        assert!(!report.all_succeeded());
        // The drained job never ran: its synthetic 0.0 latency must not
        // enter the percentile samples.
        assert_eq!(report.latency.samples, 1);
        let text = report.to_string();
        assert!(text.contains("stopped: cancelled"), "{text}");
        assert!(text.contains("1 stopped"), "{text}");
    }

    #[test]
    fn display_shows_status_throughput_and_percentiles() {
        let report = BatchReport::new(
            vec![outcome(
                0,
                JobStatus::Failed(SolveError::new("host-f64", "invalid workload")),
                0.25,
            )],
            2,
            1.0,
        );
        let text = report.to_string();
        assert!(text.contains("failed"), "{text}");
        assert!(text.contains("invalid workload"), "{text}");
        assert!(text.contains("jobs/s"), "{text}");
        assert!(text.contains("p50"), "{text}");
        assert!(text.contains("p95"), "{text}");
        assert!(text.contains("p99"), "{text}");
        assert!(text.contains("Queue [s]"), "{text}");
        assert!(text.contains("Exec [s]"), "{text}");
    }

    #[test]
    fn engine_stats_attach_and_render() {
        let mut hist = LogHistogram::new();
        hist.record(0.25);
        let report = BatchReport::new(
            vec![outcome(
                0,
                JobStatus::Failed(SolveError::new("host-f64", "bad")),
                0.25,
            )],
            2,
            1.0,
        )
        .with_engine_stats(
            vec![
                WorkerStats {
                    worker: 0,
                    jobs: 1,
                    busy_seconds: 0.25,
                },
                WorkerStats {
                    worker: 1,
                    jobs: 0,
                    busy_seconds: 0.0,
                },
            ],
            hist,
            3,
        );
        assert_eq!(report.queue_high_water, 3);
        assert_eq!(report.exec_histogram.count(), 1);
        assert!((report.worker_stats[0].idle_seconds(1.0) - 0.75).abs() < 1e-12);
        assert!((report.worker_stats[0].utilisation(1.0) - 0.25).abs() < 1e-12);
        let text = report.to_string();
        assert!(text.contains("high-water 3"), "{text}");
        assert!(text.contains("worker 0: 1 jobs"), "{text}");
        assert!(text.contains("worker 1: 0 jobs"), "{text}");
        assert!(text.contains("% busy"), "{text}");
    }
}
