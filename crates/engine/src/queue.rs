//! A bounded multi-producer/multi-consumer job queue built from `std` only
//! (`Mutex` + two `Condvar`s) — the hand-off point between the engine's
//! submitting thread and its worker pool.
//!
//! The bound provides back-pressure: a sweep of thousands of jobs never
//! materialises more than `capacity` queued entries at once, so the submitter
//! blocks in [`BoundedQueue::push`] until a worker drains a slot.  Closing the
//! queue wakes every blocked party; consumers then drain the remaining items
//! before [`BoundedQueue::pop`] returns `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Largest number of items ever queued at once — the back-pressure
    /// telemetry `BatchReport` surfaces as `queue_high_water`.
    high_water: usize,
}

/// Why a [`BoundedQueue::try_push`] was refused; the rejected item rides
/// along so nothing is silently dropped.
pub enum TryPushError<T> {
    /// The queue is at capacity — typed back-pressure for service callers.
    Full(T),
    /// The queue has been closed; no further items are accepted.
    Closed(T),
}

/// A blocking FIFO queue with a fixed capacity.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    /// Signalled when an item is enqueued or the queue is closed.
    not_empty: Condvar,
    /// Signalled when an item is dequeued or the queue is closed.
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
                high_water: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lock the state, shrugging off poisoning: workers catch job panics
    /// before they can unwind through a queue lock, and the queue state is a
    /// plain deque that cannot be left half-updated.
    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueue `item`, blocking while the queue is full.  Returns `false`
    /// (dropping the item) if the queue was closed in the meantime.
    pub fn push(&self, item: T) -> bool {
        self.push_returning(item).is_ok()
    }

    /// [`push`](Self::push) that hands the item back instead of dropping it
    /// when the queue has been closed — service submitters need the rejected
    /// job's callbacks to reply to their client.
    pub fn push_returning(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        while state.items.len() >= self.capacity && !state.closed {
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        self.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking enqueue attempt — the service-mode admission path, where
    /// a full queue must surface as typed back-pressure (`Busy`) instead of
    /// blocking a protocol thread.  The item is handed back on failure so
    /// the caller can reply-and-drop or retry.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.lock();
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        state.items.push_back(item);
        state.high_water = state.high_water.max(state.items.len());
        self.not_empty.notify_one();
        Ok(())
    }

    /// Number of items currently queued (a racy snapshot — by the time the
    /// caller looks, workers may have drained it further).
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Largest queue depth observed so far.
    pub fn high_water(&self) -> usize {
        self.lock().high_water
    }

    /// Dequeue the oldest item, blocking while the queue is empty.  Returns
    /// `None` once the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Close the queue: no further pushes are accepted, every blocked thread
    /// is woken, and consumers drain what is left.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order_within_capacity() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.high_water(), 0);
        assert!(q.push(1));
        assert!(q.push(2));
        assert!(q.push(3));
        q.close();
        assert_eq!(q.high_water(), 3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_after_close_is_rejected() {
        let q = BoundedQueue::new(2);
        q.close();
        assert!(!q.push(42));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_is_at_least_one() {
        assert_eq!(BoundedQueue::<u8>::new(0).capacity(), 1);
        assert_eq!(BoundedQueue::<u8>::new(7).capacity(), 7);
    }

    #[test]
    fn bounded_push_blocks_until_a_consumer_drains() {
        // A capacity-1 queue forces the producer to interleave with the
        // consumer: every push beyond the first must wait for a pop.
        let q = BoundedQueue::new(1);
        let produced = AtomicUsize::new(0);
        let total = 64usize;
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..total {
                    assert!(q.push(i));
                    produced.fetch_add(1, Ordering::SeqCst);
                }
                q.close();
            });
            let mut got = Vec::new();
            while let Some(item) = q.pop() {
                // Back-pressure: the producer can never run more than
                // `capacity + 1` items ahead of what we have consumed.
                assert!(produced.load(Ordering::SeqCst) <= got.len() + 2);
                got.push(item);
            }
            assert_eq!(got, (0..total).collect::<Vec<_>>());
        });
    }

    #[test]
    fn try_push_reports_full_and_closed_with_the_item_back() {
        let q = BoundedQueue::new(1);
        assert_eq!(q.depth(), 0);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.depth(), 1);
        match q.try_push(2) {
            Err(TryPushError::Full(item)) => assert_eq!(item, 2),
            other => panic!("expected Full, got {:?}", other.map_err(|_| "err")),
        }
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
        q.close();
        assert!(q.is_closed());
        match q.try_push(4) {
            Err(TryPushError::Closed(item)) => assert_eq!(item, 4),
            other => panic!("expected Closed, got {:?}", other.map_err(|_| "err")),
        }
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = BoundedQueue::<u8>::new(2);
        std::thread::scope(|s| {
            let h = s.spawn(|| q.pop());
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.close();
            assert_eq!(h.join().unwrap(), None);
        });
    }
}
