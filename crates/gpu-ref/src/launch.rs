//! CUDA-style launch configuration: 3-D thread blocks over the cell grid.
//!
//! "We launch 3D GPU threadblocks, each with a size of 1024 to respect the GPU's
//! limit of at most 1024 threads per block … we launch GPU threadblock size of
//! 16 × 8 × 8, where 16 is the innermost dimension size." (§IV)

use mffv_mesh::Dims;

/// Block dimensions (threads per block along x, y, z).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockDims {
    pub x: usize,
    pub y: usize,
    pub z: usize,
}

impl BlockDims {
    /// The paper's 16 × 8 × 8 block.
    pub const PAPER: BlockDims = BlockDims { x: 16, y: 8, z: 8 };

    /// Threads per block.
    pub fn threads(&self) -> usize {
        self.x * self.y * self.z
    }
}

/// A full launch configuration: block dims plus the grid of blocks covering a mesh.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Mesh extents the launch covers.
    pub dims: Dims,
    /// Threads per block.
    pub block: BlockDims,
}

impl LaunchConfig {
    /// The paper's configuration for a mesh.
    pub fn paper(dims: Dims) -> Self {
        Self {
            dims,
            block: BlockDims::PAPER,
        }
    }

    /// Number of blocks along each axis (ceiling division, as a CUDA launch would).
    pub fn grid_dims(&self) -> (usize, usize, usize) {
        (
            self.dims.nx.div_ceil(self.block.x),
            self.dims.ny.div_ceil(self.block.y),
            self.dims.nz.div_ceil(self.block.z),
        )
    }

    /// Total number of blocks.
    pub fn num_blocks(&self) -> usize {
        let (gx, gy, gz) = self.grid_dims();
        gx * gy * gz
    }

    /// Total number of launched threads (may exceed the cell count; excess threads
    /// return immediately, exactly as the CUDA kernel's bounds check does).
    pub fn num_threads(&self) -> usize {
        self.num_blocks() * self.block.threads()
    }

    /// The inclusive cell-index ranges covered by a block `(bx, by, bz)`, clamped to
    /// the mesh (the equivalent of the kernel's `if (i < nx && j < ny && k < nz)`
    /// guard).
    pub fn block_cell_ranges(
        &self,
        bx: usize,
        by: usize,
        bz: usize,
    ) -> (
        std::ops::Range<usize>,
        std::ops::Range<usize>,
        std::ops::Range<usize>,
    ) {
        let x0 = bx * self.block.x;
        let y0 = by * self.block.y;
        let z0 = bz * self.block.z;
        (
            x0..(x0 + self.block.x).min(self.dims.nx),
            y0..(y0 + self.block.y).min(self.dims.ny),
            z0..(z0 + self.block.z).min(self.dims.nz),
        )
    }

    /// Enumerate every block coordinate.
    pub fn blocks(&self) -> Vec<(usize, usize, usize)> {
        let (gx, gy, gz) = self.grid_dims();
        let mut out = Vec::with_capacity(self.num_blocks());
        for bz in 0..gz {
            for by in 0..gy {
                for bx in 0..gx {
                    out.push((bx, by, bz));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_block_is_1024_threads() {
        assert_eq!(BlockDims::PAPER.threads(), 1024);
    }

    #[test]
    fn grid_covers_the_mesh_with_ceiling_division() {
        let cfg = LaunchConfig::paper(Dims::new(50, 20, 9));
        assert_eq!(cfg.grid_dims(), (4, 3, 2));
        assert_eq!(cfg.num_blocks(), 24);
        assert_eq!(cfg.num_threads(), 24 * 1024);
        assert!(cfg.num_threads() >= cfg.dims.num_cells());
    }

    #[test]
    fn block_ranges_are_clamped_at_the_mesh_boundary() {
        let cfg = LaunchConfig::paper(Dims::new(20, 10, 10));
        let (rx, ry, rz) = cfg.block_cell_ranges(1, 1, 1);
        assert_eq!(rx, 16..20);
        assert_eq!(ry, 8..10);
        assert_eq!(rz, 8..10);
        let (rx, ry, rz) = cfg.block_cell_ranges(0, 0, 0);
        assert_eq!((rx.len(), ry.len(), rz.len()), (16, 8, 8));
    }

    #[test]
    fn every_cell_is_covered_exactly_once() {
        let dims = Dims::new(33, 17, 11);
        let cfg = LaunchConfig::paper(dims);
        let mut covered = vec![0u8; dims.num_cells()];
        for (bx, by, bz) in cfg.blocks() {
            let (rx, ry, rz) = cfg.block_cell_ranges(bx, by, bz);
            for z in rz {
                for y in ry.clone() {
                    for x in rx.clone() {
                        covered[dims.linear(mffv_mesh::CellIndex::new(x, y, z))] += 1;
                    }
                }
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    }
}
