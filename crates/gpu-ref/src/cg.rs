//! Host-side CG driver for the GPU-style reference (§IV).
//!
//! The paper's reference keeps the CG loop on the host and launches one kernel per
//! operator application; dot products and vector updates are further device kernels.
//! Here the same structure is expressed by running `mffv_solver`'s CG on top of
//! [`GpuMatrixFreeOperator`], with the host/device transfer accounting of
//! [`crate::memory::HostDeviceTransfers`] recorded alongside.

use crate::device_model::{GpuSpec, GpuTimeModel};
use crate::kernel::GpuMatrixFreeOperator;
use crate::memory::HostDeviceTransfers;
use mffv_mesh::{CellField, Workload};
use mffv_solver::backend::PreconditionerKind;
use mffv_solver::cg::ConjugateGradient;
use mffv_solver::convergence::ConvergenceHistory;
use mffv_solver::monitor::{NullMonitor, SolveMonitor, StopReason};
use mffv_solver::newton::{solve_pressure_monitored, solve_pressure_preconditioned};
use mffv_solver::pcg::{JacobiPreconditioner, PreconditionedConjugateGradient};
use mffv_solver::trace::Span;
use mffv_solver::{MgConfig, MultigridVcycle};

/// Result of a reference solve.
#[derive(Clone, Debug)]
pub struct GpuSolveReport {
    /// The pressure field (f32, as on the device).
    pub pressure: CellField<f32>,
    /// CG convergence history.
    pub history: ConvergenceHistory,
    /// Max-norm of the residual at the returned pressure.
    pub final_residual_max: f64,
    /// Host ↔ device transfer accounting.
    pub transfers: HostDeviceTransfers,
    /// Modelled kernel time on the modelled GPU, seconds.
    pub modelled_kernel_time: f64,
    /// Host wall-clock of the CPU-executed reference, seconds (not comparable to
    /// device time; reported for transparency).
    pub host_wall_seconds: f64,
    /// `Some(reason)` when a monitor or stop policy ended the solve early.
    pub stopped: Option<StopReason>,
}

/// The GPU-style reference solver.  Borrows its workload: a solver is a
/// one-shot driver and the workload's coefficient fields are large.
pub struct GpuReferenceSolver<'w> {
    workload: &'w Workload,
    spec: GpuSpec,
    tolerance: f64,
    max_iterations: usize,
    preconditioner: PreconditionerKind,
}

impl<'w> GpuReferenceSolver<'w> {
    /// A reference solver on a given modelled GPU.
    pub fn new(workload: &'w Workload, spec: GpuSpec) -> Self {
        let tolerance = workload.tolerance();
        let max_iterations = workload.max_iterations();
        Self {
            workload,
            spec,
            tolerance,
            max_iterations,
            preconditioner: PreconditionerKind::None,
        }
    }

    /// Override the tolerance on `rᵀr`.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Override the iteration cap.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Select the preconditioner for the host-resident Krylov loop.  Jacobi is
    /// one extra elementwise device kernel per iteration; the multigrid V-cycle
    /// runs host-assisted, with the residual downloaded and the correction
    /// uploaded each iteration (accounted in the transfer totals).
    pub fn with_preconditioner(mut self, preconditioner: PreconditionerKind) -> Self {
        self.preconditioner = preconditioner;
        self
    }

    /// Run the reference solve.
    pub fn solve(&self) -> GpuSolveReport {
        self.solve_monitored(&mut NullMonitor)
    }

    /// Run the reference solve as an observable, cancellable session: the
    /// host-resident CG loop (§IV keeps the loop on the host, one kernel
    /// launch per operator application) reports every iteration boundary to
    /// `monitor`, which may stop the solve early — the partial pressure and
    /// history are still downloaded and reported.
    pub fn solve_monitored(&self, monitor: &mut dyn SolveMonitor) -> GpuSolveReport {
        self.solve_traced(monitor, &Span::null())
    }

    /// [`Self::solve_monitored`] with telemetry: `span` scopes the
    /// preconditioner's `mg.vcycle` / `mg.level` spans when multigrid is
    /// selected.
    pub fn solve_traced(&self, monitor: &mut dyn SolveMonitor, span: &Span) -> GpuSolveReport {
        // audit: allow(wall-clock) — telemetry: feeds the report's elapsed
        // seconds, never a numeric decision.
        #[allow(clippy::disallowed_methods)]
        let start = std::time::Instant::now();
        let operator = GpuMatrixFreeOperator::from_workload(self.workload);
        let mut transfers = HostDeviceTransfers::default();
        // Initial upload: coefficients, mask, pressure, rhs (§IV copies all data
        // from host to device once).
        transfers.record_host_to_device(operator.device_arrays().bytes());
        transfers.record_host_to_device(2 * self.workload.dims().num_cells() * 4);

        let n = self.workload.dims().num_cells();
        let solution = match self.preconditioner {
            PreconditionerKind::None => {
                let solver = ConjugateGradient::with_tolerance(self.tolerance, self.max_iterations);
                solve_pressure_monitored::<f32, _>(self.workload, &operator, &solver, monitor)
            }
            PreconditionerKind::Jacobi => {
                // The inverse diagonal lives on the device: one extra upload,
                // then one elementwise kernel per iteration (no per-iteration
                // transfers).
                let coeffs = self.workload.transmissibility().convert::<f32>();
                let jacobi =
                    JacobiPreconditioner::from_coefficients(&coeffs, self.workload.dirichlet());
                transfers.record_host_to_device(n * 4);
                let solver = PreconditionedConjugateGradient::with_tolerance(
                    self.tolerance,
                    self.max_iterations,
                );
                solve_pressure_preconditioned::<f32, _, _>(
                    self.workload,
                    &operator,
                    &jacobi,
                    &solver,
                    monitor,
                    span,
                )
            }
            PreconditionerKind::Mg => {
                // Host-assisted V-cycle: the device downloads the residual and
                // uploads the correction every iteration.
                let mg =
                    MultigridVcycle::<f32>::from_workload(self.workload, 1, MgConfig::default());
                let solver = PreconditionedConjugateGradient::with_tolerance(
                    self.tolerance,
                    self.max_iterations,
                );
                let solution = solve_pressure_preconditioned::<f32, _, _>(
                    self.workload,
                    &operator,
                    &mg,
                    &solver,
                    monitor,
                    span,
                );
                // One apply per iteration plus the initial z0 = M⁻¹ r0.
                let applies = solution.history.iterations + 1;
                transfers.record_device_to_host(applies * n * 4);
                transfers.record_host_to_device(applies * n * 4);
                solution
            }
        };
        // Final download of the pressure field.
        transfers.record_device_to_host(self.workload.dims().num_cells() * 4);

        let model = GpuTimeModel::new(self.spec);
        let modelled_kernel_time = model.cg_time(self.workload.dims(), solution.history.iterations);
        GpuSolveReport {
            pressure: solution.pressure,
            history: solution.history,
            final_residual_max: solution.final_residual_max,
            transfers,
            modelled_kernel_time,
            host_wall_seconds: start.elapsed().as_secs_f64(),
            stopped: solution.stopped,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::backend::GpuRefBackend;
    use mffv_mesh::workload::WorkloadSpec;
    use mffv_mesh::Dims;
    use mffv_solver::backend::{SolveBackend, SolveConfig};
    use mffv_solver::newton::solve_pressure;

    fn config(tolerance: f64) -> SolveConfig {
        SolveConfig {
            tolerance: Some(tolerance),
            ..SolveConfig::default()
        }
    }

    #[test]
    fn reference_solve_matches_host_oracle() {
        let w = WorkloadSpec::quickstart().build();
        let report = GpuRefBackend::a100().solve(&w, &config(1e-10)).unwrap();
        assert!(report.converged());
        let oracle = solve_pressure::<f64>(&w);
        let diff = oracle.pressure.max_abs_diff(&report.pressure);
        assert!(diff < 1e-3, "gpu reference vs oracle gap {diff}");
        assert!(report.final_residual_max < 1e-3);
    }

    #[test]
    fn preconditioned_paths_match_the_unpreconditioned_solve() {
        use mffv_solver::backend::PreconditionerKind;
        let w = WorkloadSpec::quickstart().build();
        let base = GpuRefBackend::a100().solve(&w, &config(1e-12)).unwrap();
        for kind in [PreconditionerKind::Jacobi, PreconditionerKind::Mg] {
            let cfg = SolveConfig {
                tolerance: Some(1e-12),
                preconditioner: kind,
                ..SolveConfig::default()
            };
            let report = GpuRefBackend::a100().solve(&w, &cfg).unwrap();
            assert!(report.converged(), "{} did not converge", kind.label());
            let diff = report.max_abs_diff(&base);
            assert!(diff < 1e-3, "{} pressure gap {diff}", kind.label());
            // The host-assisted V-cycle must account its per-iteration
            // residual/correction round trips.
            if kind == PreconditionerKind::Mg {
                let d2h = report
                    .device
                    .as_ref()
                    .unwrap()
                    .counter("device_to_host_bytes")
                    .unwrap();
                let base_d2h = base
                    .device
                    .as_ref()
                    .unwrap()
                    .counter("device_to_host_bytes")
                    .unwrap();
                assert!(d2h > base_d2h);
            }
        }
    }

    #[test]
    fn transfers_and_model_are_populated() {
        let w = WorkloadSpec::fig5(Dims::new(8, 6, 5)).build();
        let report = GpuRefBackend::h100().solve(&w, &config(1e-12)).unwrap();
        let device = report.device.as_ref().unwrap();
        assert!(device.counter("host_to_device_bytes").unwrap() > 0.0);
        assert!(device.counter("device_to_host_bytes").unwrap() > 0.0);
        assert!(device.modelled_time_seconds > 0.0);
        assert!(report.host_wall_seconds > 0.0);
    }

    #[test]
    fn a100_is_modelled_slower_than_h100() {
        let w = WorkloadSpec::quickstart().build();
        let a = GpuRefBackend::a100()
            .solve(&w.clone(), &config(1e-8))
            .unwrap();
        let h = GpuRefBackend::h100().solve(&w, &config(1e-8)).unwrap();
        assert!(a.modelled_time().unwrap() > h.modelled_time().unwrap());
    }
}
