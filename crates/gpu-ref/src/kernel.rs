//! The CUDA-style matrix-free device kernel and its block-parallel execution.
//!
//! "Each GPU kernel is scheduled to concurrently invoke a device function that
//! performs the matrix-free FV computation … each GPU thread handles a cell K …
//! Each thread concurrently fetches the cell data for itself and all cell data from
//! its six neighboring cells" (§IV).
//!
//! [`device_thread`] is that device function; [`GpuMatrixFreeOperator`] launches it
//! over the 16×8×8 block grid, with blocks distributed across host threads via
//! `std::thread::scope`.  The arithmetic is identical to the sequential
//! `mffv_fv::MatrixFreeOperator`, which the tests verify.

use crate::launch::LaunchConfig;
use mffv_fv::LinearOperator;
use mffv_mesh::{CellField, CellIndex, Dims, Direction, DirichletSet, Transmissibilities};

/// Flattened, device-resident problem data (the arrays a CUDA implementation would
/// copy to the GPU once at start-up).
#[derive(Clone, Debug)]
pub struct DeviceArrays {
    dims: Dims,
    /// Six transmissibility coefficients per cell in `Direction::ALL` order.
    coeffs: Vec<[f32; 6]>,
    /// 1.0 where the cell is Dirichlet.
    dirichlet: Vec<f32>,
}

impl DeviceArrays {
    /// "Copy all data from host to device memory" (§IV).
    pub fn upload(coeffs: &Transmissibilities<f32>, dirichlet: &DirichletSet) -> Self {
        let dims = coeffs.dims();
        let n = dims.num_cells();
        let mut flat = Vec::with_capacity(n);
        let mut mask = vec![0.0f32; n];
        for (idx, m) in mask.iter_mut().enumerate() {
            flat.push(coeffs.all(idx));
            if dirichlet.contains_linear(idx) {
                *m = 1.0;
            }
        }
        Self {
            dims,
            coeffs: flat,
            dirichlet: mask,
        }
    }

    /// Device-memory footprint in bytes (coefficients + mask), the quantity that
    /// must fit in GPU memory for the paper's "no domain decomposition" strategy.
    pub fn bytes(&self) -> usize {
        self.coeffs.len() * 6 * 4 + self.dirichlet.len() * 4
    }

    /// Grid extents.
    pub fn dims(&self) -> Dims {
        self.dims
    }
}

/// The per-thread device function: computes one entry of the SPD operator output.
#[inline]
pub fn device_thread(arrays: &DeviceArrays, x: &[f32], cell: CellIndex) -> f32 {
    let dims = arrays.dims;
    let k = dims.linear(cell);
    if arrays.dirichlet[k] != 0.0 {
        return x[k];
    }
    let xk = x[k];
    let mut acc = 0.0f32;
    for dir in Direction::ALL {
        if let Some(nb) = dims.neighbor(cell, dir) {
            let l = dims.linear(nb);
            let coeff = arrays.coeffs[k][dir.index()];
            let xl = if arrays.dirichlet[l] != 0.0 {
                0.0
            } else {
                x[l]
            };
            acc = coeff.mul_add(xk - xl, acc);
        }
    }
    acc
}

/// The GPU-style matrix-free operator: block-parallel launch of [`device_thread`].
#[derive(Clone, Debug)]
pub struct GpuMatrixFreeOperator {
    arrays: DeviceArrays,
    launch: LaunchConfig,
    host_threads: usize,
}

impl GpuMatrixFreeOperator {
    /// Build the operator from device arrays with the paper's launch configuration.
    pub fn new(arrays: DeviceArrays) -> Self {
        let launch = LaunchConfig::paper(arrays.dims());
        let host_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            arrays,
            launch,
            host_threads,
        }
    }

    /// Build directly from a workload (converts coefficients to `f32`).
    pub fn from_workload(workload: &mffv_mesh::Workload) -> Self {
        let coeffs: Transmissibilities<f32> = workload.transmissibility().convert();
        Self::new(DeviceArrays::upload(&coeffs, workload.dirichlet()))
    }

    /// Override the number of host threads used to execute blocks (tests use 1 for
    /// determinism checks).
    pub fn with_host_threads(mut self, threads: usize) -> Self {
        self.host_threads = threads.max(1);
        self
    }

    /// The launch configuration.
    pub fn launch_config(&self) -> &LaunchConfig {
        &self.launch
    }

    /// The uploaded device arrays.
    pub fn device_arrays(&self) -> &DeviceArrays {
        &self.arrays
    }

    /// Execute one kernel launch: `out = A x` with one logical GPU thread per cell.
    pub fn launch_apply(&self, x: &[f32], out: &mut [f32]) {
        let dims = self.arrays.dims;
        assert_eq!(x.len(), dims.num_cells());
        assert_eq!(out.len(), dims.num_cells());
        let blocks = self.launch.blocks();
        // Distribute whole blocks across host threads; each block writes a disjoint
        // set of cells, so the output can be split without synchronisation.
        let chunk_size = blocks.len().div_ceil(self.host_threads);
        // Collect per-block results then scatter — mirrors the independence of CUDA
        // blocks while staying in safe Rust.
        let block_outputs: Vec<(usize, Vec<(usize, f32)>)> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (chunk_idx, chunk) in blocks.chunks(chunk_size.max(1)).enumerate() {
                let arrays = &self.arrays;
                let launch = &self.launch;
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    for &(bx, by, bz) in chunk {
                        let (rx, ry, rz) = launch.block_cell_ranges(bx, by, bz);
                        for z in rz {
                            for y in ry.clone() {
                                for xx in rx.clone() {
                                    let cell = CellIndex::new(xx, y, z);
                                    let k = arrays.dims.linear(cell);
                                    local.push((k, device_thread(arrays, x, cell)));
                                }
                            }
                        }
                    }
                    (chunk_idx, local)
                }));
            }
            handles
                .into_iter()
                // audit: allow(panic) — invariant: join only fails if a block
                // closure panicked, which is itself a bug worth propagating.
                .map(|h| h.join().expect("block execution panicked"))
                .collect()
        });
        for (_, entries) in block_outputs {
            for (k, v) in entries {
                out[k] = v;
            }
        }
    }
}

impl LinearOperator<f32> for GpuMatrixFreeOperator {
    fn dims(&self) -> Dims {
        self.arrays.dims
    }

    fn apply(&self, x: &CellField<f32>, y: &mut CellField<f32>) {
        assert_eq!(x.dims(), self.arrays.dims);
        assert_eq!(y.dims(), self.arrays.dims);
        self.launch_apply(x.as_slice(), y.as_mut_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffv_fv::MatrixFreeOperator;
    use mffv_mesh::workload::WorkloadSpec;

    #[test]
    fn gpu_kernel_matches_sequential_operator_bitwise_structure() {
        let w = WorkloadSpec::fig5(Dims::new(10, 7, 6)).build();
        let gpu = GpuMatrixFreeOperator::from_workload(&w);
        let seq = MatrixFreeOperator::<f32>::from_workload(&w);
        let x = CellField::<f32>::from_fn(w.dims(), |c| {
            ((c.x as f32) * 0.5 - (c.y as f32) * 0.25 + (c.z as f32)).sin()
        });
        let y_gpu = gpu.apply_new(&x);
        let y_seq = seq.apply_new(&x);
        let diff = y_gpu.max_abs_diff(&y_seq);
        assert!(
            diff <= 1e-6 * y_seq.max_abs().max(1.0),
            "gpu vs sequential gap {diff}"
        );
    }

    #[test]
    fn single_threaded_and_multi_threaded_launches_agree_exactly() {
        let w = WorkloadSpec::quickstart().build();
        let gpu_multi = GpuMatrixFreeOperator::from_workload(&w);
        let gpu_single = GpuMatrixFreeOperator::from_workload(&w).with_host_threads(1);
        let x = CellField::<f32>::from_fn(w.dims(), |c| (c.x + 3 * c.y + 7 * c.z) as f32 * 0.1);
        let a = gpu_multi.apply_new(&x);
        let b = gpu_single.apply_new(&x);
        assert_eq!(a, b, "block decomposition must be deterministic");
    }

    #[test]
    fn dirichlet_rows_pass_through() {
        let w = WorkloadSpec::quickstart().build();
        let gpu = GpuMatrixFreeOperator::from_workload(&w);
        let x = CellField::<f32>::constant(w.dims(), 3.5);
        let y = gpu.apply_new(&x);
        for idx in 0..w.dims().num_cells() {
            if w.dirichlet().contains_linear(idx) {
                assert_eq!(y.get(idx), 3.5);
            }
        }
    }

    #[test]
    fn device_array_footprint_is_reported() {
        let w = WorkloadSpec::quickstart().build();
        let gpu = GpuMatrixFreeOperator::from_workload(&w);
        let n = w.dims().num_cells();
        assert_eq!(gpu.device_arrays().bytes(), n * 6 * 4 + n * 4);
        assert_eq!(gpu.launch_config().dims, w.dims());
    }
}
