//! Analytic GPU device-time model.
//!
//! The paper's roofline analysis (Figure 6, bottom) shows the GPU kernel is
//! **memory-bound**, achieving ≈78 % of the A100's bandwidth-limited ceiling.  The
//! model therefore estimates kernel time from the DRAM traffic of the matrix-free
//! CG iteration divided by the effective (ceiling × efficiency) bandwidth — the same
//! reasoning the paper uses, applied to the machine ceilings it publishes.

use mffv_mesh::Dims;

/// A modelled GPU.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// FP32 peak, FLOP/s (the paper's A100 roofline states 14.7 TFLOP/s).
    pub peak_flops: f64,
    /// HBM bandwidth, bytes/s (the paper's A100 roofline states 1262.9 GB/s).
    pub hbm_bandwidth: f64,
    /// Fraction of the bandwidth ceiling the kernel achieves (the paper reports
    /// ≈78 % of peak for its memory-bound kernel).
    pub achieved_fraction: f64,
    /// Device memory capacity, bytes (the paper relies on the mesh fitting entirely
    /// in device memory to avoid domain decomposition).
    pub memory_capacity: usize,
}

impl GpuSpec {
    /// The A100 used in the paper's evaluation (40 GB variant).
    pub fn a100() -> Self {
        Self {
            name: "A100",
            peak_flops: 14.7e12,
            hbm_bandwidth: 1.2629e12,
            achieved_fraction: 0.78,
            memory_capacity: 40 * 1024 * 1024 * 1024,
        }
    }

    /// The H100 (part of a Grace Hopper superchip, 95 GB) used in the paper.
    pub fn h100() -> Self {
        Self {
            name: "H100",
            peak_flops: 66.9e12,
            hbm_bandwidth: 3.35e12,
            achieved_fraction: 0.62,
            memory_capacity: 95 * 1024 * 1024 * 1024,
        }
    }

    /// Effective sustained bandwidth.
    pub fn effective_bandwidth(&self) -> f64 {
        self.hbm_bandwidth * self.achieved_fraction
    }
}

/// DRAM traffic of one matrix-free CG iteration, bytes per cell.
///
/// Per iteration every cell's thread reads its own value and six neighbours of the
/// direction vector (7 × 4 B, partially served by cache — counted at 3 effective
/// reads), the six transmissibilities (24 B), the Dirichlet mask (4 B) and writes
/// the operator output (4 B); the CG vector updates (2 dots + 3 axpy-style updates)
/// add ~13 further accesses.  The total, ≈96 B/cell, is the traffic the roofline
/// model divides by the effective bandwidth.
pub const DRAM_BYTES_PER_CELL_PER_ITERATION: f64 = 96.0;

/// Analytic GPU kernel-time model.
#[derive(Clone, Copy, Debug)]
pub struct GpuTimeModel {
    spec: GpuSpec,
}

impl GpuTimeModel {
    /// A model over a GPU spec.
    pub fn new(spec: GpuSpec) -> Self {
        Self { spec }
    }

    /// The spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Time of a single matrix-free operator application over the mesh, seconds.
    pub fn kernel_time(&self, dims: Dims) -> f64 {
        let traffic = dims.num_cells() as f64 * DRAM_BYTES_PER_CELL_PER_ITERATION;
        traffic / self.spec.effective_bandwidth()
    }

    /// Time of a full CG solve of `iterations` iterations, seconds.
    pub fn cg_time(&self, dims: Dims, iterations: usize) -> f64 {
        self.kernel_time(dims) * iterations.max(1) as f64
    }

    /// Whether the whole problem (device arrays + CG vectors) fits device memory —
    /// the condition for the paper's "no domain decomposition" strategy.
    pub fn fits_in_memory(&self, dims: Dims) -> bool {
        // 6 coefficients + mask + 5 CG vectors, 4 B each.
        let bytes = dims.num_cells() * (6 + 1 + 5) * 4;
        bytes <= self.spec.memory_capacity
    }

    /// Achieved FLOP/s implied by the model for a mesh (96 FLOPs per cell per
    /// iteration, Table V).
    pub fn achieved_flops(&self, dims: Dims) -> f64 {
        let flops = dims.num_cells() as f64 * 96.0;
        flops / self.kernel_time(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ceilings_are_encoded() {
        let a = GpuSpec::a100();
        assert!((a.peak_flops - 14.7e12).abs() < 1e6);
        assert!((a.hbm_bandwidth - 1262.9e9).abs() < 1e6);
        assert!(a.effective_bandwidth() < a.hbm_bandwidth);
        let h = GpuSpec::h100();
        assert!(h.hbm_bandwidth > a.hbm_bandwidth);
    }

    #[test]
    fn kernel_time_scales_linearly_with_cells_and_iterations() {
        let model = GpuTimeModel::new(GpuSpec::a100());
        let small = model.cg_time(Dims::new(100, 100, 100), 10);
        let bigger = model.cg_time(Dims::new(200, 100, 100), 10);
        assert!((bigger / small - 2.0).abs() < 1e-9);
        let more_iters = model.cg_time(Dims::new(100, 100, 100), 20);
        assert!((more_iters / small - 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_scale_problem_is_in_the_tens_of_seconds_on_a100() {
        // Table II/III: the 750 × 994 × 922 mesh over 225 iterations takes ≈23 s on
        // the A100.  The analytic model must land in the same order of magnitude.
        let model = GpuTimeModel::new(GpuSpec::a100());
        let t = model.cg_time(Dims::new(750, 994, 922), 225);
        assert!(
            t > 5.0 && t < 60.0,
            "modelled A100 time {t} s out of expected range"
        );
        // And the H100 is faster but in the same order (paper: ≈11.4 s).
        let th = GpuTimeModel::new(GpuSpec::h100()).cg_time(Dims::new(750, 994, 922), 225);
        assert!(th < t);
        assert!(
            th > 2.0 && th < 30.0,
            "modelled H100 time {th} s out of expected range"
        );
    }

    #[test]
    fn memory_fit_check() {
        let model = GpuTimeModel::new(GpuSpec::a100());
        assert!(model.fits_in_memory(Dims::new(200, 200, 922)));
        // 750x994x922 needs ~33 GB of arrays: it still fits the 40 GB A100 (the
        // paper keeps the whole mesh resident), but would not fit a 16 GB card.
        assert!(model.fits_in_memory(Dims::new(750, 994, 922)));
        let mut small = GpuSpec::a100();
        small.memory_capacity = 16 * 1024 * 1024 * 1024;
        assert!(!GpuTimeModel::new(small).fits_in_memory(Dims::new(750, 994, 922)));
    }

    #[test]
    fn gpu_is_memory_bound_in_the_model() {
        // Achieved FLOP/s must sit far below the FP32 peak — the Figure-6 statement
        // that the GPU kernel is memory-bound.
        let model = GpuTimeModel::new(GpuSpec::a100());
        let achieved = model.achieved_flops(Dims::new(750, 994, 922));
        assert!(achieved < 0.2 * GpuSpec::a100().peak_flops);
    }
}
