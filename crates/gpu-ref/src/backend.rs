//! [`SolveBackend`] implementation for the GPU-style reference solver.
//!
//! This is the *only* module that constructs [`GpuReferenceSolver`] directly;
//! everything else (examples, benches, tests) goes through the `mffv`
//! `Simulation` facade, which instantiates this backend.

use crate::cg::{GpuReferenceSolver, GpuSolveReport};
use crate::device_model::GpuSpec;
use mffv_mesh::{CellField, Workload};
use mffv_solver::backend::{
    final_residual_max_f64, DeviceSection, Precision, SolveBackend, SolveConfig, SolveError,
    SolveReport,
};
use mffv_solver::monitor::SolveMonitor;
use mffv_solver::trace::{Span, TraceMonitor};

/// The GPU-style reference as a facade backend: the CUDA block/thread kernel
/// structure executed on the host, with device time modelled on `spec`.
#[derive(Clone, Copy, Debug)]
pub struct GpuRefBackend {
    /// The modelled GPU.
    pub spec: GpuSpec,
}

impl GpuRefBackend {
    /// Reference backend on a given modelled GPU.
    pub fn new(spec: GpuSpec) -> Self {
        Self { spec }
    }

    /// The paper's primary comparison GPU, the A100.
    pub fn a100() -> Self {
        Self::new(GpuSpec::a100())
    }

    /// The paper's H100 configuration.
    pub fn h100() -> Self {
        Self::new(GpuSpec::h100())
    }
}

impl Default for GpuRefBackend {
    fn default() -> Self {
        Self::a100()
    }
}

impl GpuRefBackend {
    /// Wrap the internal [`GpuSolveReport`] into the unified report shape.
    fn unify(&self, workload: &Workload, report: GpuSolveReport) -> SolveReport {
        let device = DeviceSection {
            device: self.spec.name.to_string(),
            modelled_time_seconds: report.modelled_kernel_time,
            counters: vec![
                (
                    "host_to_device_bytes".to_string(),
                    report.transfers.host_to_device_bytes as f64,
                ),
                (
                    "device_to_host_bytes".to_string(),
                    report.transfers.device_to_host_bytes as f64,
                ),
            ],
        };
        let pressure: CellField<f64> = report.pressure.convert();
        // The internal report's residual was evaluated in device (f32)
        // precision; re-evaluate in f64 so the unified field stays
        // backend-independent.
        let final_residual_max = final_residual_max_f64(workload, &pressure);
        SolveReport {
            backend: self.name(),
            pressure,
            history: report.history,
            final_residual_max,
            host_wall_seconds: report.host_wall_seconds,
            device: Some(device),
            stopped: report.stopped,
        }
    }
}

impl SolveBackend for GpuRefBackend {
    fn name(&self) -> String {
        format!("gpu-ref-{}", self.spec.name)
    }

    /// Transient steps run at the device precision (`f32`), like every other
    /// computation this backend models.
    fn step_precision(&self) -> Precision {
        Precision::F32
    }

    fn solve(&self, workload: &Workload, config: &SolveConfig) -> Result<SolveReport, SolveError> {
        let report = GpuReferenceSolver::new(workload, self.spec)
            .with_tolerance(config.effective_tolerance(workload))
            .with_max_iterations(config.effective_max_iterations(workload))
            .with_preconditioner(config.preconditioner)
            .solve();
        Ok(self.unify(workload, report))
    }

    fn solve_monitored(
        &self,
        workload: &Workload,
        config: &SolveConfig,
        monitor: &mut dyn SolveMonitor,
    ) -> Result<SolveReport, SolveError> {
        self.solve_traced(workload, config, monitor, &Span::null())
    }

    fn solve_traced(
        &self,
        workload: &Workload,
        config: &SolveConfig,
        monitor: &mut dyn SolveMonitor,
        span: &Span,
    ) -> Result<SolveReport, SolveError> {
        let build = span.child("build-device-model");
        let solver = GpuReferenceSolver::new(workload, self.spec)
            .with_tolerance(config.effective_tolerance(workload))
            .with_max_iterations(config.effective_max_iterations(workload))
            .with_preconditioner(config.preconditioner);
        build.finish();
        let report = if span.is_recording() {
            let mut traced = TraceMonitor::new(span, monitor);
            solver.solve_traced(&mut traced, span)
        } else {
            solver.solve_traced(monitor, span)
        };
        Ok(self.unify(workload, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffv_mesh::workload::WorkloadSpec;
    use mffv_solver::backend::HostBackend;

    #[test]
    fn backend_names_identify_the_gpu() {
        assert_eq!(GpuRefBackend::a100().name(), "gpu-ref-A100");
        assert_eq!(GpuRefBackend::h100().name(), "gpu-ref-H100");
    }

    #[test]
    fn backend_report_matches_host_oracle_and_models_the_device() {
        let w = WorkloadSpec::quickstart().build();
        let config = SolveConfig {
            tolerance: Some(1e-10),
            ..SolveConfig::default()
        };
        let gpu = GpuRefBackend::a100().solve(&w, &config).unwrap();
        let oracle = HostBackend::oracle().solve(&w, &config).unwrap();
        assert!(gpu.converged());
        assert!(gpu.max_abs_diff(&oracle) < 1e-3);
        let device = gpu.device.expect("gpu backend must model a device");
        assert_eq!(device.device, "A100");
        assert!(device.modelled_time_seconds > 0.0);
        assert!(device.counter("host_to_device_bytes").unwrap() > 0.0);
        assert!(device.counter("device_to_host_bytes").unwrap() > 0.0);
    }
}
