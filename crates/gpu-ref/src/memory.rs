//! Host ↔ device transfer accounting.
//!
//! "Memory is allocated on both host and device memory … we copy all data from host
//! to device memory … we avoid data domain decomposition and avoid frequent data
//! transfers between host and device memory" (§IV).  The reference implementation
//! transfers everything once up front and the solution once at the end; this module
//! counts those bytes and models the PCIe/NVLink time they cost, so the benchmark
//! reports can show the transfer cost is negligible relative to kernel time (which
//! is why the paper ignores it).

/// Running totals of host↔device traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HostDeviceTransfers {
    /// Bytes copied host → device.
    pub host_to_device_bytes: usize,
    /// Bytes copied device → host.
    pub device_to_host_bytes: usize,
    /// Number of individual transfer operations.
    pub transfer_count: usize,
}

/// Nominal host↔device interconnect bandwidth (PCIe 4.0 x16), bytes/s.
pub const INTERCONNECT_BANDWIDTH: f64 = 25.0e9;

impl HostDeviceTransfers {
    /// Record a host → device copy.
    pub fn record_host_to_device(&mut self, bytes: usize) {
        self.host_to_device_bytes += bytes;
        self.transfer_count += 1;
    }

    /// Record a device → host copy.
    pub fn record_device_to_host(&mut self, bytes: usize) {
        self.device_to_host_bytes += bytes;
        self.transfer_count += 1;
    }

    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> usize {
        self.host_to_device_bytes + self.device_to_host_bytes
    }

    /// Modelled transfer time at the nominal interconnect bandwidth, seconds.
    pub fn modelled_time(&self) -> f64 {
        self.total_bytes() as f64 / INTERCONNECT_BANDWIDTH
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_accumulates() {
        let mut t = HostDeviceTransfers::default();
        t.record_host_to_device(1000);
        t.record_host_to_device(500);
        t.record_device_to_host(200);
        assert_eq!(t.host_to_device_bytes, 1500);
        assert_eq!(t.device_to_host_bytes, 200);
        assert_eq!(t.total_bytes(), 1700);
        assert_eq!(t.transfer_count, 3);
        assert!(t.modelled_time() > 0.0);
    }

    #[test]
    fn transfer_time_is_negligible_for_one_shot_upload_at_paper_scale() {
        // Uploading the full 750×994×922 problem (~33 GB) once costs ~1.3 s at PCIe
        // bandwidth — visible, but incurred once, not per iteration, which is why
        // the paper keeps the whole mesh device-resident.
        let mut t = HostDeviceTransfers::default();
        t.record_host_to_device(750 * 994 * 922 * 12 * 4);
        assert!(t.modelled_time() < 2.0);
    }
}
