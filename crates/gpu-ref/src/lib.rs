#![forbid(unsafe_code)]
//! # mffv-gpu-ref
//!
//! The reference implementation the paper compares against (§IV): a matrix-free FV
//! kernel written in the CUDA style — a 3-D grid of 16×8×8 thread blocks, one thread
//! per cell, each thread fetching its own cell data and its six neighbours and
//! accumulating the interfacial contributions — driven by a host-side CG loop.
//!
//! CUDA and the NVIDIA GPUs themselves are not available from Rust in this
//! environment, so (per `DESIGN.md` §2) the *execution* substrate is the host CPU:
//! the block/thread decomposition is preserved exactly and blocks are executed in
//! parallel with `std::thread`, which keeps the kernel structure, memory-access
//! pattern and numerics of the CUDA reference while remaining runnable anywhere.
//! The *device time* of the real GPUs is modelled separately in [`device_model`]
//! from the rooflines the paper publishes for the A100/H100 (memory-bound kernel,
//! ≈78 % of the bandwidth ceiling).

pub mod backend;
pub mod cg;
pub mod device_model;
pub mod kernel;
pub mod launch;
pub mod memory;

pub use backend::GpuRefBackend;
pub use cg::GpuReferenceSolver;
pub use device_model::{GpuSpec, GpuTimeModel};
pub use kernel::GpuMatrixFreeOperator;
pub use launch::{BlockDims, LaunchConfig};
pub use memory::HostDeviceTransfers;

/// Convenient glob import.
pub mod prelude {
    pub use crate::backend::GpuRefBackend;
    pub use crate::cg::GpuReferenceSolver;
    pub use crate::device_model::{GpuSpec, GpuTimeModel};
    pub use crate::kernel::GpuMatrixFreeOperator;
    pub use crate::launch::{BlockDims, LaunchConfig};
    pub use crate::memory::HostDeviceTransfers;
}
