//! The one sanctioned way to read elapsed wall time outside `mffv-perf`.
//!
//! Wrapping `Instant` here keeps the audit `wall-clock` rule honest: crates
//! that only need "how long did this take" telemetry take a [`Stopwatch`]
//! instead of carrying their own annotated `Instant::now` sites.  Elapsed
//! readings are telemetry only — they must never feed a numeric decision
//! (the monitor deadline module owns the one legitimate time-based control
//! path).

use std::time::{Duration, Instant};

/// A started monotonic clock; read it with [`Stopwatch::elapsed_seconds`].
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        // mffv-telemetry is a blessed wall-clock home (AUDIT.md rule 5); the
        // clippy mirror still needs a site-level allow.
        #[allow(clippy::disallowed_methods)]
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Elapsed time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed seconds since [`Stopwatch::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_stopwatch_reads_nonnegative_and_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_seconds();
        let b = sw.elapsed_seconds();
        assert!(a >= 0.0);
        assert!(b >= a);
        assert!(sw.elapsed() >= Duration::ZERO);
    }
}
