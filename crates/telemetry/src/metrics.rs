//! A small named-metrics registry: counters, gauges and log-bucket
//! histograms behind one mutex.
//!
//! The registry is for *cold* paths — job completions, queue high-water
//! marks, per-batch rollups.  Hot loops keep a private [`LogHistogram`]
//! (allocation-free, no lock) and fold it in once at the end via
//! [`MetricsRegistry::merge_histogram`]; that is how the engine's workers
//! report per-job execution latency without contending per sample.
//!
//! All maps are `BTreeMap`s, so snapshots iterate in sorted name order and
//! JSON exports are canonical.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::hist::LogHistogram;

#[derive(Debug, Default)]
struct RegistryState {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LogHistogram>,
}

/// Thread-safe registry of named counters, gauges and histograms; cheap to
/// clone (clones share the same storage).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryState>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn state(&self) -> MutexGuard<'_, RegistryState> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Add 1 to a counter (creating it at 0).
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Add `delta` to a counter (creating it at 0).
    pub fn add(&self, name: &str, delta: u64) {
        *self.state().counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set a gauge to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.state().gauges.insert(name.to_string(), value);
    }

    /// Raise a gauge to `value` if it is below (high-water-mark update).
    pub fn max_gauge(&self, name: &str, value: f64) {
        let mut state = self.state();
        let gauge = state
            .gauges
            .entry(name.to_string())
            .or_insert(f64::NEG_INFINITY);
        *gauge = gauge.max(value);
    }

    /// Record one sample into a named histogram.
    pub fn observe(&self, name: &str, seconds: f64) {
        self.state()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(seconds);
    }

    /// Fold a worker-local histogram into a named histogram.
    pub fn merge_histogram(&self, name: &str, hist: &LogHistogram) {
        self.state()
            .histograms
            .entry(name.to_string())
            .or_default()
            .merge(hist);
    }

    /// Current counter value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.state().counters.get(name).copied().unwrap_or(0)
    }

    /// Current gauge value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.state().gauges.get(name).copied()
    }

    /// A copy of a named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<LogHistogram> {
        self.state().histograms.get(name).cloned()
    }

    /// Sorted point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let state = self.state();
        MetricsSnapshot {
            counters: state
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: state.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: state
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// A sorted snapshot of a [`MetricsRegistry`] — the exporters' input.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, histogram)` pairs, sorted by name.
    pub histograms: Vec<(String, LogHistogram)>,
}

impl MetricsSnapshot {
    /// Whether the snapshot holds no metrics at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_round_trip() {
        let registry = MetricsRegistry::new();
        registry.inc("jobs.completed");
        registry.add("jobs.completed", 2);
        registry.set_gauge("queue.depth", 3.0);
        registry.max_gauge("queue.high_water", 2.0);
        registry.max_gauge("queue.high_water", 5.0);
        registry.max_gauge("queue.high_water", 1.0);
        registry.observe("exec_seconds", 0.25);
        registry.observe("exec_seconds", 0.5);

        assert_eq!(registry.counter("jobs.completed"), 3);
        assert_eq!(registry.counter("missing"), 0);
        assert_eq!(registry.gauge("queue.depth"), Some(3.0));
        assert_eq!(registry.gauge("queue.high_water"), Some(5.0));
        assert_eq!(registry.histogram("exec_seconds").unwrap().count(), 2);
    }

    #[test]
    fn clones_share_storage_and_snapshots_sort_by_name() {
        let registry = MetricsRegistry::new();
        let clone = registry.clone();
        clone.inc("z.last");
        clone.inc("a.first");
        let mut local = LogHistogram::new();
        local.record(1e-3);
        registry.merge_histogram("lat", &local);

        let snapshot = registry.snapshot();
        assert!(!snapshot.is_empty());
        let names: Vec<_> = snapshot.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.first", "z.last"]);
        assert_eq!(snapshot.histograms[0].1.count(), 1);
        assert!(MetricsSnapshot::default().is_empty());
    }
}
