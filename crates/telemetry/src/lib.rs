//! Std-only telemetry for the mffv workspace.
//!
//! Three pillars, all zero-dependency and cheap enough to leave on:
//!
//! 1. **Hierarchical spans** — [`Tracer`] hands out [`Span`] guards that
//!    record `(name, parent, lane, start, duration)` tuples into a shared
//!    buffer on drop.  Nesting is *explicit* ([`Span::child`]) rather than
//!    thread-local, so span trees have the same deterministic shape no
//!    matter how many worker threads executed them, and spans can cross
//!    thread boundaries (a queue-wait span is opened at submission on one
//!    thread and closed at pickup on another).  A disabled tracer is a
//!    single `Option` check: no clock read, no allocation, no lock.
//! 2. **Metrics** — [`MetricsRegistry`] holds named counters, gauges and
//!    [`LogHistogram`]s.  The histogram is a fixed 64-bucket log₂ layout:
//!    recording is allocation-free and O(1), merging across workers is
//!    integer bucket addition (and therefore associative), and p50…p999
//!    estimates come straight off the cumulative bucket counts — no sorted
//!    sample buffers on hot paths.
//! 3. **Exporters** — a human-readable text tree
//!    ([`render_phase_tree`]), canonical hand-rolled JSON snapshots
//!    ([`snapshot_json`]) and Chrome trace-event JSON
//!    ([`chrome_trace_json`]) loadable in `chrome://tracing` / Perfetto.
//!
//! This crate is a blessed wall-clock home (AUDIT.md rule 5): raw
//! `Instant::now` reads live here (and in `mffv-perf` / the monitor
//! deadline module) so the rest of the workspace never touches the clock
//! directly.  Timestamps never feed numeric decisions — solves are
//! bitwise-identical with tracing on or off, which `tests/telemetry.rs`
//! pins per backend.
#![forbid(unsafe_code)]

pub mod clock;
pub mod export;
pub mod hist;
pub mod metrics;
pub mod span;

pub use clock::Stopwatch;
pub use export::{
    chrome_trace_json, metrics_json, phase_tree_json, render_phase_tree, snapshot_json,
};
pub use hist::{LogHistogram, HISTOGRAM_BUCKETS};
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use span::{PhaseNode, Span, SpanRecord, Tracer};

/// Convenience re-exports for `use mffv_telemetry::prelude::*`.
pub mod prelude {
    pub use crate::{LogHistogram, MetricsRegistry, PhaseNode, Span, Stopwatch, Tracer};
}
