//! Allocation-free streaming log-bucket histograms.
//!
//! A [`LogHistogram`] spreads positive samples (seconds) over a fixed
//! 64-bucket log₂ layout: bucket `i` covers `[2^(i-31), 2^(i-30))`, so the
//! span runs from sub-nanosecond (bucket 0 absorbs everything at or below
//! ~0.47 ns, including zero) to multi-year (bucket 63 absorbs everything
//! from ~4.3 Gs up).  Recording is O(1) with no allocation; merging across
//! workers is integer bucket addition and therefore exactly associative —
//! `merge(a, merge(b, c))` and `merge(merge(a, b), c)` produce identical
//! bucket counts, which `tests/telemetry.rs` pins.
//!
//! Percentiles are nearest-rank over the cumulative bucket counts with a
//! geometric-midpoint representative clamped to the observed `[min, max]`:
//! a ~2× worst-case value error in exchange for never sorting a sample
//! buffer on a hot path.

/// Number of buckets in the fixed log₂ layout.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Bucket 31 covers `[1, 2)` seconds; each step halves/doubles the range.
const BUCKET_OFFSET: i64 = 31;

/// A fixed-layout log₂ histogram of positive durations in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    clamped: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            clamped: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket a sample lands in.  Non-positive and non-finite samples
    /// are clamped into bucket 0.
    pub fn bucket_index(seconds: f64) -> usize {
        if !(seconds.is_finite() && seconds > 0.0) {
            return 0;
        }
        let exponent = seconds.log2().floor() as i64 + BUCKET_OFFSET;
        exponent.clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
    }

    /// The `[low, high)` range of seconds a bucket covers.  Bucket 0's low
    /// edge is reported as 0 because it also absorbs underflow.
    pub fn bucket_bounds(index: usize) -> (f64, f64) {
        let index = index.min(HISTOGRAM_BUCKETS - 1) as i32;
        let low = if index == 0 {
            0.0
        } else {
            2f64.powi(index - BUCKET_OFFSET as i32)
        };
        let high = 2f64.powi(index - BUCKET_OFFSET as i32 + 1);
        (low, high)
    }

    /// Record one sample.  O(1), allocation-free.
    ///
    /// Non-finite and non-positive samples are clamped to 0 (bucket 0) so
    /// the aggregate statistics stay finite, but the clamp is not silent:
    /// each one also increments the [`clamped`](Self::clamped) counter so
    /// exporters can surface that the histogram saw garbage input.
    pub fn record(&mut self, seconds: f64) {
        let v = if seconds.is_finite() && seconds > 0.0 {
            seconds
        } else {
            self.clamped += 1;
            0.0
        };
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one.  Bucket counts add as
    /// integers, so merging is exactly associative and commutative.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.clamped += other.clamped;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of samples that were non-finite or non-positive and were
    /// clamped into bucket 0.  A nonzero value means some producer fed the
    /// histogram garbage (NaN, infinity, a negative duration) — the counts
    /// are still included in [`count`](Self::count).
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact smallest sample (0 when empty).
    pub fn min_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact largest sample (0 when empty).
    pub fn max_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The raw bucket counts, low bucket first.
    pub fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Nearest-rank percentile estimate for quantile `q` in `[0, 1]`.
    ///
    /// The returned value is the geometric midpoint of the bucket holding
    /// the rank, clamped to the observed `[min, max]`, so estimates are
    /// monotone in `q` and within a factor of ~√2 of the true sample.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &bucket) in self.counts.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                let (low, high) = Self::bucket_bounds(index);
                let mid = if index == 0 {
                    high * 0.5
                } else {
                    (low * high).sqrt()
                };
                return mid.clamp(self.min_seconds(), self.max_seconds());
            }
        }
        self.max_seconds()
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// 99.9th-percentile estimate.
    pub fn p999(&self) -> f64 {
        self.percentile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_expected_ranges() {
        assert_eq!(LogHistogram::bucket_index(1.0), 31);
        assert_eq!(LogHistogram::bucket_index(1.5), 31);
        assert_eq!(LogHistogram::bucket_index(2.0), 32);
        assert_eq!(LogHistogram::bucket_index(0.5), 30);
        assert_eq!(LogHistogram::bucket_index(1e-9), 1);
        assert_eq!(LogHistogram::bucket_index(0.0), 0);
        assert_eq!(LogHistogram::bucket_index(-3.0), 0);
        assert_eq!(LogHistogram::bucket_index(f64::NAN), 0);
        assert_eq!(LogHistogram::bucket_index(1e300), HISTOGRAM_BUCKETS - 1);
        let (low, high) = LogHistogram::bucket_bounds(31);
        assert_eq!(low, 1.0);
        assert_eq!(high, 2.0);
        assert_eq!(LogHistogram::bucket_bounds(0).0, 0.0);
    }

    #[test]
    fn recording_tracks_exact_count_sum_min_max() {
        let mut h = LogHistogram::new();
        for v in [0.25, 1.0, 4.0, 0.25] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 5.5);
        assert_eq!(h.mean(), 1.375);
        assert_eq!(h.min_seconds(), 0.25);
        assert_eq!(h.max_seconds(), 4.0);
        assert_eq!(h.bucket_counts()[29], 2); // 0.25 in [0.25, 0.5)
        assert_eq!(h.bucket_counts()[31], 1);
        assert_eq!(h.bucket_counts()[33], 1);
    }

    #[test]
    fn clamped_samples_are_counted_not_silently_absorbed() {
        let mut h = LogHistogram::new();
        h.record(1.0);
        assert_eq!(h.clamped(), 0);
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            h.record(bad);
        }
        assert_eq!(h.clamped(), 5);
        assert_eq!(h.count(), 6); // clamped samples still count
        assert_eq!(h.bucket_counts()[0], 5);

        let mut other = LogHistogram::new();
        other.record(f64::NAN);
        h.merge(&other);
        assert_eq!(h.clamped(), 6);
    }

    #[test]
    fn empty_histogram_reads_as_zeros() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min_seconds(), 0.0);
        assert_eq!(h.max_seconds(), 0.0);
        assert_eq!(h.percentile(0.5), 0.0);
    }

    #[test]
    fn merge_adds_bucket_counts_and_is_associative() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut c = LogHistogram::new();
        for v in [1e-6, 3e-6, 1e-5] {
            a.record(v);
        }
        for v in [0.01, 0.02] {
            b.record(v);
        }
        for v in [1.5, 2.5, 100.0, 1e-9] {
            c.record(v);
        }

        let mut left = b.clone();
        left.merge(&c);
        let mut abc_right = a.clone();
        abc_right.merge(&left); // a + (b + c)

        let mut ab = a.clone();
        ab.merge(&b);
        ab.merge(&c); // (a + b) + c

        assert_eq!(abc_right.bucket_counts(), ab.bucket_counts());
        assert_eq!(abc_right.count(), 9);
        assert_eq!(abc_right.min_seconds(), ab.min_seconds());
        assert_eq!(abc_right.max_seconds(), ab.max_seconds());
    }

    #[test]
    fn percentiles_are_monotone_and_bracket_the_samples() {
        let mut h = LogHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3); // 1 ms .. 1 s
        }
        let p50 = h.p50();
        let p95 = h.p95();
        let p99 = h.p99();
        let p999 = h.p999();
        assert!(p50 <= p95 && p95 <= p99 && p99 <= p999);
        assert!(p50 >= h.min_seconds() && p999 <= h.max_seconds());
        // log2 buckets: estimates are within a factor of 2 of the truth.
        assert!(p50 > 0.25 && p50 < 1.0, "p50 estimate {p50}");
        assert!(p999 > 0.5, "p999 estimate {p999}");
    }
}
