//! Hierarchical spans with deterministic tree shape.
//!
//! A [`Tracer`] is either *recording* (shared buffer behind an `Arc`) or
//! *disabled* (`None` — opening a span is one branch, no clock read, no
//! allocation).  Spans nest **explicitly** via [`Span::child`]: parentage
//! is carried in the value, not in thread-local state, so the aggregated
//! phase tree ([`PhaseNode`]) has an identical shape no matter how work
//! was scheduled across threads, and a span can be opened on one thread
//! and closed on another (the engine's queue-wait spans do exactly that).
//!
//! Raw [`SpanRecord`]s keep wall-clock timestamps and a `lane` (the
//! Chrome-trace thread id) — those are *not* deterministic.  Determinism
//! lives one level up: grouping records by name along parent edges yields
//! the same `PhaseNode::shape_string()` for 1 or 8 workers, which
//! `tests/telemetry.rs` pins on a fixed 12-job sweep.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// One closed span: what ran, under what, on which lane, and for how long.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the tracer (assigned at open, starting from 1).
    pub id: u64,
    /// Id of the enclosing span, if any.
    pub parent: Option<u64>,
    /// Phase name (deterministic; never derived from timing or scheduling).
    pub name: String,
    /// Display lane for Chrome-trace export (`tid`); 0 unless assigned.
    pub lane: u32,
    /// Seconds from the tracer's epoch to the span opening.
    pub start_seconds: f64,
    /// Seconds the span stayed open.
    pub duration_seconds: f64,
}

#[derive(Debug)]
struct TraceState {
    epoch: Instant,
    next_id: AtomicU64,
    records: Mutex<Vec<SpanRecord>>,
}

impl TraceState {
    fn records(&self) -> std::sync::MutexGuard<'_, Vec<SpanRecord>> {
        self.records.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Hands out spans; cheap to clone and share across threads.
#[derive(Debug, Clone)]
pub struct Tracer {
    state: Option<Arc<TraceState>>,
}

impl Default for Tracer {
    /// The default tracer is disabled — tracing is strictly opt-in.
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A recording tracer with its epoch set to now.
    pub fn new() -> Tracer {
        // mffv-telemetry is a blessed wall-clock home (AUDIT.md rule 5); the
        // clippy mirror still needs a site-level allow.
        #[allow(clippy::disallowed_methods)]
        let epoch = Instant::now();
        Tracer {
            state: Some(Arc::new(TraceState {
                epoch,
                next_id: AtomicU64::new(1),
                records: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A tracer that records nothing; every span it opens is a no-op.
    pub fn disabled() -> Tracer {
        Tracer { state: None }
    }

    /// Whether spans opened from this tracer record anything.
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }

    /// Open a root span on lane 0.
    pub fn span(&self, name: &str) -> Span {
        self.span_on_lane(name, 0)
    }

    /// Open a root span on an explicit Chrome-trace lane.
    pub fn span_on_lane(&self, name: &str, lane: u32) -> Span {
        Span::open(self.state.clone(), None, name, lane)
    }

    /// Snapshot of all closed spans, in close order.
    pub fn records(&self) -> Vec<SpanRecord> {
        match &self.state {
            Some(state) => state.records().clone(),
            None => Vec::new(),
        }
    }

    /// Drop all closed spans (open spans still record when they close).
    pub fn clear(&self) {
        if let Some(state) = &self.state {
            state.records().clear();
        }
    }

    /// Aggregate closed spans into the deterministic phase tree.
    pub fn phase_tree(&self) -> PhaseNode {
        PhaseNode::aggregate(&self.records())
    }
}

#[derive(Debug)]
struct SpanInner {
    state: Arc<TraceState>,
    id: u64,
    parent: Option<u64>,
    name: String,
    lane: u32,
    start_seconds: f64,
    started: Instant,
}

impl Drop for SpanInner {
    fn drop(&mut self) {
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            lane: self.lane,
            start_seconds: self.start_seconds,
            duration_seconds: self.started.elapsed().as_secs_f64(),
        };
        self.state.records().push(record);
    }
}

/// A guard for one phase: opened by [`Tracer::span`] / [`Span::child`],
/// recorded when dropped (or via [`Span::finish`]).  A null span is free.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    fn open(state: Option<Arc<TraceState>>, parent: Option<u64>, name: &str, lane: u32) -> Span {
        let Some(state) = state else {
            return Span { inner: None };
        };
        let id = state.next_id.fetch_add(1, Ordering::SeqCst);
        // mffv-telemetry is a blessed wall-clock home (AUDIT.md rule 5); the
        // clippy mirror still needs a site-level allow.
        #[allow(clippy::disallowed_methods)]
        let started = Instant::now();
        let start_seconds = started.duration_since(state.epoch).as_secs_f64();
        Span {
            inner: Some(SpanInner {
                state,
                id,
                parent,
                name: name.to_string(),
                lane,
                start_seconds,
                started,
            }),
        }
    }

    /// A span that records nothing — the disabled-tracing fast path.
    pub fn null() -> Span {
        Span { inner: None }
    }

    /// Whether closing this span produces a record.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a nested span on the same lane.
    pub fn child(&self, name: &str) -> Span {
        match &self.inner {
            Some(inner) => Span::open(Some(inner.state.clone()), Some(inner.id), name, inner.lane),
            None => Span { inner: None },
        }
    }

    /// Open a nested span on an explicit lane (engine workers use this to
    /// separate Chrome-trace rows).
    pub fn child_on_lane(&self, name: &str, lane: u32) -> Span {
        match &self.inner {
            Some(inner) => Span::open(Some(inner.state.clone()), Some(inner.id), name, lane),
            None => Span { inner: None },
        }
    }

    /// Close the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

/// One node of the aggregated phase tree: all spans sharing a name under
/// the same parent path, with children sorted by name.  The *shape*
/// (names, nesting, counts) is deterministic across thread counts; only
/// the `total_seconds` differ run to run.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseNode {
    /// Phase name (the synthetic top node is named `root`).
    pub name: String,
    /// Number of spans merged into this node.
    pub count: u64,
    /// Summed duration of the merged spans.
    pub total_seconds: f64,
    /// Child phases, sorted by name.
    pub children: Vec<PhaseNode>,
}

impl PhaseNode {
    /// Build the phase tree from raw records.  Records whose parent is
    /// still open (not yet recorded) attach at the root.
    pub fn aggregate(records: &[SpanRecord]) -> PhaseNode {
        let ids: BTreeSet<u64> = records.iter().map(|r| r.id).collect();
        let mut children_of: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut roots: Vec<usize> = Vec::new();
        for (idx, record) in records.iter().enumerate() {
            match record.parent {
                Some(p) if ids.contains(&p) => children_of.entry(p).or_default().push(idx),
                _ => roots.push(idx),
            }
        }
        PhaseNode {
            name: "root".to_string(),
            count: 1,
            total_seconds: sum_durations(records, &roots),
            children: build_level(records, &children_of, &roots),
        }
    }

    /// The immediate child with the given name, if present.
    pub fn find(&self, name: &str) -> Option<&PhaseNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Compact `name*count[children…]` encoding of the tree shape — no
    /// timings, so equal shapes compare equal across runs and worker
    /// counts.
    pub fn shape_string(&self) -> String {
        let mut out = String::new();
        self.write_shape(&mut out);
        out
    }

    fn write_shape(&self, out: &mut String) {
        out.push_str(&self.name);
        out.push('*');
        out.push_str(&self.count.to_string());
        if !self.children.is_empty() {
            out.push('[');
            for (i, child) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                child.write_shape(out);
            }
            out.push(']');
        }
    }
}

fn sum_durations(records: &[SpanRecord], indices: &[usize]) -> f64 {
    let mut total = 0.0;
    for &idx in indices {
        total += records[idx].duration_seconds;
    }
    total
}

fn build_level(
    records: &[SpanRecord],
    children_of: &BTreeMap<u64, Vec<usize>>,
    level: &[usize],
) -> Vec<PhaseNode> {
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for &idx in level {
        by_name
            .entry(records[idx].name.as_str())
            .or_default()
            .push(idx);
    }
    let mut nodes = Vec::with_capacity(by_name.len());
    for (name, indices) in by_name {
        let mut child_indices: Vec<usize> = Vec::new();
        for &idx in &indices {
            if let Some(kids) = children_of.get(&records[idx].id) {
                child_indices.extend_from_slice(kids);
            }
        }
        nodes.push(PhaseNode {
            name: name.to_string(),
            count: indices.len() as u64,
            total_seconds: sum_durations(records, &indices),
            children: build_level(records, children_of, &child_indices),
        });
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracers_record_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_recording());
        let root = tracer.span("solve");
        assert!(!root.is_recording());
        let child = root.child("cg-loop");
        assert!(!child.is_recording());
        drop(child);
        drop(root);
        assert!(tracer.records().is_empty());
        assert!(!Tracer::default().is_recording());
    }

    #[test]
    fn spans_record_parentage_and_names() {
        let tracer = Tracer::new();
        {
            let root = tracer.span("solve");
            root.child("build").finish();
            let cg = root.child("cg");
            cg.child("iters").finish();
            cg.child("iters").finish();
        }
        let records = tracer.records();
        assert_eq!(records.len(), 5);
        let root = records.iter().find(|r| r.name == "solve").unwrap();
        assert_eq!(root.parent, None);
        let cg = records.iter().find(|r| r.name == "cg").unwrap();
        assert_eq!(cg.parent, Some(root.id));
        let iters: Vec<_> = records.iter().filter(|r| r.name == "iters").collect();
        assert_eq!(iters.len(), 2);
        assert!(iters.iter().all(|r| r.parent == Some(cg.id)));
        assert!(records.iter().all(|r| r.duration_seconds >= 0.0));
    }

    #[test]
    fn phase_tree_groups_by_name_and_sorts_children() {
        let tracer = Tracer::new();
        {
            let root = tracer.span("batch");
            // Open in non-alphabetical order; the tree must sort by name.
            root.child("zeta").finish();
            root.child("alpha").finish();
            root.child("alpha").finish();
        }
        let tree = tracer.phase_tree();
        assert_eq!(tree.name, "root");
        assert_eq!(tree.children.len(), 1);
        let batch = tree.find("batch").unwrap();
        assert_eq!(batch.count, 1);
        let names: Vec<_> = batch.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(batch.find("alpha").unwrap().count, 2);
        assert_eq!(tree.shape_string(), "root*1[batch*1[alpha*2,zeta*1]]",);
    }

    #[test]
    fn spans_can_close_on_another_thread() {
        let tracer = Tracer::new();
        let root = tracer.span("queue");
        let wait = root.child("queue-wait");
        std::thread::scope(|scope| {
            scope.spawn(move || drop(wait));
        });
        drop(root);
        let tree = tracer.phase_tree();
        assert_eq!(tree.shape_string(), "root*1[queue*1[queue-wait*1]]",);
    }

    #[test]
    fn children_of_still_open_parents_attach_at_the_root() {
        let tracer = Tracer::new();
        let root = tracer.span("outer");
        root.child("inner").finish();
        // `outer` is still open: `inner` has no recorded parent yet.
        let tree = tracer.phase_tree();
        assert_eq!(tree.shape_string(), "root*1[inner*1]");
        drop(root);
        assert_eq!(
            tracer.phase_tree().shape_string(),
            "root*1[outer*1[inner*1]]",
        );
    }
}
