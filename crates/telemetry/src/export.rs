//! Exporters: human-readable text tree, canonical JSON snapshots and
//! Chrome trace-event JSON.
//!
//! All JSON is hand-rolled `format!` assembly in the same style as the
//! golden-fixture harness — no serde, object keys emitted in a fixed
//! order, metric names in sorted order — so byte-identical inputs export
//! byte-identical documents.  The Chrome trace uses the documented
//! trace-event format (`ph: "X"` complete events with microsecond
//! `ts`/`dur`) and loads directly in `chrome://tracing` or Perfetto.

use crate::hist::LogHistogram;
use crate::metrics::MetricsSnapshot;
use crate::span::{PhaseNode, SpanRecord};

/// Escape a string for inclusion in a JSON document.
fn json_escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for ch in raw.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a finite f64 as a JSON number (shortest round-trip form).
/// Non-finite values have no JSON encoding and collapse to 0.0.
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:?}")
    } else {
        "0.0".to_string()
    }
}

/// Human-scale duration formatting for the text tree.
fn format_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.0} ns", seconds * 1e9)
    }
}

/// Indented text rendering of an aggregated phase tree:
///
/// ```text
/// root  x1  total 12.3 ms
///   solve @ host  x1  total 12.1 ms
///     cg-loop  x1  total 11.0 ms
///       iters  x4  total 10.9 ms
/// ```
pub fn render_phase_tree(root: &PhaseNode) -> String {
    let mut out = String::new();
    render_node(root, 0, &mut out);
    out
}

fn render_node(node: &PhaseNode, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(&format!(
        "{}  x{}  total {}\n",
        node.name,
        node.count,
        format_seconds(node.total_seconds)
    ));
    for child in &node.children {
        render_node(child, depth + 1, out);
    }
}

/// Canonical JSON for one phase-tree node (recursively).
pub fn phase_tree_json(node: &PhaseNode) -> String {
    let mut children = String::new();
    for (i, child) in node.children.iter().enumerate() {
        if i > 0 {
            children.push(',');
        }
        children.push_str(&phase_tree_json(child));
    }
    format!(
        "{{\"name\":\"{}\",\"count\":{},\"total_seconds\":{},\"children\":[{}]}}",
        json_escape(&node.name),
        node.count,
        json_f64(node.total_seconds),
        children
    )
}

fn histogram_json(hist: &LogHistogram) -> String {
    // Sparse bucket encoding: only non-empty buckets, as [index, count].
    let mut buckets = String::new();
    for (index, &count) in hist.bucket_counts().iter().enumerate() {
        if count > 0 {
            if !buckets.is_empty() {
                buckets.push(',');
            }
            buckets.push_str(&format!("[{index},{count}]"));
        }
    }
    format!(
        "{{\"count\":{},\"clamped\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"p999\":{},\"buckets\":[{}]}}",
        hist.count(),
        hist.clamped(),
        json_f64(hist.sum()),
        json_f64(hist.min_seconds()),
        json_f64(hist.max_seconds()),
        json_f64(hist.mean()),
        json_f64(hist.p50()),
        json_f64(hist.p95()),
        json_f64(hist.p99()),
        json_f64(hist.p999()),
        buckets
    )
}

/// Canonical JSON for a metrics snapshot (names already sorted).
pub fn metrics_json(snapshot: &MetricsSnapshot) -> String {
    let mut counters = String::new();
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            counters.push(',');
        }
        counters.push_str(&format!("\"{}\":{}", json_escape(name), value));
    }
    let mut gauges = String::new();
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            gauges.push(',');
        }
        gauges.push_str(&format!("\"{}\":{}", json_escape(name), json_f64(*value)));
    }
    let mut histograms = String::new();
    for (i, (name, hist)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            histograms.push(',');
        }
        histograms.push_str(&format!(
            "\"{}\":{}",
            json_escape(name),
            histogram_json(hist)
        ));
    }
    format!(
        "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}"
    )
}

/// Canonical JSON combining a phase tree and a metrics snapshot — the
/// one-file dump a report or bench bin writes next to its results.
pub fn snapshot_json(phases: &PhaseNode, metrics: &MetricsSnapshot) -> String {
    format!(
        "{{\"phases\":{},\"metrics\":{}}}",
        phase_tree_json(phases),
        metrics_json(metrics)
    )
}

/// Chrome trace-event JSON (`chrome://tracing` / Perfetto).  Each span
/// becomes one complete (`ph: "X"`) event; `tid` is the span's lane, so
/// engine workers land on separate rows.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut events = String::new();
    for (i, record) in records.iter().enumerate() {
        if i > 0 {
            events.push(',');
        }
        let parent = match record.parent {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        events.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"mffv\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"id\":{},\"parent\":{}}}}}",
            json_escape(&record.name),
            json_f64(record.start_seconds * 1e6),
            json_f64(record.duration_seconds * 1e6),
            record.lane,
            record.id,
            parent
        ));
    }
    format!("{{\"traceEvents\":[{events}],\"displayTimeUnit\":\"ms\"}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::span::Tracer;

    fn sample_tracer() -> Tracer {
        let tracer = Tracer::new();
        {
            let root = tracer.span("solve @ host");
            root.child("build-operator").finish();
            let cg = root.child("cg-loop");
            cg.child("iters").finish();
        }
        tracer
    }

    #[test]
    fn text_tree_indents_and_counts() {
        let rendered = render_phase_tree(&sample_tracer().phase_tree());
        assert!(rendered.contains("solve @ host  x1"));
        assert!(rendered.contains("\n    cg-loop  x1"));
        assert!(rendered.contains("\n      iters  x1"));
    }

    #[test]
    fn json_exports_are_balanced_and_escape_names() {
        let tracer = Tracer::new();
        tracer.span("odd \"name\"\n").finish();
        let tree = phase_tree_json(&tracer.phase_tree());
        assert!(tree.contains("odd \\\"name\\\"\\n"));
        let opens = tree.matches('{').count();
        assert_eq!(opens, tree.matches('}').count());
        assert!(tree.starts_with('{') && tree.ends_with('}'));

        let registry = MetricsRegistry::new();
        registry.inc("jobs");
        registry.set_gauge("depth", 2.5);
        registry.observe("lat", 1e-3);
        registry.observe("lat", f64::NAN);
        let metrics = metrics_json(&registry.snapshot());
        assert!(metrics.contains("\"jobs\":1"));
        assert!(metrics.contains("\"depth\":2.5"));
        assert!(metrics.contains("\"p999\":"));
        assert!(metrics.contains("\"clamped\":1"));
        assert_eq!(metrics.matches('{').count(), metrics.matches('}').count());

        let combined = snapshot_json(&tracer.phase_tree(), &registry.snapshot());
        assert!(combined.starts_with("{\"phases\":{"));
        assert!(combined.contains("\"metrics\":{"));
    }

    #[test]
    fn chrome_trace_has_complete_events_with_microsecond_stamps() {
        let tracer = sample_tracer();
        let trace = chrome_trace_json(&tracer.records());
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"cat\":\"mffv\""));
        assert!(trace.contains("\"name\":\"cg-loop\""));
        assert_eq!(trace.matches("\"ph\":\"X\"").count(), 4);
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
        assert!(chrome_trace_json(&[]).contains("\"traceEvents\":[]"));
    }

    #[test]
    fn json_f64_emits_parseable_numbers() {
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(f64::INFINITY), "0.0");
        assert_eq!(json_f64(f64::NAN), "0.0");
        // Shortest round-trip form is still a valid JSON number.
        let tiny = json_f64(1e-9);
        assert!(tiny.parse::<f64>().is_ok());
    }
}
