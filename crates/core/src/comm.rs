//! Distributed data communication for the matrix-free computation (§III-B).
//!
//! Before each application of the matrix-free operator, every PE needs the direction
//! column of its four cardinal neighbours.  The paper organises this as the
//! four-step schedule of Table I, with action colours C1–C4, completion-callback
//! colours C5–C12, and routers whose switch positions alternate each PE between
//! Sending and Receiving roles (Listing 1, Figure 4):
//!
//! | step | odd-x            | even-x           | odd-y            | even-y           |
//! |------|------------------|------------------|------------------|------------------|
//! | 1    | send C east (C1) | recv W ← west    | send C north (C3)| recv S ← south   |
//! | 2    | recv W ← west    | send C east (C2) | recv S ← south   | send C north (C4)|
//! | 3    | send C west (C1) | recv E ← east    | send C south (C3)| recv N ← north   |
//! | 4    | recv E ← east    | send C west (C2) | recv N ← north   | send C south (C4)|
//!
//! Colour C1 carries every stream *originated by odd-x PEs* (east in steps 1–2, west
//! in steps 3–4), C2 the streams originated by even-x PEs, and C3/C4 the analogous
//! Y-dimension streams; each colour therefore needs exactly two switch positions,
//! advanced once between step 2 and step 3 and wrapped (ring mode) after step 4.

use crate::mapping::PeColumnBuffers;
use mffv_fabric::error::{FabricError, Result};
use mffv_fabric::router::{RouterRule, SwitchConfig};
use mffv_fabric::{Color, ColorAllocator, Fabric, FabricDims, Port};

/// Which of the four Table-I steps is being executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExchangeStep {
    Step1,
    Step2,
    Step3,
    Step4,
}

impl ExchangeStep {
    /// All four steps in order.
    pub const ALL: [ExchangeStep; 4] = [
        ExchangeStep::Step1,
        ExchangeStep::Step2,
        ExchangeStep::Step3,
        ExchangeStep::Step4,
    ];
}

/// Report of one full four-step exchange.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExchangeReport {
    /// Messages sent across the fabric.
    pub messages: usize,
    /// Completion callbacks observed (sender + receiver callbacks, Table I's CC
    /// columns).
    pub callbacks: usize,
    /// Wavelets moved (payload values × messages).
    pub wavelets: usize,
}

/// The four-step cardinal halo exchange.
#[derive(Clone, Debug)]
pub struct CardinalExchange {
    fabric_dims: FabricDims,
    /// C1, C2: X-dimension action colours; C3, C4: Y-dimension action colours.
    action_colors: [Color; 4],
    /// C5–C12: completion-callback colours (modelled as counters, see
    /// [`CardinalExchange::callback_counts`]).
    callback_colors: [Color; 8],
    callback_counts: [usize; 8],
}

impl CardinalExchange {
    /// Allocate the colour set and program every PE's router with the two-position
    /// switch configurations described in the module documentation.
    pub fn new(fabric: &mut Fabric, colors: &mut ColorAllocator) -> Result<Self> {
        let action_colors: [Color; 4] = {
            let v = colors.allocate_many(4)?;
            [v[0], v[1], v[2], v[3]]
        };
        let callback_colors: [Color; 8] = {
            let v = colors.allocate_many(8)?;
            [v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7]]
        };
        let exchange = Self {
            fabric_dims: fabric.dims(),
            action_colors,
            callback_colors,
            callback_counts: [0; 8],
        };
        exchange.program_routers(fabric);
        Ok(exchange)
    }

    /// The action colours C1–C4.
    pub fn action_colors(&self) -> [Color; 4] {
        self.action_colors
    }

    /// The completion-callback colours C5–C12.
    pub fn callback_colors(&self) -> [Color; 8] {
        self.callback_colors
    }

    /// How many times each completion callback fired since construction.
    pub fn callback_counts(&self) -> [usize; 8] {
        self.callback_counts
    }

    fn program_routers(&self, fabric: &mut Fabric) {
        let [c1, c2, c3, c4] = self.action_colors;
        // C1: streams originated by odd-x PEs (east in steps 1–2, west in 3–4).
        fabric.set_color_config_all(c1, |pe| {
            if pe.x % 2 == 1 {
                SwitchConfig::switched(
                    vec![
                        RouterRule::new(&[Port::Ramp], &[Port::East]),
                        RouterRule::new(&[Port::Ramp], &[Port::West]),
                    ],
                    true,
                )
            } else {
                SwitchConfig::switched(
                    vec![
                        RouterRule::new(&[Port::West], &[Port::Ramp]),
                        RouterRule::new(&[Port::East], &[Port::Ramp]),
                    ],
                    true,
                )
            }
        });
        // C2: streams originated by even-x PEs.
        fabric.set_color_config_all(c2, |pe| {
            if pe.x % 2 == 0 {
                SwitchConfig::switched(
                    vec![
                        RouterRule::new(&[Port::Ramp], &[Port::East]),
                        RouterRule::new(&[Port::Ramp], &[Port::West]),
                    ],
                    true,
                )
            } else {
                SwitchConfig::switched(
                    vec![
                        RouterRule::new(&[Port::West], &[Port::Ramp]),
                        RouterRule::new(&[Port::East], &[Port::Ramp]),
                    ],
                    true,
                )
            }
        });
        // C3: streams originated by odd-y PEs (north in steps 1–2, south in 3–4).
        fabric.set_color_config_all(c3, |pe| {
            if pe.y % 2 == 1 {
                SwitchConfig::switched(
                    vec![
                        RouterRule::new(&[Port::Ramp], &[Port::North]),
                        RouterRule::new(&[Port::Ramp], &[Port::South]),
                    ],
                    true,
                )
            } else {
                SwitchConfig::switched(
                    vec![
                        RouterRule::new(&[Port::South], &[Port::Ramp]),
                        RouterRule::new(&[Port::North], &[Port::Ramp]),
                    ],
                    true,
                )
            }
        });
        // C4: streams originated by even-y PEs.
        fabric.set_color_config_all(c4, |pe| {
            if pe.y % 2 == 0 {
                SwitchConfig::switched(
                    vec![
                        RouterRule::new(&[Port::Ramp], &[Port::North]),
                        RouterRule::new(&[Port::Ramp], &[Port::South]),
                    ],
                    true,
                )
            } else {
                SwitchConfig::switched(
                    vec![
                        RouterRule::new(&[Port::South], &[Port::Ramp]),
                        RouterRule::new(&[Port::North], &[Port::Ramp]),
                    ],
                    true,
                )
            }
        });
    }

    /// Perform the full four-step exchange of every PE's `direction` column into its
    /// neighbours' halo buffers.  `buffers[fabric.dims().linear(pe)]` must be the
    /// buffer set of `pe`.
    pub fn exchange(
        &mut self,
        fabric: &mut Fabric,
        buffers: &[PeColumnBuffers],
    ) -> Result<ExchangeReport> {
        assert_eq!(
            buffers.len(),
            fabric.num_pes(),
            "one PeColumnBuffers entry per PE is required"
        );
        let mut report = ExchangeReport::default();
        for step in ExchangeStep::ALL {
            self.run_step(fabric, buffers, step, &mut report)?;
            // Between step 2 and step 3, every colour advances its switch position —
            // the control command of Listing 1.  After step 4 the ring wraps the
            // switches back to position 0 for the next iteration.
            if step == ExchangeStep::Step2 || step == ExchangeStep::Step4 {
                for color in self.action_colors {
                    for idx in 0..fabric.num_pes() {
                        let pe = fabric.dims().unlinear(idx);
                        fabric.advance_switch(pe, color)?;
                    }
                }
            }
        }
        Ok(report)
    }

    fn run_step(
        &mut self,
        fabric: &mut Fabric,
        buffers: &[PeColumnBuffers],
        step: ExchangeStep,
        report: &mut ExchangeReport,
    ) -> Result<()> {
        let dims = self.fabric_dims;
        let [c1, c2, c3, c4] = self.action_colors;
        // (sender parity on axis, axis is x?, colour, outgoing port, receiver halo
        // selector, sender callback index, receiver callback index)
        struct Action {
            sender_parity: usize,
            x_axis: bool,
            color: Color,
            port: Port,
            sender_cb: usize,
            receiver_cb: usize,
        }
        let actions: Vec<Action> = match step {
            ExchangeStep::Step1 => vec![
                Action {
                    sender_parity: 1,
                    x_axis: true,
                    color: c1,
                    port: Port::East,
                    sender_cb: 0,
                    receiver_cb: 1,
                },
                Action {
                    sender_parity: 1,
                    x_axis: false,
                    color: c3,
                    port: Port::North,
                    sender_cb: 2,
                    receiver_cb: 3,
                },
            ],
            ExchangeStep::Step2 => vec![
                Action {
                    sender_parity: 0,
                    x_axis: true,
                    color: c2,
                    port: Port::East,
                    sender_cb: 0,
                    receiver_cb: 1,
                },
                Action {
                    sender_parity: 0,
                    x_axis: false,
                    color: c4,
                    port: Port::North,
                    sender_cb: 2,
                    receiver_cb: 3,
                },
            ],
            ExchangeStep::Step3 => vec![
                Action {
                    sender_parity: 1,
                    x_axis: true,
                    color: c1,
                    port: Port::West,
                    sender_cb: 4,
                    receiver_cb: 5,
                },
                Action {
                    sender_parity: 1,
                    x_axis: false,
                    color: c3,
                    port: Port::South,
                    sender_cb: 6,
                    receiver_cb: 7,
                },
            ],
            ExchangeStep::Step4 => vec![
                Action {
                    sender_parity: 0,
                    x_axis: true,
                    color: c2,
                    port: Port::West,
                    sender_cb: 4,
                    receiver_cb: 5,
                },
                Action {
                    sender_parity: 0,
                    x_axis: false,
                    color: c4,
                    port: Port::South,
                    sender_cb: 6,
                    receiver_cb: 7,
                },
            ],
        };

        for action in &actions {
            // Phase A: every sender of this action injects its direction column.
            for (idx, bufs) in buffers.iter().enumerate() {
                let pe = dims.unlinear(idx);
                let parity = if action.x_axis { pe.x % 2 } else { pe.y % 2 };
                if parity != action.sender_parity {
                    continue;
                }
                if dims.neighbor(pe, action.port).is_none() {
                    continue; // fabric edge: nothing to send to
                }
                let column = {
                    let nz = fabric.pe(pe).memory().len(bufs.direction)?;
                    fabric.pe(pe).memory().read(bufs.direction, 0, nz)?
                };
                let send = fabric.send(pe, action.color, &column)?;
                if send.deliveries != 1 {
                    return Err(FabricError::InvalidBuffer {
                        detail: format!(
                            "exchange send from {pe} delivered to {} PEs instead of 1",
                            send.deliveries
                        ),
                    });
                }
                report.messages += 1;
                report.wavelets += column.len();
                self.callback_counts[action.sender_cb] += 1;
                report.callbacks += 1;
            }
            // Phase B: every receiver drains its mailbox into the right halo buffer.
            for (idx, bufs) in buffers.iter().enumerate() {
                let pe = dims.unlinear(idx);
                let parity = if action.x_axis { pe.x % 2 } else { pe.y % 2 };
                if parity == action.sender_parity {
                    continue;
                }
                // The receiver's source direction is the opposite of the send port:
                // an eastward send is received "from West".
                let source_port = action.port.entry_on_neighbor();
                if dims.neighbor(pe, source_port).is_none() {
                    continue; // fabric edge: no neighbour on that side
                }
                let payload = fabric.pe_mut(pe).take_message(action.color)?;
                let halo = halo_buffer_for_source(bufs, source_port);
                fabric.pe_mut(pe).memory_mut().write(halo, 0, &payload)?;
                // Account the copy from the ramp into local memory as stores.
                fabric.pe_mut(pe).counters_mut().mem_store_bytes += payload.len() as u64 * 4;
                self.callback_counts[action.receiver_cb] += 1;
                report.callbacks += 1;
            }
        }
        Ok(())
    }
}

/// The halo buffer that stores data arriving from a given fabric side.
fn halo_buffer_for_source(bufs: &PeColumnBuffers, source: Port) -> mffv_fabric::BufferId {
    match source {
        Port::West => bufs.halo_west,
        Port::East => bufs.halo_east,
        Port::North => bufs.halo_north,
        Port::South => bufs.halo_south,
        // audit: allow(panic) — invariant: halo routes are built from the four
        // cardinal neighbor offsets; Ramp is the PE-local memory port.
        Port::Ramp => unreachable!("halo source must be a cardinal port"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffv_fabric::PeId;
    use mffv_mesh::workload::WorkloadSpec;
    use mffv_mesh::{CellField, Dims};

    /// Build a fabric loaded with a workload whose direction column at (x, y, z) is
    /// a recognisable function of the coordinates, then exchange and check halos.
    fn setup(
        dims: Dims,
    ) -> (
        Fabric,
        Vec<PeColumnBuffers>,
        CardinalExchange,
        CellField<f32>,
    ) {
        let spec = WorkloadSpec::paper_grid(dims.nx, dims.ny, dims.nz);
        let workload = spec.build();
        let mut fabric = Fabric::new(FabricDims::new(dims.nx, dims.ny));
        let mut buffers = Vec::with_capacity(fabric.num_pes());
        let direction = CellField::<f32>::from_fn(dims, |c| (c.x * 100 + c.y * 10 + c.z) as f32);
        for idx in 0..fabric.num_pes() {
            let pe_id = fabric.dims().unlinear(idx);
            let pe = fabric.pe_mut(pe_id);
            let bufs = PeColumnBuffers::allocate(pe, &workload, pe_id.x, pe_id.y).unwrap();
            let column = direction.column(pe_id.x, pe_id.y);
            pe.memory_mut().write(bufs.direction, 0, &column).unwrap();
            buffers.push(bufs);
        }
        let mut colors = ColorAllocator::new();
        let exchange = CardinalExchange::new(&mut fabric, &mut colors).unwrap();
        (fabric, buffers, exchange, direction)
    }

    #[test]
    fn every_interior_pe_receives_all_four_halos() {
        let dims = Dims::new(4, 3, 5);
        let (mut fabric, buffers, mut exchange, direction) = setup(dims);
        exchange.exchange(&mut fabric, &buffers).unwrap();
        for (idx, bufs) in buffers.iter().enumerate() {
            let pe = fabric.dims().unlinear(idx);
            let checks = [
                (
                    Port::West,
                    bufs.halo_west,
                    pe.x.checked_sub(1).map(|x| (x, pe.y)),
                ),
                (
                    Port::East,
                    bufs.halo_east,
                    (pe.x + 1 < dims.nx).then(|| (pe.x + 1, pe.y)),
                ),
                (
                    Port::North,
                    bufs.halo_north,
                    pe.y.checked_sub(1).map(|y| (pe.x, y)),
                ),
                (
                    Port::South,
                    bufs.halo_south,
                    (pe.y + 1 < dims.ny).then(|| (pe.x, pe.y + 1)),
                ),
            ];
            for (_, halo, neighbor) in checks {
                if let Some((nx, ny)) = neighbor {
                    let expected = direction.column(nx, ny);
                    let got = fabric.pe(pe).memory().read(halo, 0, dims.nz).unwrap();
                    assert_eq!(got, expected, "halo mismatch at PE {pe} from ({nx}, {ny})");
                }
            }
        }
    }

    #[test]
    fn exchange_message_count_matches_interior_face_count() {
        let dims = Dims::new(4, 3, 2);
        let (mut fabric, buffers, mut exchange, _) = setup(dims);
        let report = exchange.exchange(&mut fabric, &buffers).unwrap();
        // Every interior X face and Y face is crossed exactly twice (once in each
        // direction): 2 * ((nx-1)*ny + nx*(ny-1)) messages.
        let expected = 2 * ((dims.nx - 1) * dims.ny + dims.nx * (dims.ny - 1));
        assert_eq!(report.messages, expected);
        assert_eq!(report.wavelets, expected * dims.nz);
        // Every send and every receive triggered its completion callback.
        assert_eq!(report.callbacks, 2 * expected);
        assert_eq!(
            exchange.callback_counts().iter().sum::<usize>(),
            2 * expected
        );
    }

    #[test]
    fn exchange_is_repeatable_across_iterations() {
        // The ring-mode switch positions must wrap so a second iteration works
        // identically — this is the crux of the Listing-1 toggling.
        let dims = Dims::new(5, 4, 3);
        let (mut fabric, buffers, mut exchange, direction) = setup(dims);
        exchange.exchange(&mut fabric, &buffers).unwrap();
        let before = fabric.stats().link_crossings;
        exchange.exchange(&mut fabric, &buffers).unwrap();
        let after = fabric.stats().link_crossings;
        assert_eq!(
            after,
            2 * before,
            "second iteration must move the same traffic"
        );
        // Halos still correct after the second pass.
        let pe = PeId::new(2, 2);
        let idx = fabric.dims().linear(pe);
        let got = fabric
            .pe(pe)
            .memory()
            .read(buffers[idx].halo_west, 0, dims.nz)
            .unwrap();
        assert_eq!(got, direction.column(1, 2));
    }

    #[test]
    fn single_row_fabric_exchanges_only_along_x() {
        let dims = Dims::new(6, 1, 4);
        let (mut fabric, buffers, mut exchange, direction) = setup(dims);
        let report = exchange.exchange(&mut fabric, &buffers).unwrap();
        assert_eq!(report.messages, 2 * (dims.nx - 1));
        let pe = PeId::new(3, 0);
        let idx = fabric.dims().linear(pe);
        let west = fabric
            .pe(pe)
            .memory()
            .read(buffers[idx].halo_west, 0, dims.nz)
            .unwrap();
        assert_eq!(west, direction.column(2, 0));
        let east = fabric
            .pe(pe)
            .memory()
            .read(buffers[idx].halo_east, 0, dims.nz)
            .unwrap();
        assert_eq!(east, direction.column(4, 0));
    }

    #[test]
    fn colors_are_distinct() {
        let dims = Dims::new(3, 3, 2);
        let (_, _, exchange, _) = setup(dims);
        let mut all = exchange.action_colors().to_vec();
        all.extend(exchange.callback_colors());
        let mut ids: Vec<u8> = all.iter().map(|c| c.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12);
    }
}
