#![forbid(unsafe_code)]
//! # mffv-core
//!
//! The paper's primary contribution, reproduced on the simulated fabric: a
//! **matrix-free finite-volume solver for single-phase flow designed for a dataflow
//! architecture** (§III).  The crate maps the 3-D problem onto the 2-D fabric,
//! implements the paper's communication machinery, and drives the conjugate-gradient
//! iteration as an event-driven state machine:
//!
//! * [`mapping`] — the cell-based data mapping of Figure 3 (every z-column of cells
//!   lives on one PE) and the PE local-memory plan, including the §III-E1 buffer
//!   reuse strategies and the resulting maximum column depth per 48 KiB PE;
//! * [`comm`] — the four-step cardinal halo exchange of Table I, driven by colours
//!   C1–C4 with completion-callback colours and the Listing-1 switch-position
//!   toggling (Figure 4);
//! * [`allreduce`] — the whole-fabric all-reduce of §III-C (row reduction, right-most
//!   column reduction, two-phase broadcast back);
//! * [`kernel`] — the per-PE matrix-free computation of `(Jx)` over the local
//!   z-column (Algorithm 2), vertical neighbours resolved in local memory, horizontal
//!   neighbours from the received halos, executed with DSD vector operations;
//! * [`state_machine`] — the 14-state conjugate-gradient state machine of §III-D;
//! * [`solver`] — [`solver::DataflowFvSolver`], the top-level API tying everything
//!   together and producing a pressure field plus measured/modelled statistics;
//! * [`options`] — the optimisation toggles of §III-E (buffer reuse, communication
//!   overlap, vectorisation) used by the ablation benchmarks;
//! * [`stats`] — the per-run statistics behind Table IV (data-movement versus
//!   computation time split) and the roofline inputs.

pub mod allreduce;
pub mod backend;
pub mod comm;
pub mod kernel;
pub mod mapping;
pub mod options;
pub mod solver;
pub mod state_machine;
pub mod stats;

pub use backend::DataflowBackend;
pub use comm::CardinalExchange;
pub use mapping::{MemoryPlan, PeColumnBuffers, ProblemMapping, ReuseStrategy};
pub use options::SolverOptions;
pub use solver::{DataflowFvSolver, DataflowSolveReport};
pub use state_machine::{CgEvent, CgState, CgStateMachine};
pub use stats::DataflowRunStats;

/// Convenient glob import.
pub mod prelude {
    pub use crate::allreduce::AllReduce;
    pub use crate::backend::DataflowBackend;
    pub use crate::comm::CardinalExchange;
    pub use crate::mapping::{MemoryPlan, ProblemMapping, ReuseStrategy};
    pub use crate::options::SolverOptions;
    pub use crate::solver::{DataflowFvSolver, DataflowSolveReport};
    pub use crate::state_machine::{CgEvent, CgState, CgStateMachine};
    pub use crate::stats::DataflowRunStats;
}
