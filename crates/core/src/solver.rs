//! The top-level dataflow solver: Algorithm 1 executed on the simulated fabric.
//!
//! [`DataflowFvSolver`] loads a workload onto the fabric (one z-column per PE,
//! §III-A), builds the right-hand side of the Newton system, and then drives the
//! 14-state CG state machine: each iteration performs the Table-I halo exchange of
//! the direction column, the per-PE matrix-free operator application (Algorithm 2),
//! two whole-fabric all-reduces for α and the convergence test, and the vector
//! updates — all through the fabric's DSD instruction set so every FLOP, byte and
//! hop is counted.
//!
//! The returned [`DataflowSolveReport`] carries the pressure field (for numerical
//! integrity checks against the host and GPU-reference solvers, §V-B), the
//! convergence history, the measured counters and the modelled device time.

use crate::allreduce::AllReduce;
use crate::comm::CardinalExchange;
use crate::kernel;
use crate::mapping::{MemoryPlan, PeColumnBuffers, ProblemMapping};
use crate::options::SolverOptions;
use crate::state_machine::{CgEvent, CgState, CgStateMachine};
use crate::stats::DataflowRunStats;
use mffv_fabric::error::Result;
use mffv_fabric::timing::TimeBreakdown;
use mffv_fabric::{ColorAllocator, Fabric, WseSpec};
use mffv_fv::residual::{newton_rhs, residual};
use mffv_mesh::{CellField, Dims, Workload};
use mffv_solver::backend::PreconditionerKind;
use mffv_solver::convergence::{ConvergenceHistory, StoppingCriterion};
use mffv_solver::monitor::{Flow, NullMonitor, SolveEvent, SolveMonitor, StopReason};
use mffv_solver::{MgConfig, MultigridVcycle, Preconditioner};
use std::time::Instant;

/// Result of a dataflow solve.
#[derive(Clone, Debug)]
pub struct DataflowSolveReport {
    /// The pressure field after the Newton update (device `f32` precision).
    pub pressure: CellField<f32>,
    /// CG convergence history (squared residual norms as reduced on the fabric).
    pub history: ConvergenceHistory,
    /// Measured execution statistics.
    pub stats: DataflowRunStats,
    /// Modelled device time under the run's options.
    pub modelled_time: TimeBreakdown,
    /// The memory plan implied by the run's reuse strategy at this column depth.
    pub memory_plan: MemoryPlan,
    /// Max-norm of the residual of Eq. (3) evaluated (on the host, in f64) at the
    /// returned pressure.
    pub final_residual_max: f64,
    /// `Some(reason)` when a monitor or stop policy ended the solve early;
    /// the pressure then carries the Newton update of the partial iterate.
    pub stopped: Option<StopReason>,
}

/// The armed preconditioner of a dataflow solve: Jacobi lives on the fabric
/// (a resident inverse-diagonal column, see [`kernel::jacobi_precond`]); the
/// multigrid V-cycle runs host-assisted, reading the residual columns back
/// and writing the correction columns per application.
enum FabricPrecond {
    None,
    Jacobi,
    Mg(Box<MultigridVcycle<f32>>),
}

impl FabricPrecond {
    fn is_none(&self) -> bool {
        matches!(self, FabricPrecond::None)
    }

    /// Fill every PE's `precond_z` column with `M⁻¹ · residual`.
    fn apply(&self, fabric: &mut Fabric, buffers: &[PeColumnBuffers], dims: Dims) -> Result<()> {
        match self {
            FabricPrecond::None => Ok(()),
            FabricPrecond::Jacobi => {
                for (idx, bufs) in buffers.iter().enumerate() {
                    let pe_id = fabric.dims().unlinear(idx);
                    kernel::jacobi_precond(fabric.pe_mut(pe_id), bufs)?;
                }
                Ok(())
            }
            FabricPrecond::Mg(mg) => {
                // Host-assisted V-cycle: download the residual columns, run
                // the cycle on the host, upload the correction columns.  The
                // column reads/writes are accounted as PE memory traffic.
                let nz = dims.nz;
                let mut r = CellField::<f32>::zeros(dims);
                for (idx, bufs) in buffers.iter().enumerate() {
                    let pe_id = fabric.dims().unlinear(idx);
                    let pe = fabric.pe_mut(pe_id);
                    let column = pe.memory().read(bufs.residual, 0, nz)?;
                    pe.counters_mut().mem_load_bytes += nz as u64 * 4;
                    r.set_column(pe_id.x, pe_id.y, &column);
                }
                let mut z = CellField::<f32>::zeros(dims);
                mg.apply(&r, &mut z);
                for (idx, bufs) in buffers.iter().enumerate() {
                    let pe_id = fabric.dims().unlinear(idx);
                    let pe = fabric.pe_mut(pe_id);
                    pe.memory_mut()
                        .write(bufs.precond_z, 0, &z.column(pe_id.x, pe_id.y))?;
                    pe.counters_mut().mem_store_bytes += nz as u64 * 4;
                }
                Ok(())
            }
        }
    }
}

/// The dataflow matrix-free FV solver.  Borrows its workload: a solver is a
/// one-shot driver, and the workload's fields (permeability, transmissibility)
/// are large enough that cloning per solve would dominate small runs.
pub struct DataflowFvSolver<'w> {
    workload: &'w Workload,
    options: SolverOptions,
    spec: WseSpec,
}

impl<'w> DataflowFvSolver<'w> {
    /// Create a solver for a workload with explicit options, modelling device time
    /// on a CS-2 region matching the problem's fabric footprint.
    pub fn new(workload: &'w Workload, options: SolverOptions) -> Self {
        let dims = workload.dims();
        let spec = WseSpec::cs2_region(dims.nx, dims.ny);
        Self {
            workload,
            options,
            spec,
        }
    }

    /// Create a solver with an explicit machine spec for the device-time model
    /// (e.g. the full wafer instead of the problem-sized region).
    pub fn with_spec(workload: &'w Workload, options: SolverOptions, spec: WseSpec) -> Self {
        Self {
            workload,
            options,
            spec,
        }
    }

    /// Create a solver with the paper's default options.
    pub fn with_defaults(workload: &'w Workload) -> Self {
        Self::new(workload, SolverOptions::paper())
    }

    /// The machine spec used for device-time modelling.
    pub fn spec(&self) -> &WseSpec {
        &self.spec
    }

    /// Run the solve.
    pub fn solve(&self) -> Result<DataflowSolveReport> {
        self.solve_monitored(&mut NullMonitor)
    }

    /// Run the solve as an observable, cancellable session.
    ///
    /// The state machine reports every `ThresholdCheck` (the paper's line-8
    /// convergence test, the natural iteration boundary of the dataflow
    /// loop) to `monitor` with the fabric-reduced `rᵀr` — bitwise the value
    /// recorded in the returned [`ConvergenceHistory`].  A [`Flow::Stop`]
    /// exits the state machine at that boundary; the partial solution columns
    /// are still extracted from the PEs and reported.
    pub fn solve_monitored(&self, monitor: &mut dyn SolveMonitor) -> Result<DataflowSolveReport> {
        // audit: allow(wall-clock) — telemetry: feeds the report's elapsed
        // seconds, never a numeric decision.
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        let dims = self.workload.dims();
        let mapping = ProblemMapping::new(dims);
        let mut fabric = Fabric::new(mapping.fabric_dims());
        let mut colors = ColorAllocator::new();

        // ---------------------------------------------------------------- setup
        // Allocate and load every PE's column data.
        let mut buffers: Vec<PeColumnBuffers> = Vec::with_capacity(fabric.num_pes());
        for idx in 0..fabric.num_pes() {
            let pe_id = fabric.dims().unlinear(idx);
            let pe = fabric.pe_mut(pe_id);
            let bufs = PeColumnBuffers::allocate(pe, self.workload, pe_id.x, pe_id.y)?;
            buffers.push(bufs);
        }
        let mut exchange = CardinalExchange::new(&mut fabric, &mut colors)?;
        let allreduce = AllReduce::new(&mut colors)?;

        // Arm the configured preconditioner (communication-only runs skip all
        // floating-point work, so they keep plain CG's schedule).
        let precond = if !self.options.compute_enabled {
            FabricPrecond::None
        } else {
            match self.options.preconditioner {
                PreconditionerKind::None => FabricPrecond::None,
                PreconditionerKind::Jacobi => FabricPrecond::Jacobi,
                PreconditionerKind::Mg => FabricPrecond::Mg(Box::new(
                    MultigridVcycle::<f32>::from_workload(self.workload, 1, MgConfig::default()),
                )),
            }
        };

        // Host-side initialisation of the Newton system (the paper loads the mesh
        // and initial condition from the host as well): r₀ and the rhs columns.
        let coeffs32 = self.workload.transmissibility().convert::<f32>();
        let p0: CellField<f32> = self.workload.initial_pressure();
        let r0 = residual(&p0, &coeffs32, self.workload.dirichlet());
        let rhs = newton_rhs(&r0, self.workload.dirichlet());
        for (idx, bufs) in buffers.iter().enumerate() {
            let pe_id = fabric.dims().unlinear(idx);
            let column = rhs.column(pe_id.x, pe_id.y);
            kernel::init_cg_state(fabric.pe_mut(pe_id), bufs, &column)?;
        }

        let tolerance = self
            .options
            .tolerance_override
            .unwrap_or(self.workload.tolerance());
        let max_iterations = if self.options.compute_enabled {
            self.options
                .max_iterations_override
                .unwrap_or(self.workload.max_iterations())
        } else {
            self.options.forced_iterations
        };
        let criterion =
            StoppingCriterion::new(tolerance.max(f64::MIN_POSITIVE), max_iterations.max(1));

        // ------------------------------------------------------------ state machine
        let mut machine = CgStateMachine::new(max_iterations);
        let mut critical_path_hops = 0usize;
        let mut rr = self.global_rr(&mut fabric, &allreduce, &buffers, &mut critical_path_hops)?;
        let mut history = ConvergenceHistory::starting_from(rr as f64);
        machine
            .advance(CgEvent::Initialized)
            // audit: allow(panic) — invariant: Initialized is the one event the
            // table accepts in Init; the machine was constructed one line up.
            .expect("Init -> IterCheck");

        let mut d_ad = 0.0f32;
        let mut alpha = 0.0f32;
        let mut rr_new = rr;
        let mut stopped: Option<StopReason> = None;

        // PCG initialisation: z₀ = M⁻¹ r₀, d₀ = z₀, and the α/β numerator
        // r·z.  Convergence stays on the unpreconditioned rᵀr, so histories
        // remain directly comparable with plain CG.
        let mut rz = rr;
        if !precond.is_none() {
            precond.apply(&mut fabric, &buffers, dims)?;
            for (idx, bufs) in buffers.iter().enumerate() {
                let pe_id = fabric.dims().unlinear(idx);
                kernel::set_direction_from_z(fabric.pe_mut(pe_id), bufs)?;
            }
            rz = self.global_rz(&mut fabric, &allreduce, &buffers, &mut critical_path_hops)?;
        }

        if self.options.compute_enabled && criterion.is_converged(rr as f64) {
            history.converged = true;
            monitor.on_event(&SolveEvent::Started {
                initial_rr: rr as f64,
            });
            monitor.on_event(&SolveEvent::Converged {
                iterations: 0,
                rr: rr as f64,
            });
            machine
                .advance(CgEvent::BudgetExhausted)
                // audit: allow(panic) — invariant: the machine sits in IterCheck
                // right after Initialized, where BudgetExhausted is accepted.
                .expect("IterCheck -> Done");
        } else if let Flow::Stop(reason) = monitor.on_event(&SolveEvent::Started {
            initial_rr: rr as f64,
        }) {
            monitor.on_event(&SolveEvent::Stopped(reason));
            stopped = Some(reason);
        }

        while stopped.is_none() && !machine.is_done() {
            let state = machine.state();
            let event = match state {
                CgState::IterCheck => machine.budget_event(),
                CgState::ExchangeHalos => {
                    exchange.exchange(&mut fabric, &buffers)?;
                    // The four steps are dependency-chained; each step is a one-hop
                    // transfer overlapped across the fabric.
                    critical_path_hops += 4;
                    CgEvent::ExchangeComplete
                }
                CgState::ComputeJx => {
                    if self.options.compute_enabled {
                        for (idx, bufs) in buffers.iter().enumerate() {
                            let pe_id = fabric.dims().unlinear(idx);
                            kernel::compute_jd(fabric.pe_mut(pe_id), bufs)?;
                        }
                    }
                    CgEvent::ComputeComplete
                }
                CgState::LocalDotDAd => CgEvent::LocalDotReady,
                CgState::AllReduceDAd => {
                    let mut partials = vec![0.0f32; fabric.num_pes()];
                    if self.options.compute_enabled {
                        for idx in 0..fabric.num_pes() {
                            let pe_id = fabric.dims().unlinear(idx);
                            partials[idx] =
                                kernel::local_dot_d_ad(fabric.pe_mut(pe_id), &buffers[idx])?;
                        }
                    }
                    let (value, report) = allreduce.reduce_scalar(&mut fabric, &partials)?;
                    critical_path_hops += report.critical_path_hops;
                    d_ad = value;
                    CgEvent::ReduceComplete
                }
                CgState::ComputeAlpha => {
                    if self.options.compute_enabled {
                        if d_ad <= 0.0 || !d_ad.is_finite() {
                            // Breakdown (loss of positive definiteness in f32):
                            // terminate cleanly rather than diverge.
                            for event in [
                                CgEvent::ScalarReady,
                                CgEvent::UpdateComplete,
                                CgEvent::UpdateComplete,
                                CgEvent::LocalDotReady,
                                CgEvent::ReduceComplete,
                                CgEvent::Converged,
                            ] {
                                // audit: allow(panic) — invariant: this unwind walks the
                                // ComputeAlpha row of the total transition table in order.
                                machine.advance(event).expect("breakdown unwind");
                            }
                            continue;
                        }
                        alpha = if precond.is_none() {
                            rr / d_ad
                        } else {
                            rz / d_ad
                        };
                    } else {
                        alpha = 0.0;
                    }
                    CgEvent::ScalarReady
                }
                CgState::UpdateSolution => {
                    if self.options.compute_enabled {
                        for (idx, bufs) in buffers.iter().enumerate() {
                            let pe_id = fabric.dims().unlinear(idx);
                            let pe = fabric.pe_mut(pe_id);
                            let nz = pe.memory().len(bufs.solution)?;
                            pe.axpy(
                                mffv_fabric::Dsd::full(bufs.solution, nz),
                                mffv_fabric::Dsd::full(bufs.direction, nz),
                                alpha,
                            )?;
                        }
                    }
                    CgEvent::UpdateComplete
                }
                CgState::UpdateResidual => {
                    if self.options.compute_enabled {
                        for (idx, bufs) in buffers.iter().enumerate() {
                            let pe_id = fabric.dims().unlinear(idx);
                            let pe = fabric.pe_mut(pe_id);
                            let nz = pe.memory().len(bufs.residual)?;
                            pe.axpy(
                                mffv_fabric::Dsd::full(bufs.residual, nz),
                                mffv_fabric::Dsd::full(bufs.operator_out, nz),
                                -alpha,
                            )?;
                        }
                    }
                    CgEvent::UpdateComplete
                }
                CgState::LocalDotRR => CgEvent::LocalDotReady,
                CgState::AllReduceRR => {
                    rr_new =
                        self.global_rr(&mut fabric, &allreduce, &buffers, &mut critical_path_hops)?;
                    CgEvent::ReduceComplete
                }
                CgState::ThresholdCheck => {
                    history.record(rr_new as f64);
                    if self.options.compute_enabled && criterion.is_converged(rr_new as f64) {
                        history.converged = true;
                        monitor.on_event(&SolveEvent::Iteration {
                            k: history.iterations,
                            rr: rr_new as f64,
                        });
                        monitor.on_event(&SolveEvent::Converged {
                            iterations: history.iterations,
                            rr: rr_new as f64,
                        });
                        CgEvent::Converged
                    } else {
                        if let Flow::Stop(reason) = monitor.on_event(&SolveEvent::Iteration {
                            k: history.iterations,
                            rr: rr_new as f64,
                        }) {
                            // Exit at this iteration boundary: the loop
                            // condition sees `stopped` before the next state.
                            monitor.on_event(&SolveEvent::Stopped(reason));
                            stopped = Some(reason);
                        }
                        CgEvent::NotConverged
                    }
                }
                CgState::UpdateDirection => {
                    if self.options.compute_enabled {
                        if precond.is_none() {
                            let beta = if rr > 0.0 { rr_new / rr } else { 0.0 };
                            for (idx, bufs) in buffers.iter().enumerate() {
                                let pe_id = fabric.dims().unlinear(idx);
                                kernel::apply_beta_update(fabric.pe_mut(pe_id), bufs, beta)?;
                            }
                        } else {
                            // PCG direction update: z = M⁻¹ r, β = r·z / rz,
                            // d = z + β d.  The extra r·z all-reduce rides the
                            // same fabric reduction tree as α's denominator.
                            precond.apply(&mut fabric, &buffers, dims)?;
                            let mut partials = vec![0.0f32; fabric.num_pes()];
                            for idx in 0..fabric.num_pes() {
                                let pe_id = fabric.dims().unlinear(idx);
                                partials[idx] =
                                    kernel::local_dot_rz(fabric.pe_mut(pe_id), &buffers[idx])?;
                            }
                            let (rz_new, report) =
                                allreduce.reduce_scalar(&mut fabric, &partials)?;
                            critical_path_hops += report.critical_path_hops;
                            let beta = if rz > 0.0 { rz_new / rz } else { 0.0 };
                            for (idx, bufs) in buffers.iter().enumerate() {
                                let pe_id = fabric.dims().unlinear(idx);
                                kernel::apply_beta_update_z(fabric.pe_mut(pe_id), bufs, beta)?;
                            }
                            rz = rz_new;
                        }
                        rr = rr_new;
                    }
                    CgEvent::ScalarReady
                }
                // audit: allow(panic) — invariant: the `while !machine.is_done()`
                // loop never re-enters Init and exits before Done is matched.
                CgState::Init | CgState::Done => unreachable!("handled outside the loop"),
            };
            machine
                .advance(event)
                // audit: allow(panic) — invariant: every arm above emits the
                // event its state row accepts; the table is total for them.
                .expect("transition table is total for generated events");
        }

        // -------------------------------------------------------------- extraction
        let mut delta = CellField::<f32>::zeros(dims);
        for (idx, bufs) in buffers.iter().enumerate() {
            let pe_id = fabric.dims().unlinear(idx);
            let nz = dims.nz;
            let column = fabric.pe(pe_id).memory().read(bufs.solution, 0, nz)?;
            delta.set_column(pe_id.x, pe_id.y, &column);
        }
        let mut pressure = p0;
        pressure.axpy(1.0, &delta);

        let final_residual_max = {
            let p64: CellField<f64> = pressure.convert();
            let r = residual(
                &p64,
                self.workload.transmissibility(),
                self.workload.dirichlet(),
            );
            r.max_abs()
        };

        let stats = DataflowRunStats {
            iterations: machine.iteration(),
            total_cells: dims.num_cells(),
            total_compute: fabric.total_compute(),
            max_per_pe_compute: fabric.max_per_pe_compute(),
            fabric: *fabric.stats(),
            critical_path_hops,
            host_wall_seconds: start.elapsed().as_secs_f64(),
        };
        let modelled_time = stats.modelled_time(
            self.spec,
            self.options.overlap,
            self.options.simd_efficiency(),
        );
        let memory_plan = MemoryPlan::new(dims.nz, self.options.reuse);

        Ok(DataflowSolveReport {
            pressure,
            history,
            stats,
            modelled_time,
            memory_plan,
            final_residual_max,
            stopped,
        })
    }

    /// Per-PE `r·z` partials reduced over the fabric (PCG's α/β numerator).
    fn global_rz(
        &self,
        fabric: &mut Fabric,
        allreduce: &AllReduce,
        buffers: &[PeColumnBuffers],
        critical_path_hops: &mut usize,
    ) -> Result<f32> {
        let mut partials = vec![0.0f32; fabric.num_pes()];
        for idx in 0..fabric.num_pes() {
            let pe_id = fabric.dims().unlinear(idx);
            partials[idx] = kernel::local_dot_rz(fabric.pe_mut(pe_id), &buffers[idx])?;
        }
        let (value, report) = allreduce.reduce_scalar(fabric, &partials)?;
        *critical_path_hops += report.critical_path_hops;
        Ok(value)
    }

    /// Per-PE `r·r` partials reduced over the fabric.
    fn global_rr(
        &self,
        fabric: &mut Fabric,
        allreduce: &AllReduce,
        buffers: &[PeColumnBuffers],
        critical_path_hops: &mut usize,
    ) -> Result<f32> {
        let mut partials = vec![0.0f32; fabric.num_pes()];
        if self.options.compute_enabled {
            for idx in 0..fabric.num_pes() {
                let pe_id = fabric.dims().unlinear(idx);
                partials[idx] = kernel::local_dot_rr(fabric.pe_mut(pe_id), &buffers[idx])?;
            }
        }
        let (value, report) = allreduce.reduce_scalar(fabric, &partials)?;
        *critical_path_hops += report.critical_path_hops;
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use crate::backend::DataflowBackend;
    use crate::options::SolverOptions;
    use mffv_mesh::workload::WorkloadSpec;
    use mffv_mesh::Dims;
    use mffv_solver::backend::{SolveBackend, SolveConfig};
    use mffv_solver::newton::solve_pressure;

    fn config(tolerance: f64) -> SolveConfig {
        SolveConfig {
            tolerance: Some(tolerance),
            ..SolveConfig::default()
        }
    }

    #[test]
    fn dataflow_solve_matches_host_oracle_on_quickstart() {
        let w = WorkloadSpec::quickstart().scaled(2).build();
        let report = DataflowBackend::paper().solve(&w, &config(1e-10)).unwrap();
        assert!(report.converged(), "dataflow CG did not converge");
        assert!(report.final_residual_max < 1e-3);
        let oracle = solve_pressure::<f64>(&w);
        let diff = oracle.pressure.max_abs_diff(&report.pressure);
        assert!(diff < 2e-4, "dataflow vs host mismatch: {diff}");
    }

    #[test]
    fn dataflow_solve_on_heterogeneous_fig5_scenario() {
        let w = WorkloadSpec::fig5(Dims::new(6, 5, 4)).build();
        let report = DataflowBackend::paper().solve(&w, &config(1e-12)).unwrap();
        assert!(report.converged());
        let oracle = solve_pressure::<f64>(&w);
        let scale = oracle.pressure.max_abs();
        let rel = oracle.pressure.max_abs_diff(&report.pressure) / scale;
        assert!(rel < 1e-3, "relative mismatch {rel}");
    }

    #[test]
    fn preconditioned_dataflow_solves_match_the_oracle() {
        use mffv_solver::backend::PreconditionerKind;
        let w = WorkloadSpec::quickstart().scaled(2).build();
        let oracle = solve_pressure::<f64>(&w);
        let plain = DataflowBackend::paper().solve(&w, &config(1e-10)).unwrap();
        for kind in [PreconditionerKind::Jacobi, PreconditionerKind::Mg] {
            let cfg = SolveConfig {
                tolerance: Some(1e-10),
                preconditioner: kind,
                ..SolveConfig::default()
            };
            let report = DataflowBackend::paper().solve(&w, &cfg).unwrap();
            assert!(report.converged(), "{} did not converge", kind.label());
            let diff = oracle.pressure.max_abs_diff(&report.pressure);
            assert!(diff < 1e-3, "{} vs oracle gap {diff}", kind.label());
            // A preconditioner must not take more iterations than plain CG
            // allowing slack for f32 effects on this small problem.
            assert!(
                report.iterations() <= plain.iterations() + 5,
                "{}: {} iters vs plain {}",
                kind.label(),
                report.iterations(),
                plain.iterations()
            );
        }
    }

    #[test]
    fn iteration_count_is_bounded_by_unknowns() {
        let w = WorkloadSpec::quickstart().scaled(2).build();
        let report = DataflowBackend::paper()
            .solve(&w, &SolveConfig::default())
            .unwrap();
        assert!(report.iterations() <= w.dims().num_cells());
        assert!(report.iterations() > 1);
    }

    #[test]
    fn communication_only_run_moves_data_but_does_no_flops_in_the_kernel() {
        let w = WorkloadSpec::quickstart().scaled(2).build();
        let full = DataflowBackend::paper()
            .solve(&w, &SolveConfig::default())
            .unwrap();
        let comm = DataflowBackend::with_options(SolverOptions::communication_only(5))
            .solve(&w, &SolveConfig::default())
            .unwrap();
        let full_device = full.device.as_ref().unwrap();
        let comm_device = comm.device.as_ref().unwrap();
        assert_eq!(comm.iterations(), 5);
        assert!(comm_device.counter("fabric_link_bytes").unwrap() > 0.0);
        // The only FLOPs left are the all-reduce additions.
        assert!(
            comm_device.counter("total_flops").unwrap()
                < full_device.counter("total_flops").unwrap() / 10.0
        );
    }

    #[test]
    fn modelled_time_has_positive_components() {
        let w = WorkloadSpec::quickstart().scaled(2).build();
        let report = DataflowBackend::paper()
            .solve(&w, &SolveConfig::default())
            .unwrap();
        let device = report.device.as_ref().unwrap();
        assert!(device.modelled_time_seconds > 0.0);
        assert!(device.counter("compute_time_seconds").unwrap() > 0.0);
        assert!(device.counter("critical_path_hops").unwrap() > 0.0);
        assert!(device.counter("memory_plan_bytes").unwrap() > 0.0);
    }

    #[test]
    fn residual_history_decreases_broadly() {
        let w = WorkloadSpec::quickstart().scaled(2).build();
        let report = DataflowBackend::paper()
            .solve(&w, &SolveConfig::default())
            .unwrap();
        assert!(report.history.is_broadly_decreasing(1e3));
        assert!(report.history.final_rr() < report.history.initial_rr());
    }
}
