//! Whole-fabric All-Reduce (§III-C).
//!
//! Computing α and β in Algorithm 1 requires dot products across every PE on the
//! 2-D fabric.  The paper's three-step algorithm is reproduced exactly:
//!
//! 1. **Row reductions**, left → right: every row's values accumulate on that row's
//!    right-most PE;
//! 2. **Right-most column reduction**, top → bottom: the bottom-right PE ends up
//!    holding the global result;
//! 3. **Broadcast back**: the bottom-right PE broadcasts up the right-most column,
//!    then every PE of that column broadcasts westwards along its row, so every PE
//!    holds the reduced value.
//!
//! The reduction order is deterministic, which is what lets
//! `mffv_solver::reduction::fabric_ordered_dot` reproduce the same floating-point
//! result on the host for bitwise comparison.

use mffv_fabric::error::Result;
use mffv_fabric::router::{RouterRule, SwitchConfig};
use mffv_fabric::{Color, ColorAllocator, Fabric, PeId, Port};

/// Report of one all-reduce invocation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AllReduceReport {
    /// The reduced value (as every PE now holds it).
    pub value: f32,
    /// Messages sent across the fabric.
    pub messages: usize,
    /// The latency-critical hop count: the longest chain of dependent hops
    /// (row length + column length for the reduction, the same again for the
    /// broadcast).
    pub critical_path_hops: usize,
}

/// The whole-fabric all-reduce operator.
#[derive(Clone, Debug)]
pub struct AllReduce {
    /// Colour for the eastward row-reduction hops.
    row_reduce: Color,
    /// Colour for the southward column-reduction hops.
    col_reduce: Color,
    /// Colour for the northward column broadcast.
    col_broadcast: Color,
    /// Colour for the westward row broadcast.
    row_broadcast: Color,
}

impl AllReduce {
    /// Allocate the four colours the collective uses.
    pub fn new(colors: &mut ColorAllocator) -> Result<Self> {
        Ok(Self {
            row_reduce: colors.allocate()?,
            col_reduce: colors.allocate()?,
            col_broadcast: colors.allocate()?,
            row_broadcast: colors.allocate()?,
        })
    }

    /// The colours used, in (row-reduce, col-reduce, col-broadcast, row-broadcast)
    /// order.
    pub fn colors(&self) -> [Color; 4] {
        [
            self.row_reduce,
            self.col_reduce,
            self.col_broadcast,
            self.row_broadcast,
        ]
    }

    /// Reduce one value per PE (summation) and broadcast the result back so every PE
    /// holds it.  `local[fabric.dims().linear(pe)]` is PE `pe`'s contribution; the
    /// returned vector holds the value each PE ends up with (they are all equal).
    pub fn sum(&self, fabric: &mut Fabric, local: &[f32]) -> Result<(Vec<f32>, AllReduceReport)> {
        let dims = fabric.dims();
        assert_eq!(
            local.len(),
            dims.num_pes(),
            "one local value per PE required"
        );
        let (w, h) = (dims.width, dims.height);
        let mut acc: Vec<f32> = local.to_vec();
        let mut report = AllReduceReport::default();

        // Step 1: row reductions, left → right.  Each PE forwards its running
        // partial to its eastern neighbour, which adds it to its own value.
        for y in 0..h {
            for x in 0..w.saturating_sub(1) {
                let src = PeId::new(x, y);
                let dst = PeId::new(x + 1, y);
                let value = acc[dims.linear(src)];
                self.unicast(fabric, src, dst, Port::East, self.row_reduce, value)?;
                report.messages += 1;
                let payload = fabric.take_message(dst, self.row_reduce)?;
                acc[dims.linear(dst)] += payload[0];
                fabric.pe_mut(dst).counters_mut().flops += 1;
            }
        }

        // Step 2: right-most column reduction, top → bottom.
        let right = w - 1;
        for y in 0..h.saturating_sub(1) {
            let src = PeId::new(right, y);
            let dst = PeId::new(right, y + 1);
            let value = acc[dims.linear(src)];
            self.unicast(fabric, src, dst, Port::South, self.col_reduce, value)?;
            report.messages += 1;
            let payload = fabric.take_message(dst, self.col_reduce)?;
            acc[dims.linear(dst)] += payload[0];
            fabric.pe_mut(dst).counters_mut().flops += 1;
        }
        let total = acc[dims.linear(PeId::new(right, h - 1))];

        // Step 3a: broadcast up the right-most column (bottom → top).
        for y in (1..h).rev() {
            let src = PeId::new(right, y);
            let dst = PeId::new(right, y - 1);
            self.unicast(fabric, src, dst, Port::North, self.col_broadcast, total)?;
            report.messages += 1;
            let payload = fabric.take_message(dst, self.col_broadcast)?;
            acc[dims.linear(dst)] = payload[0];
        }
        acc[dims.linear(PeId::new(right, h - 1))] = total;

        // Step 3b: every right-column PE broadcasts westwards along its row.
        for y in 0..h {
            for x in (1..w).rev() {
                let src = PeId::new(x, y);
                let dst = PeId::new(x - 1, y);
                self.unicast(fabric, src, dst, Port::West, self.row_broadcast, total)?;
                report.messages += 1;
                let payload = fabric.take_message(dst, self.row_broadcast)?;
                acc[dims.linear(dst)] = payload[0];
            }
        }

        report.value = total;
        // Reduction critical path: (w−1) eastward hops + (h−1) southward hops; the
        // broadcast retraces the same distance.
        report.critical_path_hops = 2 * ((w - 1) + (h - 1));
        Ok((acc, report))
    }

    /// Dot-product style all-reduce: per-PE partials are provided by the caller
    /// (typically `kernel::local_dot_*`), summed and broadcast.
    pub fn reduce_scalar(
        &self,
        fabric: &mut Fabric,
        local: &[f32],
    ) -> Result<(f32, AllReduceReport)> {
        let (values, report) = self.sum(fabric, local)?;
        Ok((values[0], report))
    }

    fn unicast(
        &self,
        fabric: &mut Fabric,
        src: PeId,
        dst: PeId,
        port: Port,
        color: Color,
        value: f32,
    ) -> Result<()> {
        // Program the minimal sender/receiver route for this hop; the collective
        // reprograms routes as it walks, which keeps the colour budget at four for
        // the whole collective regardless of fabric size.
        fabric.set_color_config(
            src,
            color,
            SwitchConfig::fixed(RouterRule::new(&[Port::Ramp], &[port])),
        );
        fabric.set_color_config(
            dst,
            color,
            SwitchConfig::fixed(RouterRule::new(&[port.entry_on_neighbor()], &[Port::Ramp])),
        );
        fabric.send(src, color, &[value])?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffv_fabric::FabricDims;

    fn run_sum(width: usize, height: usize, values: &[f32]) -> (Vec<f32>, AllReduceReport) {
        let mut fabric = Fabric::new(FabricDims::new(width, height));
        let mut colors = ColorAllocator::new();
        let ar = AllReduce::new(&mut colors).unwrap();
        ar.sum(&mut fabric, values).unwrap()
    }

    #[test]
    fn sums_and_broadcasts_to_every_pe() {
        let values: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let (result, report) = run_sum(4, 3, &values);
        let expected: f32 = values.iter().sum();
        assert!(result.iter().all(|&v| v == expected));
        assert_eq!(report.value, expected);
    }

    #[test]
    fn message_count_matches_three_phase_structure() {
        let (w, h) = (5, 4);
        let values = vec![1.0f32; w * h];
        let (_, report) = run_sum(w, h, &values);
        // Row reduce: (w−1)·h, column reduce: h−1, column broadcast: h−1,
        // row broadcast: (w−1)·h.
        let expected = 2 * ((w - 1) * h + (h - 1));
        assert_eq!(report.messages, expected);
        assert_eq!(report.critical_path_hops, 2 * ((w - 1) + (h - 1)));
        assert_eq!(report.value, (w * h) as f32);
    }

    #[test]
    fn single_pe_fabric_is_a_no_op() {
        let (result, report) = run_sum(1, 1, &[42.0]);
        assert_eq!(result, vec![42.0]);
        assert_eq!(report.messages, 0);
        assert_eq!(report.critical_path_hops, 0);
    }

    #[test]
    fn single_row_and_single_column_fabrics() {
        let (result, _) = run_sum(6, 1, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(result.iter().all(|&v| v == 21.0));
        let (result, _) = run_sum(1, 5, &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(result.iter().all(|&v| v == 15.0));
    }

    #[test]
    fn reduction_order_matches_host_fabric_ordered_sum() {
        // The per-PE values are chosen so f32 rounding differs between orderings;
        // the fabric result must equal the host helper that mimics the same order.
        let dims = FabricDims::new(3, 3);
        let values: Vec<f32> = (0..9).map(|i| 1.0e7 + (i as f32) * 0.25).collect();
        let mut fabric = Fabric::new(dims);
        let mut colors = ColorAllocator::new();
        let ar = AllReduce::new(&mut colors).unwrap();
        let (result, _) = ar.sum(&mut fabric, &values).unwrap();
        // Reproduce the order: rows left→right, then rightmost column top→bottom.
        let mut row_totals = [0.0f32; 3];
        for y in 0..3 {
            let mut acc = values[y * 3];
            for x in 1..3 {
                acc += values[y * 3 + x];
            }
            row_totals[y] = acc;
        }
        let mut total = row_totals[0];
        for rt in &row_totals[1..] {
            total += rt;
        }
        assert_eq!(result[0], total);
    }

    #[test]
    fn flop_count_matches_number_of_additions() {
        let (w, h) = (4, 4);
        let values = vec![2.0f32; w * h];
        let mut fabric = Fabric::new(FabricDims::new(w, h));
        let mut colors = ColorAllocator::new();
        let ar = AllReduce::new(&mut colors).unwrap();
        ar.sum(&mut fabric, &values).unwrap();
        // One addition per reduction message: (w−1)·h + (h−1).
        let expected = ((w - 1) * h + (h - 1)) as u64;
        assert_eq!(fabric.total_compute().flops, expected);
    }
}
