//! Run statistics: the measured quantities behind Tables II–IV and Figure 6.
//!
//! The simulator produces two kinds of numbers: **measured counts** (FLOPs, memory
//! traffic, fabric traffic, hop depths — exact, from the functional execution) and
//! **modelled device time** (derived from those counts and the machine ceilings of
//! [`mffv_fabric::WseSpec`]).  [`DataflowRunStats`] collects both and derives the
//! paper's reported quantities: the data-movement/computation split of Table IV, the
//! Gcell/s throughput of Table III and the achieved FLOP/s of Figure 6.

use mffv_fabric::stats::{FabricStats, OpCounters};
use mffv_fabric::timing::{DeviceTimeModel, OverlapMode, TimeBreakdown, WseSpec};

/// Statistics of one dataflow solve.
#[derive(Clone, Debug, Default)]
pub struct DataflowRunStats {
    /// Number of CG iterations performed.
    pub iterations: usize,
    /// Total cells in the problem.
    pub total_cells: usize,
    /// Sum of compute counters over all PEs.
    pub total_compute: OpCounters,
    /// Element-wise maximum of per-PE counters (bounds bulk-synchronous time).
    pub max_per_pe_compute: OpCounters,
    /// Fabric-wide traffic statistics.
    pub fabric: FabricStats,
    /// Accumulated latency-critical hop count (exchange steps + all-reduce chains).
    pub critical_path_hops: usize,
    /// Wall-clock seconds the host simulation took (NOT device time; reported for
    /// transparency only).
    pub host_wall_seconds: f64,
}

/// The Table-IV style decomposition of modelled device time.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimeSplit {
    /// Modelled data-movement time, s.
    pub data_movement: f64,
    /// Modelled non-overlapped computation time, s.
    pub computation: f64,
    /// Modelled total device time, s.
    pub total: f64,
}

impl TimeSplit {
    /// Percentage of total time spent on data movement.
    pub fn data_movement_percent(&self) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            100.0 * self.data_movement / self.total
        }
    }

    /// Percentage of total time spent on computation.
    pub fn computation_percent(&self) -> f64 {
        if self.total <= 0.0 {
            0.0
        } else {
            100.0 * self.computation / self.total
        }
    }
}

impl DataflowRunStats {
    /// Model the device time of this run on a machine, with the given overlap
    /// assumption and SIMD efficiency (1.0 = vectorised, 0.5 = scalar).
    pub fn modelled_time(
        &self,
        spec: WseSpec,
        overlap: OverlapMode,
        simd_efficiency: f64,
    ) -> TimeBreakdown {
        let model = DeviceTimeModel::new(spec);
        let mut counters = self.max_per_pe_compute;
        // Scalar execution halves the effective SIMD throughput: model it as extra
        // FLOP "work" at the same peak rate.
        if simd_efficiency > 0.0 && simd_efficiency < 1.0 {
            counters.flops = (counters.flops as f64 / simd_efficiency).round() as u64;
        }
        model.estimate(&counters, self.critical_path_hops, overlap)
    }

    /// The Table-IV decomposition: data movement vs computation under the given
    /// machine spec.  Data movement is what remains when FLOPs are removed (fabric
    /// bandwidth + hop latency); computation is the per-PE compute/memory time.
    pub fn time_split(&self, spec: WseSpec, simd_efficiency: f64) -> TimeSplit {
        let model = DeviceTimeModel::new(spec);
        let mut counters = self.max_per_pe_compute;
        if simd_efficiency > 0.0 && simd_efficiency < 1.0 {
            counters.flops = (counters.flops as f64 / simd_efficiency).round() as u64;
        }
        let full = model.estimate(&counters, self.critical_path_hops, OverlapMode::Overlapped);
        // Communication-only run: zero the floating-point and local-memory work,
        // keep the fabric traffic — exactly the paper's methodology for Table IV.
        let comm_only = OpCounters {
            flops: 0,
            mem_load_bytes: 0,
            mem_store_bytes: 0,
            ..counters
        };
        let comm = model.estimate(&comm_only, self.critical_path_hops, OverlapMode::Overlapped);
        let data_movement = comm.total;
        let computation = (full.compute_time.max(full.memory_time)).max(full.total - data_movement);
        TimeSplit {
            data_movement,
            computation,
            total: full.total,
        }
    }

    /// Throughput in cells per second given a modelled total time (the Gcell/s
    /// column of Table III divides by 10⁹).
    pub fn throughput_cells_per_second(&self, total_time: f64) -> f64 {
        if total_time <= 0.0 {
            0.0
        } else {
            (self.total_cells as f64 * self.iterations.max(1) as f64) / total_time
        }
    }

    /// Achieved FLOP/s given a modelled total time (the Figure-6 dot).
    pub fn achieved_flops(&self, total_time: f64) -> f64 {
        if total_time <= 0.0 {
            0.0
        } else {
            self.total_compute.flops as f64 / total_time
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> DataflowRunStats {
        DataflowRunStats {
            iterations: 10,
            total_cells: 1000,
            total_compute: OpCounters {
                flops: 96_000,
                mem_load_bytes: 800_000,
                mem_store_bytes: 272_000,
                fabric_recv_wavelets: 8_000,
                fabric_sent_wavelets: 8_000,
            },
            max_per_pe_compute: OpCounters {
                flops: 960,
                mem_load_bytes: 8_000,
                mem_store_bytes: 2_720,
                fabric_recv_wavelets: 80,
                fabric_sent_wavelets: 80,
            },
            fabric: FabricStats::default(),
            critical_path_hops: 200,
            host_wall_seconds: 0.1,
        }
    }

    #[test]
    fn time_split_percentages_sum_close_to_or_above_total() {
        let stats = sample_stats();
        let split = stats.time_split(WseSpec::cs2(), 1.0);
        assert!(split.total > 0.0);
        assert!(split.data_movement > 0.0);
        assert!(split.computation > 0.0);
        assert!(split.data_movement_percent() > 0.0 && split.data_movement_percent() <= 100.0);
        assert!(split.computation_percent() > 0.0 && split.computation_percent() <= 100.0);
    }

    #[test]
    fn scalar_execution_increases_modelled_time() {
        let stats = sample_stats();
        let vectorised = stats.modelled_time(WseSpec::cs2(), OverlapMode::Overlapped, 1.0);
        let scalar = stats.modelled_time(WseSpec::cs2(), OverlapMode::Overlapped, 0.5);
        assert!(scalar.compute_time > vectorised.compute_time);
    }

    #[test]
    fn overlap_never_slower_than_serialized() {
        let stats = sample_stats();
        let overlapped = stats.modelled_time(WseSpec::cs2(), OverlapMode::Overlapped, 1.0);
        let serialized = stats.modelled_time(WseSpec::cs2(), OverlapMode::Serialized, 1.0);
        assert!(overlapped.total <= serialized.total);
    }

    #[test]
    fn throughput_and_flops_scale_with_time() {
        let stats = sample_stats();
        let t1 = stats.throughput_cells_per_second(1.0);
        let t2 = stats.throughput_cells_per_second(2.0);
        assert!((t1 / t2 - 2.0).abs() < 1e-12);
        assert_eq!(stats.achieved_flops(2.0), 48_000.0);
        assert_eq!(stats.achieved_flops(0.0), 0.0);
        assert_eq!(stats.throughput_cells_per_second(0.0), 0.0);
    }
}
