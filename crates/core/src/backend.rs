//! [`SolveBackend`] implementation for the dataflow-fabric solver.
//!
//! This is the *only* module that constructs [`DataflowFvSolver`] directly;
//! everything else (examples, benches, tests) goes through the `mffv`
//! `Simulation` facade, which instantiates this backend.  The facade's
//! [`SolveConfig`] carries the cross-backend tolerance/iteration settings and
//! takes precedence over any overrides already present in the dataflow-specific
//! [`SolverOptions`].

use crate::options::SolverOptions;
use crate::solver::{DataflowFvSolver, DataflowSolveReport};
use mffv_fabric::WseSpec;
use mffv_mesh::Workload;
use mffv_solver::backend::{
    DeviceSection, Precision, PreconditionerKind, SolveBackend, SolveConfig, SolveError,
    SolveReport,
};
use mffv_solver::monitor::{NullMonitor, SolveMonitor};
use mffv_solver::trace::{Span, TraceMonitor};

/// The simulated WSE-2 dataflow fabric as a facade backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct DataflowBackend {
    /// The §III-E optimisation toggles (buffer reuse, overlap, vectorisation,
    /// communication-only mode).
    pub options: SolverOptions,
    /// Machine spec for the device-time model; `None` models a CS-2 region
    /// matching the problem's fabric footprint (the historical default).
    pub spec: Option<WseSpec>,
}

impl DataflowBackend {
    /// The paper's production configuration: every optimisation on, device time
    /// modelled on a problem-sized CS-2 region.
    pub fn paper() -> Self {
        Self {
            options: SolverOptions::paper(),
            spec: None,
        }
    }

    /// A backend with explicit dataflow options.
    pub fn with_options(options: SolverOptions) -> Self {
        Self {
            options,
            spec: None,
        }
    }

    /// Override the machine spec used by the device-time model.
    pub fn with_spec(mut self, spec: WseSpec) -> Self {
        self.spec = Some(spec);
        self
    }
}

impl DataflowBackend {
    /// Run the solve behind the facade's config, threading `monitor` through
    /// the state machine.  The facade's settings win over any overrides baked
    /// into the options; communication-only runs keep their forced iteration
    /// count.
    fn run(
        &self,
        workload: &Workload,
        config: &SolveConfig,
        monitor: &mut dyn SolveMonitor,
        span: &Span,
    ) -> Result<SolveReport, SolveError> {
        let mut options = self.options;
        if let Some(tolerance) = config.tolerance {
            options = options.with_tolerance(tolerance);
        }
        if let Some(max_iterations) = config.max_iterations {
            options = options.with_max_iterations(max_iterations);
        }
        // An explicit facade selection wins; the default (`None`) leaves any
        // dataflow-specific choice in place.
        if config.preconditioner != PreconditionerKind::None {
            options = options.with_preconditioner(config.preconditioner);
        }
        let build = span.child("build-fabric-program");
        let solver = match self.spec {
            Some(spec) => DataflowFvSolver::with_spec(workload, options, spec),
            None => DataflowFvSolver::new(workload, options),
        };
        build.finish();
        let spec = *solver.spec();
        let report = if span.is_recording() {
            let mut traced = TraceMonitor::new(span, monitor);
            solver.solve_monitored(&mut traced)
        } else {
            solver.solve_monitored(monitor)
        }
        .map_err(|e| SolveError::new(self.name(), e.to_string()))?;
        Ok(self.unify(spec, report))
    }

    /// Wrap the internal [`DataflowSolveReport`] into the unified shape.
    fn unify(&self, spec: WseSpec, report: DataflowSolveReport) -> SolveReport {
        let device = DeviceSection {
            device: format!("CS-2 region {}x{}", spec.fabric.width, spec.fabric.height),
            modelled_time_seconds: report.modelled_time.total,
            counters: vec![
                (
                    "total_flops".to_string(),
                    report.stats.total_compute.flops as f64,
                ),
                (
                    "total_mem_bytes".to_string(),
                    report.stats.total_compute.mem_bytes() as f64,
                ),
                (
                    "total_fabric_recv_wavelets".to_string(),
                    report.stats.total_compute.fabric_recv_wavelets as f64,
                ),
                (
                    "fabric_link_bytes".to_string(),
                    report.stats.fabric.link_bytes as f64,
                ),
                (
                    "fabric_messages".to_string(),
                    report.stats.fabric.messages_sent as f64,
                ),
                (
                    "critical_path_hops".to_string(),
                    report.stats.critical_path_hops as f64,
                ),
                (
                    "memory_plan_bytes".to_string(),
                    report.memory_plan.data_bytes() as f64,
                ),
                (
                    "compute_time_seconds".to_string(),
                    report.modelled_time.compute_time,
                ),
                (
                    "fabric_time_seconds".to_string(),
                    report.modelled_time.fabric_time,
                ),
                (
                    "latency_time_seconds".to_string(),
                    report.modelled_time.latency_time,
                ),
            ],
        };
        SolveReport {
            backend: self.name(),
            pressure: report.pressure.convert(),
            history: report.history,
            final_residual_max: report.final_residual_max,
            host_wall_seconds: report.stats.host_wall_seconds,
            device: Some(device),
            stopped: report.stopped,
        }
    }
}

impl SolveBackend for DataflowBackend {
    fn name(&self) -> String {
        "dataflow".to_string()
    }

    /// Transient steps run at the fabric's native precision (`f32`, §III —
    /// the PEs compute in single precision).
    fn step_precision(&self) -> Precision {
        Precision::F32
    }

    fn solve(&self, workload: &Workload, config: &SolveConfig) -> Result<SolveReport, SolveError> {
        self.run(workload, config, &mut NullMonitor, &Span::null())
    }

    fn solve_monitored(
        &self,
        workload: &Workload,
        config: &SolveConfig,
        monitor: &mut dyn SolveMonitor,
    ) -> Result<SolveReport, SolveError> {
        self.run(workload, config, monitor, &Span::null())
    }

    fn solve_traced(
        &self,
        workload: &Workload,
        config: &SolveConfig,
        monitor: &mut dyn SolveMonitor,
        span: &Span,
    ) -> Result<SolveReport, SolveError> {
        self.run(workload, config, monitor, span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffv_mesh::workload::WorkloadSpec;
    use mffv_solver::backend::HostBackend;

    #[test]
    fn backend_solves_and_matches_the_host_oracle() {
        let w = WorkloadSpec::quickstart().scaled(2).build();
        let config = SolveConfig {
            tolerance: Some(1e-10),
            ..SolveConfig::default()
        };
        let dataflow = DataflowBackend::paper().solve(&w, &config).unwrap();
        let oracle = HostBackend::oracle().solve(&w, &config).unwrap();
        assert!(dataflow.converged());
        assert!(dataflow.max_abs_diff(&oracle) < 1e-3);
        let device = dataflow
            .device
            .expect("dataflow backend must model a device");
        assert!(device.modelled_time_seconds > 0.0);
        assert!(device.counter("fabric_link_bytes").unwrap() > 0.0);
        assert!(device.counter("critical_path_hops").unwrap() > 0.0);
        assert!(device.device.starts_with("CS-2 region"));
    }

    #[test]
    fn communication_only_mode_survives_the_facade_config() {
        let w = WorkloadSpec::quickstart().scaled(2).build();
        let backend = DataflowBackend::with_options(SolverOptions::communication_only(5));
        let report = backend.solve(&w, &SolveConfig::default()).unwrap();
        assert_eq!(report.iterations(), 5);
        let device = report.device.unwrap();
        assert!(device.counter("fabric_link_bytes").unwrap() > 0.0);
    }

    #[test]
    fn explicit_spec_changes_the_device_label() {
        let w = WorkloadSpec::quickstart().scaled(4).build();
        let backend = DataflowBackend::paper().with_spec(WseSpec::cs2());
        let report = backend.solve(&w, &SolveConfig::default()).unwrap();
        assert_eq!(report.device.unwrap().device, "CS-2 region 750x994");
    }
}
