//! Solver options: the §III-E optimisation toggles.
//!
//! The paper highlights three algorithmic enhancements — PE-memory buffer reuse,
//! asynchronous communication overlapped with compute, and DSD vectorisation.  The
//! toggles here let the ablation benchmarks quantify each one, and the
//! `compute_enabled` switch reproduces the Table-IV experiment in which "all
//! floating-point operations" are excluded to measure data-communication time alone.

use crate::mapping::ReuseStrategy;
use mffv_fabric::timing::OverlapMode;
use mffv_solver::backend::PreconditionerKind;

/// Configuration of a dataflow solve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SolverOptions {
    /// Buffer-reuse strategy assumed by the memory plan (§III-E1).
    pub reuse: ReuseStrategy,
    /// Whether asynchronous communication is assumed to overlap with computation in
    /// the device-time model (§III-E2).
    pub overlap: OverlapMode,
    /// Whether the per-PE kernel is assumed to use the dual SIMD units via DSD
    /// vectorisation (§III-E3); scalar execution halves the effective FLOP rate in
    /// the device-time model.
    pub vectorized: bool,
    /// When `false`, floating-point work is skipped and only the communication
    /// schedule runs — the Table-IV "data movement only" configuration.  The solve
    /// then runs exactly `forced_iterations` iterations.
    pub compute_enabled: bool,
    /// Iteration count used when `compute_enabled` is `false` (the paper terminates
    /// its communication-only run at step 225 to match the converged run).
    pub forced_iterations: usize,
    /// Override of the workload's convergence tolerance on `rᵀr` (`None` keeps the
    /// workload's setting).
    pub tolerance_override: Option<f64>,
    /// Override of the workload's iteration cap (`None` keeps the workload's
    /// setting).
    pub max_iterations_override: Option<usize>,
    /// Preconditioner for the CG loop.  Jacobi runs on-fabric (one extra fused
    /// DSD pass per iteration on a resident inverse-diagonal column); the
    /// multigrid V-cycle runs host-assisted, with the residual columns read
    /// back and the correction columns written per application.  Ignored in
    /// communication-only mode.
    pub preconditioner: PreconditionerKind,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            reuse: ReuseStrategy::Aggressive,
            overlap: OverlapMode::Overlapped,
            vectorized: true,
            compute_enabled: true,
            forced_iterations: 0,
            tolerance_override: None,
            max_iterations_override: None,
            preconditioner: PreconditionerKind::None,
        }
    }
}

impl SolverOptions {
    /// The paper's production configuration: every optimisation on.
    pub fn paper() -> Self {
        Self::default()
    }

    /// The Table-IV communication-only configuration, terminated at `iterations`.
    pub fn communication_only(iterations: usize) -> Self {
        Self {
            compute_enabled: false,
            forced_iterations: iterations,
            ..Self::default()
        }
    }

    /// Disable the overlap optimisation (ablation).
    pub fn without_overlap(mut self) -> Self {
        self.overlap = OverlapMode::Serialized;
        self
    }

    /// Disable vectorisation (ablation).
    pub fn without_vectorization(mut self) -> Self {
        self.vectorized = false;
        self
    }

    /// Use the straightforward (no reuse) memory plan (ablation).
    pub fn without_buffer_reuse(mut self) -> Self {
        self.reuse = ReuseStrategy::None;
        self
    }

    /// Override the convergence tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance_override = Some(tolerance);
        self
    }

    /// Override the iteration cap.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations_override = Some(max_iterations);
        self
    }

    /// Select the CG preconditioner.
    pub fn with_preconditioner(mut self, preconditioner: PreconditionerKind) -> Self {
        self.preconditioner = preconditioner;
        self
    }

    /// Effective SIMD width factor used by the device-time model.
    pub fn simd_efficiency(&self) -> f64 {
        if self.vectorized {
            1.0
        } else {
            0.5
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_configuration() {
        let o = SolverOptions::default();
        assert_eq!(o, SolverOptions::paper());
        assert_eq!(o.reuse, ReuseStrategy::Aggressive);
        assert_eq!(o.overlap, OverlapMode::Overlapped);
        assert!(o.vectorized);
        assert!(o.compute_enabled);
        assert_eq!(o.simd_efficiency(), 1.0);
    }

    #[test]
    fn ablation_builders_flip_exactly_one_knob() {
        let base = SolverOptions::paper();
        let no_overlap = base.without_overlap();
        assert_eq!(no_overlap.overlap, OverlapMode::Serialized);
        assert_eq!(no_overlap.reuse, base.reuse);
        let scalar = base.without_vectorization();
        assert!(!scalar.vectorized);
        assert_eq!(scalar.simd_efficiency(), 0.5);
        let naive = base.without_buffer_reuse();
        assert_eq!(naive.reuse, ReuseStrategy::None);
    }

    #[test]
    fn communication_only_configuration() {
        let o = SolverOptions::communication_only(225);
        assert!(!o.compute_enabled);
        assert_eq!(o.forced_iterations, 225);
    }

    #[test]
    fn overrides() {
        let o = SolverOptions::paper()
            .with_tolerance(1e-6)
            .with_max_iterations(42);
        assert_eq!(o.tolerance_override, Some(1e-6));
        assert_eq!(o.max_iterations_override, Some(42));
    }
}
