//! Data mapping and PE local-memory planning (§III-A and §III-E1).
//!
//! "We decompose the data domain such that every cell from the Z-dimension is mapped
//! to the same PE, while the X and Y dimensions are mapped across the two axes of
//! the fabric … we map a cell with coordinates (x, y, z) in the 3D mesh onto PE
//! (x, y)." (§III-A)
//!
//! The second half of this module is the memory-plan analysis behind the paper's
//! §III-E1 optimisation: each PE has 48 KiB of local memory, so what fits — and how
//! deep a z-column can be — depends on how aggressively buffers are reused.
//! [`MemoryPlan`] models both the straightforward allocation and the reused one, and
//! [`MemoryPlan::max_nz`] answers "what is the deepest column a 48 KiB PE can hold?",
//! which is the quantity that decides whether the paper's 922-deep column fits.

use mffv_fabric::{BufferId, FabricDims, PeId, ProcessingElement};
use mffv_mesh::{Dims, Workload};

use mffv_fabric::error::FabricError;

/// How aggressively PE-local buffers are reused (§III-E1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReuseStrategy {
    /// One buffer per logical array, no sharing: solution, residual, direction,
    /// right-hand side, operator output, Dirichlet mask as full f32 column, four
    /// halo buffers and the six transmissibility columns.
    None,
    /// The paper's hand-managed reuse: the right-hand side folds into the initial
    /// residual, the operator output overwrites a halo buffer once it is consumed,
    /// only two halo buffers are kept live (the X-phase halos are consumed before
    /// the Y-phase halos arrive), and the Dirichlet mask is packed to one byte per
    /// cell.
    Aggressive,
}

/// A per-PE memory plan: the list of named buffers (in f32 elements, with packed
/// buffers expressed as fractional columns rounded up) for a column of depth `nz`.
#[derive(Clone, Debug, PartialEq)]
pub struct MemoryPlan {
    /// Column depth the plan is for.
    pub nz: usize,
    /// Reuse strategy the plan encodes.
    pub strategy: ReuseStrategy,
    /// Named allocations and their sizes in bytes.
    pub allocations: Vec<(String, usize)>,
}

impl MemoryPlan {
    /// Build the plan for a column of depth `nz` under a reuse strategy.
    pub fn new(nz: usize, strategy: ReuseStrategy) -> Self {
        let col = 4 * nz; // bytes per f32 column
        let mut allocations: Vec<(String, usize)> = Vec::new();
        match strategy {
            ReuseStrategy::None => {
                for name in ["solution", "residual", "direction", "rhs", "operator_out"] {
                    allocations.push((name.to_string(), col));
                }
                for dir in ["east", "west", "north", "south", "up", "down"] {
                    allocations.push((format!("transmissibility_{dir}"), col));
                }
                allocations.push(("dirichlet_mask_f32".to_string(), col));
                for dir in ["west", "east", "south", "north"] {
                    allocations.push((format!("halo_{dir}"), col));
                }
            }
            ReuseStrategy::Aggressive => {
                for name in ["solution", "residual", "direction"] {
                    allocations.push((name.to_string(), col));
                }
                for dir in ["east", "west", "north", "south", "up", "down"] {
                    allocations.push((format!("transmissibility_{dir}"), col));
                }
                // rhs is folded into the initial residual; operator output overwrites
                // the first halo buffer once its contribution is consumed; only two
                // halo buffers stay live because X-phase halos are consumed before
                // the Y-phase data arrives.
                allocations.push(("halo_a (reused: X/Y halos + operator_out)".to_string(), col));
                allocations.push(("halo_b (reused: X/Y halos)".to_string(), col));
                // Dirichlet mask packed to one byte per cell.
                allocations.push(("dirichlet_mask_packed".to_string(), nz));
            }
        }
        Self {
            nz,
            strategy,
            allocations,
        }
    }

    /// Total data bytes the plan needs.
    pub fn data_bytes(&self) -> usize {
        self.allocations.iter().map(|(_, b)| b).sum()
    }

    /// Total bytes including a code/runtime reservation.
    pub fn total_bytes(&self, code_reservation: usize) -> usize {
        self.data_bytes() + code_reservation
    }

    /// Whether the plan fits a PE of `capacity` bytes with the given code
    /// reservation.
    pub fn fits(&self, capacity: usize, code_reservation: usize) -> bool {
        self.total_bytes(code_reservation) <= capacity
    }

    /// The deepest column a PE of `capacity` bytes can hold under a strategy.
    pub fn max_nz(strategy: ReuseStrategy, capacity: usize, code_reservation: usize) -> usize {
        // Bytes per cell of column depth: derived from the plan of a unit column.
        let per_cell = Self::new(1, strategy).data_bytes();
        let available = capacity.saturating_sub(code_reservation);
        available / per_cell
    }
}

/// The problem-to-fabric mapping: grid extents, the fabric they occupy and the
/// association between mesh columns and PEs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProblemMapping {
    /// Mesh extents.
    pub dims: Dims,
}

impl ProblemMapping {
    /// Build the mapping for a mesh; the fabric must be exactly `nx × ny` PEs, one
    /// per vertical column of cells.
    pub fn new(dims: Dims) -> Self {
        Self { dims }
    }

    /// The fabric extents this problem occupies.
    pub fn fabric_dims(&self) -> FabricDims {
        FabricDims::new(self.dims.nx, self.dims.ny)
    }

    /// The PE that owns the column at `(x, y)`.
    pub fn pe_for_column(&self, x: usize, y: usize) -> PeId {
        assert!(
            x < self.dims.nx && y < self.dims.ny,
            "column outside the mesh"
        );
        PeId::new(x, y)
    }

    /// The mesh column owned by a PE.
    pub fn column_for_pe(&self, pe: PeId) -> (usize, usize) {
        (pe.x, pe.y)
    }

    /// Number of cells each PE holds.
    pub fn cells_per_pe(&self) -> usize {
        self.dims.nz
    }
}

/// Handles to the buffers a PE holds for the matrix-free CG kernel.  The executed
/// simulator always allocates the straightforward set (the reuse analysis above is
/// what decides feasibility at paper scale; executed problems use short columns).
#[derive(Clone, Copy, Debug)]
pub struct PeColumnBuffers {
    /// The CG solution update δp (becomes the pressure increment).
    pub solution: BufferId,
    /// The CG residual r.
    pub residual: BufferId,
    /// The CG search direction d (the vector the operator is applied to and the
    /// quantity exchanged with neighbouring PEs).
    pub direction: BufferId,
    /// The operator output A·d.
    pub operator_out: BufferId,
    /// Transmissibility columns in `Direction::ALL` order (E, W, N, S, Up, Down).
    pub transmissibility: [BufferId; 6],
    /// Dirichlet mask (1.0 where the cell is a Dirichlet cell).
    pub dirichlet_mask: BufferId,
    /// Dirichlet prescribed values (only meaningful where the mask is 1).
    pub dirichlet_value: BufferId,
    /// Halo buffers for the four cardinal neighbours' direction columns
    /// (W, E, S, N order to match Table I's fill order).
    pub halo_west: BufferId,
    pub halo_east: BufferId,
    pub halo_south: BufferId,
    pub halo_north: BufferId,
    /// The preconditioned residual `z = M⁻¹ r` (PCG only; zero-filled
    /// otherwise).
    pub precond_z: BufferId,
    /// Inverse of the operator diagonal (1 on Dirichlet rows), the resident
    /// column behind the on-fabric Jacobi preconditioner.
    pub inv_diag: BufferId,
}

impl PeColumnBuffers {
    /// Allocate the full buffer set on a PE for a column of depth `nz`, loading the
    /// per-column data from the workload.
    pub fn allocate(
        pe: &mut ProcessingElement,
        workload: &Workload,
        x: usize,
        y: usize,
    ) -> Result<Self, FabricError> {
        let dims = workload.dims();
        let nz = dims.nz;
        let solution = pe.alloc("solution", nz)?;
        let residual = pe.alloc("residual", nz)?;
        let direction = pe.alloc("direction", nz)?;
        let operator_out = pe.alloc("operator_out", nz)?;
        let mut transmissibility = [solution; 6];
        for (i, dir) in mffv_mesh::Direction::ALL.iter().enumerate() {
            let buf = pe.alloc(&format!("transmissibility_{}", dir.compass()), nz)?;
            let column: Vec<f32> = workload
                .transmissibility()
                .column_dir(x, y, *dir)
                .iter()
                .map(|&v| v as f32)
                .collect();
            pe.memory_mut().write(buf, 0, &column)?;
            transmissibility[i] = buf;
        }
        let dirichlet_mask = pe.alloc("dirichlet_mask", nz)?;
        let dirichlet_value = pe.alloc("dirichlet_value", nz)?;
        let mut mask = vec![0.0f32; nz];
        let mut values = vec![0.0f32; nz];
        for z in 0..nz {
            let linear = dims.linear(mffv_mesh::CellIndex::new(x, y, z));
            if let Some(v) = workload.dirichlet().value_at_linear(linear) {
                mask[z] = 1.0;
                values[z] = v as f32;
            }
        }
        pe.memory_mut().write(dirichlet_mask, 0, &mask)?;
        pe.memory_mut().write(dirichlet_value, 0, &values)?;

        let halo_west = pe.alloc("halo_west", nz)?;
        let halo_east = pe.alloc("halo_east", nz)?;
        let halo_south = pe.alloc("halo_south", nz)?;
        let halo_north = pe.alloc("halo_north", nz)?;

        let precond_z = pe.alloc("precond_z", nz)?;
        let inv_diag = pe.alloc("inv_diag", nz)?;
        // Operator diagonal: the sum of the six face coefficients (boundary
        // faces carry zero coefficients, so the raw row sum is exact), with
        // identity rows on Dirichlet cells.
        let mut inv = vec![1.0f32; nz];
        for (z, slot) in inv.iter_mut().enumerate() {
            let linear = dims.linear(mffv_mesh::CellIndex::new(x, y, z));
            if workload.dirichlet().contains_linear(linear) {
                continue;
            }
            let diag = workload.transmissibility().row_sum(linear) as f32;
            if diag.is_finite() && diag > 0.0 {
                *slot = 1.0 / diag;
            }
        }
        pe.memory_mut().write(inv_diag, 0, &inv)?;

        Ok(Self {
            solution,
            residual,
            direction,
            operator_out,
            transmissibility,
            dirichlet_mask,
            dirichlet_value,
            halo_west,
            halo_east,
            halo_south,
            halo_north,
            precond_z,
            inv_diag,
        })
    }

    /// The halo buffer that stores data arriving *from* the given cardinal
    /// direction.
    pub fn halo_for(&self, dir: mffv_mesh::Direction) -> BufferId {
        match dir {
            mffv_mesh::Direction::XM => self.halo_west,
            mffv_mesh::Direction::XP => self.halo_east,
            mffv_mesh::Direction::YM => self.halo_north,
            mffv_mesh::Direction::YP => self.halo_south,
            // audit: allow(panic) — invariant: z-columns are PE-local (§III-B
            // mapping), so halo exchange only ever names lateral directions.
            _ => panic!("vertical directions have no halo buffer"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffv_fabric::memory::PE_MEMORY_BYTES;
    use mffv_mesh::workload::WorkloadSpec;

    /// Code/runtime reservation assumed for the FV kernel when checking what fits.
    const KERNEL_CODE_BYTES: usize = 2048;

    #[test]
    fn mapping_associates_columns_and_pes() {
        let m = ProblemMapping::new(Dims::new(6, 4, 9));
        assert_eq!(m.fabric_dims(), FabricDims::new(6, 4));
        assert_eq!(m.pe_for_column(5, 3), PeId::new(5, 3));
        assert_eq!(m.column_for_pe(PeId::new(2, 1)), (2, 1));
        assert_eq!(m.cells_per_pe(), 9);
    }

    #[test]
    fn naive_plan_is_larger_than_aggressive_plan() {
        let naive = MemoryPlan::new(922, ReuseStrategy::None);
        let reuse = MemoryPlan::new(922, ReuseStrategy::Aggressive);
        assert!(naive.data_bytes() > reuse.data_bytes());
        // Straightforward allocation: 16 full columns.
        assert_eq!(naive.data_bytes(), 16 * 4 * 922);
        // Reused allocation: 11 full columns + packed mask.
        assert_eq!(reuse.data_bytes(), 11 * 4 * 922 + 922);
    }

    #[test]
    fn papers_column_depth_fits_only_with_reuse() {
        // The paper runs Nz = 922 on 48 KiB PEs; without the §III-E1 reuse the
        // straightforward allocation does not fit.
        let naive = MemoryPlan::new(922, ReuseStrategy::None);
        let reuse = MemoryPlan::new(922, ReuseStrategy::Aggressive);
        assert!(!naive.fits(PE_MEMORY_BYTES, KERNEL_CODE_BYTES));
        assert!(reuse.fits(PE_MEMORY_BYTES, KERNEL_CODE_BYTES));
    }

    #[test]
    fn max_nz_brackets_the_paper_depth() {
        let max_naive = MemoryPlan::max_nz(ReuseStrategy::None, PE_MEMORY_BYTES, KERNEL_CODE_BYTES);
        let max_reuse = MemoryPlan::max_nz(
            ReuseStrategy::Aggressive,
            PE_MEMORY_BYTES,
            KERNEL_CODE_BYTES,
        );
        assert!(
            max_naive < 922,
            "naive plan unexpectedly fits 922 (max {max_naive})"
        );
        assert!(
            max_reuse >= 922,
            "aggressive plan must fit the paper's 922 (max {max_reuse})"
        );
        assert!(max_reuse > max_naive);
        // Consistency: a plan at exactly max_nz fits, one cell deeper does not.
        let plan = MemoryPlan::new(max_reuse, ReuseStrategy::Aggressive);
        assert!(plan.fits(PE_MEMORY_BYTES, KERNEL_CODE_BYTES));
        let over = MemoryPlan::new(max_reuse + 1, ReuseStrategy::Aggressive);
        assert!(!over.fits(PE_MEMORY_BYTES, KERNEL_CODE_BYTES));
    }

    #[test]
    fn buffers_allocate_and_load_workload_columns() {
        let w = WorkloadSpec::quickstart().build();
        let mut pe = ProcessingElement::new(PeId::new(1, 1));
        let bufs = PeColumnBuffers::allocate(&mut pe, &w, 1, 1).unwrap();
        let nz = w.dims().nz;
        assert_eq!(pe.memory().len(bufs.solution).unwrap(), nz);
        // Transmissibility column matches the host-side table.
        let east: Vec<f32> = w
            .transmissibility()
            .column_dir(1, 1, mffv_mesh::Direction::XP)
            .iter()
            .map(|&v| v as f32)
            .collect();
        assert_eq!(
            pe.memory().read(bufs.transmissibility[0], 0, nz).unwrap(),
            east
        );
        assert_eq!(bufs.halo_for(mffv_mesh::Direction::XM), bufs.halo_west);
    }

    #[test]
    fn dirichlet_columns_are_marked() {
        let w = WorkloadSpec::quickstart().build();
        // Column (0, 0) is the source well: every cell is Dirichlet with value 1.
        let mut pe = ProcessingElement::new(PeId::new(0, 0));
        let bufs = PeColumnBuffers::allocate(&mut pe, &w, 0, 0).unwrap();
        let nz = w.dims().nz;
        let mask = pe.memory().read(bufs.dirichlet_mask, 0, nz).unwrap();
        let values = pe.memory().read(bufs.dirichlet_value, 0, nz).unwrap();
        assert!(mask.iter().all(|&m| m == 1.0));
        assert!(values.iter().all(|&v| v == 1.0));
        // An interior column has no Dirichlet cells.
        let mut pe2 = ProcessingElement::new(PeId::new(3, 3));
        let bufs2 = PeColumnBuffers::allocate(&mut pe2, &w, 3, 3).unwrap();
        let mask2 = pe2.memory().read(bufs2.dirichlet_mask, 0, nz).unwrap();
        assert!(mask2.iter().all(|&m| m == 0.0));
    }

    #[test]
    #[should_panic]
    fn halo_for_vertical_direction_panics() {
        let w = WorkloadSpec::quickstart().build();
        let mut pe = ProcessingElement::new(PeId::new(2, 2));
        let bufs = PeColumnBuffers::allocate(&mut pe, &w, 2, 2).unwrap();
        let _ = bufs.halo_for(mffv_mesh::Direction::ZP);
    }
}
