//! The per-PE matrix-free kernel (Algorithm 2 on the fabric).
//!
//! Each PE applies the operator to its own z-column: the two vertical neighbours are
//! read from local memory (they live on the same PE under the Figure-3 mapping), the
//! four horizontal neighbours come from the halo buffers filled by the Table-I
//! exchange, and every arithmetic step is issued as a DSD vector operation so the
//! per-cell FLOP and traffic counts can be compared with the paper's Table V.
//!
//! The kernel computes the SPD form of the operator (see `mffv-fv`): because every
//! CG vector is identically zero on Dirichlet cells, the received halo values of
//! Dirichlet neighbours are zero and the Dirichlet-eliminated coupling drops out
//! automatically; the Dirichlet rows themselves are overwritten with the identity
//! (`(Jx)_K ← x_K`, the `else` branch of Algorithm 2).
//!
//! Buffer reuse (§III-E1): the horizontal halo buffers are consumed in place
//! (`halo ← direction − halo`) and the first of them is then reused as the scratch
//! column for the vertical differences, so the kernel needs no additional temporary
//! storage beyond the operator output column.

use crate::mapping::PeColumnBuffers;
use mffv_fabric::error::Result;
use mffv_fabric::{Dsd, ProcessingElement};
use mffv_mesh::Direction;

/// Compute `operator_out = A · direction` for one PE's column.
///
/// The halo buffers must contain the neighbouring PEs' direction columns (or zeros
/// on fabric edges); they are overwritten by the computation and must be refilled by
/// the next exchange before calling this again.
pub fn compute_jd(pe: &mut ProcessingElement, bufs: &PeColumnBuffers) -> Result<()> {
    let nz = pe.memory().len(bufs.direction)?;
    let out = Dsd::full(bufs.operator_out, nz);
    let d = Dsd::full(bufs.direction, nz);
    pe.fill(out, 0.0)?;

    // Horizontal contributions: out += T_dir · (d − halo_dir), halo consumed in
    // place.  The transmissibility column is zero on boundary faces, so edge PEs can
    // run the identical instruction stream (uniform per-cell work, as in Table V).
    let horizontal = [
        (Direction::XP, bufs.halo_east),
        (Direction::XM, bufs.halo_west),
        (Direction::YP, bufs.halo_south),
        (Direction::YM, bufs.halo_north),
    ];
    for (dir, halo) in horizontal {
        let t = Dsd::full(bufs.transmissibility[dir.index()], nz);
        let h = Dsd::full(halo, nz);
        pe.fsubs(h, d, h)?; // halo ← d − halo
        pe.fmacs(out, out, t, h)?; // out ← out + T · (d − halo)
    }

    // Vertical contributions, resolved entirely in local memory.  The consumed west
    // halo buffer doubles as the scratch column for the shifted differences.
    if nz > 1 {
        let scratch = Dsd::new(bufs.halo_west, 0, nz - 1);
        // Up neighbours (z+1) contribute to cells 0 .. nz-2.
        let d_lo = Dsd::new(bufs.direction, 0, nz - 1);
        let d_hi = Dsd::new(bufs.direction, 1, nz - 1);
        let t_up = Dsd::new(bufs.transmissibility[Direction::ZP.index()], 0, nz - 1);
        let out_lo = Dsd::new(bufs.operator_out, 0, nz - 1);
        pe.fsubs(scratch, d_lo, d_hi)?;
        pe.fmacs(out_lo, out_lo, t_up, scratch)?;
        // Down neighbours (z-1) contribute to cells 1 .. nz-1.
        let t_down = Dsd::new(bufs.transmissibility[Direction::ZM.index()], 1, nz - 1);
        let out_hi = Dsd::new(bufs.operator_out, 1, nz - 1);
        pe.fsubs(scratch, d_hi, d_lo)?;
        pe.fmacs(out_hi, out_hi, t_down, scratch)?;
    }

    // Dirichlet rows: (Jx)_K ← x_K.
    apply_dirichlet_identity(pe, bufs, nz)?;
    Ok(())
}

/// Overwrite the operator output with the identity on Dirichlet rows.
fn apply_dirichlet_identity(
    pe: &mut ProcessingElement,
    bufs: &PeColumnBuffers,
    nz: usize,
) -> Result<()> {
    let mask = pe.memory().read(bufs.dirichlet_mask, 0, nz)?;
    let direction = pe.memory().read(bufs.direction, 0, nz)?;
    pe.counters_mut().mem_load_bytes += 2 * nz as u64 * 4;
    for z in 0..nz {
        if mask[z] != 0.0 {
            pe.memory_mut()
                .write(bufs.operator_out, z, &[direction[z]])?;
            pe.counters_mut().mem_store_bytes += 4;
        }
    }
    Ok(())
}

/// Initialise the CG state on one PE from a right-hand-side column:
/// `residual ← rhs`, `direction ← rhs`, `solution ← 0`.
pub fn init_cg_state(
    pe: &mut ProcessingElement,
    bufs: &PeColumnBuffers,
    rhs: &[f32],
) -> Result<()> {
    let nz = pe.memory().len(bufs.residual)?;
    assert_eq!(rhs.len(), nz, "rhs column length mismatch");
    pe.memory_mut().write(bufs.residual, 0, rhs)?;
    pe.counters_mut().mem_store_bytes += nz as u64 * 4;
    pe.fmovs(Dsd::full(bufs.direction, nz), Dsd::full(bufs.residual, nz))?;
    pe.fill(Dsd::full(bufs.solution, nz), 0.0)?;
    Ok(())
}

/// Local partial dot product `direction · operator_out` for the α denominator.
pub fn local_dot_d_ad(pe: &mut ProcessingElement, bufs: &PeColumnBuffers) -> Result<f32> {
    let nz = pe.memory().len(bufs.direction)?;
    pe.dot_local(
        Dsd::full(bufs.direction, nz),
        Dsd::full(bufs.operator_out, nz),
    )
}

/// Local partial dot product `residual · residual` for the convergence test and β.
pub fn local_dot_rr(pe: &mut ProcessingElement, bufs: &PeColumnBuffers) -> Result<f32> {
    let nz = pe.memory().len(bufs.residual)?;
    pe.dot_local(Dsd::full(bufs.residual, nz), Dsd::full(bufs.residual, nz))
}

/// `solution += α · direction` and `residual −= α · operator_out` (CG lines 6–7).
pub fn apply_alpha_updates(
    pe: &mut ProcessingElement,
    bufs: &PeColumnBuffers,
    alpha: f32,
) -> Result<()> {
    let nz = pe.memory().len(bufs.solution)?;
    pe.axpy(
        Dsd::full(bufs.solution, nz),
        Dsd::full(bufs.direction, nz),
        alpha,
    )?;
    pe.axpy(
        Dsd::full(bufs.residual, nz),
        Dsd::full(bufs.operator_out, nz),
        -alpha,
    )?;
    Ok(())
}

/// `z ← D⁻¹ · r`: the on-fabric Jacobi preconditioner, one fill plus one fused
/// multiply-accumulate over the resident inverse-diagonal column.
pub fn jacobi_precond(pe: &mut ProcessingElement, bufs: &PeColumnBuffers) -> Result<()> {
    let nz = pe.memory().len(bufs.residual)?;
    let z = Dsd::full(bufs.precond_z, nz);
    pe.fill(z, 0.0)?;
    pe.fmacs(
        z,
        z,
        Dsd::full(bufs.inv_diag, nz),
        Dsd::full(bufs.residual, nz),
    )
}

/// `direction ← z` after the initial preconditioner application (PCG sets
/// d₀ = z₀ = M⁻¹ r₀).
pub fn set_direction_from_z(pe: &mut ProcessingElement, bufs: &PeColumnBuffers) -> Result<()> {
    let nz = pe.memory().len(bufs.direction)?;
    pe.fmovs(Dsd::full(bufs.direction, nz), Dsd::full(bufs.precond_z, nz))
}

/// Local partial dot product `residual · z` for the PCG α numerator and β.
pub fn local_dot_rz(pe: &mut ProcessingElement, bufs: &PeColumnBuffers) -> Result<f32> {
    let nz = pe.memory().len(bufs.residual)?;
    pe.dot_local(Dsd::full(bufs.residual, nz), Dsd::full(bufs.precond_z, nz))
}

/// `direction = z + β · direction` (the PCG direction update).
pub fn apply_beta_update_z(
    pe: &mut ProcessingElement,
    bufs: &PeColumnBuffers,
    beta: f32,
) -> Result<()> {
    let nz = pe.memory().len(bufs.direction)?;
    pe.xpby(
        Dsd::full(bufs.direction, nz),
        Dsd::full(bufs.precond_z, nz),
        beta,
    )
}

/// `direction = residual + β · direction` (CG line 10).
pub fn apply_beta_update(
    pe: &mut ProcessingElement,
    bufs: &PeColumnBuffers,
    beta: f32,
) -> Result<()> {
    let nz = pe.memory().len(bufs.direction)?;
    pe.xpby(
        Dsd::full(bufs.direction, nz),
        Dsd::full(bufs.residual, nz),
        beta,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mffv_fabric::PeId;
    use mffv_fv::{LinearOperator, MatrixFreeOperator};
    use mffv_mesh::workload::{BoundarySpec, WorkloadSpec};
    use mffv_mesh::{CellField, CellIndex, Dims, PermeabilityModel};

    /// A single-column workload (1 × 1 × nz): no horizontal neighbours, so one PE
    /// holds the entire problem and the kernel must match the host operator exactly.
    fn single_column_workload(nz: usize) -> mffv_mesh::Workload {
        WorkloadSpec {
            name: "single-column".to_string(),
            dims: Dims::new(1, 1, nz),
            spacing: [1.0, 1.0, 1.0],
            permeability: PermeabilityModel::LogNormal {
                mean_log: 0.0,
                std_log: 1.0,
                seed: 5,
            },
            viscosity: 1.0,
            boundary: BoundarySpec::None,
            tolerance: 1e-12,
            max_iterations: 100,
        }
        .build()
    }

    #[test]
    fn single_column_matches_host_operator() {
        let nz = 12;
        let w = single_column_workload(nz);
        let mut pe = ProcessingElement::new(PeId::new(0, 0));
        let bufs = PeColumnBuffers::allocate(&mut pe, &w, 0, 0).unwrap();
        let d_host = CellField::<f32>::from_fn(w.dims(), |c| (c.z as f32 * 0.3) - 1.0);
        pe.memory_mut()
            .write(bufs.direction, 0, &d_host.column(0, 0))
            .unwrap();
        compute_jd(&mut pe, &bufs).unwrap();
        let got = pe.memory().read(bufs.operator_out, 0, nz).unwrap();

        let op = MatrixFreeOperator::<f32>::from_workload(&w);
        let expected = op.apply_new(&d_host);
        for (z, &g) in got.iter().enumerate() {
            let e = expected.at(CellIndex::new(0, 0, z));
            assert!(
                (g - e).abs() <= 1e-5 * e.abs().max(1.0),
                "z={z}: kernel {g} vs host {e}"
            );
        }
    }

    #[test]
    fn dirichlet_rows_become_identity() {
        let nz = 6;
        let w = WorkloadSpec {
            name: "dirichlet-column".to_string(),
            dims: Dims::new(2, 1, nz),
            spacing: [1.0, 1.0, 1.0],
            permeability: PermeabilityModel::Homogeneous { value: 1.0 },
            viscosity: 1.0,
            boundary: BoundarySpec::SourceProducer {
                source_pressure: 1.0,
                producer_pressure: 0.0,
            },
            tolerance: 1e-12,
            max_iterations: 100,
        }
        .build();
        // The source column (0, 0) is entirely Dirichlet.
        let mut pe = ProcessingElement::new(PeId::new(0, 0));
        let bufs = PeColumnBuffers::allocate(&mut pe, &w, 0, 0).unwrap();
        let d: Vec<f32> = (0..nz).map(|z| z as f32 + 1.0).collect();
        pe.memory_mut().write(bufs.direction, 0, &d).unwrap();
        compute_jd(&mut pe, &bufs).unwrap();
        let got = pe.memory().read(bufs.operator_out, 0, nz).unwrap();
        assert_eq!(got, d, "Dirichlet rows must reproduce the input column");
    }

    #[test]
    fn manually_filled_halos_reproduce_horizontal_coupling() {
        // A 3x1xN strip: compute the middle PE's column with halos filled by hand
        // from the host-side direction field and compare against the host operator.
        let nz = 5;
        let dims = Dims::new(3, 1, nz);
        let w = WorkloadSpec::paper_grid(3, 1, nz).build();
        let d_host = CellField::<f32>::from_fn(dims, |c| (c.x * 10 + c.z) as f32 * 0.5 + 1.0);
        // Zero the Dirichlet cells as the CG flow guarantees.
        let mut d_zeroed = d_host.clone();
        for idx in 0..dims.num_cells() {
            if w.dirichlet().contains_linear(idx) {
                d_zeroed.set(idx, 0.0);
            }
        }
        let mut pe = ProcessingElement::new(PeId::new(1, 0));
        let bufs = PeColumnBuffers::allocate(&mut pe, &w, 1, 0).unwrap();
        pe.memory_mut()
            .write(bufs.direction, 0, &d_zeroed.column(1, 0))
            .unwrap();
        pe.memory_mut()
            .write(bufs.halo_west, 0, &d_zeroed.column(0, 0))
            .unwrap();
        pe.memory_mut()
            .write(bufs.halo_east, 0, &d_zeroed.column(2, 0))
            .unwrap();
        compute_jd(&mut pe, &bufs).unwrap();
        let got = pe.memory().read(bufs.operator_out, 0, nz).unwrap();

        let op = MatrixFreeOperator::<f32>::from_workload(&w);
        let expected = op.apply_new(&d_zeroed);
        for (z, &g) in got.iter().enumerate() {
            let e = expected.at(CellIndex::new(1, 0, z));
            assert!(
                (g - e).abs() <= 1e-5 * e.abs().max(1.0),
                "z={z}: {g} vs {e}"
            );
        }
    }

    #[test]
    fn cg_helper_updates_match_reference_arithmetic() {
        let nz = 8;
        let w = single_column_workload(nz);
        let mut pe = ProcessingElement::new(PeId::new(0, 0));
        let bufs = PeColumnBuffers::allocate(&mut pe, &w, 0, 0).unwrap();
        let rhs: Vec<f32> = (0..nz).map(|z| (z as f32).sin()).collect();
        init_cg_state(&mut pe, &bufs, &rhs).unwrap();
        assert_eq!(pe.memory().read(bufs.residual, 0, nz).unwrap(), rhs);
        assert_eq!(pe.memory().read(bufs.direction, 0, nz).unwrap(), rhs);
        assert_eq!(
            pe.memory().read(bufs.solution, 0, nz).unwrap(),
            vec![0.0; nz]
        );

        let rr = local_dot_rr(&mut pe, &bufs).unwrap();
        let expected_rr: f32 = rhs.iter().map(|v| v * v).sum();
        assert!((rr - expected_rr).abs() < 1e-4);

        // operator_out left as zero: apply alpha updates and check the arithmetic.
        apply_alpha_updates(&mut pe, &bufs, 2.0).unwrap();
        let sol = pe.memory().read(bufs.solution, 0, nz).unwrap();
        for z in 0..nz {
            assert!((sol[z] - 2.0 * rhs[z]).abs() < 1e-6);
        }
        apply_beta_update(&mut pe, &bufs, 0.5).unwrap();
        let dir = pe.memory().read(bufs.direction, 0, nz).unwrap();
        for z in 0..nz {
            assert!((dir[z] - 1.5 * rhs[z]).abs() < 1e-6);
        }
    }

    #[test]
    fn kernel_counts_flops_per_cell_consistently() {
        // 4 horizontal (fsub + fmac) passes + 2 vertical passes over nz-1 cells:
        // FLOPs = 4·nz·(1+2) + 2·(nz−1)·(1+2); the dot products and axpys are
        // counted separately.  This pins the measured count the perf-model tests
        // compare against.
        let nz = 10;
        let w = single_column_workload(nz);
        let mut pe = ProcessingElement::new(PeId::new(0, 0));
        let bufs = PeColumnBuffers::allocate(&mut pe, &w, 0, 0).unwrap();
        pe.reset_counters();
        compute_jd(&mut pe, &bufs).unwrap();
        let flops = pe.counters().flops;
        let expected = 4 * nz as u64 * 3 + 2 * (nz as u64 - 1) * 3;
        assert_eq!(flops, expected);
    }
}
