//! The conjugate-gradient state machine (§III-D).
//!
//! "Unlike the conventional approach, our implementation of the conjugate gradient
//! algorithm on a dataflow architecture utilizes a state machine.  We have devised
//! 14 states to orchestrate the various steps involved in the conjugate gradient
//! algorithm and have carefully planned the transitions between these states."
//!
//! The loop structure of Algorithm 1 — iteration check, operator application,
//! reductions, updates, convergence check — becomes the explicit state/transition
//! table below.  Conditional checks (the `while` of line 4 and the `if` of line 8)
//! are "converted into state transitions", which is exactly what
//! [`CgStateMachine::advance`] encodes.

/// The fourteen states of the CG state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CgState {
    /// Set up buffers and initialise `r₀`, `d₀` (Algorithm 1 lines 1–3).
    Init,
    /// The `k < k_max` check (line 4).
    IterCheck,
    /// Four-step cardinal halo exchange of the direction column (§III-B).
    ExchangeHalos,
    /// Per-PE matrix-free computation of `J·d` (Algorithm 2).
    ComputeJx,
    /// Per-PE partial dot product `d · (J d)`.
    LocalDotDAd,
    /// Whole-fabric all-reduce of the α denominator (§III-C).
    AllReduceDAd,
    /// Compute `α = rᵀr / dᵀJd` (line 5).
    ComputeAlpha,
    /// `y ← y + α d` (line 6).
    UpdateSolution,
    /// `r ← r − α J d` (line 7).
    UpdateResidual,
    /// Per-PE partial dot product `r · r`.
    LocalDotRR,
    /// Whole-fabric all-reduce of `rᵀr`.
    AllReduceRR,
    /// The `rᵀr < ε` convergence check (line 8).
    ThresholdCheck,
    /// Compute `β` and update the search direction (lines 9–10).
    UpdateDirection,
    /// Terminal state: converged or iteration budget exhausted.
    Done,
}

impl CgState {
    /// All fourteen states.
    pub const ALL: [CgState; 14] = [
        CgState::Init,
        CgState::IterCheck,
        CgState::ExchangeHalos,
        CgState::ComputeJx,
        CgState::LocalDotDAd,
        CgState::AllReduceDAd,
        CgState::ComputeAlpha,
        CgState::UpdateSolution,
        CgState::UpdateResidual,
        CgState::LocalDotRR,
        CgState::AllReduceRR,
        CgState::ThresholdCheck,
        CgState::UpdateDirection,
        CgState::Done,
    ];
}

/// Events that drive transitions.  On the real machine these are colour-activated
/// callback tasks (completion of an asynchronous exchange, of an all-reduce, …); in
/// the simulator the solver raises them after performing the corresponding work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CgEvent {
    /// Initialisation finished.
    Initialized,
    /// The iteration budget allows another iteration.
    BudgetRemaining,
    /// The iteration budget is exhausted.
    BudgetExhausted,
    /// All completion callbacks of the halo exchange arrived.
    ExchangeComplete,
    /// The per-PE operator application finished.
    ComputeComplete,
    /// A local partial dot product is ready.
    LocalDotReady,
    /// The whole-fabric all-reduce callback fired.
    ReduceComplete,
    /// α (or β) has been computed.
    ScalarReady,
    /// A vector update (axpy) finished.
    UpdateComplete,
    /// The convergence test passed (`rᵀr < ε`).
    Converged,
    /// The convergence test failed; continue iterating.
    NotConverged,
}

/// Error raised when an event is not legal in the current state — surfacing
/// orchestration bugs exactly the way a mis-programmed callback would hang or
/// corrupt the real device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidTransition {
    pub state: CgState,
    pub event: CgEvent,
}

impl std::fmt::Display for InvalidTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "event {:?} is not valid in state {:?}",
            self.event, self.state
        )
    }
}

impl std::error::Error for InvalidTransition {}

/// The CG state machine: current state plus the iteration counter the `IterCheck`
/// state consults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CgStateMachine {
    state: CgState,
    iteration: usize,
    max_iterations: usize,
}

impl CgStateMachine {
    /// A machine in the `Init` state with an iteration budget.
    pub fn new(max_iterations: usize) -> Self {
        Self {
            state: CgState::Init,
            iteration: 0,
            max_iterations,
        }
    }

    /// Current state.
    pub fn state(&self) -> CgState {
        self.state
    }

    /// Number of completed iterations.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Iteration budget.
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    /// Whether the machine is in the terminal state.
    pub fn is_done(&self) -> bool {
        self.state == CgState::Done
    }

    /// The event the `IterCheck` state should raise given the iteration counter —
    /// the `while (k < k_max)` condition converted into an event.
    pub fn budget_event(&self) -> CgEvent {
        if self.iteration < self.max_iterations {
            CgEvent::BudgetRemaining
        } else {
            CgEvent::BudgetExhausted
        }
    }

    /// Apply an event, returning the new state.
    pub fn advance(&mut self, event: CgEvent) -> Result<CgState, InvalidTransition> {
        use CgEvent as E;
        use CgState as S;
        let next = match (self.state, event) {
            (S::Init, E::Initialized) => S::IterCheck,
            (S::IterCheck, E::BudgetRemaining) => S::ExchangeHalos,
            (S::IterCheck, E::BudgetExhausted) => S::Done,
            (S::ExchangeHalos, E::ExchangeComplete) => S::ComputeJx,
            (S::ComputeJx, E::ComputeComplete) => S::LocalDotDAd,
            (S::LocalDotDAd, E::LocalDotReady) => S::AllReduceDAd,
            (S::AllReduceDAd, E::ReduceComplete) => S::ComputeAlpha,
            (S::ComputeAlpha, E::ScalarReady) => S::UpdateSolution,
            (S::UpdateSolution, E::UpdateComplete) => S::UpdateResidual,
            (S::UpdateResidual, E::UpdateComplete) => S::LocalDotRR,
            (S::LocalDotRR, E::LocalDotReady) => S::AllReduceRR,
            (S::AllReduceRR, E::ReduceComplete) => S::ThresholdCheck,
            (S::ThresholdCheck, E::Converged) => S::Done,
            (S::ThresholdCheck, E::NotConverged) => S::UpdateDirection,
            (S::UpdateDirection, E::ScalarReady) => {
                self.iteration += 1;
                S::IterCheck
            }
            (state, event) => return Err(InvalidTransition { state, event }),
        };
        // Completing the threshold check also counts as finishing the iteration when
        // it converges (the paper reports "steps to converge" inclusively).
        if self.state == CgState::ThresholdCheck && event == E::Converged {
            self.iteration += 1;
        }
        self.state = next;
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive one full iteration body (ExchangeHalos through UpdateDirection).
    fn drive_one_iteration(m: &mut CgStateMachine) {
        assert_eq!(
            m.advance(CgEvent::BudgetRemaining).unwrap(),
            CgState::ExchangeHalos
        );
        assert_eq!(
            m.advance(CgEvent::ExchangeComplete).unwrap(),
            CgState::ComputeJx
        );
        assert_eq!(
            m.advance(CgEvent::ComputeComplete).unwrap(),
            CgState::LocalDotDAd
        );
        assert_eq!(
            m.advance(CgEvent::LocalDotReady).unwrap(),
            CgState::AllReduceDAd
        );
        assert_eq!(
            m.advance(CgEvent::ReduceComplete).unwrap(),
            CgState::ComputeAlpha
        );
        assert_eq!(
            m.advance(CgEvent::ScalarReady).unwrap(),
            CgState::UpdateSolution
        );
        assert_eq!(
            m.advance(CgEvent::UpdateComplete).unwrap(),
            CgState::UpdateResidual
        );
        assert_eq!(
            m.advance(CgEvent::UpdateComplete).unwrap(),
            CgState::LocalDotRR
        );
        assert_eq!(
            m.advance(CgEvent::LocalDotReady).unwrap(),
            CgState::AllReduceRR
        );
        assert_eq!(
            m.advance(CgEvent::ReduceComplete).unwrap(),
            CgState::ThresholdCheck
        );
        assert_eq!(
            m.advance(CgEvent::NotConverged).unwrap(),
            CgState::UpdateDirection
        );
        assert_eq!(m.advance(CgEvent::ScalarReady).unwrap(), CgState::IterCheck);
    }

    #[test]
    fn there_are_exactly_fourteen_states() {
        assert_eq!(CgState::ALL.len(), 14);
        let mut unique = CgState::ALL.to_vec();
        unique.dedup();
        assert_eq!(unique.len(), 14);
    }

    #[test]
    fn full_iteration_cycle_increments_counter() {
        let mut m = CgStateMachine::new(5);
        assert_eq!(m.state(), CgState::Init);
        assert_eq!(m.advance(CgEvent::Initialized).unwrap(), CgState::IterCheck);
        drive_one_iteration(&mut m);
        assert_eq!(m.iteration(), 1);
        drive_one_iteration(&mut m);
        assert_eq!(m.iteration(), 2);
        assert!(!m.is_done());
    }

    #[test]
    fn convergence_terminates_the_machine() {
        let mut m = CgStateMachine::new(100);
        m.advance(CgEvent::Initialized).unwrap();
        m.advance(CgEvent::BudgetRemaining).unwrap();
        m.advance(CgEvent::ExchangeComplete).unwrap();
        m.advance(CgEvent::ComputeComplete).unwrap();
        m.advance(CgEvent::LocalDotReady).unwrap();
        m.advance(CgEvent::ReduceComplete).unwrap();
        m.advance(CgEvent::ScalarReady).unwrap();
        m.advance(CgEvent::UpdateComplete).unwrap();
        m.advance(CgEvent::UpdateComplete).unwrap();
        m.advance(CgEvent::LocalDotReady).unwrap();
        m.advance(CgEvent::ReduceComplete).unwrap();
        assert_eq!(m.advance(CgEvent::Converged).unwrap(), CgState::Done);
        assert!(m.is_done());
        assert_eq!(m.iteration(), 1);
    }

    #[test]
    fn budget_exhaustion_terminates_the_machine() {
        let mut m = CgStateMachine::new(1);
        m.advance(CgEvent::Initialized).unwrap();
        assert_eq!(m.budget_event(), CgEvent::BudgetRemaining);
        drive_one_iteration(&mut m);
        assert_eq!(m.budget_event(), CgEvent::BudgetExhausted);
        assert_eq!(m.advance(CgEvent::BudgetExhausted).unwrap(), CgState::Done);
    }

    #[test]
    fn invalid_transitions_are_rejected() {
        let mut m = CgStateMachine::new(3);
        let err = m.advance(CgEvent::Converged).unwrap_err();
        assert_eq!(err.state, CgState::Init);
        assert_eq!(err.event, CgEvent::Converged);
        assert!(err.to_string().contains("not valid"));
        // The machine is unchanged after a rejected event.
        assert_eq!(m.state(), CgState::Init);
        m.advance(CgEvent::Initialized).unwrap();
        assert!(m.advance(CgEvent::ExchangeComplete).is_err());
    }

    #[test]
    #[allow(clippy::disallowed_types)] // test-only set; iteration order unused
    fn every_state_is_reachable_from_init() {
        // Walk one converging run and one budget-exhausted run; together they must
        // visit all 14 states.
        use std::collections::HashSet;
        let mut visited: HashSet<CgState> = HashSet::new();
        let mut m = CgStateMachine::new(1);
        visited.insert(m.state());
        m.advance(CgEvent::Initialized).unwrap();
        visited.insert(m.state());
        for event in [
            CgEvent::BudgetRemaining,
            CgEvent::ExchangeComplete,
            CgEvent::ComputeComplete,
            CgEvent::LocalDotReady,
            CgEvent::ReduceComplete,
            CgEvent::ScalarReady,
            CgEvent::UpdateComplete,
            CgEvent::UpdateComplete,
            CgEvent::LocalDotReady,
            CgEvent::ReduceComplete,
            CgEvent::NotConverged,
            CgEvent::ScalarReady,
            CgEvent::BudgetExhausted,
        ] {
            m.advance(event).unwrap();
            visited.insert(m.state());
        }
        assert_eq!(visited.len(), 14, "visited: {visited:?}");
    }
}
