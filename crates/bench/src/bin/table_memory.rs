//! Memory-plan report — the §III-E1 buffer-reuse ablation.
//!
//! Prints the per-PE allocation breakdown for the paper's 922-deep column under the
//! straightforward and the reused memory plans, and the maximum column depth each
//! plan supports within the 48 KiB PE budget.  This is the quantitative version of
//! the paper's statement that buffer reuse is what lets "larger simulations be
//! tackled".
//!
//! Run with `cargo run --release -p mffv-bench --bin table_memory`.

use mffv_core::{MemoryPlan, ReuseStrategy};
use mffv_fabric::memory::PE_MEMORY_BYTES;
use mffv_perf::report::format_table;

const KERNEL_CODE_BYTES: usize = 2048;

fn print_plan(plan: &MemoryPlan) {
    println!(
        "Memory plan: nz = {}, strategy = {:?}, data bytes = {}, total with {} B code = {}",
        plan.nz,
        plan.strategy,
        plan.data_bytes(),
        KERNEL_CODE_BYTES,
        plan.total_bytes(KERNEL_CODE_BYTES)
    );
    let rows: Vec<Vec<String>> = plan
        .allocations
        .iter()
        .map(|(name, bytes)| vec![name.clone(), bytes.to_string()])
        .collect();
    println!("{}", format_table(&["Buffer", "Bytes"], &rows));
}

fn main() {
    println!(
        "PE local memory budget: {} bytes ({} KiB), kernel code reservation: {} bytes\n",
        PE_MEMORY_BYTES,
        PE_MEMORY_BYTES / 1024,
        KERNEL_CODE_BYTES
    );

    let naive = MemoryPlan::new(922, ReuseStrategy::None);
    let reuse = MemoryPlan::new(922, ReuseStrategy::Aggressive);
    print_plan(&naive);
    println!(
        "Fits the paper's Nz = 922 column: {}\n",
        naive.fits(PE_MEMORY_BYTES, KERNEL_CODE_BYTES)
    );
    print_plan(&reuse);
    println!(
        "Fits the paper's Nz = 922 column: {}\n",
        reuse.fits(PE_MEMORY_BYTES, KERNEL_CODE_BYTES)
    );

    let rows = vec![
        vec![
            "Straightforward (no reuse)".to_string(),
            MemoryPlan::max_nz(ReuseStrategy::None, PE_MEMORY_BYTES, KERNEL_CODE_BYTES).to_string(),
        ],
        vec![
            "Buffer reuse (§III-E1)".to_string(),
            MemoryPlan::max_nz(
                ReuseStrategy::Aggressive,
                PE_MEMORY_BYTES,
                KERNEL_CODE_BYTES,
            )
            .to_string(),
        ],
    ];
    println!(
        "{}",
        format_table(&["Allocation strategy", "Maximum Nz per 48 KiB PE"], &rows)
    );
    println!("The paper's largest mesh uses Nz = 922, which only fits with buffer reuse.");
}
