//! Sustained steady-state serving throughput benchmark.
//!
//! Drives the pooled serving path (`SolveContext`: keyed operator cache +
//! reusable Krylov scratch) through a long run of identical steady jobs —
//! the daemon-session steady state — and proves the three claims the
//! serving path makes (see README "Serving at steady state"):
//!
//! * **flat throughput** — jobs/s per window stays within ±10% of the run
//!   mean over the whole run (no allocator-driven drift), enforced by
//!   `--check` when the run is at least 1000 jobs;
//! * **zero allocations** — a counting global allocator shows zero heap
//!   allocations per job once the context is warm (`None`/`Jacobi`
//!   preconditioners; the multigrid V-cycle is outside this contract);
//! * **bitwise invisibility** — every pooled residual history is bitwise
//!   identical to a cold, fresh-context solve of the same workload.
//!
//! Also times the engine batch path with pooling on vs off.  Emits
//! machine-readable `BENCH_engine.json`:
//!
//! ```text
//! cargo run --release -p mffv-bench --bin engine_bench -- \
//!     --nx 16 --ny 16 --nz 8 --jobs 10000 --windows 10 --workers 4 \
//!     --precond jacobi --out BENCH_engine.json [--check]
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mffv::prelude::*;
use mffv::telemetry::Stopwatch;

/// Heap acquisitions since process start.  `realloc`/`alloc_zeroed` keep
/// their default implementations, which route through `alloc`, so every
/// acquisition path is counted.
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: a transparent pass-through to `System` — every method forwards verbatim.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: the caller's layout contract is forwarded to `System` as-is.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    // SAFETY: `ptr` came from `alloc` above with the same layout, valid for `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

struct Args {
    nx: usize,
    ny: usize,
    nz: usize,
    jobs: usize,
    windows: usize,
    workers: usize,
    precond: PreconditionerKind,
    out: String,
    check: bool,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            nx: 16,
            ny: 16,
            nz: 8,
            jobs: 10_000,
            windows: 10,
            workers: 4,
            precond: PreconditionerKind::Jacobi,
            out: "BENCH_engine.json".to_string(),
            check: false,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            if flag == "--check" {
                args.check = true;
                continue;
            }
            let mut value = || {
                iter.next()
                    .unwrap_or_else(|| panic!("missing value for {flag}"))
            };
            match flag.as_str() {
                "--nx" => args.nx = value().parse().expect("--nx"),
                "--ny" => args.ny = value().parse().expect("--ny"),
                "--nz" => args.nz = value().parse().expect("--nz"),
                "--jobs" => args.jobs = value().parse::<usize>().expect("--jobs").max(1),
                "--windows" => args.windows = value().parse::<usize>().expect("--windows").max(1),
                "--workers" => args.workers = value().parse::<usize>().expect("--workers").max(1),
                "--precond" => {
                    args.precond = match value().as_str() {
                        "none" => PreconditionerKind::None,
                        "jacobi" => PreconditionerKind::Jacobi,
                        other => panic!("--precond must be none or jacobi, got {other}"),
                    }
                }
                "--out" => args.out = value(),
                other => panic!(
                    "unknown flag {other} (use --nx --ny --nz --jobs --windows --workers --precond --out --check)"
                ),
            }
        }
        args
    }
}

/// One pooled solve returning the allocation delta across it.
fn pooled_solve(
    ctx: &mut SolveContext<f64>,
    workload: &Workload,
    config: &SolveConfig,
    span: &Span,
) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let stopped = ctx.solve(workload, config, &mut NullMonitor, span);
    assert!(stopped.is_none(), "steady solve must converge");
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

/// Whether the context's last history matches `reference` bit for bit,
/// without allocating.
fn history_matches(ctx: &SolveContext<f64>, reference: &[u64]) -> bool {
    let history = &ctx.history().residual_norms_squared;
    history.len() == reference.len()
        && history
            .iter()
            .zip(reference.iter())
            .all(|(value, bits)| value.to_bits() == *bits)
}

fn main() {
    let args = Args::parse();
    let dims = Dims::new(args.nx, args.ny, args.nz);
    let spec = WorkloadSpec::paper_grid(args.nx, args.ny, args.nz);
    let workload = Workload::try_from_spec(&spec).expect("workload spec is valid");
    let config = SolveConfig {
        threads: Some(1),
        preconditioner: args.precond,
        ..SolveConfig::default()
    };
    let span = Span::null();
    println!(
        "engine bench: {dims} steady jobs ({} cells), {} jobs in {} windows, {:?} preconditioner",
        dims.num_cells(),
        args.jobs,
        args.windows,
        args.precond
    );

    // Cold reference: a fresh context per solve is the cache-off serving
    // path.  Its history is the bitwise contract every pooled job must hit.
    let reference: Vec<u64> = {
        let mut fresh = SolveContext::new();
        pooled_solve(&mut fresh, &workload, &config, &span);
        fresh
            .history()
            .residual_norms_squared
            .iter()
            .map(|v| v.to_bits())
            .collect()
    };

    // Warm the serving context: first solve builds the operator and sizes
    // the scratch, second settles remaining capacity growth.
    let mut ctx: SolveContext<f64> = SolveContext::new();
    pooled_solve(&mut ctx, &workload, &config, &span);
    pooled_solve(&mut ctx, &workload, &config, &span);
    assert!(history_matches(&ctx, &reference), "warmup diverged");

    // --- sustained pooled run, windowed ------------------------------------
    let window_size = args.jobs.div_ceil(args.windows);
    let mut window_rates: Vec<f64> = Vec::new();
    let mut max_alloc_delta = 0u64;
    let mut total_allocs = 0u64;
    let mut bitwise_identical = true;
    let mut executed = 0usize;
    let run_watch = Stopwatch::start();
    while executed < args.jobs {
        let n = window_size.min(args.jobs - executed);
        let watch = Stopwatch::start();
        for _ in 0..n {
            let delta = pooled_solve(&mut ctx, &workload, &config, &span);
            max_alloc_delta = max_alloc_delta.max(delta);
            total_allocs += delta;
            bitwise_identical &= history_matches(&ctx, &reference);
        }
        window_rates.push(n as f64 / watch.elapsed_seconds().max(1e-12));
        executed += n;
    }
    let pooled_seconds = run_watch.elapsed_seconds();
    let pooled_rate = args.jobs as f64 / pooled_seconds.max(1e-12);

    let mean_rate = window_rates.iter().sum::<f64>() / window_rates.len() as f64;
    let flatness_pct = window_rates
        .iter()
        .map(|r| ((r - mean_rate) / mean_rate).abs() * 100.0)
        .fold(0.0f64, f64::max);
    let stats = ctx.stats();

    // --- cold (cache-off) per-job path for comparison -----------------------
    let unpooled_jobs = args.jobs.clamp(1, 200);
    let watch = Stopwatch::start();
    for _ in 0..unpooled_jobs {
        let mut fresh = SolveContext::new();
        pooled_solve(&mut fresh, &workload, &config, &span);
        bitwise_identical &= history_matches(&fresh, &reference);
    }
    let unpooled_rate = unpooled_jobs as f64 / watch.elapsed_seconds().max(1e-12);

    assert!(
        bitwise_identical,
        "pooled residual histories must be bitwise identical to cache-off solves"
    );
    println!(
        "  steady: pooled {pooled_rate:.1} jobs/s | cold {unpooled_rate:.1} jobs/s | \
         flatness {flatness_pct:.2}% | max allocs/job {max_alloc_delta} | \
         cache {}h/{}m",
        stats.hits, stats.misses
    );

    // --- engine batch: pooling on vs off ------------------------------------
    let engine_jobs = args.jobs.min(1000);
    let batch: Vec<JobSpec> = (0..engine_jobs)
        .map(|_| JobSpec::new(spec.clone(), Backend::host()).with_config(config))
        .collect();
    let watch = Stopwatch::start();
    let pooled_batch = Engine::new(args.workers).run(batch.clone());
    let engine_pooled_rate = engine_jobs as f64 / watch.elapsed_seconds().max(1e-12);
    assert!(pooled_batch.all_succeeded());
    let watch = Stopwatch::start();
    let unpooled_batch = Engine::new(args.workers)
        .with_context_pooling(false)
        .run(batch);
    let engine_unpooled_rate = engine_jobs as f64 / watch.elapsed_seconds().max(1e-12);
    assert!(unpooled_batch.all_succeeded());
    println!(
        "  engine ({} workers, {engine_jobs} jobs): pooled {engine_pooled_rate:.1} jobs/s | \
         unpooled {engine_unpooled_rate:.1} jobs/s",
        args.workers
    );

    let windows_json = window_rates
        .iter()
        .map(|r| format!("{r:.3}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"dims\": {{\"nx\": {}, \"ny\": {}, \"nz\": {}}},\n  \
         \"cells\": {},\n  \"jobs\": {},\n  \"windows\": {},\n  \"preconditioner\": \"{}\",\n  \
         \"budgets\": {{\"flatness_pct\": 10.0, \"allocations_per_job\": 0}},\n  \
         \"steady\": {{\"pooled_jobs_per_second\": {:.3}, \"unpooled_jobs_per_second\": {:.3}, \
         \"speedup\": {:.3}, \"window_jobs_per_second\": [{}], \"flatness_pct\": {:.3}, \
         \"allocations_per_job_max\": {}, \"allocations_total\": {}, \"bitwise_identical\": {}, \
         \"cache\": {{\"hits\": {}, \"misses\": {}, \"scratch_reallocs\": {}}}}},\n  \
         \"engine\": {{\"workers\": {}, \"jobs\": {}, \"pooled_jobs_per_second\": {:.3}, \
         \"unpooled_jobs_per_second\": {:.3}}}\n}}\n",
        args.nx,
        args.ny,
        args.nz,
        dims.num_cells(),
        args.jobs,
        args.windows,
        args.precond.label(),
        pooled_rate,
        unpooled_rate,
        pooled_rate / unpooled_rate.max(1e-12),
        windows_json,
        flatness_pct,
        max_alloc_delta,
        total_allocs,
        bitwise_identical,
        stats.hits,
        stats.misses,
        stats.scratch_reallocs,
        args.workers,
        engine_jobs,
        engine_pooled_rate,
        engine_unpooled_rate,
    );
    std::fs::write(&args.out, &json).expect("write JSON report");
    println!("wrote {}", args.out);

    if max_alloc_delta != 0 {
        println!("WARN: warmed hot path allocated (max {max_alloc_delta} allocations/job)");
        if args.check {
            eprintln!("FAIL: the warmed steady path must perform zero heap allocations per job");
            std::process::exit(1);
        }
    }
    if flatness_pct > 10.0 {
        println!("WARN: window throughput deviates {flatness_pct:.2}% from the mean");
        if args.check && args.jobs >= 1000 {
            eprintln!("FAIL: steady-state jobs/s must stay within ±10% over a >=1000-job run");
            std::process::exit(1);
        }
    }
}
