//! Multigrid preconditioner benchmark: CG vs Jacobi-PCG vs MG-PCG.
//!
//! Solves the paper-grid pressure problem at a ladder of cube sizes with
//! plain CG, Jacobi-preconditioned CG and the matrix-free geometric-multigrid
//! V-cycle (`mffv_fv::mg`), in both precisions, and emits a machine-readable
//! `BENCH_mg.json` (iterations, wall seconds, speedups).  The headline claim
//! it documents: MG-PCG iteration counts stay flat as the grid is refined,
//! where CG and Jacobi-PCG grow roughly with the grid edge.
//!
//! ```text
//! cargo run --release -p mffv-bench --bin mg_bench -- \
//!     --sizes 32,64,128 --reps 3 --out BENCH_mg.json
//! ```
//!
//! `--check` is the CI smoke mode: after writing the report it validates that
//! every MG-PCG row converged and never needed more iterations than plain CG,
//! exiting non-zero otherwise.

use mffv::prelude::*;
use mffv_solver::newton::solve_pressure_with;
use mffv_solver::trace::Span;

struct Args {
    sizes: Vec<usize>,
    reps: usize,
    threads: usize,
    sweeps: Option<usize>,
    omega: Option<f64>,
    out: String,
    check: bool,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            sizes: vec![32, 64, 128],
            reps: 3,
            threads: 1,
            sweeps: None,
            omega: None,
            out: "BENCH_mg.json".to_string(),
            check: false,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            let mut value = || {
                iter.next()
                    .unwrap_or_else(|| panic!("missing value for {flag}"))
            };
            match flag.as_str() {
                "--sizes" => {
                    args.sizes = value()
                        .split(',')
                        .map(|t| t.trim().parse().expect("--sizes"))
                        .collect()
                }
                "--reps" => args.reps = value().parse::<usize>().expect("--reps").max(1),
                "--threads" => args.threads = value().parse().expect("--threads"),
                "--sweeps" => args.sweeps = Some(value().parse().expect("--sweeps")),
                "--omega" => args.omega = Some(value().parse().expect("--omega")),
                "--out" => args.out = value(),
                "--check" => args.check = true,
                other => panic!(
                    "unknown flag {other} (use --sizes --reps --threads --sweeps --omega --out --check)"
                ),
            }
        }
        args
    }

    fn mg_config(&self) -> MgConfig {
        let mut config = MgConfig::default();
        if let Some(sweeps) = self.sweeps {
            config.pre_sweeps = sweeps;
            config.post_sweeps = sweeps;
        }
        if let Some(omega) = self.omega {
            config.omega = omega;
        }
        config
    }
}

/// One measured solve configuration.
struct Row {
    method: &'static str,
    precision: &'static str,
    n: usize,
    cells: usize,
    iterations: usize,
    converged: bool,
    seconds: f64,
    speedup_vs_cg: f64,
}

impl Row {
    fn json(&self) -> String {
        format!(
            "    {{\"method\": \"{}\", \"precision\": \"{}\", \"n\": {}, \"cells\": {}, \
             \"iterations\": {}, \"converged\": {}, \"seconds\": {:.6e}, \
             \"speedup_vs_cg\": {:.3}}}",
            self.method,
            self.precision,
            self.n,
            self.cells,
            self.iterations,
            self.converged,
            self.seconds,
            self.speedup_vs_cg
        )
    }
}

fn bench_precision<T: Scalar>(
    workload: &Workload,
    n: usize,
    precision: &'static str,
    reps: usize,
    threads: usize,
    mg_config: MgConfig,
    rows: &mut Vec<Row>,
) {
    let cells = workload.dims().num_cells();
    let tolerance = workload.tolerance();
    let max_iterations = workload.max_iterations();
    let operator = MatrixFreeOperator::<T>::from_workload(workload).with_threads(threads);

    let cg = ConjugateGradient::with_tolerance(tolerance, max_iterations);
    let base = solve_pressure_with::<T, _>(workload, &operator, &cg);
    let cg_seconds = time_best_of(reps, || {
        std::hint::black_box(solve_pressure_with::<T, _>(workload, &operator, &cg));
    });
    rows.push(Row {
        method: "cg",
        precision,
        n,
        cells,
        iterations: base.history.iterations,
        converged: base.history.converged,
        seconds: cg_seconds,
        speedup_vs_cg: 1.0,
    });

    let pcg = PreconditionedConjugateGradient::with_tolerance(tolerance, max_iterations);
    let coeffs = workload.transmissibility().convert::<T>();
    let jacobi = JacobiPreconditioner::from_coefficients(&coeffs, workload.dirichlet());
    let solve_jacobi = || {
        solve_pressure_preconditioned::<T, _, _>(
            workload,
            &operator,
            &jacobi,
            &pcg,
            &mut NullMonitor,
            &Span::null(),
        )
    };
    let jac = solve_jacobi();
    let jac_seconds = time_best_of(reps, || {
        std::hint::black_box(solve_jacobi());
    });
    rows.push(Row {
        method: "jacobi-pcg",
        precision,
        n,
        cells,
        iterations: jac.history.iterations,
        converged: jac.history.converged,
        seconds: jac_seconds,
        speedup_vs_cg: cg_seconds / jac_seconds,
    });

    let mg = MultigridVcycle::<T>::from_workload(workload, threads, mg_config);
    let solve_mg = || {
        solve_pressure_preconditioned::<T, _, _>(
            workload,
            &operator,
            &mg,
            &pcg,
            &mut NullMonitor,
            &Span::null(),
        )
    };
    let mgs = solve_mg();
    let mg_seconds = time_best_of(reps, || {
        std::hint::black_box(solve_mg());
    });
    rows.push(Row {
        method: "mg-pcg",
        precision,
        n,
        cells,
        iterations: mgs.history.iterations,
        converged: mgs.history.converged,
        seconds: mg_seconds,
        speedup_vs_cg: cg_seconds / mg_seconds,
    });
}

fn main() {
    let args = Args::parse();
    let mut rows: Vec<Row> = Vec::new();
    let mg_config = args.mg_config();
    for &n in &args.sizes {
        let workload = WorkloadSpec::paper_grid(n, n, n).build();
        let levels =
            MultigridVcycle::<f64>::from_workload(&workload, args.threads, mg_config).num_levels();
        println!(
            "mg bench on {n}^3 ({} cells, {} MG levels)",
            workload.dims().num_cells(),
            levels
        );
        bench_precision::<f32>(
            &workload,
            n,
            "f32",
            args.reps,
            args.threads,
            mg_config,
            &mut rows,
        );
        bench_precision::<f64>(
            &workload,
            n,
            "f64",
            args.reps,
            args.threads,
            mg_config,
            &mut rows,
        );
    }

    for row in &rows {
        println!(
            "  {:>10} {} {:>4}^3  {:>6} iters  {:>10.3} ms  {:>6.2}x vs cg",
            row.method,
            row.precision,
            row.n,
            row.iterations,
            row.seconds * 1e3,
            row.speedup_vs_cg
        );
    }

    let result_lines: Vec<String> = rows.iter().map(Row::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"mg\",\n  \"sizes\": {:?},\n  \"reps\": {},\n  \"threads\": {},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        args.sizes,
        args.reps,
        args.threads,
        result_lines.join(",\n"),
    );
    std::fs::write(&args.out, &json).expect("write JSON report");
    println!("wrote {}", args.out);

    if args.check {
        let mut failures = Vec::new();
        for row in &rows {
            if row.method != "mg-pcg" {
                continue;
            }
            if !row.converged {
                failures.push(format!(
                    "mg-pcg {} {}^3 did not converge",
                    row.precision, row.n
                ));
            }
            let cg_iters = rows
                .iter()
                .find(|r| r.method == "cg" && r.precision == row.precision && r.n == row.n)
                .map(|r| r.iterations)
                .unwrap_or(0);
            if row.iterations > cg_iters {
                failures.push(format!(
                    "mg-pcg {} {}^3 took {} iterations vs cg's {}",
                    row.precision, row.n, row.iterations, cg_iters
                ));
            }
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("check failed: {f}");
            }
            std::process::exit(1);
        }
        println!("check passed: all MG-PCG rows converged at or below plain-CG iterations");
    }
}
