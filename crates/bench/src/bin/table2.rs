//! Regenerates **Table II** — kernel time on the CS-2 versus NVIDIA A100/H100.
//!
//! Two sections are printed:
//! 1. the analytic models evaluated at the paper's full 750×994×922 mesh and 225 CG
//!    iterations (device times are modelled, see `EXPERIMENTS.md`);
//! 2. an executed cross-check at a scaled grid: the dataflow simulator and the
//!    CPU-executed GPU-style reference both solve the same problem, and their
//!    modelled device times are reported alongside.
//!
//! Run with `cargo run --release -p mffv-bench --bin table2`.

use mffv::prelude::*;
use mffv_bench::{executed_workload, DEFAULT_EXECUTED_SCALE};
use mffv_perf::report::{fmt_seconds, format_table};

fn main() {
    let paper_dims = Dims::new(750, 994, 922);
    let iterations = 225;
    let model = AnalyticTiming::paper();

    let cs2 = model.cs2_alg1_time(paper_dims, iterations);
    let a100 = model.gpu_alg1_time(GpuSpec::a100(), paper_dims, iterations);
    let h100 = model.gpu_alg1_time(GpuSpec::h100(), paper_dims, iterations);

    println!(
        "Table II — time measurements, full paper mesh {paper_dims} ({iterations} iterations)"
    );
    println!("(modelled device time; paper measurements shown for reference)\n");
    let rows = vec![
        vec![
            "Dataflow/CSL (CS-2)".to_string(),
            fmt_seconds(cs2),
            "0.0542".to_string(),
            format!("{:.2}x", a100 / cs2),
            "427.82x".to_string(),
        ],
        vec![
            "A100/CUDA".to_string(),
            fmt_seconds(a100),
            "23.1879".to_string(),
            "1.00x".to_string(),
            "1.00x".to_string(),
        ],
        vec![
            "H100/CUDA".to_string(),
            fmt_seconds(h100),
            "11.3861".to_string(),
            format!("{:.2}x", a100 / h100),
            "2.04x".to_string(),
        ],
    ];
    println!(
        "{}",
        format_table(
            &[
                "Arch/lang",
                "Modelled time [s]",
                "Paper time [s]",
                "Modelled speedup vs A100",
                "Paper speedup vs A100"
            ],
            &rows
        )
    );

    // Executed cross-check at a scaled grid.
    let scaled = Dims::new(
        (paper_dims.nx / DEFAULT_EXECUTED_SCALE).max(2),
        (paper_dims.ny / DEFAULT_EXECUTED_SCALE).max(2),
        (paper_dims.nz / DEFAULT_EXECUTED_SCALE).max(2),
    );
    println!("Executed cross-check at scaled grid {scaled} (same code paths, smaller mesh):\n");
    let reports: Vec<_> = Simulation::new(executed_workload(scaled))
        .tolerance(1e-10)
        .backend(Backend::dataflow())
        .backend(Backend::gpu_ref())
        .run_all()
        .into_iter()
        .map(|(_, outcome)| outcome.expect("facade solve failed"))
        .collect();

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.backend.clone(),
                format!("{}", r.iterations()),
                fmt_seconds(r.modelled_time().unwrap_or(0.0)),
                format!("{:.3e}", r.final_residual_max),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "Backend",
                "CG iterations",
                "Modelled device time [s]",
                "Final |r|_max"
            ],
            &rows
        )
    );
    let dataflow_time = reports[0]
        .modelled_time()
        .expect("dataflow models a device");
    let gpu_time = reports[1].modelled_time().expect("gpu-ref models a device");
    println!(
        "Modelled speedup at the scaled grid: {:.1}x (paper, full grid: 427.82x vs A100)",
        gpu_time / dataflow_time
    );
}
