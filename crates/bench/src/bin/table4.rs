//! Regenerates **Table IV** — time distribution (data movement vs computation) on
//! the CS-2.
//!
//! Methodology mirrors the paper's: run the full solve, then run a modified version
//! with all floating-point work removed ("communication only") for the same number
//! of iterations, and attribute the communication-only time to data movement.  The
//! executed section does exactly that on the simulated fabric at a scaled grid; the
//! analytic section evaluates the same split at the paper's full mesh.
//!
//! Run with `cargo run --release -p mffv-bench --bin table4`.

use mffv::prelude::*;
use mffv_bench::executed_workload;
use mffv_perf::report::{fmt_percent, fmt_seconds, format_table};

fn main() {
    let paper_dims = Dims::new(750, 994, 922);
    let iterations = 225;
    let model = AnalyticTiming::paper();
    let (data_movement, computation, total) = model.cs2_time_split(paper_dims, iterations);

    println!("Table IV — time distribution on CS-2, full paper mesh {paper_dims} (modelled)\n");
    let rows = vec![
        vec![
            "Data Movement".to_string(),
            fmt_seconds(data_movement),
            fmt_percent(data_movement / total),
            "0.0034 s / 6.27%".to_string(),
        ],
        vec![
            "Computation".to_string(),
            format!("{} ~ {}", fmt_seconds(computation), fmt_seconds(total)),
            fmt_percent(computation / total),
            "0.0508–0.0542 s / 93.73–100%".to_string(),
        ],
        vec![
            "Total".to_string(),
            fmt_seconds(total),
            "100.00%".to_string(),
            "0.0542 s / 100%".to_string(),
        ],
    ];
    println!(
        "{}",
        format_table(
            &["Component", "Modelled time [s]", "Modelled share", "Paper"],
            &rows
        )
    );

    // Executed split at a scaled grid: full run vs communication-only run.
    let dims = Dims::new(20, 24, 18);
    let workload = executed_workload(dims);
    let full = Simulation::new(workload.clone())
        .tolerance(1e-8)
        .backend(Backend::dataflow())
        .run()
        .expect("full solve failed");
    let full_device = full.device.as_ref().expect("dataflow models a device");
    let full_iterations = full.iterations();
    let comm_only = Simulation::new(workload)
        .backend(Backend::dataflow_with(SolverOptions::communication_only(
            full_iterations,
        )))
        .run()
        .expect("communication-only run failed");
    let comm_device = comm_only.device.as_ref().expect("dataflow models a device");

    let comm_time = comm_device.counter("fabric_time_seconds").unwrap()
        + comm_device.counter("latency_time_seconds").unwrap();
    let total_time = full_device.modelled_time_seconds;
    let compute_time = (total_time - comm_time).max(0.0);
    println!(
        "Executed split at scaled grid {dims} ({full_iterations} iterations, both runs move identical traffic):\n",
    );
    let rows = vec![
        vec![
            "Data Movement (comm-only run)".to_string(),
            format!("{comm_time:.3e}"),
            fmt_percent(comm_time / total_time),
        ],
        vec![
            "Computation".to_string(),
            format!("{compute_time:.3e} ~ {total_time:.3e}"),
            fmt_percent(compute_time / total_time),
        ],
        vec![
            "Total".to_string(),
            format!("{total_time:.3e}"),
            "100.00%".to_string(),
        ],
    ];
    println!(
        "{}",
        format_table(&["Component", "Modelled time [s]", "Share"], &rows)
    );
    println!(
        "Cross-check: comm-only run moved {} fabric bytes vs {} in the full run (must match).",
        comm_device.counter("fabric_link_bytes").unwrap_or(0.0),
        full_device.counter("fabric_link_bytes").unwrap_or(0.0)
    );
}
