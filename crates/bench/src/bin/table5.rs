//! Regenerates **Table V** — per-cell instruction and memory-access counts.
//!
//! Prints the static accounting model (identical to the paper's table) and then
//! cross-checks the derived totals (96 FLOPs/cell, 268 memory accesses, 8 fabric
//! loads, arithmetic intensities 0.0895 and 3 FLOP/B) against counts *measured* by
//! the simulator while executing the matrix-free kernel.
//!
//! Run with `cargo run --release -p mffv-bench --bin table5`.

use mffv::prelude::*;
use mffv_bench::executed_workload;
use mffv_perf::report::format_table;

fn main() {
    let counts = CellOpCounts::paper_table5();

    println!("Table V — instruction and memory access counts for one mesh cell\n");
    let rows: Vec<Vec<String>> = counts
        .rows()
        .iter()
        .map(|r| {
            vec![
                r.area.to_string(),
                r.class.mnemonic().to_string(),
                r.count.to_string(),
                r.class.flops().to_string(),
                format!("{} loads, {} store(s)", r.mem_loads, r.mem_stores),
                format!("{} load(s)", r.fabric_loads),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "Area",
                "Operation",
                "Counts",
                "FLOP",
                "Memory traffic",
                "Fabric traffic"
            ],
            &rows
        )
    );

    println!("Derived totals (paper values in parentheses):");
    println!(
        "  FLOPs per cell:            {} (96)",
        counts.flops_per_cell()
    );
    println!(
        "  ... of which Algorithm 2:  {} (84)",
        counts.alg2_flops_per_cell()
    );
    println!(
        "  Memory accesses per cell:  {} (268)",
        counts.mem_accesses_per_cell()
    );
    println!(
        "  Fabric loads per cell:     {} (8)",
        counts.fabric_loads_per_cell()
    );
    println!(
        "  Arithmetic intensity:      {:.4} FLOP/B memory (0.0895), {:.1} FLOP/B fabric (3)",
        counts.memory_arithmetic_intensity(),
        counts.fabric_arithmetic_intensity()
    );

    // Measured cross-check: execute a small solve and report per-cell-per-iteration
    // counts from the instrumented fabric, via the facade's device section.
    let dims = Dims::new(12, 10, 16);
    let report = Simulation::new(executed_workload(dims))
        .tolerance(1e-8)
        .backend(Backend::dataflow())
        .run()
        .expect("dataflow solve failed");
    let device = report.device.as_ref().expect("dataflow models a device");
    let iterations = report.iterations();
    let cell_iterations = (dims.num_cells() * iterations.max(1)) as f64;
    let measured_flops = device.counter("total_flops").unwrap() / cell_iterations;
    let measured_mem = device.counter("total_mem_bytes").unwrap() / 4.0 / cell_iterations;
    let measured_fabric = device.counter("total_fabric_recv_wavelets").unwrap() / cell_iterations;

    println!("\nMeasured per-cell-per-iteration counts from the simulator ({dims}, {iterations} iterations):");
    println!("  FLOPs:            {measured_flops:.1}   (model 96: the simulator's pre-multiplied");
    println!("                    transmissibility form needs fewer FLOPs per neighbour — see EXPERIMENTS.md)");
    println!("  Memory accesses:  {measured_mem:.1}");
    println!(
        "  Fabric wavelets:  {measured_fabric:.1}   (model counts 8 loads for interior cells;"
    );
    println!("                    boundary columns receive fewer halos)");
}
