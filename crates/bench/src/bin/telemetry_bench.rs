//! Telemetry overhead benchmark: untraced vs null-traced vs fully-traced.
//!
//! Measures the two overhead budgets the telemetry subsystem promises
//! (see README "Telemetry & tracing"):
//!
//! * **null path** — `solve_traced` with a null span must stay within noise
//!   of the plain `solve` call (<1%; the CI smoke step warns above 1% and
//!   fails above 5% with `--check`);
//! * **full tracing** — a recording tracer (spans + per-chunk CG iteration
//!   marks) must cost <5% on a 64³ host solve and on a 12-job engine batch.
//!
//! Emits machine-readable `BENCH_telemetry.json`:
//!
//! ```text
//! cargo run --release -p mffv-bench --bin telemetry_bench -- \
//!     --nx 64 --ny 64 --nz 64 --jobs 12 --workers 4 --reps 5 \
//!     --out BENCH_telemetry.json [--check]
//! ```

use mffv::prelude::*;
use mffv::telemetry::{Span, Tracer};

struct Args {
    nx: usize,
    ny: usize,
    nz: usize,
    jobs: usize,
    workers: usize,
    reps: usize,
    out: String,
    check: bool,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            nx: 64,
            ny: 64,
            nz: 64,
            jobs: 12,
            workers: 4,
            reps: 5,
            out: "BENCH_telemetry.json".to_string(),
            check: false,
        };
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            if flag == "--check" {
                args.check = true;
                continue;
            }
            let mut value = || {
                iter.next()
                    .unwrap_or_else(|| panic!("missing value for {flag}"))
            };
            match flag.as_str() {
                "--nx" => args.nx = value().parse().expect("--nx"),
                "--ny" => args.ny = value().parse().expect("--ny"),
                "--nz" => args.nz = value().parse().expect("--nz"),
                "--jobs" => args.jobs = value().parse::<usize>().expect("--jobs").max(1),
                "--workers" => args.workers = value().parse::<usize>().expect("--workers").max(1),
                "--reps" => args.reps = value().parse::<usize>().expect("--reps").max(1),
                "--out" => args.out = value(),
                other => panic!(
                    "unknown flag {other} (use --nx --ny --nz --jobs --workers --reps --out --check)"
                ),
            }
        }
        args
    }
}

fn overhead_pct(base: f64, variant: f64) -> f64 {
    if base > 0.0 {
        (variant / base - 1.0) * 100.0
    } else {
        0.0
    }
}

fn sweep_jobs(n: usize) -> Vec<JobSpec> {
    SweepBuilder::new(WorkloadSpec::quickstart())
        .grids([Dims::new(12, 12, 6), Dims::new(16, 16, 8)])
        .seeds((0..n.div_ceil(2) as u64).collect::<Vec<_>>())
        .jobs()
        .into_iter()
        .take(n)
        .collect()
}

fn main() {
    let args = Args::parse();
    let dims = Dims::new(args.nx, args.ny, args.nz);
    // A fixed iteration budget keeps the measured work identical across the
    // three variants whether or not the solve converges at this size.
    let workload = WorkloadSpec::paper_grid(args.nx, args.ny, args.nz).build();
    let config = SolveConfig {
        tolerance: Some(1e-12),
        max_iterations: Some(200),
        ..SolveConfig::default()
    };
    let backend = Backend::host().instantiate();
    println!(
        "telemetry bench: {dims} host solve ({} cells, <=200 iters), {} jobs on {} workers, best of {}",
        dims.num_cells(),
        args.jobs,
        args.workers,
        args.reps
    );

    // --- solve: untraced / null span / recording tracer ---------------------
    let solve_untraced = time_best_of(args.reps, || {
        backend.solve(&workload, &config).expect("solve");
    });
    let solve_null = time_best_of(args.reps, || {
        backend
            .solve_traced(&workload, &config, &mut NullMonitor, &Span::null())
            .expect("solve");
    });
    let solve_traced = time_best_of(args.reps, || {
        let tracer = Tracer::new();
        let span = tracer.span("solve @ host-f64");
        backend
            .solve_traced(&workload, &config, &mut NullMonitor, &span)
            .expect("solve");
        span.finish();
    });
    let trace_spans = {
        let tracer = Tracer::new();
        let span = tracer.span("solve @ host-f64");
        backend
            .solve_traced(&workload, &config, &mut NullMonitor, &span)
            .expect("solve");
        span.finish();
        tracer.records().len()
    };
    let solve_null_pct = overhead_pct(solve_untraced, solve_null);
    let solve_full_pct = overhead_pct(solve_untraced, solve_traced);
    println!(
        "  solve: untraced {:.3} ms | null {:.3} ms ({:+.2}%) | traced {:.3} ms ({:+.2}%, {} spans)",
        solve_untraced * 1e3,
        solve_null * 1e3,
        solve_null_pct,
        solve_traced * 1e3,
        solve_full_pct,
        trace_spans
    );

    // --- engine batch: untraced / traced ------------------------------------
    let jobs = sweep_jobs(args.jobs);
    let batch_untraced = time_best_of(args.reps, || {
        let report = Engine::new(args.workers).run(jobs.clone());
        assert!(report.all_succeeded());
    });
    let batch_traced = time_best_of(args.reps, || {
        let report = Engine::new(args.workers)
            .with_tracer(Tracer::new())
            .run(jobs.clone());
        assert!(report.all_succeeded());
    });
    let batch_pct = overhead_pct(batch_untraced, batch_traced);
    println!(
        "  batch: untraced {:.3} ms | traced {:.3} ms ({:+.2}%)",
        batch_untraced * 1e3,
        batch_traced * 1e3,
        batch_pct
    );

    let json = format!(
        "{{\n  \"bench\": \"telemetry\",\n  \"dims\": {{\"nx\": {}, \"ny\": {}, \"nz\": {}}},\n  \
         \"cells\": {},\n  \"reps\": {},\n  \"budgets_pct\": {{\"null_warn\": 1.0, \"null_fail\": 5.0, \"full\": 5.0}},\n  \
         \"solve\": {{\"untraced_seconds\": {:.6e}, \"null_traced_seconds\": {:.6e}, \
         \"full_traced_seconds\": {:.6e}, \"null_overhead_pct\": {:.3}, \
         \"full_overhead_pct\": {:.3}, \"spans_recorded\": {}}},\n  \
         \"engine\": {{\"jobs\": {}, \"workers\": {}, \"untraced_seconds\": {:.6e}, \
         \"traced_seconds\": {:.6e}, \"traced_overhead_pct\": {:.3}}}\n}}\n",
        args.nx,
        args.ny,
        args.nz,
        dims.num_cells(),
        args.reps,
        solve_untraced,
        solve_null,
        solve_traced,
        solve_null_pct,
        solve_full_pct,
        trace_spans,
        args.jobs,
        args.workers,
        batch_untraced,
        batch_traced,
        batch_pct,
    );
    std::fs::write(&args.out, &json).expect("write JSON report");
    println!("wrote {}", args.out);

    if solve_null_pct > 1.0 {
        println!("WARN: null-span solve overhead {solve_null_pct:.2}% exceeds the 1% budget");
    }
    if args.check && solve_null_pct > 5.0 {
        eprintln!("FAIL: null-span solve overhead {solve_null_pct:.2}% exceeds the 5% hard budget");
        std::process::exit(1);
    }
}
