//! Regenerates **Table III** — weak-scaling results across the fabric dimensions.
//!
//! For every grid of the paper's sweep (Nz = 922, X/Y growing to the full
//! 750 × 994 fabric) the analytic model produces the CS-2 Algorithm-2 and
//! Algorithm-1 times, the corresponding throughputs in Gcell/s and the A100 times.
//! An executed sweep at scaled grids follows, exercising the simulator on the same
//! X/Y progression so the *shape* (flat Algorithm-2 scaling, slowly growing
//! Algorithm-1 time) is also demonstrated by real execution.
//!
//! Run with `cargo run --release -p mffv-bench --bin table3`.

use mffv::prelude::*;
use mffv_bench::{
    executed_table3_grids, executed_workload, paper_table3_grids, paper_table3_iterations,
};
use mffv_perf::report::{fmt_gcells, fmt_seconds, format_table};

fn main() {
    let model = AnalyticTiming::paper();
    let grids = paper_table3_grids();
    let iterations = paper_table3_iterations();

    println!("Table III — weak scaling at the paper's full grid sizes (modelled device time)\n");
    let mut rows = Vec::new();
    for (dims, iters) in grids.iter().zip(iterations.iter()) {
        let row = model.scaling_row(*dims, *iters);
        rows.push(vec![
            format!("{} x {} x {}", dims.nx, dims.ny, dims.nz),
            format!("{}", dims.num_cells()),
            format!("{iters}"),
            fmt_gcells(row.cs2_alg2_throughput),
            fmt_seconds(row.cs2_alg2_time),
            fmt_seconds(row.a100_alg2_time),
            fmt_gcells(row.cs2_alg1_throughput),
            fmt_seconds(row.cs2_alg1_time),
            fmt_seconds(row.a100_alg1_time),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "Grid",
                "Total cells",
                "Steps",
                "Alg2 thpt [Gcell/s]",
                "Alg2 CS-2 [s]",
                "Alg2 A100 [s]",
                "Alg1 thpt [Gcell/s]",
                "Alg1 CS-2 [s]",
                "Alg1 A100 [s]",
            ],
            &rows
        )
    );

    println!(
        "Executed sweep at scaled grids (simulated fabric, measured counts, modelled time):\n"
    );
    let mut rows = Vec::new();
    for dims in executed_table3_grids(50) {
        let report = Simulation::new(executed_workload(dims))
            .tolerance(1e-8)
            .backend(Backend::dataflow())
            .run()
            .expect("dataflow solve failed");
        let device = report.device.as_ref().expect("dataflow models a device");
        rows.push(vec![
            format!("{} x {} x {}", dims.nx, dims.ny, dims.nz),
            format!("{}", report.iterations()),
            format!("{}", device.counter("fabric_link_bytes").unwrap_or(0.0)),
            format!("{}", device.counter("critical_path_hops").unwrap_or(0.0)),
            format!("{:.3e}", device.modelled_time_seconds),
            format!("{}", report.converged()),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "Grid (scaled)",
                "Steps",
                "Fabric bytes",
                "Critical hops",
                "Modelled time [s]",
                "Converged"
            ],
            &rows
        )
    );
    println!("Shape checks: Alg2 CS-2 time is flat across the sweep; Alg1 CS-2 time grows with");
    println!("the fabric extent (reduction path); A100 time grows linearly with cell count.");
}
