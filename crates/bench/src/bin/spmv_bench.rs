//! Matrix-free apply kernel benchmark: naive vs planned vs fused vs threaded.
//!
//! Measures the hot `y = A x` path of the workspace — the naive per-neighbour
//! loop against the planned branch-free kernel (`mffv_fv::plan`), the fused
//! apply+dot kernel, and the scoped-thread parallel apply — and emits a
//! machine-readable `BENCH_spmv.json` (seconds, cells/s, effective GB/s,
//! speedup vs naive) to seed the repository's performance trajectory.
//!
//! ```text
//! cargo run --release -p mffv-bench --bin spmv_bench -- \
//!     --nx 128 --ny 128 --nz 128 --reps 5 --threads 1,2,8 --out BENCH_spmv.json
//! ```
//!
//! The effective-bandwidth model charges each apply with the streams the
//! kernel actually touches per cell: the six-coefficient row, the input read
//! and the output write (`8 · sizeof(T)` bytes per cell); stencil reuse of
//! `x` and the Dirichlet mask are not charged.

use mffv::prelude::*;

struct Args {
    nx: usize,
    ny: usize,
    nz: usize,
    reps: usize,
    threads: Vec<usize>,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            nx: 128,
            ny: 128,
            nz: 128,
            reps: 5,
            threads: vec![1, 2, 8],
            out: "BENCH_spmv.json".to_string(),
        };
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            let mut value = || {
                iter.next()
                    .unwrap_or_else(|| panic!("missing value for {flag}"))
            };
            match flag.as_str() {
                "--nx" => args.nx = value().parse().expect("--nx"),
                "--ny" => args.ny = value().parse().expect("--ny"),
                "--nz" => args.nz = value().parse().expect("--nz"),
                "--reps" => args.reps = value().parse::<usize>().expect("--reps").max(1),
                "--threads" => {
                    args.threads = value()
                        .split(',')
                        .map(|t| t.trim().parse().expect("--threads"))
                        .collect()
                }
                "--out" => args.out = value(),
                other => panic!("unknown flag {other} (use --nx --ny --nz --reps --threads --out)"),
            }
        }
        args
    }
}

/// One measured kernel configuration.
struct Row {
    kernel: &'static str,
    precision: &'static str,
    threads: usize,
    seconds: f64,
    speedup_vs_naive: f64,
}

impl Row {
    fn json(&self, cells: usize, bytes_per_cell: usize) -> String {
        let cells_per_s = cells as f64 / self.seconds;
        let gb_per_s = cells_per_s * bytes_per_cell as f64 / 1e9;
        format!(
            "    {{\"kernel\": \"{}\", \"precision\": \"{}\", \"threads\": {}, \
             \"seconds\": {:.6e}, \"cells_per_s\": {:.4e}, \"gb_per_s\": {:.3}, \
             \"speedup_vs_naive\": {:.3}}}",
            self.kernel,
            self.precision,
            self.threads,
            self.seconds,
            cells_per_s,
            gb_per_s,
            self.speedup_vs_naive
        )
    }
}

fn bench_precision<T: Scalar>(
    workload: &Workload,
    precision: &'static str,
    reps: usize,
    threads: &[usize],
    rows: &mut Vec<Row>,
) {
    let dims = workload.dims();
    let op = MatrixFreeOperator::<T>::from_workload(workload);
    let x = CellField::<T>::from_fn(dims, |c| {
        T::from_f64(((c.x * 13 + c.y * 7 + c.z * 3) % 32) as f64 * 0.0625 - 1.0)
    });
    let mut y = CellField::<T>::zeros(dims);

    let naive = time_best_of(reps, || op.apply_spd_naive(&x, &mut y));
    rows.push(Row {
        kernel: "naive",
        precision,
        threads: 1,
        seconds: naive,
        speedup_vs_naive: 1.0,
    });
    for &t in threads {
        let threaded = op.clone().with_threads(t);
        let planned = time_best_of(reps, || threaded.apply_spd(&x, &mut y));
        rows.push(Row {
            kernel: "planned",
            precision,
            threads: t,
            seconds: planned,
            speedup_vs_naive: naive / planned,
        });
    }
    let fused = time_best_of(reps, || {
        std::hint::black_box(op.apply_dot(&x, &mut y));
    });
    rows.push(Row {
        kernel: "fused-apply-dot",
        precision,
        threads: 1,
        seconds: fused,
        speedup_vs_naive: naive / fused,
    });
}

fn main() {
    let args = Args::parse();
    let dims = Dims::new(args.nx, args.ny, args.nz);
    let workload = WorkloadSpec::paper_grid(args.nx, args.ny, args.nz).build();
    let cells = dims.num_cells();
    let stats = MatrixFreeOperator::<f32>::from_workload(&workload).plan_stats();
    println!(
        "spmv bench on {dims} ({cells} cells): plan covers {:.1}% of cells in {} runs / {} slabs",
        100.0 * stats.run_fraction(),
        stats.num_runs,
        stats.num_slabs
    );

    let mut rows32 = Vec::new();
    bench_precision::<f32>(&workload, "f32", args.reps, &args.threads, &mut rows32);
    let mut rows64 = Vec::new();
    bench_precision::<f64>(&workload, "f64", args.reps, &args.threads, &mut rows64);

    let bytes32 = APPLY_STREAMS_PER_CELL * std::mem::size_of::<f32>();
    let bytes64 = APPLY_STREAMS_PER_CELL * std::mem::size_of::<f64>();
    let mut result_lines = Vec::new();
    for (rows, bytes_per_cell) in [(&rows32, bytes32), (&rows64, bytes64)] {
        for row in rows.iter() {
            println!(
                "  {:>16} {} x{:<2} {:>10.3} ms  {:>7.2}x vs naive",
                row.kernel,
                row.precision,
                row.threads,
                row.seconds * 1e3,
                row.speedup_vs_naive
            );
            result_lines.push(row.json(cells, bytes_per_cell));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"spmv\",\n  \"dims\": {{\"nx\": {}, \"ny\": {}, \"nz\": {}}},\n  \
         \"cells\": {},\n  \"reps\": {},\n  \"slab_cells\": {},\n  \"plan\": {{\"run_cells\": {}, \
         \"general_cells\": {}, \"dirichlet_cells\": {}, \"num_runs\": {}, \"num_slabs\": {}, \
         \"run_fraction\": {:.4}}},\n  \"traffic_model_bytes_per_cell\": {{\"f32\": {}, \"f64\": {}}},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        args.nx,
        args.ny,
        args.nz,
        cells,
        args.reps,
        SLAB_CELLS,
        stats.run_cells,
        stats.general_cells,
        stats.dirichlet_cells,
        stats.num_runs,
        stats.num_slabs,
        stats.run_fraction(),
        bytes32,
        bytes64,
        result_lines.join(",\n"),
    );
    std::fs::write(&args.out, &json).expect("write JSON report");
    println!("wrote {}", args.out);
}
