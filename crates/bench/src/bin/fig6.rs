//! Regenerates **Figure 6** — roofline models for the CS-2 and the A100.
//!
//! Prints the roofline ceilings (log-log series suitable for plotting) and the
//! kernel dots: the CS-2 kernel at its memory- and fabric-arithmetic intensities
//! and the A100 kernel at its DRAM intensity, with the achieved fraction of the
//! attainable ceiling for each.
//!
//! Run with `cargo run --release -p mffv-bench --bin fig6`.

use mffv_gpu_ref::device_model::{GpuSpec, GpuTimeModel};
use mffv_mesh::Dims;
use mffv_perf::report::{fmt_flops, fmt_percent, format_table};
use mffv_perf::{AnalyticTiming, CellOpCounts, MachineSpec, Roofline};

fn main() {
    let counts = CellOpCounts::paper_table5();
    let paper_dims = Dims::new(750, 994, 922);
    let iterations = 225;

    // ------------------------------------------------------------------- CS-2
    let cs2 = Roofline::new(MachineSpec::cs2());
    let timing = AnalyticTiming::paper();
    // The roofline dot uses the matrix-free kernel rate (Algorithm 2), which is the
    // quantity the paper's 1.217 PFLOP/s headline corresponds to; the full
    // Algorithm-1 rate (including reduction latency) is printed separately below.
    let cs2_achieved = timing.cs2_alg2_achieved_flops(paper_dims, iterations);
    println!("Figure 6 (top) — CS-2 roofline\n");
    println!(
        "Ceilings: peak {}  |  Memory 20 PB/s  |  Fabric 3.3 PB/s",
        fmt_flops(1.785e15)
    );
    let rows = vec![
        vec![
            "memory".to_string(),
            format!("{:.4}", counts.memory_arithmetic_intensity()),
            fmt_flops(cs2_achieved),
            fmt_percent(cs2.fraction_of_attainable(
                counts.memory_arithmetic_intensity(),
                cs2_achieved,
                Some("Memory"),
            )),
            format!(
                "compute-bound: {}",
                cs2.is_compute_bound(counts.memory_arithmetic_intensity(), Some("Memory"))
            ),
        ],
        vec![
            "fabric".to_string(),
            format!("{:.4}", counts.fabric_arithmetic_intensity()),
            fmt_flops(cs2_achieved),
            fmt_percent(cs2.fraction_of_attainable(
                counts.fabric_arithmetic_intensity(),
                cs2_achieved,
                Some("Fabric"),
            )),
            format!(
                "compute-bound: {}",
                cs2.is_compute_bound(counts.fabric_arithmetic_intensity(), Some("Fabric"))
            ),
        ],
    ];
    println!(
        "{}",
        format_table(
            &[
                "Traffic class",
                "AI [FLOP/B]",
                "Achieved (modelled)",
                "% of attainable",
                "Regime"
            ],
            &rows
        )
    );
    println!("Paper: 1.217 PFLOP/s achieved, 68% of peak, compute-bound for both intensities.");
    println!(
        "Full Algorithm-1 rate including reduction latency: {}\n",
        fmt_flops(timing.cs2_achieved_flops(paper_dims, iterations))
    );

    println!("CS-2 roofline series (AI [FLOP/B], attainable [GFLOP/s]) — Memory ceiling:");
    for (ai, perf) in cs2.chart_series(Some("Memory"), 1e-2, 1e2, 17) {
        println!("  {ai:10.4}, {:14.1}", perf / 1e9);
    }

    // ------------------------------------------------------------------- A100
    let a100 = Roofline::new(MachineSpec::a100());
    let gpu_achieved = GpuTimeModel::new(GpuSpec::a100()).achieved_flops(paper_dims);
    println!("\nFigure 6 (bottom) — A100 roofline\n");
    println!(
        "Ceilings: peak {}  |  L1 19353.6 GB/s  |  L2 3705.0 GB/s  |  HBM 1262.9 GB/s",
        fmt_flops(14.7e12)
    );
    let ai_dram = 96.0 / mffv_gpu_ref::device_model::DRAM_BYTES_PER_CELL_PER_ITERATION;
    let rows = vec![vec![
        "HBM".to_string(),
        format!("{ai_dram:.4}"),
        fmt_flops(gpu_achieved),
        fmt_percent(a100.fraction_of_attainable(ai_dram, gpu_achieved, Some("HBM"))),
        format!(
            "memory-bound: {}",
            !a100.is_compute_bound(ai_dram, Some("HBM"))
        ),
    ]];
    println!(
        "{}",
        format_table(
            &[
                "Traffic class",
                "AI [FLOP/B]",
                "Achieved (modelled)",
                "% of attainable",
                "Regime"
            ],
            &rows
        )
    );
    println!("Paper: memory-bound, ~78% of the bandwidth-limited ceiling.\n");

    println!("A100 roofline series (AI [FLOP/B], attainable [GFLOP/s]) — HBM ceiling:");
    for (ai, perf) in a100.chart_series(Some("HBM"), 1e-2, 1e2, 17) {
        println!("  {ai:10.4}, {:14.1}", perf / 1e9);
    }
}
