//! Numerical-integrity report (§V-B).
//!
//! "We compare and validate the numerical results produced by the CS-2 to those
//! yielded by the reference implementation running on GPUs."  This binary runs
//! the `Simulation` facade's `compare()` — the public API form of that
//! experiment — on three workloads, printing the per-backend summaries and the
//! pairwise maximum pressure disagreements, and cross-checks the assembled-CSR
//! baseline against the oracle on the same workloads.
//!
//! Run with `cargo run --release -p mffv-bench --bin numerical_integrity`.

use mffv::prelude::*;
use mffv_fv::csr::AssembledOperator;
use mffv_solver::cg::ConjugateGradient;
use mffv_solver::newton::solve_pressure_with;

fn main() {
    let workloads = vec![
        WorkloadSpec::quickstart().build(),
        WorkloadSpec::fig5(Dims::new(14, 10, 8)).build(),
        WorkloadSpec::paper_grid(20, 16, 12).build(),
    ];

    println!("Numerical integrity — Simulation::compare() across the standard backend set\n");
    for workload in &workloads {
        let agreement = Simulation::new(workload.clone())
            .tolerance(1e-12)
            .compare()
            .expect("facade solve failed");
        println!("{agreement}");
        assert!(
            agreement.agrees_within(1e-3),
            "{}: backends disagree beyond single precision",
            workload.name()
        );

        // The assembled-CSR baseline is an operator, not a backend: solve it
        // through the low-level driver with the same CG configuration and
        // compare against the oracle pressure the facade already produced.
        let oracle = &agreement
            .report("host-f64")
            .expect("host oracle ran")
            .pressure;
        let solver = ConjugateGradient::with_tolerance(1e-12, workload.max_iterations());
        let assembled = solve_pressure_with::<f64, _>(
            workload,
            &AssembledOperator::<f64>::from_workload(workload),
            &solver,
        );
        let scale = oracle.max_abs().max(f64::MIN_POSITIVE);
        println!(
            "assembled-CSR baseline vs oracle: {:.2e} (relative max diff)\n",
            oracle.max_abs_diff(&assembled.pressure) / scale
        );
    }
    println!("The assembled baseline matches the oracle to solver precision; the f32 GPU");
    println!("reference and the f32 dataflow implementation agree with the f64 oracle to");
    println!("single precision.");
}
