//! Numerical-integrity report (§V-B).
//!
//! "We compare and validate the numerical results produced by the CS-2 to those
//! yielded by the reference implementation running on GPUs."  This binary solves the
//! same workloads with four implementations — the sequential matrix-free oracle, the
//! assembled-CSR baseline, the GPU-style reference and the dataflow-fabric solver —
//! and reports the pairwise maximum differences and final residuals.
//!
//! Run with `cargo run --release -p mffv-bench --bin numerical_integrity`.

use mffv_core::{DataflowFvSolver, SolverOptions};
use mffv_fv::csr::AssembledOperator;
use mffv_gpu_ref::{GpuReferenceSolver, GpuSpec};
use mffv_mesh::workload::WorkloadSpec;
use mffv_mesh::{CellField, Dims};
use mffv_perf::report::format_table;
use mffv_solver::cg::ConjugateGradient;
use mffv_solver::newton::{solve_pressure, solve_pressure_with};

fn main() {
    let workloads = vec![
        WorkloadSpec::quickstart().build(),
        WorkloadSpec::fig5(Dims::new(14, 10, 8)).build(),
        WorkloadSpec::paper_grid(20, 16, 12).build(),
    ];

    let mut rows = Vec::new();
    for workload in &workloads {
        let tolerance = 1e-12f64;
        let oracle = solve_pressure::<f64>(workload);
        let assembled = solve_pressure_with::<f64, _>(
            workload,
            &AssembledOperator::<f64>::from_workload(workload),
            &ConjugateGradient::with_tolerance(tolerance, workload.max_iterations()),
        );
        let gpu = GpuReferenceSolver::new(workload.clone(), GpuSpec::a100())
            .with_tolerance(tolerance)
            .solve();
        let dataflow =
            DataflowFvSolver::new(workload.clone(), SolverOptions::paper().with_tolerance(tolerance))
                .solve()
                .expect("dataflow solve failed");

        let scale = oracle.pressure.max_abs().max(f64::MIN_POSITIVE);
        let gpu64: CellField<f64> = gpu.pressure.convert();
        let dataflow64: CellField<f64> = dataflow.pressure.convert();
        rows.push(vec![
            workload.name().to_string(),
            format!("{}", workload.dims()),
            format!("{:.2e}", oracle.pressure.max_abs_diff(&assembled.pressure) / scale),
            format!("{:.2e}", oracle.pressure.max_abs_diff(&gpu64) / scale),
            format!("{:.2e}", oracle.pressure.max_abs_diff(&dataflow64) / scale),
            format!("{:.2e}", gpu64.max_abs_diff(&dataflow64) / scale),
            format!("{:.2e}", dataflow.final_residual_max),
        ]);
    }

    println!("Numerical integrity — pairwise relative max differences of the converged pressure\n");
    println!(
        "{}",
        format_table(
            &[
                "Workload",
                "Grid",
                "oracle vs assembled",
                "oracle vs GPU ref",
                "oracle vs dataflow",
                "GPU ref vs dataflow",
                "dataflow |r|_max",
            ],
            &rows
        )
    );
    println!("The assembled baseline matches the oracle to solver precision; the f32 GPU reference");
    println!("and the f32 dataflow implementation agree with the f64 oracle to single precision.");
}
