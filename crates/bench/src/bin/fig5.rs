//! Regenerates **Figure 5** — pressure propagation from the source (top-left) to
//! the producer (bottom-right).
//!
//! Solves the CO₂-injection scenario on the simulated dataflow fabric and prints
//! (a) an ASCII rendering of a horizontal pressure slice after convergence and
//! (b) the same slice as CSV for external plotting.
//!
//! Run with `cargo run --release -p mffv-bench --bin fig5`.

use mffv::prelude::*;
use mffv_mesh::CellIndex;

const SHADES: &[u8] = b" .:-=+*#%@";

fn main() {
    let dims = Dims::new(48, 32, 8);
    let workload = WorkloadSpec::fig5(dims).build();
    let report = Simulation::new(workload)
        .tolerance(1e-14)
        .backend(Backend::dataflow())
        .run()
        .expect("dataflow solve failed");

    println!(
        "Figure 5 — final pressure field, {} ({} CG iterations, converged = {})",
        dims,
        report.iterations(),
        report.converged()
    );
    println!(
        "Source column at (0, 0) [top-left], producer column at ({}, {}) [bottom-right]\n",
        dims.nx - 1,
        dims.ny - 1
    );

    let z = dims.nz / 2;
    let slice: Vec<f64> = report.pressure.horizontal_slice(z);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &slice {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let range = (hi - lo).max(f64::MIN_POSITIVE);

    println!("ASCII rendering of the pressure slice at z = {z} (darker = higher pressure):");
    for y in 0..dims.ny {
        let mut line = String::with_capacity(dims.nx);
        for x in 0..dims.nx {
            let v = slice[y * dims.nx + x];
            let t = ((v - lo) / range).clamp(0.0, 1.0);
            let idx = (t * (SHADES.len() - 1) as f64).round() as usize;
            line.push(SHADES[idx] as char);
        }
        println!("{line}");
    }

    println!("\nCSV of the same slice (x, y, pressure[Pa]):");
    println!("x,y,pressure");
    for y in 0..dims.ny {
        for x in 0..dims.nx {
            println!("{x},{y},{:.6e}", slice[y * dims.nx + x]);
        }
    }

    // Quantitative signature of the figure: pressure decays monotonically from the
    // source towards the producer along the diagonal.
    let near_source = report.pressure.at(CellIndex::new(1, 1, z));
    let mid = report
        .pressure
        .at(CellIndex::new(dims.nx / 2, dims.ny / 2, z));
    let near_producer = report
        .pressure
        .at(CellIndex::new(dims.nx - 2, dims.ny - 2, z));
    println!("\nDiagonal signature: p(near source) = {near_source:.4e}  >  p(centre) = {mid:.4e}  >  p(near producer) = {near_producer:.4e}");
    println!(
        "Max residual of Eq. (3) at the converged field: {:.3e}",
        report.final_residual_max
    );
}
