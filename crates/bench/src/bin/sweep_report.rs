//! Scenario-sweep throughput report: the `mffv-engine` batch executor driven
//! the way the paper's evaluation drives the machine — many configurations of
//! one problem family under a single harness.
//!
//! A `SweepBuilder` fans a log-normal-permeability base workload across three
//! grid sizes × two backends × two permeability seeds (12 jobs), the engine
//! executes the batch on a worker pool, and the `BatchReport` prints per-job
//! status plus aggregate throughput and latency percentiles.  A second pass
//! re-runs the host-backend jobs at worker counts 1, 2 and 8 to measure the
//! pool's wall-clock scaling on this machine.
//!
//! Run with `cargo run --release -p mffv-bench --bin sweep_report`.

use mffv::prelude::*;
use mffv_perf::report::format_table;

/// The sweep base: quickstart-like physics with a stochastic permeability
/// field, so the seed axis produces genuinely different scenarios.
fn sweep_base() -> WorkloadSpec {
    WorkloadSpec {
        name: "sweep".to_string(),
        permeability: PermeabilityModel::LogNormal {
            mean_log: 0.0,
            std_log: 0.5,
            seed: 0,
        },
        tolerance: 1e-8,
        ..WorkloadSpec::quickstart()
    }
}

fn grids() -> [Dims; 3] {
    [
        Dims::new(12, 10, 8),
        Dims::new(16, 12, 10),
        Dims::new(20, 16, 12),
    ]
}

fn main() {
    // 1. The full sweep: 3 grids × 2 seeds × 2 backends = 12 jobs.
    let sweep = SweepBuilder::new(sweep_base())
        .grids(grids())
        .seeds([1, 2])
        .backends([Backend::host(), Backend::gpu_ref()]);
    println!(
        "Scenario sweep: {} jobs (3 grids x 2 seeds x 2 backends)\n",
        sweep.job_count()
    );
    let engine = Engine::with_available_parallelism();
    let batch = engine.run(sweep.jobs());
    println!("{batch}\n");
    assert!(batch.all_succeeded(), "sweep jobs must all complete");
    assert_eq!(batch.jobs(), 12);

    // 2. Worker scaling on the host backend: the same 3 grids × 2 seeds at
    //    1, 2 and 8 workers.  Results are bitwise identical at every worker
    //    count; only the wall clock changes.
    let host_jobs = SweepBuilder::new(sweep_base())
        .grids(grids())
        .seeds([1, 2])
        .backends([Backend::host()])
        .jobs();
    println!(
        "Worker scaling (host backend, {} jobs per batch):\n",
        host_jobs.len()
    );
    let mut rows = Vec::new();
    let mut baseline_wall = None;
    let mut speedup_at_8 = 1.0;
    for workers in [1usize, 2, 8] {
        let report = Engine::new(workers).run(host_jobs.clone());
        assert!(report.all_succeeded());
        let baseline = *baseline_wall.get_or_insert(report.wall_seconds);
        let speedup = baseline / report.wall_seconds;
        if workers == 8 {
            speedup_at_8 = speedup;
        }
        rows.push(vec![
            workers.to_string(),
            format!("{:.3}", report.wall_seconds),
            format!("{:.2}", report.jobs_per_second()),
            format!("{:.3e}", report.latency.p50),
            format!("{:.3e}", report.latency.p95),
            format!("{speedup:.2}x"),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "Workers",
                "Wall [s]",
                "Jobs/s",
                "p50 [s]",
                "p95 [s]",
                "Speedup vs 1"
            ],
            &rows
        )
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("Available hardware threads: {cores}; measured 8-worker speedup: {speedup_at_8:.2}x");
    if cores == 1 {
        println!("(single hardware thread — worker scaling cannot exceed ~1x on this machine)");
    }
}
