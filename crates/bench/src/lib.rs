#![forbid(unsafe_code)]
//! Shared helpers for the benchmark harness and the table/figure report binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper (see
//! `DESIGN.md` §5 for the per-experiment index); the Criterion benches in
//! `benches/` measure the executed kernels and the ablations of the §III-E design
//! choices.  Executed runs use scaled grids (the paper's full 687-million-cell mesh
//! does not fit host memory); the analytic models in `mffv-perf` are additionally
//! evaluated at the paper's full sizes.

use mffv_mesh::workload::WorkloadSpec;
use mffv_mesh::{Dims, Workload};

/// The default scale factor applied to the paper's grids for *executed* runs:
/// each extent is divided by this factor.
pub const DEFAULT_EXECUTED_SCALE: usize = 25;

/// The paper's Table III grid family at full logical size.
pub fn paper_table3_grids() -> Vec<Dims> {
    WorkloadSpec::table3_grids()
        .into_iter()
        .map(|(x, y, z)| Dims::new(x, y, z))
        .collect()
}

/// The paper's Table III grid family scaled down for executed runs.
pub fn executed_table3_grids(scale: usize) -> Vec<Dims> {
    WorkloadSpec::table3_grids()
        .into_iter()
        .map(|(x, y, z)| Dims::new((x / scale).max(2), (y / scale).max(2), (z / scale).max(2)))
        .collect()
}

/// The number of CG steps the paper reports for each Table III grid (226 for the
/// smallest, 225 for the rest).
pub fn paper_table3_iterations() -> Vec<usize> {
    vec![226, 225, 225, 225, 225, 225, 225]
}

/// A homogeneous paper-style workload at the requested (already scaled) extents.
pub fn executed_workload(dims: Dims) -> Workload {
    WorkloadSpec::paper_grid(dims.nx, dims.ny, dims.nz).build()
}

/// A small workload suitable for Criterion iteration counts.
pub fn bench_workload() -> Workload {
    WorkloadSpec::paper_grid(16, 12, 24).build()
}

/// A mid-size workload for end-to-end solve benches.
pub fn bench_workload_large() -> Workload {
    WorkloadSpec::paper_grid(24, 20, 36).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_families_are_consistent() {
        let full = paper_table3_grids();
        let iters = paper_table3_iterations();
        assert_eq!(full.len(), 7);
        assert_eq!(full.len(), iters.len());
        assert_eq!(full[6], Dims::new(750, 994, 922));
        let executed = executed_table3_grids(DEFAULT_EXECUTED_SCALE);
        assert_eq!(executed.len(), 7);
        for (e, f) in executed.iter().zip(full.iter()) {
            assert!(e.nx <= f.nx && e.ny <= f.ny && e.nz <= f.nz);
            assert!(e.nx >= 2 && e.ny >= 2 && e.nz >= 2);
        }
    }

    #[test]
    fn bench_workloads_build() {
        assert_eq!(bench_workload().dims(), Dims::new(16, 12, 24));
        assert_eq!(bench_workload_large().dims(), Dims::new(24, 20, 36));
        assert_eq!(
            executed_workload(Dims::new(4, 5, 6)).dims(),
            Dims::new(4, 5, 6)
        );
    }
}
