//! Ablations of the §III-E design choices: DSD-vectorised vs element-at-a-time
//! per-PE kernels (executed), and the modelled effect of the overlap and
//! vectorisation toggles on device time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mffv::{Backend, Simulation};
use mffv_core::kernel;
use mffv_core::mapping::PeColumnBuffers;
use mffv_core::SolverOptions;
use mffv_fabric::{Dsd, PeId, ProcessingElement};
use mffv_mesh::workload::WorkloadSpec;
use mffv_mesh::Direction;
use std::hint::black_box;

/// An element-at-a-time (non-vectorised) version of the per-PE kernel: the same
/// arithmetic issued as length-1 DSD operations, the way a scalar loop would.
fn compute_jd_scalar(pe: &mut ProcessingElement, bufs: &PeColumnBuffers, nz: usize) {
    pe.fill(Dsd::full(bufs.operator_out, nz), 0.0).unwrap();
    let halos = [
        (Direction::XP, bufs.halo_east),
        (Direction::XM, bufs.halo_west),
        (Direction::YP, bufs.halo_south),
        (Direction::YM, bufs.halo_north),
    ];
    for z in 0..nz {
        for (dir, halo) in halos {
            let t = Dsd::new(bufs.transmissibility[dir.index()], z, 1);
            let h = Dsd::new(halo, z, 1);
            let d = Dsd::new(bufs.direction, z, 1);
            let out = Dsd::new(bufs.operator_out, z, 1);
            pe.fsubs(h, d, h).unwrap();
            pe.fmacs(out, out, t, h).unwrap();
        }
    }
}

fn bench_vectorization(c: &mut Criterion) {
    let nz = 256;
    let workload = WorkloadSpec::paper_grid(4, 4, nz).build();
    let mut group = c.benchmark_group("pe_kernel_vectorization");

    group.bench_function(BenchmarkId::new("dsd_vectorized", nz), |b| {
        let mut pe = ProcessingElement::new(PeId::new(1, 1));
        let bufs = PeColumnBuffers::allocate(&mut pe, &workload, 1, 1).unwrap();
        pe.memory_mut()
            .write(bufs.direction, 0, &vec![1.0f32; nz])
            .unwrap();
        b.iter(|| {
            kernel::compute_jd(&mut pe, &bufs).unwrap();
            black_box(())
        })
    });

    group.bench_function(BenchmarkId::new("element_at_a_time", nz), |b| {
        let mut pe = ProcessingElement::new(PeId::new(1, 1));
        let bufs = PeColumnBuffers::allocate(&mut pe, &workload, 1, 1).unwrap();
        pe.memory_mut()
            .write(bufs.direction, 0, &vec![1.0f32; nz])
            .unwrap();
        b.iter(|| {
            compute_jd_scalar(&mut pe, &bufs, nz);
            black_box(())
        })
    });
    group.finish();

    // Modelled ablations: overlap and vectorisation toggles change modelled device
    // time, reported once per bench run.
    let workload = WorkloadSpec::paper_grid(12, 12, 24).build();
    let configs = [
        ("all_optimizations", SolverOptions::paper()),
        ("no_overlap", SolverOptions::paper().without_overlap()),
        (
            "no_vectorization",
            SolverOptions::paper().without_vectorization(),
        ),
        (
            "no_buffer_reuse",
            SolverOptions::paper().without_buffer_reuse(),
        ),
    ];
    for (name, options) in configs {
        let report = Simulation::new(workload.clone())
            .tolerance(1e-8)
            .backend(Backend::dataflow_with(options))
            .run()
            .unwrap();
        let device = report.device.as_ref().unwrap();
        eprintln!(
            "ablation {name}: modelled device time = {:.6e} s, memory plan bytes = {}",
            device.modelled_time_seconds,
            device.counter("memory_plan_bytes").unwrap_or(0.0)
        );
    }
}

criterion_group!(benches, bench_vectorization);
criterion_main!(benches);
