//! The four-step Table-I halo exchange: cost of one full exchange as the fabric
//! grows, and the per-PE traffic it induces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mffv_core::comm::CardinalExchange;
use mffv_core::mapping::PeColumnBuffers;
use mffv_fabric::{ColorAllocator, Fabric, FabricDims};
use mffv_mesh::workload::WorkloadSpec;
use mffv_mesh::Dims;
use std::hint::black_box;

fn setup(dims: Dims) -> (Fabric, Vec<PeColumnBuffers>, CardinalExchange) {
    let workload = WorkloadSpec::paper_grid(dims.nx, dims.ny, dims.nz).build();
    let mut fabric = Fabric::new(FabricDims::new(dims.nx, dims.ny));
    let mut buffers = Vec::with_capacity(fabric.num_pes());
    for idx in 0..fabric.num_pes() {
        let pe_id = fabric.dims().unlinear(idx);
        let pe = fabric.pe_mut(pe_id);
        let bufs = PeColumnBuffers::allocate(pe, &workload, pe_id.x, pe_id.y).unwrap();
        let column = vec![1.0f32; dims.nz];
        pe.memory_mut().write(bufs.direction, 0, &column).unwrap();
        buffers.push(bufs);
    }
    let mut colors = ColorAllocator::new();
    let exchange = CardinalExchange::new(&mut fabric, &mut colors).unwrap();
    (fabric, buffers, exchange)
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("cardinal_exchange");
    for (nx, ny, nz) in [
        (8usize, 8usize, 32usize),
        (16, 16, 32),
        (24, 24, 32),
        (16, 16, 128),
    ] {
        let dims = Dims::new(nx, ny, nz);
        group.bench_with_input(
            BenchmarkId::new("four_step_exchange", format!("{nx}x{ny}x{nz}")),
            &dims,
            |b, &dims| {
                let (mut fabric, buffers, mut exchange) = setup(dims);
                b.iter(|| black_box(exchange.exchange(&mut fabric, &buffers).unwrap()))
            },
        );
    }
    group.finish();

    // Log the traffic profile once per size for the report.
    for (nx, ny, nz) in [(8usize, 8usize, 32usize), (16, 16, 32)] {
        let dims = Dims::new(nx, ny, nz);
        let (mut fabric, buffers, mut exchange) = setup(dims);
        let report = exchange.exchange(&mut fabric, &buffers).unwrap();
        eprintln!(
            "exchange {nx}x{ny}x{nz}: messages = {}, wavelets = {}, link bytes = {}",
            report.messages,
            report.wavelets,
            fabric.stats().link_bytes
        );
    }
}

criterion_group!(benches, bench_exchange);
criterion_main!(benches);
