//! End-to-end CG solve benchmarks (the executed counterpart of Table II): the
//! sequential matrix-free oracle, the assembled baseline, plain CG vs Jacobi PCG,
//! the dataflow-fabric solve, and the `mffv-engine` batch executor at worker
//! counts 1 / 2 / 8.

use criterion::{criterion_group, criterion_main, Criterion};
use mffv::{Backend, Engine, Simulation, SweepBuilder};
use mffv_bench::bench_workload;
use mffv_fv::csr::AssembledOperator;
use mffv_fv::residual::{newton_rhs, residual};
use mffv_fv::MatrixFreeOperator;
use mffv_mesh::CellField;
use mffv_mesh::Dims;
use mffv_solver::cg::ConjugateGradient;
use mffv_solver::newton::solve_pressure_with;
use mffv_solver::pcg::{JacobiPreconditioner, PreconditionedConjugateGradient};
use std::hint::black_box;

fn bench_cg_solves(c: &mut Criterion) {
    let workload = bench_workload();
    let tolerance = 1e-10;
    let mut group = c.benchmark_group("cg_solve");
    group.sample_size(10);

    group.bench_function("matrix_free_oracle_f64", |b| {
        let op = MatrixFreeOperator::<f64>::from_workload(&workload);
        let solver = ConjugateGradient::with_tolerance(tolerance, 10_000);
        b.iter(|| black_box(solve_pressure_with::<f64, _>(&workload, &op, &solver)))
    });

    group.bench_function("assembled_baseline_f64", |b| {
        let op = AssembledOperator::<f64>::from_workload(&workload);
        let solver = ConjugateGradient::with_tolerance(tolerance, 10_000);
        b.iter(|| black_box(solve_pressure_with::<f64, _>(&workload, &op, &solver)))
    });

    group.bench_function("jacobi_pcg_f64", |b| {
        let op = MatrixFreeOperator::<f64>::from_workload(&workload);
        let pc = JacobiPreconditioner::from_coefficients(op.coefficients(), workload.dirichlet());
        let solver = PreconditionedConjugateGradient::with_tolerance(tolerance, 10_000);
        let p0: CellField<f64> = workload.initial_pressure();
        let r = residual(&p0, workload.transmissibility(), workload.dirichlet());
        let rhs = newton_rhs(&r, workload.dirichlet());
        let x0 = CellField::zeros(workload.dims());
        b.iter(|| black_box(solver.solve(&op, &pc, &rhs, &x0)))
    });

    group.bench_function("dataflow_fabric_f32", |b| {
        let simulation = Simulation::new(workload.clone())
            .tolerance(1e-8)
            .backend(Backend::dataflow());
        b.iter(|| black_box(simulation.run().expect("dataflow solve failed")))
    });

    group.finish();
}

/// The host solve fanned out as an engine batch: six distinct scenarios
/// (three grid sizes × two log-normal permeability seeds), executed at 1, 2
/// and 8 workers.  On a multi-core host the wall time drops with the worker
/// count; the per-job results are bitwise identical either way.
fn bench_engine_batch(c: &mut Criterion) {
    // A stochastic permeability base, so the seed axis genuinely changes the
    // problem (reseeding is a no-op on the homogeneous bench workload).
    let base = mffv_mesh::WorkloadSpec {
        name: "bench-engine".to_string(),
        permeability: mffv_mesh::PermeabilityModel::LogNormal {
            mean_log: 0.0,
            std_log: 0.4,
            seed: 0,
        },
        tolerance: 1e-8,
        ..bench_workload().spec().clone()
    };
    let jobs = SweepBuilder::new(base)
        .grids([
            Dims::new(12, 10, 16),
            Dims::new(16, 12, 24),
            Dims::new(20, 16, 24),
        ])
        .seeds([1, 2])
        .backends([Backend::host()])
        .jobs();
    let mut group = c.benchmark_group("engine_batch");
    group.sample_size(10);
    for workers in [1usize, 2, 8] {
        let jobs = jobs.clone();
        group.bench_function(format!("host_6jobs_w{workers}"), |b| {
            let engine = Engine::new(workers);
            b.iter(|| {
                let report = engine.run(jobs.clone());
                assert!(report.all_succeeded());
                black_box(report)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cg_solves, bench_engine_batch);
criterion_main!(benches);
