//! Whole-fabric all-reduce (§III-C) benchmark and ablation against a naive
//! gather-to-one-PE scheme: messages and critical-path hops as the fabric grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mffv_core::allreduce::AllReduce;
use mffv_fabric::router::{RouterRule, SwitchConfig};
use mffv_fabric::{ColorAllocator, Fabric, FabricDims, PeId, Port};
use std::hint::black_box;

/// Naive alternative: every PE's value is routed all the way to PE (0, 0) with a
/// dedicated chain of unicasts (no in-network accumulation), then broadcast back.
fn naive_gather(fabric: &mut Fabric, values: &[f32]) -> f32 {
    let dims = fabric.dims();
    let mut colors = ColorAllocator::new();
    let color = colors.allocate().unwrap();
    let mut total = values[0];
    for (idx, &value) in values.iter().enumerate().skip(1) {
        let mut pe = dims.unlinear(idx);
        // Walk west then north, one unicast per hop.
        while pe.x > 0 || pe.y > 0 {
            let port = if pe.x > 0 { Port::West } else { Port::North };
            let dst = dims.neighbor(pe, port).unwrap();
            fabric.set_color_config(
                pe,
                color,
                SwitchConfig::fixed(RouterRule::new(&[Port::Ramp], &[port])),
            );
            fabric.set_color_config(
                dst,
                color,
                SwitchConfig::fixed(RouterRule::new(&[port.entry_on_neighbor()], &[Port::Ramp])),
            );
            fabric.send(pe, color, &[value]).unwrap();
            fabric.take_message(dst, color).unwrap();
            pe = dst;
        }
        total += value;
    }
    total
}

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce");
    for size in [8usize, 16, 24] {
        let dims = FabricDims::new(size, size);
        let values: Vec<f32> = (0..dims.num_pes()).map(|i| i as f32 * 0.5).collect();

        group.bench_with_input(BenchmarkId::new("fabric_allreduce", size), &size, |b, _| {
            b.iter(|| {
                let mut fabric = Fabric::new(dims);
                let mut colors = ColorAllocator::new();
                let ar = AllReduce::new(&mut colors).unwrap();
                black_box(ar.sum(&mut fabric, &values).unwrap())
            })
        });

        group.bench_with_input(
            BenchmarkId::new("naive_gather_to_origin", size),
            &size,
            |b, _| {
                b.iter(|| {
                    let mut fabric = Fabric::new(dims);
                    black_box(naive_gather(&mut fabric, &values))
                })
            },
        );
    }
    group.finish();

    // Also report (once) how traffic scales — printed so the bench log doubles as a
    // data source for the Table-III discussion of reduction cost.
    for size in [8usize, 16, 32] {
        let dims = FabricDims::new(size, size);
        let values = vec![1.0f32; dims.num_pes()];
        let mut fabric = Fabric::new(dims);
        let mut colors = ColorAllocator::new();
        let ar = AllReduce::new(&mut colors).unwrap();
        let (_, report) = ar.sum(&mut fabric, &values).unwrap();
        let naive_pe = PeId::new(size - 1, size - 1);
        eprintln!(
            "allreduce {size}x{size}: messages = {}, critical-path hops = {}, manhattan(origin, corner) = {}",
            report.messages,
            report.critical_path_hops,
            dims.manhattan(PeId::new(0, 0), naive_pe)
        );
    }
}

criterion_group!(benches, bench_allreduce);
criterion_main!(benches);
