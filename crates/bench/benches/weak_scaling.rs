//! Executed weak-scaling sweep (the executed counterpart of Table III): the
//! dataflow solve at a fixed column depth while the fabric X/Y extents grow, split
//! into the Algorithm-2 part (one operator sweep) and the full Algorithm-1
//! iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mffv::{Backend, Simulation};
use mffv_core::comm::CardinalExchange;
use mffv_core::kernel;
use mffv_core::mapping::PeColumnBuffers;
use mffv_fabric::{ColorAllocator, Fabric, FabricDims};
use mffv_mesh::workload::WorkloadSpec;
use mffv_mesh::Dims;
use std::hint::black_box;

/// One Algorithm-2 sweep (exchange + per-PE matrix-free apply) on a prepared fabric.
fn alg2_sweep(dims: Dims) -> impl FnMut() {
    let workload = WorkloadSpec::paper_grid(dims.nx, dims.ny, dims.nz).build();
    let mut fabric = Fabric::new(FabricDims::new(dims.nx, dims.ny));
    let mut buffers = Vec::with_capacity(fabric.num_pes());
    for idx in 0..fabric.num_pes() {
        let pe_id = fabric.dims().unlinear(idx);
        let pe = fabric.pe_mut(pe_id);
        let bufs = PeColumnBuffers::allocate(pe, &workload, pe_id.x, pe_id.y).unwrap();
        pe.memory_mut()
            .write(bufs.direction, 0, &vec![1.0f32; dims.nz])
            .unwrap();
        buffers.push(bufs);
    }
    let mut colors = ColorAllocator::new();
    let mut exchange = CardinalExchange::new(&mut fabric, &mut colors).unwrap();
    move || {
        exchange.exchange(&mut fabric, &buffers).unwrap();
        for (idx, bufs) in buffers.iter().enumerate() {
            let pe_id = fabric.dims().unlinear(idx);
            kernel::compute_jd(fabric.pe_mut(pe_id), bufs).unwrap();
        }
    }
}

fn bench_weak_scaling(c: &mut Criterion) {
    let nz = 32;
    let mut group = c.benchmark_group("weak_scaling");
    group.sample_size(10);

    // Algorithm 2 only: work per PE is constant, so time should grow only with the
    // host cost of simulating more PEs (on the real fabric it is flat).
    for side in [8usize, 12, 16, 20] {
        let dims = Dims::new(side, side, nz);
        group.bench_with_input(BenchmarkId::new("alg2_sweep", side), &dims, |b, &dims| {
            let mut sweep = alg2_sweep(dims);
            b.iter(&mut sweep)
        });
    }

    // Full Algorithm 1 for a fixed number of iterations.
    for side in [8usize, 12, 16] {
        let dims = Dims::new(side, side, nz);
        let workload = WorkloadSpec::paper_grid(dims.nx, dims.ny, dims.nz).build();
        group.bench_with_input(
            BenchmarkId::new("alg1_fixed_iterations", side),
            &dims,
            |b, _| {
                let simulation = Simulation::new(workload.clone())
                    .tolerance(1e-30)
                    .max_iterations(20)
                    .backend(Backend::dataflow());
                b.iter(|| black_box(simulation.run().unwrap()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_weak_scaling);
criterion_main!(benches);
