//! Ablation: matrix-free operator application vs assembled CSR SpMV (plus the
//! assembly cost the matrix-free approach avoids entirely) — the §II-A motivation
//! for the matrix-free design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mffv_bench::{bench_workload, bench_workload_large};
use mffv_fv::csr::{AssembledOperator, CsrMatrix};
use mffv_fv::{LinearOperator, MatrixFreeOperator};
use mffv_mesh::CellField;
use std::hint::black_box;

fn bench_operator_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("operator_apply");
    for workload in [bench_workload(), bench_workload_large()] {
        let dims = workload.dims();
        let x = CellField::<f64>::from_fn(dims, |cell| (cell.x + cell.y + cell.z) as f64 * 0.01);
        let mut y = CellField::<f64>::zeros(dims);
        let matrix_free = MatrixFreeOperator::<f64>::from_workload(&workload);
        let assembled = AssembledOperator::<f64>::from_workload(&workload);

        group.bench_with_input(
            BenchmarkId::new("matrix_free", dims.num_cells()),
            &dims,
            |b, _| b.iter(|| matrix_free.apply(black_box(&x), black_box(&mut y))),
        );
        group.bench_with_input(
            BenchmarkId::new("assembled_spmv", dims.num_cells()),
            &dims,
            |b, _| b.iter(|| assembled.apply(black_box(&x), black_box(&mut y))),
        );
        group.bench_with_input(
            BenchmarkId::new("assembly_cost", dims.num_cells()),
            &dims,
            |b, _| {
                b.iter(|| {
                    black_box(CsrMatrix::<f64>::assemble_spd(
                        workload.transmissibility(),
                        workload.dirichlet(),
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_operator_apply);
criterion_main!(benches);
