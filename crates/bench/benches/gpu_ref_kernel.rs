//! The GPU-style reference kernel (§IV): block-parallel matrix-free apply versus the
//! sequential host operator, and the scaling with available host threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mffv_bench::{bench_workload, bench_workload_large};
use mffv_fv::{LinearOperator, MatrixFreeOperator};
use mffv_gpu_ref::GpuMatrixFreeOperator;
use mffv_mesh::CellField;
use std::hint::black_box;

fn bench_gpu_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_ref_kernel");
    for workload in [bench_workload(), bench_workload_large()] {
        let dims = workload.dims();
        let x =
            CellField::<f32>::from_fn(dims, |cell| (cell.x * 3 + cell.y + cell.z) as f32 * 0.01);
        let mut y = CellField::<f32>::zeros(dims);

        let sequential = MatrixFreeOperator::<f32>::from_workload(&workload);
        group.bench_with_input(
            BenchmarkId::new("sequential_reference", dims.num_cells()),
            &dims,
            |b, _| b.iter(|| sequential.apply(black_box(&x), black_box(&mut y))),
        );

        for threads in [1usize, 2, 4] {
            let gpu = GpuMatrixFreeOperator::from_workload(&workload).with_host_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(
                    format!("block_parallel_{threads}_threads"),
                    dims.num_cells(),
                ),
                &dims,
                |b, _| b.iter(|| gpu.apply(black_box(&x), black_box(&mut y))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gpu_kernel);
criterion_main!(benches);
